"""Shared fixtures for the Music-Defined Networking test suite."""

import numpy as np
import pytest

from repro.audio import AcousticChannel, Microphone, Position, Speaker, SpectrumAnalyzer


@pytest.fixture
def rng():
    """A fixed-seed random generator; tests must be deterministic."""
    return np.random.default_rng(12345)


@pytest.fixture
def analyzer():
    return SpectrumAnalyzer(zero_pad_factor=2)


@pytest.fixture
def channel():
    return AcousticChannel()


@pytest.fixture
def quiet_mic():
    """A microphone with a very low self-noise floor at the origin."""
    return Microphone(Position(), self_noise_db=5.0, seed=1)


@pytest.fixture
def near_speaker():
    """A speaker half a metre from the origin."""
    return Speaker(Position(0.5, 0.0, 0.0))
