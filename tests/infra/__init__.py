"""Tests for the repro.infra hardening primitives."""
