"""Tests for token-bucket admission control."""

import pytest

from repro.infra import TokenBucket


class TestTokenBucket:
    def test_starts_full_and_bursts(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        assert all(bucket.admit(0.0) for _ in range(5))
        assert not bucket.admit(0.0)
        assert bucket.admitted == 5
        assert bucket.shed == 1

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        for _ in range(5):
            bucket.admit(0.0)
        assert not bucket.admit(0.0)
        # 0.2 s at 10/s = 2 tokens back.
        assert bucket.admit(0.2)
        assert bucket.admit(0.2)
        assert not bucket.admit(0.2)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        assert bucket.peek(1e6) == 3.0

    def test_sustained_overload_sheds_the_excess(self):
        """Over a long storm the admitted count converges on
        burst + rate x duration; everything else is counted shed."""
        bucket = TokenBucket(rate=20.0, burst=25.0)
        sends, duration = 300, 1.5
        for index in range(sends):
            bucket.admit(index * duration / sends)
        assert bucket.admitted + bucket.shed == sends
        assert bucket.admitted <= 25.0 + 20.0 * duration
        assert bucket.admitted >= 25.0 + 20.0 * duration - 2

    def test_cost_spends_multiple_tokens(self):
        bucket = TokenBucket(rate=1.0, burst=4.0)
        assert bucket.admit(0.0, cost=3.0)
        assert not bucket.admit(0.0, cost=2.0)
        assert bucket.admit(0.0, cost=1.0)

    def test_peek_spends_nothing(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.peek(0.0) == 2.0
        assert bucket.peek(0.0) == 2.0
        assert bucket.admitted == 0

    def test_time_never_runs_backwards(self):
        """An out-of-order probe must not mint tokens retroactively."""
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.admit(1.0)
        assert not bucket.admit(0.5)
        assert bucket.peek(1.05) == pytest.approx(0.5)

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0, "burst": 5.0},
        {"rate": -1.0, "burst": 5.0},
        {"rate": 1.0, "burst": 0.5},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucket(**kwargs)
