"""Property tests for the unified retry policy.

The schedule is the one retransmission timeline every layer shares, so
the invariants are checked over the whole parameter space: retry times
are strictly increasing, nothing is ever scheduled at or past the
deadline, and seeded jitter is reproducible.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.infra import RetryPolicy

MAX_WALK = 500

policies = st.builds(
    lambda initial, cap_factor, backoff, deadline, jitter: RetryPolicy(
        initial_timeout=initial,
        backoff=backoff,
        max_timeout=initial * cap_factor,
        deadline=deadline,
        jitter=jitter,
    ),
    initial=st.floats(min_value=1e-3, max_value=1.0),
    cap_factor=st.floats(min_value=1.0, max_value=32.0),
    backoff=st.floats(min_value=1.0, max_value=4.0),
    deadline=st.floats(min_value=1e-2, max_value=30.0),
    jitter=st.floats(min_value=0.0, max_value=0.95),
)

starts = st.floats(min_value=0.0, max_value=1e4)
seeds = st.integers(min_value=0, max_value=2**31)


def _walk(policy: RetryPolicy, start: float, seed: int | None = None):
    """Every retry time the schedule yields when each retry fires
    exactly when planned (the ARQ sender's usage pattern)."""
    schedule = policy.schedule(start, seed=seed)
    times, now = [], start
    while len(times) < MAX_WALK:
        retry_at = schedule.next_retry(now)
        if retry_at is None:
            break
        times.append(retry_at)
        now = retry_at
    return schedule, times


class TestScheduleProperties:
    @given(policy=policies, start=starts, seed=seeds)
    def test_retry_times_strictly_increase(self, policy, start, seed):
        _, times = _walk(policy, start, seed)
        assert all(later > earlier
                   for earlier, later in zip(times, times[1:]))
        assert all(t > start for t in times)

    @given(policy=policies, start=starts, seed=seeds)
    def test_never_at_or_past_deadline(self, policy, start, seed):
        schedule, times = _walk(policy, start, seed)
        assert schedule.deadline == start + policy.deadline
        assert all(t < schedule.deadline for t in times)
        assert schedule.retries_planned == len(times)

    @given(policy=policies, start=starts, seed=seeds,
           margin=st.floats(min_value=0.0, max_value=1.0))
    def test_margin_also_fits_before_deadline(self, policy, start, seed,
                                              margin):
        schedule = policy.schedule(start, seed=seed)
        now = start
        for _ in range(MAX_WALK):
            retry_at = schedule.next_retry(now, margin=margin)
            if retry_at is None:
                break
            assert retry_at + margin < schedule.deadline
            now = retry_at

    @given(policy=policies, start=starts, seed=seeds)
    def test_identical_seeds_identical_schedules(self, policy, start, seed):
        _, first = _walk(policy, start, seed)
        _, second = _walk(policy, start, seed)
        assert first == second

    @given(policy=policies, start=starts)
    def test_unseeded_jitter_defaults_deterministic(self, policy, start):
        """No seed at all still means a reproducible stream (seed 0)."""
        _, unseeded = _walk(policy, start, None)
        _, zero = _walk(policy, start, 0)
        assert unseeded == zero

    @given(policy=policies, start=starts, seed=seeds)
    def test_jitter_only_shrinks_delays(self, policy, start, seed):
        """Jitter decorrelates by shrinking waits, never stretching
        them: each jittered delay fits under the closed-form delay."""
        schedule = policy.schedule(start, seed=seed)
        now = start
        for attempt in range(MAX_WALK):
            retry_at = schedule.next_retry(now)
            if retry_at is None:
                break
            assert retry_at - now <= policy.delay(attempt) + 1e-12
            now = retry_at


class TestClosedForm:
    @given(policy=policies, start=starts)
    def test_walk_matches_delay_closed_form(self, policy, start):
        unjittered = RetryPolicy(policy.initial_timeout, policy.backoff,
                                 policy.max_timeout, policy.deadline)
        _, times = _walk(unjittered, start)
        expected = start
        for attempt, actual in enumerate(times):
            expected += unjittered.delay(attempt)
            assert actual == pytest.approx(expected)

    def test_delay_caps_at_max_timeout(self):
        policy = RetryPolicy(0.05, 2.0, 0.5, 2.0)
        assert [policy.delay(a) for a in range(6)] == [
            0.05, 0.1, 0.2, 0.4, 0.5, 0.5]
        with pytest.raises(ValueError):
            policy.delay(-1)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"initial_timeout": 0.0},
        {"initial_timeout": -0.1},
        {"backoff": 0.9},
        {"max_timeout": 0.01},
        {"deadline": 0.0},
        {"jitter": -0.1},
        {"jitter": 1.0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_arq_default_schedule_pinned(self):
        """The defaults are the ARQ wire schedule: retries at +0.05,
        +0.15, +0.35, +0.75, +1.25, +1.75, expiry at +2.0."""
        _, times = _walk(RetryPolicy(), 10.0)
        assert times == pytest.approx(
            [10.05, 10.15, 10.35, 10.75, 11.25, 11.75])
