"""Tests for the TTL/LRU spectra cache and its content fingerprint."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.infra import SpectraCache, spectrum_fingerprint


def _window(samples, sample_rate=44100):
    return SimpleNamespace(samples=np.asarray(samples, dtype=np.float64),
                           sample_rate=sample_rate)


_ANALYZER = SimpleNamespace(window="hann", zero_pad_factor=2)


class TestSpectraCache:
    def test_put_then_get_hits(self):
        cache = SpectraCache(capacity=4, ttl=1.0)
        cache.put(("k",), "spectrum", now=0.0)
        assert cache.get(("k",), now=0.5) == "spectrum"
        assert cache.hits == 1 and cache.misses == 0
        assert cache.hit_rate == 1.0

    def test_ttl_expires_entries(self):
        cache = SpectraCache(capacity=4, ttl=1.0)
        cache.put(("k",), "spectrum", now=0.0)
        assert cache.get(("k",), now=1.0) == "spectrum"  # inclusive edge
        assert cache.get(("k",), now=1.01) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_lru_evicts_oldest_unused(self):
        cache = SpectraCache(capacity=2, ttl=10.0)
        cache.put(("a",), 1, now=0.0)
        cache.put(("b",), 2, now=0.1)
        assert cache.get(("a",), now=0.2) == 1  # refresh "a"
        cache.put(("c",), 3, now=0.3)           # evicts "b", not "a"
        assert cache.evictions == 1
        assert cache.get(("a",), now=0.4) == 1
        assert cache.get(("b",), now=0.4) is None
        assert cache.get(("c",), now=0.4) == 3

    def test_reput_refreshes_age_without_growth(self):
        cache = SpectraCache(capacity=2, ttl=1.0)
        cache.put(("k",), "old", now=0.0)
        cache.put(("k",), "new", now=0.9)
        assert len(cache) == 1
        assert cache.get(("k",), now=1.5) == "new"

    def test_clear_and_hit_rate(self):
        cache = SpectraCache(capacity=2, ttl=1.0)
        assert cache.hit_rate == 0.0
        cache.put(("k",), 1, now=0.0)
        cache.get(("k",), now=0.0)
        cache.get(("other",), now=0.0)
        assert cache.hit_rate == 0.5
        cache.clear()
        assert len(cache) == 0

    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0},
        {"ttl": 0.0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SpectraCache(**kwargs)


class TestFingerprint:
    def test_identical_captures_share_a_key(self):
        samples = np.sin(np.linspace(0.0, 20.0, 4410))
        first = spectrum_fingerprint(_window(samples), 1.5, _ANALYZER)
        second = spectrum_fingerprint(_window(samples.copy()), 1.5,
                                      _ANALYZER)
        assert first == second
        assert hash(first) == hash(second)

    def test_distinct_times_never_collide(self):
        samples = np.zeros(4410)
        one = spectrum_fingerprint(_window(samples), 0.1, _ANALYZER)
        two = spectrum_fingerprint(_window(samples), 0.2, _ANALYZER)
        assert one != two

    def test_different_audio_differs(self):
        base = np.sin(np.linspace(0.0, 20.0, 4410))
        changed = base.copy()
        changed[7] += 1e-3  # off-stride sample: caught by the sum term
        assert spectrum_fingerprint(_window(base), 0.0, _ANALYZER) != \
            spectrum_fingerprint(_window(changed), 0.0, _ANALYZER)

    def test_analyzer_parameters_differ(self):
        samples = np.zeros(128)
        other = SimpleNamespace(window="hann", zero_pad_factor=4)
        assert spectrum_fingerprint(_window(samples), 0.0, _ANALYZER) != \
            spectrum_fingerprint(_window(samples), 0.0, other)

    def test_empty_window_is_fingerprintable(self):
        key = spectrum_fingerprint(_window([]), 0.0, _ANALYZER)
        assert key[-1] == 0.0
