"""State-machine tests for the per-link circuit breaker."""

import pytest

from repro.infra import BreakerState, CircuitBreaker, RetryPolicy


def _trip(breaker: CircuitBreaker, now: float) -> None:
    for _ in range(breaker.failure_threshold):
        breaker.record_failure(now)


class TestLifecycle:
    def test_full_cycle_closed_open_half_open_closed(self):
        breaker = CircuitBreaker("s1", failure_threshold=3,
                                 recovery_timeout=1.0)
        assert breaker.state is BreakerState.CLOSED

        breaker.record_failure(1.0)
        breaker.record_failure(1.1)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(1.15)
        breaker.record_failure(1.2)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 1.2

        # OPEN: fast-fail until the cooldown elapses.
        assert not breaker.allow(1.5)
        assert not breaker.allow(2.1)
        assert breaker.fast_fails == 2

        # Cooldown over: the next attempt is the half-open probe.
        assert breaker.allow(2.3)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(2.35)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

        states = [(t.previous, t.state) for t in breaker.transitions]
        assert states == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_timeout=1.0)
        _trip(breaker, 0.0)
        assert breaker.allow(1.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure(1.05)
        assert breaker.state is BreakerState.OPEN
        # The re-trip restarted a cooldown; attempts fast-fail again.
        assert not breaker.allow(1.5)

    def test_probe_limit_in_half_open(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_timeout=1.0,
                                 half_open_probes=1)
        _trip(breaker, 0.0)
        assert breaker.allow(1.0)       # the probe
        assert not breaker.allow(1.1)   # second attempt: fast-fail
        assert breaker.fast_fails == 1
        breaker.record_success(1.2)
        assert breaker.state is BreakerState.CLOSED

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0.1)
        breaker.record_failure(0.2)
        breaker.record_success(0.3)
        breaker.record_failure(0.4)
        breaker.record_failure(0.5)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.6)
        assert breaker.state is BreakerState.OPEN


class TestRecoveryEscalation:
    def test_retrip_cooldowns_walk_the_recovery_policy(self):
        """Consecutive re-trips against a still-dead link back off
        exponentially (1 s, 2 s, 4 s ... capped at 8x), so a wedged
        link is probed ever more lazily."""
        breaker = CircuitBreaker(failure_threshold=1, recovery_timeout=1.0)
        now = 0.0
        observed = []
        for _ in range(5):
            breaker.record_failure(now)
            assert breaker.state is BreakerState.OPEN
            reopen_at = breaker._reopen_at
            observed.append(reopen_at - now)
            assert not breaker.allow((now + reopen_at) / 2)
            assert breaker.allow(reopen_at)  # probe
            now = reopen_at + 0.01
        assert observed == pytest.approx([1.0, 2.0, 4.0, 8.0, 8.0])

    def test_recovery_resets_the_escalation(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_timeout=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.0)          # re-trip: cooldown now 2 s
        assert breaker.allow(3.0)
        breaker.record_success(3.1)          # recovered: schedule resets
        breaker.record_failure(5.0)
        assert breaker._reopen_at - 5.0 == pytest.approx(1.0)

    def test_custom_recovery_policy(self):
        policy = RetryPolicy(initial_timeout=0.5, backoff=3.0,
                             max_timeout=4.5, deadline=float("inf"))
        breaker = CircuitBreaker(failure_threshold=1,
                                 recovery_policy=policy)
        breaker.record_failure(0.0)
        assert not breaker.allow(0.4)
        assert breaker.allow(0.5)
        breaker.record_failure(0.5)
        assert breaker._reopen_at - 0.5 == pytest.approx(1.5)


class TestListeners:
    def test_transitions_are_delivered(self):
        breaker = CircuitBreaker("s7", failure_threshold=1)
        seen = []
        breaker.on_transition(seen.append)
        breaker.record_failure(2.0)
        assert len(seen) == 1
        assert seen[0].name == "s7"
        assert seen[0].time == 2.0
        assert seen[0].state is BreakerState.OPEN
        assert seen[0].consecutive_failures == 1


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"recovery_timeout": 0.0},
        {"half_open_probes": 0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
