"""Tests for WAV import/export."""

import numpy as np
import pytest

from repro.audio import (
    AudioSignal,
    SpectrumAnalyzer,
    read_wav,
    sine_tone,
    write_wav,
)


class TestWrite:
    def test_roundtrip_preserves_waveform(self, tmp_path):
        tone = sine_tone(1000, 0.2, level_db=70.0)
        path = write_wav(tone, tmp_path / "tone.wav")
        loaded = read_wav(path)
        assert loaded.sample_rate == tone.sample_rate
        assert len(loaded) == len(tone)
        # Normalized on write: compare shapes via correlation.
        a = tone.samples / np.max(np.abs(tone.samples))
        b = loaded.samples / np.max(np.abs(loaded.samples))
        correlation = float(np.dot(a, b) / (np.linalg.norm(a)
                                            * np.linalg.norm(b)))
        assert correlation > 0.999

    def test_spectrum_survives_roundtrip(self, tmp_path):
        """The figure-of-merit: a tone written and re-read is still
        detected at its frequency."""
        tone = sine_tone(1234, 0.2, level_db=70.0)
        loaded = read_wav(write_wav(tone, tmp_path / "t.wav"))
        analyzer = SpectrumAnalyzer(zero_pad_factor=2)
        peaks = analyzer.find_peaks(analyzer.analyze(loaded), 20.0)
        assert peaks[0].frequency == pytest.approx(1234, abs=2.0)

    def test_empty_signal_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_wav(AudioSignal(np.zeros(0)), tmp_path / "x.wav")

    def test_bad_peak_fraction(self, tmp_path):
        tone = sine_tone(440, 0.05)
        with pytest.raises(ValueError):
            write_wav(tone, tmp_path / "x.wav", peak_fraction=0.0)

    def test_unnormalized_clips(self, tmp_path):
        loud = AudioSignal(np.full(100, 5.0))
        loaded = read_wav(write_wav(loud, tmp_path / "c.wav",
                                    normalize=False))
        assert np.max(loaded.samples) == pytest.approx(1.0, abs=0.01)

    def test_sample_rate_preserved(self, tmp_path):
        tone = sine_tone(440, 0.05, sample_rate=44_100)
        loaded = read_wav(write_wav(tone, tmp_path / "sr.wav"))
        assert loaded.sample_rate == 44_100


class TestRead:
    def test_stereo_takes_first_channel(self, tmp_path):
        import wave

        path = tmp_path / "stereo.wav"
        left = (np.sin(np.linspace(0, 40 * np.pi, 800)) * 30000).astype("<i2")
        right = np.zeros(800, dtype="<i2")
        interleaved = np.empty(1600, dtype="<i2")
        interleaved[0::2] = left
        interleaved[1::2] = right
        with wave.open(str(path), "wb") as handle:
            handle.setnchannels(2)
            handle.setsampwidth(2)
            handle.setframerate(16000)
            handle.writeframes(interleaved.tobytes())
        loaded = read_wav(path)
        assert len(loaded) == 800
        assert loaded.rms() > 0.1  # got the non-silent channel

    def test_unsupported_width_rejected(self, tmp_path):
        import wave

        path = tmp_path / "w24.wav"
        with wave.open(str(path), "wb") as handle:
            handle.setnchannels(1)
            handle.setsampwidth(3)
            handle.setframerate(16000)
            handle.writeframes(b"\x00" * 300)
        with pytest.raises(ValueError, match="width"):
            read_wav(path)

    def test_experiment_audio_is_exportable(self, tmp_path):
        """End to end: record the port-knocking air and write it out —
        the file a human could actually listen to."""
        from repro.experiments import build_testbed
        from repro.audio import ToneSpec

        testbed = build_testbed("single")
        testbed.agents["s1"].play(520.0, 0.2, 70.0)
        capture = testbed.controller.microphone.record(
            testbed.channel, 0.0, 0.5
        )
        path = write_wav(capture, tmp_path / "knock.wav")
        assert path.stat().st_size > 1000
