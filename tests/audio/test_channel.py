"""Unit tests for acoustic propagation and channel rendering."""

import numpy as np
import pytest

from repro.audio import (
    SPEED_OF_SOUND,
    AcousticChannel,
    AudioSignal,
    Position,
    SpectrumAnalyzer,
    ToneSpec,
    propagation_loss_db,
    white_noise,
)


class TestPosition:
    def test_distance(self):
        assert Position(3, 4, 0).distance_to(Position()) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Position(1, 2, 3), Position(-1, 0, 5)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))


class TestPropagationLoss:
    def test_reference_distance_is_zero_loss(self):
        assert propagation_loss_db(1.0) == pytest.approx(0.0)

    def test_inverse_square_slope(self):
        assert propagation_loss_db(2.0) == pytest.approx(6.02, abs=0.1)
        assert propagation_loss_db(10.0) == pytest.approx(20.0, abs=0.1)

    def test_close_range_clamped(self):
        """Inside 1 m there is no gain (loss floors at 0)."""
        assert propagation_loss_db(0.01) == 0.0


class TestScheduling:
    def test_rejects_negative_start(self, channel):
        with pytest.raises(ValueError):
            channel.play_tone(-1.0, ToneSpec(440, 0.1))

    def test_rejects_above_nyquist(self, channel):
        with pytest.raises(ValueError, match="Nyquist"):
            channel.play_tone(0.0, ToneSpec(9000, 0.1))

    def test_scheduled_tones_tracked(self, channel):
        channel.play_tone(1.0, ToneSpec(440, 0.1))
        channel.play_tone(2.0, ToneSpec(880, 0.1))
        assert len(channel.scheduled_tones) == 2

    def test_clear(self, channel, rng):
        channel.play_tone(0.0, ToneSpec(440, 0.1))
        channel.add_noise(white_noise(0.5, rng=rng))
        channel.clear()
        assert len(channel.scheduled_tones) == 0
        silence = channel.render_at(Position(), 0.0, 0.1)
        assert silence.rms() == 0.0

    def test_noise_rate_mismatch_rejected(self, channel):
        wrong_rate = AudioSignal(np.zeros(100), sample_rate=8000)
        with pytest.raises(ValueError):
            channel.add_noise(wrong_rate)

    def test_empty_noise_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.add_noise(AudioSignal(np.zeros(0)))


class TestRendering:
    def test_tone_level_at_one_meter(self, channel, analyzer):
        channel.play_tone(0.0, ToneSpec(1000, 0.5, 70.0), Position(1, 0, 0))
        capture = channel.render_at(Position(), 0.1, 0.4)
        spectrum = analyzer.analyze(capture)
        assert spectrum.level_at(1000) == pytest.approx(70.0, abs=0.5)

    def test_distance_attenuation(self, channel, analyzer):
        channel.play_tone(0.0, ToneSpec(1000, 0.5, 70.0), Position(10, 0, 0))
        capture = channel.render_at(Position(), 0.1, 0.4)
        spectrum = analyzer.analyze(capture)
        assert spectrum.level_at(1000) == pytest.approx(50.0, abs=0.5)

    def test_silence_outside_tone_span(self, channel):
        channel.play_tone(1.0, ToneSpec(1000, 0.2, 70.0))
        before = channel.render_at(Position(), 0.0, 0.5)
        after = channel.render_at(Position(), 2.0, 2.5)
        assert before.rms() == 0.0
        assert after.rms() == 0.0

    def test_propagation_delay(self):
        """A tone 34.3 m away arrives ~100 ms late."""
        channel = AcousticChannel(enable_propagation_delay=True)
        distance = SPEED_OF_SOUND / 10.0
        channel.play_tone(0.0, ToneSpec(1000, 0.05, 80.0),
                          Position(distance, 0, 0))
        prompt = channel.render_at(Position(), 0.0, 0.05)
        delayed = channel.render_at(Position(), 0.1, 0.15)
        assert prompt.rms() == 0.0
        assert delayed.rms() > 0.0

    def test_delay_disabled(self):
        channel = AcousticChannel(enable_propagation_delay=False)
        channel.play_tone(0.0, ToneSpec(1000, 0.05, 80.0),
                          Position(34.3, 0, 0))
        prompt = channel.render_at(Position(), 0.0, 0.05)
        assert prompt.rms() > 0.0

    def test_windows_seam_exactly(self, channel):
        """Rendering [0, 1) in one window equals two half windows —
        the phase-continuity invariant that lets the controller poll."""
        channel.play_tone(0.1, ToneSpec(777, 0.6, 70.0), Position(0.5, 0, 0))
        whole = channel.render_at(Position(), 0.0, 1.0)
        first = channel.render_at(Position(), 0.0, 0.5)
        second = channel.render_at(Position(), 0.5, 1.0)
        stitched = np.concatenate([first.samples, second.samples])
        np.testing.assert_allclose(whole.samples, stitched, atol=1e-12)

    def test_multiple_emitters_superpose(self, channel, analyzer):
        channel.play_tone(0.0, ToneSpec(800, 0.5, 65.0), Position(1, 0, 0))
        channel.play_tone(0.0, ToneSpec(2400, 0.5, 65.0), Position(0, 1, 0))
        capture = channel.render_at(Position(), 0.1, 0.4)
        spectrum = analyzer.analyze(capture)
        assert spectrum.level_at(800) == pytest.approx(65.0, abs=1.0)
        assert spectrum.level_at(2400) == pytest.approx(65.0, abs=1.0)

    def test_rejects_reversed_window(self, channel):
        with pytest.raises(ValueError):
            channel.render_at(Position(), 1.0, 0.5)

    def test_empty_window(self, channel):
        capture = channel.render_at(Position(), 1.0, 1.0)
        assert len(capture) == 0


class TestNoiseBeds:
    def test_looping_noise_covers_any_window(self, channel, rng):
        channel.add_noise(white_noise(0.5, level_db=50.0, rng=rng), loop=True)
        far_window = channel.render_at(Position(), 100.0, 100.2)
        assert far_window.level_db() == pytest.approx(50.0, abs=1.0)

    def test_non_looping_noise_ends(self, channel, rng):
        channel.add_noise(white_noise(0.5, level_db=50.0, rng=rng), loop=False)
        inside = channel.render_at(Position(), 0.0, 0.3)
        outside = channel.render_at(Position(), 1.0, 1.3)
        assert inside.rms() > 0
        assert outside.rms() == 0.0

    def test_noise_attenuates_with_distance(self, channel, rng):
        channel.add_noise(
            white_noise(0.5, level_db=60.0, rng=rng), Position(10, 0, 0)
        )
        capture = channel.render_at(Position(), 0.0, 0.4)
        assert capture.level_db() == pytest.approx(40.0, abs=1.0)


class TestPruning:
    def test_prune_drops_old_tones(self, channel):
        channel.play_tone(0.0, ToneSpec(1000, 0.1, 70.0))
        channel.play_tone(5.0, ToneSpec(1100, 0.1, 70.0))
        dropped = channel.prune(before=3.0, margin=1.0)
        assert dropped == 1
        remaining = [tone.spec.frequency for tone in channel.scheduled_tones]
        assert remaining == [1100]

    def test_prune_respects_margin(self, channel):
        channel.play_tone(0.0, ToneSpec(1000, 0.1, 70.0))
        assert channel.prune(before=0.5, margin=1.0) == 0
        assert channel.prune(before=2.0, margin=1.0) == 1

    def test_recent_audio_unaffected(self, channel, analyzer):
        channel.play_tone(0.0, ToneSpec(900, 0.1, 70.0))
        channel.play_tone(10.0, ToneSpec(1200, 0.3, 70.0))
        channel.prune(before=10.0)
        capture = channel.render_at(Position(), 10.05, 10.25)
        assert analyzer.analyze(capture).level_at(1200) > 60.0

    def test_prune_cutoff_includes_propagation_allowance(self):
        """Even without echo taps the keep-cutoff backs off by the
        room-scale propagation allowance, so a distant tone still in
        flight cannot be pruned mid-air."""
        from repro.audio.channel import PRUNE_PROPAGATION_ALLOWANCE

        channel = AcousticChannel()
        channel.play_tone(0.0, ToneSpec(1000, 0.1, 70.0))
        boundary = 0.1 + 1.0 + PRUNE_PROPAGATION_ALLOWANCE
        assert channel.prune(before=boundary - 0.01, margin=1.0) == 0
        assert channel.prune(before=boundary + 0.01, margin=1.0) == 1

    def test_prune_keeps_tone_with_live_echo(self):
        """Echo taps extend audibility past end_time; prune must not
        silence an echo that a capture still overlaps."""
        channel = AcousticChannel(echo_taps=((0.08, 6.0),))
        channel.play_tone(0.0, ToneSpec(1000, 0.1, 70.0),
                          Position(0.5, 0, 0))
        tail_before = channel.render_at(Position(), 0.15, 0.19)
        assert tail_before.rms() > 0.0
        assert channel.prune(before=0.15, margin=0.0) == 0
        tail_after = channel.render_at(Position(), 0.15, 0.19)
        np.testing.assert_array_equal(tail_before.samples,
                                      tail_after.samples)

    def test_long_run_stays_bounded(self):
        """A controller running for a long stretch keeps the channel's
        tone list bounded via its periodic prune."""
        from repro.core import MDNController
        from repro.core.agent import MusicAgent
        from repro.audio import Microphone, Speaker
        from repro.net import Simulator

        sim = Simulator()
        channel = AcousticChannel()
        agent = MusicAgent(sim, channel, Speaker(Position(0.5, 0, 0)))
        controller = MDNController(sim, channel, Microphone(Position()),
                                   listen_interval=0.1, prune_every=50,
                                   prune_margin=2.0)
        controller.watch([1000.0], on_detection=lambda e: None)
        controller.start()
        sim.every(0.2, lambda: agent.play(1000.0, 0.05, 65.0))
        sim.run(60.0)  # 300 tones emitted over the run
        assert len(channel.scheduled_tones) < 40
