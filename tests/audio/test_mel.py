"""Unit tests for mel-scale analysis."""

import numpy as np
import pytest

from repro.audio import (
    AudioSignal,
    chirp,
    dominant_mel_track,
    hz_to_mel,
    mel_filterbank,
    mel_spectrogram,
    mel_to_hz,
    sine_tone,
)


class TestMelConversion:
    def test_known_point(self):
        # 1000 Hz is ~999.99 mel in the HTK formula (near-identity there).
        assert hz_to_mel(1000.0) == pytest.approx(999.99, abs=0.1)

    def test_roundtrip(self):
        for freq in (50.0, 440.0, 1000.0, 4000.0, 8000.0):
            assert mel_to_hz(hz_to_mel(freq)) == pytest.approx(freq, rel=1e-9)

    def test_monotonic(self):
        freqs = np.linspace(10, 8000, 100)
        mels = hz_to_mel(freqs)
        assert np.all(np.diff(mels) > 0)

    def test_compresses_high_frequencies(self):
        """Equal Hz steps shrink in mel at high frequency — the 'log
        line' effect on the port scan spectrogram."""
        low_step = hz_to_mel(600.0) - hz_to_mel(500.0)
        high_step = hz_to_mel(4100.0) - hz_to_mel(4000.0)
        assert high_step < low_step


class TestFilterbank:
    def test_shape(self):
        freqs = np.linspace(0, 8000, 257)
        bank = mel_filterbank(40, freqs)
        assert bank.shape == (40, 257)

    def test_nonnegative_and_bounded(self):
        freqs = np.linspace(0, 8000, 257)
        bank = mel_filterbank(40, freqs)
        assert np.all(bank >= 0)
        assert np.all(bank <= 1.0 + 1e-9)

    def test_every_filter_has_support(self):
        freqs = np.linspace(0, 8000, 513)
        bank = mel_filterbank(30, freqs)
        assert np.all(bank.sum(axis=1) > 0)

    def test_validation(self):
        freqs = np.linspace(0, 8000, 100)
        with pytest.raises(ValueError):
            mel_filterbank(0, freqs)
        with pytest.raises(ValueError):
            mel_filterbank(10, freqs, low_hz=5000, high_hz=1000)

    def test_empty_frequencies(self):
        bank = mel_filterbank(10, np.zeros(0))
        assert bank.shape == (10, 0)


class TestMelSpectrogram:
    def test_shapes(self):
        tone = sine_tone(1000, 1.0)
        times, centers, mags = mel_spectrogram(tone, num_filters=32,
                                               frame_duration=0.1)
        assert len(times) == 10
        assert len(centers) == 32
        assert mags.shape == (10, 32)

    def test_tone_lights_correct_band(self):
        tone = sine_tone(2000, 0.5, level_db=70.0)
        times, centers, mags = mel_spectrogram(tone, num_filters=64,
                                               frame_duration=0.1)
        strongest = centers[np.argmax(mags[2])]
        assert strongest == pytest.approx(2000, rel=0.1)

    def test_empty_signal(self):
        times, centers, mags = mel_spectrogram(AudioSignal(np.zeros(0)))
        assert len(times) == 0

    def test_short_signal_shapes_are_consistent(self):
        """A signal shorter than one frame flows through without
        crashing and keeps the band axis: centres ``(M,)``, mags
        ``(0, M)`` (regression for the empty-spectrogram shape bug)."""
        short = sine_tone(1000, 0.01)
        times, centers, mags = mel_spectrogram(
            short, num_filters=32, frame_duration=0.05
        )
        assert len(times) == 0
        assert len(centers) == 32
        assert np.all(np.diff(centers) > 0)
        assert mags.shape == (0, 32)

    def test_empty_signal_shapes_are_consistent(self):
        times, centers, mags = mel_spectrogram(
            AudioSignal(np.zeros(0)), num_filters=16
        )
        assert len(times) == 0
        assert len(centers) == 16
        assert mags.shape == (0, 16)


class TestDominantTrack:
    def test_chirp_track_is_monotonic(self):
        sweep = chirp(500, 4000, 2.0, level_db=70.0)
        times, centers, mags = mel_spectrogram(sweep, num_filters=64,
                                               frame_duration=0.1)
        track = dominant_mel_track(times, centers, mags)
        # Allow equal neighbours (band quantization) but require overall rise.
        assert np.all(np.diff(track) >= -1e-9)
        assert track[-1] > track[0] * 3

    def test_empty(self):
        assert len(dominant_mel_track(np.zeros(0), np.zeros(0),
                                      np.zeros((0, 0)))) == 0
