"""Tests for acoustic multipath (echo taps) and detector robustness."""

import pytest

from repro.audio import (
    AcousticChannel,
    FrequencyDetector,
    Microphone,
    Position,
    Speaker,
    SpectrumAnalyzer,
    ToneSpec,
)


def echoey_channel(taps=((0.013, 9.0), (0.031, 14.0))):
    """A room with two early reflections (4.5 m and 10.6 m extra path)."""
    return AcousticChannel(echo_taps=taps)


class TestValidation:
    def test_rejects_nonpositive_delay(self):
        with pytest.raises(ValueError):
            AcousticChannel(echo_taps=((0.0, 6.0),))

    def test_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            AcousticChannel(echo_taps=((0.01, -3.0),))


class TestEchoRendering:
    def test_echo_extends_the_tail(self):
        """After the direct tone ends, the echo is still sounding."""
        channel = echoey_channel(taps=((0.05, 6.0),))
        Speaker(Position(0.5, 0, 0)).play(channel, 0.0,
                                          ToneSpec(1000, 0.1, 70.0))
        direct_end = 0.1 + 0.5 / 343.0
        tail = channel.render_at(Position(), direct_end + 0.01,
                                 direct_end + 0.04)
        assert tail.rms() > 0.0

    def test_echo_is_quieter(self):
        channel = echoey_channel(taps=((0.05, 12.0),))
        Speaker(Position(0.5, 0, 0)).play(channel, 0.0,
                                          ToneSpec(1000, 0.04, 70.0))
        analyzer = SpectrumAnalyzer()
        direct = analyzer.analyze(
            channel.render_at(Position(), 0.0, 0.045)
        ).level_at(1000)
        echo = analyzer.analyze(
            channel.render_at(Position(), 0.05, 0.095)
        ).level_at(1000)
        assert direct - echo == pytest.approx(12.0, abs=1.5)

    def test_no_taps_no_tail(self):
        channel = AcousticChannel()
        Speaker(Position(0.5, 0, 0)).play(channel, 0.0,
                                          ToneSpec(1000, 0.1, 70.0))
        tail = channel.render_at(Position(), 0.2, 0.3)
        assert tail.rms() == 0.0


class TestDetectionUnderMultipath:
    def test_tone_still_detected(self):
        channel = echoey_channel()
        Speaker(Position(0.6, 0, 0)).play(channel, 0.1,
                                          ToneSpec(1500, 0.2, 70.0))
        window = Microphone(Position(), seed=3).record(channel, 0.12, 0.3)
        detector = FrequencyDetector([1500.0])
        events = detector.detect(window)
        assert [event.frequency for event in events] == [1500.0]

    def test_no_phantom_frequencies(self):
        """Echoes are copies at the SAME frequency; the watched
        neighbours must stay silent."""
        channel = echoey_channel()
        Speaker(Position(0.6, 0, 0)).play(channel, 0.1,
                                          ToneSpec(1500, 0.2, 70.0))
        window = Microphone(Position(), seed=3).record(channel, 0.12, 0.3)
        detector = FrequencyDetector([1460.0, 1480.0, 1500.0, 1520.0, 1540.0])
        events = detector.detect(window)
        assert [event.frequency for event in events] == [1500.0]

    def test_knock_sequence_survives_echo(self):
        """Echoes smear tones toward the *next* listening window; the
        onset logic must not double-count a knock."""
        from repro.core import MDNController

        from repro.net import Simulator

        sim = Simulator()
        channel = echoey_channel(taps=((0.08, 8.0),))
        from repro.core.agent import MusicAgent
        agent = MusicAgent(sim, channel, Speaker(Position(0.6, 0, 0)))
        controller = MDNController(sim, channel,
                                   Microphone(Position(), seed=7),
                                   listen_interval=0.1)
        onsets = []
        controller.watch([2000.0], on_onset=onsets.append)
        controller.start()
        sim.schedule_at(0.52, lambda: agent.play(2000.0, 0.12, 70.0))
        sim.run(2.0)
        assert len(onsets) == 1
