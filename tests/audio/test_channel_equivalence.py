"""Equivalence suite: vectorized channel rendering vs the scalar loop.

``AcousticChannel.render_at`` (interval index + batched synthesis +
window memo) must reproduce ``render_at_reference`` (the original
per-tone scalar loop) within 1e-9 — the same contract the listening
side's vectorized paths honour (DESIGN.md §5) — across window seams,
echo taps, partial overlaps, pruned histories, and loop/non-loop noise
beds.  In practice the two paths are bit-identical: they evaluate the
same IEEE operations per sample, in the same accumulation order.
"""

import numpy as np
import pytest

from repro.audio import (
    AcousticChannel,
    Microphone,
    Position,
    ToneSpec,
    white_noise,
)

TOLERANCE = 1e-9

LISTENER = Position(0.3, 0.1, 0.0)


def _assert_paths_match(channel, listener, start, end):
    fast = channel.render_at(listener, start, end)
    reference = channel.render_at_reference(listener, start, end)
    assert len(fast) == len(reference)
    np.testing.assert_allclose(
        fast.samples, reference.samples, atol=TOLERANCE
    )
    return fast


def busy_channel(echo_taps=(), enable_propagation_delay=True, seed=7):
    """Dozens of overlapping tones at staggered offsets and distances."""
    rng = np.random.default_rng(seed)
    channel = AcousticChannel(
        enable_propagation_delay=enable_propagation_delay,
        echo_taps=echo_taps,
    )
    for index in range(30):
        channel.play_tone(
            float(rng.uniform(0.0, 1.5)),
            ToneSpec(
                300.0 + 37.0 * index,
                float(rng.uniform(0.03, 0.4)),
                float(rng.uniform(55.0, 70.0)),
            ),
            Position(
                float(rng.uniform(0.2, 8.0)),
                float(rng.uniform(-3.0, 3.0)),
                0.0,
            ),
        )
    return channel


class TestToneEquivalence:
    @pytest.mark.parametrize(("start", "end"), [
        (0.0, 0.1),      # window opens with the first arrivals
        (0.45, 0.55),    # mid-history
        (0.0, 2.2),      # the whole timeline in one window
        (1.93, 2.08),    # tail: mostly-ended tones, partial overlaps
        (3.0, 3.1),      # silence after every tone ended
        (0.5, 0.5),      # empty window
    ])
    def test_windows_match_reference(self, start, end):
        _assert_paths_match(busy_channel(), LISTENER, start, end)

    def test_with_echo_taps(self):
        channel = busy_channel(echo_taps=((0.013, 9.0), (0.031, 14.0)))
        for start, end in [(0.0, 0.1), (0.7, 0.85), (1.9, 2.3)]:
            _assert_paths_match(channel, LISTENER, start, end)

    def test_without_propagation_delay(self):
        channel = busy_channel(enable_propagation_delay=False)
        _assert_paths_match(channel, LISTENER, 0.2, 0.5)

    def test_colocated_emitter_and_listener(self):
        channel = AcousticChannel()
        channel.play_tone(0.0, ToneSpec(440.0, 0.2, 65.0), Position())
        _assert_paths_match(channel, Position(), 0.0, 0.25)

    def test_distant_emitter_long_flight(self):
        """A tone half a simulated football pitch away arrives late;
        the interval index must not drop it while it is in flight."""
        channel = AcousticChannel()
        channel.play_tone(0.0, ToneSpec(700.0, 0.1, 80.0),
                          Position(50.0, 0.0, 0.0))
        flight = 50.0 / 343.0
        window = _assert_paths_match(
            channel, Position(), flight, flight + 0.1
        )
        assert window.rms() > 0.0

    def test_out_of_order_scheduling(self):
        """Tones scheduled in arbitrary time order render identically
        (the index sorts; the reference iterates insertion order)."""
        channel = AcousticChannel()
        for start in [1.0, 0.1, 0.55, 0.2, 0.9, 0.0]:
            channel.play_tone(start, ToneSpec(500.0 + 400.0 * start, 0.3, 65.0),
                              Position(0.5 + start, 0.0, 0.0))
        for window in [(0.0, 0.4), (0.3, 0.8), (0.9, 1.5)]:
            _assert_paths_match(channel, LISTENER, *window)


class TestSeams:
    def test_consecutive_windows_concatenate_bit_identically(self):
        """Polling [0, 2) as twenty 100 ms windows must equal the one
        long render bit-for-bit — the invariant that lets a controller
        poll instead of rendering whole experiments."""
        channel = busy_channel(echo_taps=((0.013, 9.0),))
        rng = np.random.default_rng(11)
        channel.add_noise(white_noise(0.7, 48.0, rng=rng),
                          Position(2.0, 1.0, 0.0), loop=True)
        channel.add_noise(white_noise(0.9, 52.0, rng=rng),
                          Position(1.0, -1.0, 0.0), loop=False)
        whole = channel.render_at(LISTENER, 0.0, 2.0)
        stitched = np.concatenate([
            channel.render_at(LISTENER, tick * 0.1, (tick + 1) * 0.1).samples
            for tick in range(20)
        ])
        np.testing.assert_array_equal(whole.samples, stitched)

    def test_seams_with_odd_window_lengths(self):
        channel = busy_channel()
        whole = channel.render_at(LISTENER, 0.0, 0.3)
        parts = np.concatenate([
            channel.render_at(LISTENER, 0.0, 0.13).samples,
            channel.render_at(LISTENER, 0.13, 0.3).samples,
        ])
        np.testing.assert_array_equal(whole.samples, parts)


class TestNoiseBedEquivalence:
    @pytest.mark.parametrize("loop", [True, False])
    def test_beds_match_reference(self, loop, rng):
        channel = AcousticChannel()
        channel.add_noise(white_noise(0.5, 55.0, rng=rng),
                          Position(3.0, 0.0, 0.0), loop=loop)
        for window in [(0.0, 0.1), (0.3, 0.6), (0.8, 1.0)]:
            _assert_paths_match(channel, Position(), *window)

    def test_non_loop_bed_respects_propagation_delay(self, rng):
        """A one-shot bed 34.3 m away must arrive ~100 ms late, like a
        tone from the same rack would."""
        channel = AcousticChannel()
        channel.add_noise(white_noise(0.2, 60.0, rng=rng),
                          Position(34.3, 0.0, 0.0), loop=False)
        prompt = _assert_paths_match(channel, Position(), 0.0, 0.09)
        delayed = _assert_paths_match(channel, Position(), 0.1, 0.2)
        assert prompt.rms() == 0.0
        assert delayed.rms() > 0.0

    def test_non_loop_bed_delay_disabled(self, rng):
        channel = AcousticChannel(enable_propagation_delay=False)
        channel.add_noise(white_noise(0.2, 60.0, rng=rng),
                          Position(34.3, 0.0, 0.0), loop=False)
        prompt = _assert_paths_match(channel, Position(), 0.0, 0.09)
        assert prompt.rms() > 0.0

    def test_loop_bed_keeps_phase_free_approximation(self, rng):
        """Looping ambience is diffuse: it ignores propagation delay
        (the documented asymmetry), so a distant looping bed is only
        attenuated, never shifted."""
        bed = white_noise(0.5, 60.0, rng=rng)
        near = AcousticChannel()
        near.add_noise(bed, Position(1.0, 0.0, 0.0), loop=True)
        far = AcousticChannel()
        far.add_noise(bed, Position(10.0, 0.0, 0.0), loop=True)
        near_window = near.render_at(Position(), 0.0, 0.2)
        far_window = far.render_at(Position(), 0.0, 0.2)
        gain = 10.0 ** (-20.0 / 20.0)  # 10 m vs 1 m: exactly -20 dB
        np.testing.assert_allclose(
            far_window.samples, near_window.samples * gain, atol=TOLERANCE
        )


class TestPruneEquivalence:
    def test_pruned_history_renders_identically(self):
        """Prune drops only tones that cannot reach any window at or
        after the cutoff, so fast and reference stay equal after it."""
        channel = busy_channel(echo_taps=((0.05, 6.0),))
        reference_before = channel.render_at_reference(LISTENER, 2.5, 2.7)
        channel.prune(before=2.5, margin=0.1)
        window = _assert_paths_match(channel, LISTENER, 2.5, 2.7)
        np.testing.assert_allclose(
            window.samples, reference_before.samples, atol=TOLERANCE
        )

    def test_prune_keeps_audible_echo_tail(self):
        """A tone whose *emission* ended before the cutoff but whose
        echo is still ringing must survive the prune (the old
        end-time-only rule dropped it and the echo vanished)."""
        channel = AcousticChannel(echo_taps=((0.08, 6.0),))
        channel.play_tone(0.0, ToneSpec(1000.0, 0.1, 70.0),
                          Position(0.5, 0.0, 0.0))
        echo_window = (0.15, 0.19)   # only the echo is sounding here
        before = channel.render_at(Position(), *echo_window)
        assert before.rms() > 0.0
        dropped = channel.prune(before=0.15, margin=0.0)
        assert dropped == 0
        after = _assert_paths_match(channel, Position(), *echo_window)
        np.testing.assert_array_equal(before.samples, after.samples)

    def test_prune_still_drops_truly_dead_tones(self):
        channel = AcousticChannel(echo_taps=((0.08, 6.0),))
        channel.play_tone(0.0, ToneSpec(1000.0, 0.1, 70.0))
        channel.play_tone(30.0, ToneSpec(1100.0, 0.1, 70.0))
        assert channel.prune(before=20.0, margin=1.0) == 1
        frequencies = [t.spec.frequency for t in channel.scheduled_tones]
        assert frequencies == [1100.0]


class TestWindowMemo:
    def test_repeated_render_hits_memo(self):
        channel = busy_channel()
        first = channel.render_at(LISTENER, 0.2, 0.3)
        again = channel.render_at(LISTENER, 0.2, 0.3)
        assert again.samples is first.samples
        assert channel.render_cache_hits >= 1

    def test_play_tone_invalidates_memo(self):
        channel = busy_channel()
        stale = channel.render_at(LISTENER, 0.2, 0.3)
        channel.play_tone(0.2, ToneSpec(2500.0, 0.1, 70.0),
                          Position(0.5, 0.0, 0.0))
        fresh = _assert_paths_match(channel, LISTENER, 0.2, 0.3)
        assert not np.array_equal(fresh.samples, stale.samples)

    def test_add_noise_invalidates_memo(self, rng):
        channel = busy_channel()
        stale = channel.render_at(LISTENER, 0.2, 0.3)
        channel.add_noise(white_noise(0.5, 55.0, rng=rng))
        fresh = _assert_paths_match(channel, LISTENER, 0.2, 0.3)
        assert not np.array_equal(fresh.samples, stale.samples)

    def test_clear_invalidates_memo(self):
        channel = busy_channel()
        channel.render_at(LISTENER, 0.2, 0.3)
        channel.clear()
        assert channel.render_at(LISTENER, 0.2, 0.3).rms() == 0.0

    def test_prune_invalidates_memo(self):
        channel = busy_channel()
        channel.render_at(LISTENER, 0.2, 0.3)
        hits = channel.render_cache_hits
        channel.prune(before=100.0, margin=0.0)
        _assert_paths_match(channel, LISTENER, 0.2, 0.3)
        assert channel.render_cache_hits == hits

    def test_memo_is_bounded(self):
        from repro.audio.channel import WINDOW_CACHE_SIZE

        channel = busy_channel()
        for tick in range(WINDOW_CACHE_SIZE + 40):
            channel.render_at(LISTENER, tick * 0.01, tick * 0.01 + 0.05)
        assert len(channel._window_cache) <= WINDOW_CACHE_SIZE

    def test_colocated_microphones_share_render(self):
        """Two capsules at one station: the air is mixed once; each
        capture differs only by per-seed self-noise."""
        channel = busy_channel()
        spot = Position(0.4, 0.0, 0.0)
        first = Microphone(spot, seed=1).record(channel, 0.2, 0.3)
        misses = channel.render_cache_misses
        second = Microphone(spot, seed=2).record(channel, 0.2, 0.3)
        assert channel.render_cache_misses == misses
        assert not np.array_equal(first.samples, second.samples)

    def test_repeated_record_is_deterministic(self):
        """The microphone self-noise memo must not change captures."""
        channel = busy_channel()
        microphone = Microphone(LISTENER, seed=5)
        first = microphone.record(channel, 0.2, 0.3)
        second = microphone.record(channel, 0.2, 0.3)
        np.testing.assert_array_equal(first.samples, second.samples)
