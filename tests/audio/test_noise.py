"""Unit tests for noise generators and the song-noise interferer."""

import numpy as np
import pytest

from repro.audio import (
    SongNoise,
    SpectrumAnalyzer,
    band_noise,
    brown_noise,
    datacenter_ambience,
    hvac_hum,
    office_ambience,
    pink_noise,
    white_noise,
)


class TestLevels:
    @pytest.mark.parametrize("generator", [white_noise, pink_noise, brown_noise])
    def test_rms_level_calibrated(self, generator, rng):
        signal = generator(1.0, level_db=50.0, rng=rng)
        assert signal.level_db() == pytest.approx(50.0, abs=0.1)

    def test_zero_duration(self, rng):
        assert len(pink_noise(0.0, rng=rng)) == 0
        assert len(brown_noise(0.0, rng=rng)) == 0


class TestSpectralShape:
    def test_pink_noise_falls_with_frequency(self, rng, analyzer):
        signal = pink_noise(2.0, level_db=60.0, rng=rng)
        spectrum = analyzer.analyze(signal)
        low = spectrum.band_power(100, 500)
        high = spectrum.band_power(4000, 6000)
        assert low > high

    def test_brown_noise_falls_faster_than_pink(self, rng):
        analyzer = SpectrumAnalyzer()
        brown = brown_noise(2.0, level_db=60.0, rng=np.random.default_rng(1))
        pink = pink_noise(2.0, level_db=60.0, rng=np.random.default_rng(1))
        brown_ratio = (
            analyzer.analyze(brown).band_power(50, 200)
            / max(analyzer.analyze(brown).band_power(2000, 4000), 1e-18)
        )
        pink_ratio = (
            analyzer.analyze(pink).band_power(50, 200)
            / max(analyzer.analyze(pink).band_power(2000, 4000), 1e-18)
        )
        assert brown_ratio > pink_ratio

    def test_band_noise_confined(self, rng, analyzer):
        signal = band_noise(2.0, 1000, 2000, level_db=60.0, rng=rng)
        spectrum = analyzer.analyze(signal)
        inside = spectrum.band_power(1000, 2000)
        outside = spectrum.band_power(3000, 6000)
        assert inside > 1000 * max(outside, 1e-18)

    def test_band_noise_validation(self, rng):
        with pytest.raises(ValueError):
            band_noise(1.0, 2000, 1000, rng=rng)
        with pytest.raises(ValueError):
            band_noise(1.0, 100, 20000, sample_rate=16000, rng=rng)

    def test_hvac_energy_is_low_frequency(self, rng, analyzer):
        signal = hvac_hum(2.0, level_db=60.0, rng=rng)
        spectrum = analyzer.analyze(signal)
        assert spectrum.band_power(30, 400) > spectrum.band_power(1000, 4000)


class TestSongNoise:
    def test_deterministic_for_same_seed(self):
        first = SongNoise(seed=99).render(2.0)
        second = SongNoise(seed=99).render(2.0)
        np.testing.assert_array_equal(first.samples, second.samples)

    def test_different_seeds_differ(self):
        first = SongNoise(seed=1).render(1.0)
        second = SongNoise(seed=2).render(1.0)
        assert not np.array_equal(first.samples, second.samples)

    def test_level_calibrated(self):
        song = SongNoise(level_db=55.0).render(3.0)
        assert song.level_db() == pytest.approx(55.0, abs=0.1)

    def test_is_tonal(self, analyzer):
        """The song must contain discrete pitch peaks — it is a melody,
        not broadband noise."""
        song = SongNoise(seed=2018).render(2.0)
        spectrum = analyzer.analyze(song)
        peaks = analyzer.find_peaks(spectrum, threshold_db=15.0)
        assert len(peaks) >= 3

    def test_nonstationary(self):
        """Energy moves over time: different windows differ in content."""
        song = SongNoise(seed=7).render(4.0)
        analyzer = SpectrumAnalyzer()
        first = analyzer.analyze(song.slice_time(0.0, 0.5)).magnitudes
        later = analyzer.analyze(song.slice_time(2.0, 2.5)).magnitudes
        assert not np.allclose(first, later, rtol=0.1)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            SongNoise().render(0.0)


class TestAmbiencePresets:
    def test_datacenter_louder_than_office(self, rng):
        datacenter = datacenter_ambience(1.0, rng=np.random.default_rng(3))
        office = office_ambience(1.0, rng=np.random.default_rng(3))
        assert datacenter.level_db() > office.level_db() + 20

    def test_levels_calibrated(self):
        ambience = datacenter_ambience(1.0, level_db=80.0,
                                       rng=np.random.default_rng(4))
        assert ambience.level_db() == pytest.approx(80.0, abs=0.1)
