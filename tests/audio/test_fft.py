"""Unit tests for the FFT analysis pipeline."""

import numpy as np
import pytest

from repro.audio import (
    AudioSignal,
    SpectrumAnalyzer,
    power_spectrogram,
    sine_tone,
    white_noise,
)


class TestCalibration:
    def test_sine_reports_its_rms_level(self, analyzer):
        for level in (40.0, 60.0, 80.0):
            tone = sine_tone(1000, 0.2, level_db=level)
            spectrum = analyzer.analyze(tone)
            assert spectrum.level_at(1000) == pytest.approx(level, abs=0.5)

    def test_rect_window_calibration(self):
        analyzer = SpectrumAnalyzer(window="rect")
        # Bin-exact frequency: 1000 Hz with a 0.1 s window at 16 kHz.
        tone = sine_tone(1000, 0.1, level_db=60.0, ramp=0.0)
        spectrum = analyzer.analyze(tone)
        assert spectrum.level_at(1000) == pytest.approx(60.0, abs=0.1)

    def test_empty_signal(self, analyzer):
        spectrum = analyzer.analyze(AudioSignal(np.zeros(0)))
        assert len(spectrum.frequencies) == 0
        assert spectrum.magnitude_at(100) == 0.0

    def test_bin_width(self, analyzer):
        tone = sine_tone(500, 0.1)  # 0.1 s window -> 10 Hz resolution
        spectrum = analyzer.analyze(tone)
        # zero_pad_factor=2 halves the bin spacing (interpolation).
        assert spectrum.bin_width == pytest.approx(5.0)


class TestValidation:
    def test_unknown_window(self):
        with pytest.raises(ValueError):
            SpectrumAnalyzer(window="hamming")

    def test_bad_zero_pad(self):
        with pytest.raises(ValueError):
            SpectrumAnalyzer(zero_pad_factor=0)


class TestNoiseFloor:
    def test_floor_tracks_noise_level(self, rng):
        analyzer = SpectrumAnalyzer()
        quiet = white_noise(0.5, level_db=30.0, rng=np.random.default_rng(1))
        loud = white_noise(0.5, level_db=60.0, rng=np.random.default_rng(1))
        assert (
            analyzer.analyze(loud).noise_floor_db()
            > analyzer.analyze(quiet).noise_floor_db() + 25
        )

    def test_floor_robust_to_tones(self, rng):
        """A strong tone must barely move the median-based floor."""
        analyzer = SpectrumAnalyzer()
        noise = white_noise(0.5, level_db=40.0, rng=np.random.default_rng(2))
        with_tone = noise.mix(sine_tone(1000, 0.5, level_db=80.0))
        clean_floor = analyzer.analyze(noise).noise_floor_db()
        tone_floor = analyzer.analyze(with_tone).noise_floor_db()
        assert abs(tone_floor - clean_floor) < 3.0


class TestPeaks:
    def test_single_peak_found(self, analyzer):
        tone = sine_tone(1234, 0.2, level_db=70.0)
        peaks = analyzer.find_peaks(analyzer.analyze(tone), 10.0)
        assert peaks[0].frequency == pytest.approx(1234, abs=1.0)

    def test_parabolic_interpolation_beats_bin_centers(self):
        """Off-bin frequency estimated better than half a bin width."""
        analyzer = SpectrumAnalyzer()  # 10 Hz bins at 0.1 s / 16 kHz
        tone = sine_tone(1003.0, 0.1, level_db=70.0)
        peaks = analyzer.find_peaks(analyzer.analyze(tone), 10.0)
        assert peaks[0].frequency == pytest.approx(1003.0, abs=3.0)

    def test_multiple_tones_sorted_by_magnitude(self, analyzer):
        mix = AudioSignal.from_components([
            sine_tone(800, 0.2, level_db=60.0),
            sine_tone(2000, 0.2, level_db=75.0),
        ])
        peaks = analyzer.find_peaks(analyzer.analyze(mix), 10.0, max_peaks=2)
        assert peaks[0].frequency == pytest.approx(2000, abs=2)
        assert peaks[1].frequency == pytest.approx(800, abs=2)

    def test_frequency_range_filter(self, analyzer):
        mix = AudioSignal.from_components([
            sine_tone(800, 0.2, level_db=70.0),
            sine_tone(2000, 0.2, level_db=70.0),
        ])
        peaks = analyzer.find_peaks(
            analyzer.analyze(mix), 10.0, min_frequency=1500, max_frequency=2500
        )
        assert all(1500 <= peak.frequency <= 2500 for peak in peaks)

    def test_noisy_tone_detected(self, rng, analyzer):
        mix = sine_tone(1500, 0.2, level_db=65.0).mix(
            white_noise(0.2, level_db=45.0, rng=rng)
        )
        peaks = analyzer.find_peaks(analyzer.analyze(mix), 10.0)
        assert any(abs(p.frequency - 1500) < 5 for p in peaks)

    def test_silence_yields_no_peaks(self, analyzer):
        spectrum = analyzer.analyze(AudioSignal.silence(0.1))
        assert analyzer.find_peaks(spectrum, 10.0) == []


class TestTiming:
    def test_timed_analyze_returns_elapsed(self, analyzer):
        tone = sine_tone(1000, 0.05)
        spectrum, elapsed = analyzer.timed_analyze(tone)
        assert elapsed > 0
        assert spectrum.level_at(1000) > 50

    def test_50ms_window_is_fast(self, analyzer):
        """The Figure 2b claim territory: ~50 ms windows analyze in
        well under 5 ms on any modern machine."""
        tone = sine_tone(1000, 0.05)
        timings = [analyzer.timed_analyze(tone)[1] for _ in range(50)]
        assert np.median(timings) < 0.005


class TestSpectrogram:
    def test_shapes(self):
        tone = sine_tone(1000, 1.0)
        times, freqs, mags = power_spectrogram(tone, frame_duration=0.1)
        assert len(times) == 10
        assert mags.shape == (10, len(freqs))

    def test_tracks_frequency_over_time(self):
        first = sine_tone(500, 0.5, level_db=70.0)
        second = sine_tone(2000, 0.5, level_db=70.0)
        signal = first.concat(second)
        times, freqs, mags = power_spectrogram(signal, frame_duration=0.1)
        early_peak = freqs[np.argmax(mags[1])]
        late_peak = freqs[np.argmax(mags[-2])]
        assert early_peak == pytest.approx(500, abs=20)
        assert late_peak == pytest.approx(2000, abs=20)

    def test_empty_signal(self):
        times, freqs, mags = power_spectrogram(AudioSignal(np.zeros(0)))
        assert len(times) == 0

    def test_short_signal_shapes_are_consistent(self):
        """A signal shorter than one frame yields zero frames but a
        full frequency axis, so ``mags`` is ``(0, F)`` — not the old
        mismatched ``frequencies`` empty / ``mags`` ``(0, 0)``."""
        short = sine_tone(1000, 0.01)  # 10 ms < the 50 ms frame
        times, freqs, mags = power_spectrogram(short, frame_duration=0.05)
        assert len(times) == 0
        assert len(freqs) == 401  # 800-sample frame -> 401 rfft bins
        assert mags.shape == (0, len(freqs))

    def test_empty_signal_shapes_are_consistent(self):
        times, freqs, mags = power_spectrogram(
            AudioSignal(np.zeros(0)), frame_duration=0.05
        )
        assert len(times) == 0
        assert len(freqs) > 0
        assert mags.shape == (0, len(freqs))
