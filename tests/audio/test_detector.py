"""Unit tests for the known-frequency detector (both backends)."""

import numpy as np
import pytest

from repro.audio import (
    AudioSignal,
    FrequencyDetector,
    SongNoise,
    sine_tone,
    white_noise,
)

BACKENDS = ("fft", "goertzel")


class TestConstruction:
    def test_requires_frequencies(self):
        with pytest.raises(ValueError):
            FrequencyDetector([])

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            FrequencyDetector([1000], tolerance_hz=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            FrequencyDetector([1000], backend="wavelet")

    def test_deduplicates_watch_list(self):
        detector = FrequencyDetector([1000, 1000.0, 2000])
        assert detector.watched == [1000.0, 2000.0]


@pytest.mark.parametrize("backend", BACKENDS)
class TestDetection:
    def test_single_tone(self, backend):
        detector = FrequencyDetector([500, 1000, 1500], backend=backend)
        events = detector.detect(sine_tone(1000, 0.1, level_db=60.0))
        assert [e.frequency for e in events] == [1000.0]

    def test_level_reported(self, backend):
        detector = FrequencyDetector([1000], backend=backend)
        events = detector.detect(sine_tone(1000, 0.1, level_db=60.0))
        assert events[0].level_db == pytest.approx(60.0, abs=1.0)

    def test_simultaneous_tones(self, backend):
        detector = FrequencyDetector([500, 1000, 1500], backend=backend)
        mix = AudioSignal.from_components([
            sine_tone(500, 0.2, level_db=60.0),
            sine_tone(1500, 0.2, level_db=58.0),
        ])
        events = detector.detect(mix)
        assert [e.frequency for e in events] == [500.0, 1500.0]

    def test_below_min_level_ignored(self, backend):
        detector = FrequencyDetector([1000], min_level_db=30.0, backend=backend)
        events = detector.detect(sine_tone(1000, 0.1, level_db=20.0))
        assert events == []

    def test_empty_window(self, backend):
        detector = FrequencyDetector([1000], backend=backend)
        assert detector.detect(AudioSignal(np.zeros(0))) == []

    def test_silence(self, backend):
        detector = FrequencyDetector([1000], backend=backend)
        assert detector.detect(AudioSignal.silence(0.1)) == []

    def test_noise_robustness(self, backend, rng):
        detector = FrequencyDetector([800, 1200], backend=backend)
        mix = sine_tone(1200, 0.2, level_db=65.0).mix(
            white_noise(0.2, level_db=45.0, rng=rng)
        )
        events = detector.detect(mix)
        assert [e.frequency for e in events] == [1200.0]

    def test_song_noise_robustness(self, backend):
        """The Figure 4b/4d condition: detection with a pop song in the
        room.  The watched tone must still be found and the song's own
        notes must not register as watched tones."""
        detector = FrequencyDetector([3000, 3100], backend=backend)
        song = SongNoise(seed=4, level_db=55.0).render(0.3)
        mix = sine_tone(3000, 0.3, level_db=68.0).mix(song)
        events = detector.detect(mix)
        assert [e.frequency for e in events] == [3000.0]

    def test_time_propagated(self, backend):
        detector = FrequencyDetector([1000], backend=backend)
        events = detector.detect(sine_tone(1000, 0.1, level_db=60.0), time=42.5)
        assert events[0].time == 42.5


@pytest.mark.parametrize("backend", BACKENDS)
class TestDetectStream:
    def test_tone_change_tracked_across_frames(self, backend):
        """A capture with two consecutive tones yields events for each
        tone stamped with the right frame times."""
        detector = FrequencyDetector([500, 2000], backend=backend)
        signal = sine_tone(500, 0.5, level_db=65.0).concat(
            sine_tone(2000, 0.5, level_db=65.0)
        )
        events = detector.detect_stream(signal, frame_duration=0.1)
        early = {e.frequency for e in events if e.time < 0.4}
        late = {e.frequency for e in events if e.time >= 0.6}
        assert early == {500.0}
        assert late == {2000.0}

    def test_start_time_offsets_event_times(self, backend):
        detector = FrequencyDetector([1000], backend=backend)
        signal = sine_tone(1000, 0.3, level_db=65.0)
        events = detector.detect_stream(signal, frame_duration=0.1,
                                        start_time=7.0)
        assert [e.time for e in events] == pytest.approx([7.0, 7.1, 7.2])

    def test_empty_signal(self, backend):
        detector = FrequencyDetector([1000], backend=backend)
        assert detector.detect_stream(AudioSignal(np.zeros(0))) == []

    def test_signal_shorter_than_one_frame(self, backend):
        detector = FrequencyDetector([1000], backend=backend)
        short = sine_tone(1000, 0.01, level_db=65.0)
        assert detector.detect_stream(short, frame_duration=0.05) == []

    def test_overlapping_hop(self, backend):
        detector = FrequencyDetector([1000], backend=backend)
        signal = sine_tone(1000, 0.4, level_db=65.0)
        events = detector.detect_stream(signal, frame_duration=0.1,
                                        hop_duration=0.05)
        assert len(events) == 7  # (0.4 - 0.1) / 0.05 + 1 frames
        assert all(e.frequency == 1000.0 for e in events)


class TestFFTSpecifics:
    def test_twenty_hz_separation_resolved(self):
        """The paper's separability limit: two tones 20 Hz apart, both
        identified, with a 200 ms window."""
        detector = FrequencyDetector([1000, 1020])
        mix = AudioSignal.from_components([
            sine_tone(1000, 0.2, level_db=60.0),
            sine_tone(1020, 0.2, level_db=60.0),
        ])
        events = detector.detect(mix)
        assert [e.frequency for e in events] == [1000.0, 1020.0]

    def test_sidelobe_of_loud_tone_rejected(self):
        """A single loud tone must not trigger its 20 Hz neighbours."""
        detector = FrequencyDetector([1000, 1020, 1040])
        events = detector.detect(sine_tone(1000, 0.2, level_db=80.0))
        assert [e.frequency for e in events] == [1000.0]

    def test_tolerance_match(self):
        """A tone 5 Hz off its plan frequency still matches (mic clock
        drift), but 50 Hz off does not."""
        detector = FrequencyDetector([1000], tolerance_hz=10.0)
        near = detector.detect(sine_tone(1005, 0.2, level_db=60.0))
        far = detector.detect(sine_tone(1050, 0.2, level_db=60.0))
        assert [e.frequency for e in near] == [1000.0]
        assert far == []

    def test_measured_frequency_reported(self):
        detector = FrequencyDetector([1000], tolerance_hz=10.0)
        events = detector.detect(sine_tone(1004, 0.25, level_db=60.0))
        assert events[0].measured_frequency == pytest.approx(1004, abs=2.0)
