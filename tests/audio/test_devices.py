"""Unit tests for speaker and microphone device models."""

import numpy as np
import pytest

from repro.audio import (
    AcousticChannel,
    DeviceCapabilityError,
    Microphone,
    Position,
    Speaker,
    SpectrumAnalyzer,
    ToneSpec,
)


class TestSpeakerValidation:
    def test_accepts_in_envelope_tone(self, near_speaker):
        near_speaker.validate(ToneSpec(1000, 0.1, 70.0))  # no raise

    def test_rejects_low_frequency(self, near_speaker):
        with pytest.raises(DeviceCapabilityError, match="band"):
            near_speaker.validate(ToneSpec(50, 0.1, 70.0))

    def test_rejects_high_frequency(self, near_speaker):
        with pytest.raises(DeviceCapabilityError, match="band"):
            near_speaker.validate(ToneSpec(12000, 0.1, 70.0))

    def test_rejects_too_short(self, near_speaker):
        """The paper's testbed could not gate tones under ~30 ms."""
        with pytest.raises(DeviceCapabilityError, match="ms"):
            near_speaker.validate(ToneSpec(1000, 0.01, 70.0))

    def test_rejects_too_loud(self, near_speaker):
        with pytest.raises(DeviceCapabilityError, match="dB"):
            near_speaker.validate(ToneSpec(1000, 0.1, 120.0))

    def test_play_schedules_on_channel(self, channel, near_speaker):
        near_speaker.play(channel, 0.5, ToneSpec(1000, 0.1, 70.0))
        assert len(channel.scheduled_tones) == 1
        assert channel.scheduled_tones[0].position == near_speaker.position

    def test_play_rejects_invalid(self, channel, near_speaker):
        with pytest.raises(DeviceCapabilityError):
            near_speaker.play(channel, 0.0, ToneSpec(1000, 0.001, 70.0))
        assert len(channel.scheduled_tones) == 0


class TestMicrophone:
    def test_rate_mismatch_rejected(self):
        channel = AcousticChannel(sample_rate=16000)
        mic = Microphone(sample_rate=44100)
        with pytest.raises(ValueError):
            mic.record(channel, 0.0, 0.1)

    def test_capture_is_deterministic(self, channel, near_speaker):
        near_speaker.play(channel, 0.0, ToneSpec(1000, 0.2, 70.0))
        mic = Microphone(seed=5)
        first = mic.record(channel, 0.0, 0.2)
        second = mic.record(channel, 0.0, 0.2)
        np.testing.assert_array_equal(first.samples, second.samples)

    def test_distinct_windows_have_independent_noise(self, channel):
        mic = Microphone(seed=5, self_noise_db=40.0)
        first = mic.record(channel, 0.0, 0.1)
        second = mic.record(channel, 0.1, 0.2)
        assert not np.array_equal(first.samples, second.samples)

    def test_self_noise_floor_level(self, channel):
        mic = Microphone(self_noise_db=30.0)
        capture = mic.record(channel, 0.0, 0.5)
        assert capture.level_db() == pytest.approx(30.0, abs=1.0)

    def test_signal_rises_above_self_noise(self, channel, near_speaker, analyzer):
        near_speaker.play(channel, 0.0, ToneSpec(1000, 0.3, 70.0))
        mic = Microphone(self_noise_db=20.0)
        capture = mic.record(channel, 0.05, 0.25)
        spectrum = analyzer.analyze(capture)
        assert spectrum.level_at(1000) > spectrum.noise_floor_db() + 30

    def test_empty_window(self, channel):
        mic = Microphone()
        assert len(mic.record(channel, 1.0, 1.0)) == 0
