"""Property-based tests (hypothesis) for the acoustic substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import (
    AudioSignal,
    FrequencyDetector,
    amplitude_to_db,
    db_to_amplitude,
    hz_to_mel,
    mel_to_hz,
    propagation_loss_db,
    sine_tone,
)

levels = st.floats(min_value=-20.0, max_value=120.0)
frequencies = st.floats(min_value=200.0, max_value=7000.0)
distances = st.floats(min_value=0.05, max_value=100.0)


class TestDbProperties:
    @given(levels)
    def test_db_roundtrip(self, level):
        assert abs(amplitude_to_db(db_to_amplitude(level)) - level) < 1e-9

    @given(levels, levels)
    def test_db_monotonic(self, a, b):
        if a + 1e-9 < b:  # require a resolvable gap in float64
            assert db_to_amplitude(a) < db_to_amplitude(b)

    @given(st.floats(min_value=1e-6, max_value=1e6),
           st.floats(min_value=1e-6, max_value=1e6))
    def test_amplitude_ratio_is_db_difference(self, x, y):
        diff = amplitude_to_db(x) - amplitude_to_db(y)
        assert abs(diff - 20.0 * np.log10(x / y)) < 1e-6


class TestMelProperties:
    @given(st.floats(min_value=0.0, max_value=20000.0))
    def test_mel_roundtrip(self, freq):
        assert abs(mel_to_hz(hz_to_mel(freq)) - freq) < max(1e-6 * freq, 1e-6)

    @given(st.floats(min_value=0.0, max_value=20000.0),
           st.floats(min_value=0.0, max_value=20000.0))
    def test_mel_order_preserving(self, a, b):
        if a + 1e-9 < b:  # require a float64-resolvable gap
            assert hz_to_mel(a) < hz_to_mel(b)


class TestPropagationProperties:
    @given(distances, distances)
    def test_loss_monotonic_in_distance(self, a, b):
        if a < b:
            assert propagation_loss_db(a) <= propagation_loss_db(b)

    @given(distances)
    def test_loss_nonnegative(self, d):
        assert propagation_loss_db(d) >= 0.0


class TestDetectionProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        frequency=st.floats(min_value=400.0, max_value=6000.0),
        level=st.floats(min_value=45.0, max_value=85.0),
    )
    def test_any_plan_tone_is_detected(self, frequency, level):
        """Any watched tone in the working band and level range is
        found, and reported near its true level."""
        # Snap onto a 20 Hz grid like a real plan.
        frequency = round(frequency / 20.0) * 20.0
        detector = FrequencyDetector([frequency])
        events = detector.detect(sine_tone(frequency, 0.15, level_db=level))
        assert len(events) == 1
        assert abs(events[0].level_db - level) < 2.0

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
    )
    def test_disjoint_tones_all_detected(self, data):
        """Several grid frequencies played together are all identified
        and nothing else is."""
        slots = data.draw(
            st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                     max_size=4, unique=True)
        )
        plan = [500.0 + 40.0 * slot for slot in range(0, 101, 2)]
        played = [500.0 + 40.0 * slot for slot in slots]
        # Keep only frequencies on the watched grid (even slots).
        played = [freq for freq in played if freq in plan] or [plan[0]]
        mix = AudioSignal.from_components(
            [sine_tone(freq, 0.2, level_db=62.0) for freq in played]
        )
        detector = FrequencyDetector(plan)
        events = detector.detect(mix)
        assert {event.frequency for event in events} == set(played)


class TestSignalProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        gain=st.floats(min_value=0.01, max_value=100.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_scale_scales_rms(self, gain, seed):
        rng = np.random.default_rng(seed)
        signal = AudioSignal(rng.standard_normal(256))
        assert abs(signal.scale(gain).rms() - gain * signal.rms()) < 1e-9 * max(
            1.0, gain
        )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_mix_energy_superposition(self, seed):
        """Mixing a signal with silence leaves it unchanged."""
        rng = np.random.default_rng(seed)
        signal = AudioSignal(rng.standard_normal(128))
        mixed = signal.mix(AudioSignal.silence(len(signal) / 16000))
        np.testing.assert_allclose(mixed.samples, signal.samples)
