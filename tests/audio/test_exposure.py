"""Tests for the operator sound-exposure meter."""

import pytest

from repro.audio import AcousticChannel, Position, Speaker, ToneSpec
from repro.audio.exposure import ExposureMeter
from repro.audio.noise import white_noise
import numpy as np


class TestValidation:
    def test_window_positive(self):
        with pytest.raises(ValueError):
            ExposureMeter(AcousticChannel(), Position(), window=0)

    def test_measure_order(self):
        meter = ExposureMeter(AcousticChannel(), Position())
        with pytest.raises(ValueError):
            meter.measure(2.0, 1.0)


class TestMetrics:
    def test_silence_report(self):
        meter = ExposureMeter(AcousticChannel(), Position())
        report = meter.measure(0.0, 2.0)
        assert report.leq_db < -60
        assert report.fraction_above == 0.0

    def test_steady_noise_leq_matches_level(self):
        channel = AcousticChannel()
        channel.add_noise(
            white_noise(1.0, level_db=60.0, rng=np.random.default_rng(1)),
            Position(),
        )
        meter = ExposureMeter(channel, Position())
        report = meter.measure(0.0, 3.0)
        assert report.leq_db == pytest.approx(60.0, abs=1.0)
        assert report.fraction_above == 1.0

    def test_duty_cycle_reflected(self):
        """A tone sounding a quarter of the time: Leq sits ~6 dB below
        the tone level and fraction_above ~ the duty cycle."""
        channel = AcousticChannel()
        speaker = Speaker(Position(1.0, 0.0, 0.0))
        for start in (0.0, 1.0, 2.0, 3.0):
            speaker.play(channel, start, ToneSpec(1000, 0.25, 70.0))
        meter = ExposureMeter(channel, Position(), window=0.25,
                              threshold_db=55.0)
        report = meter.measure(0.0, 4.0)
        assert report.leq_db == pytest.approx(70.0 - 6.0, abs=1.5)
        assert report.fraction_above == pytest.approx(0.25, abs=0.1)
        assert report.l_max_db == pytest.approx(70.0, abs=1.0)

    def test_distance_reduces_exposure(self):
        channel = AcousticChannel()
        Speaker(Position(0.0, 0.0, 0.0)).play(
            channel, 0.0, ToneSpec(1000, 2.0, 75.0)
        )
        near = ExposureMeter(channel, Position(1.0, 0, 0)).measure(0.0, 2.0)
        far = ExposureMeter(channel, Position(10.0, 0, 0)).measure(0.0, 2.0)
        assert near.leq_db - far.leq_db == pytest.approx(20.0, abs=1.0)

    def test_empty_report(self):
        meter = ExposureMeter(AcousticChannel(), Position())
        report = meter.report()
        assert report.duration == 0.0
