"""Unit tests for tone synthesis: calibration, envelopes, sequences."""

import numpy as np
import pytest

from repro.audio import (
    AudioSignal,
    SpectrumAnalyzer,
    ToneSpec,
    chirp,
    harmonic_tone,
    raised_cosine_envelope,
    sine_tone,
    tone_sequence,
)


class TestSineTone:
    def test_rms_level_is_calibrated(self):
        tone = sine_tone(1000, 0.5, level_db=60.0)
        # Envelope slightly reduces RMS; allow 0.3 dB.
        assert tone.level_db() == pytest.approx(60.0, abs=0.3)

    def test_length(self):
        tone = sine_tone(500, 0.1, sample_rate=16000)
        assert len(tone) == 1600

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            sine_tone(0, 0.1)
        with pytest.raises(ValueError):
            sine_tone(-100, 0.1)

    def test_rejects_above_nyquist(self):
        with pytest.raises(ValueError, match="Nyquist"):
            sine_tone(9000, 0.1, sample_rate=16000)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            sine_tone(440, 0.0)

    def test_spectral_purity(self, analyzer):
        """Energy concentrates at the requested frequency."""
        tone = sine_tone(1200, 0.2, level_db=70.0)
        spectrum = analyzer.analyze(tone)
        peak = analyzer.find_peaks(spectrum, threshold_db=20.0)[0]
        assert peak.frequency == pytest.approx(1200, abs=2.0)

    def test_envelope_reduces_edge_amplitude(self):
        shaped = sine_tone(1000, 0.1, ramp=0.01)
        hard = sine_tone(1000, 0.1, ramp=0.0)
        # First sample region of shaped tone is quieter than rectangular.
        assert np.max(np.abs(shaped.samples[:20])) < np.max(np.abs(hard.samples[:20])) + 1e-12
        assert abs(shaped.samples[0]) < 1e-9

    def test_envelope_suppresses_sidelobes(self):
        """The shaped tone leaks less energy 100 Hz away than the
        rectangular tone — the reason ramping is the default.  Measured
        with a rectangular analysis window so the tone's own envelope
        (not the analyzer's Hann taper) is what is being compared."""
        rect_analyzer = SpectrumAnalyzer(window="rect", zero_pad_factor=2)
        # Fractional-bin frequency: worst-case leakage for a raw tone.
        freq = 1003.7
        shaped = sine_tone(freq, 0.1, level_db=70.0, ramp=0.01)
        hard = sine_tone(freq, 0.1, level_db=70.0, ramp=0.0)
        off = freq + 150.0
        shaped_leak = rect_analyzer.analyze(shaped).magnitude_at(off)
        hard_leak = rect_analyzer.analyze(hard).magnitude_at(off)
        assert shaped_leak < hard_leak


class TestEnvelope:
    def test_zero_length(self):
        assert len(raised_cosine_envelope(0, 16000)) == 0

    def test_flat_top(self):
        env = raised_cosine_envelope(1600, 16000, ramp=0.01)
        assert env[800] == pytest.approx(1.0)

    def test_symmetric(self):
        env = raised_cosine_envelope(1000, 16000, ramp=0.01)
        np.testing.assert_allclose(env, env[::-1], atol=1e-12)

    def test_short_tone_ramp_shrinks(self):
        # 10-sample tone with a 100-sample ramp request must not error.
        env = raised_cosine_envelope(10, 16000, ramp=1.0)
        assert len(env) == 10
        assert env[0] < env[4]

    def test_envelopes_are_memoized(self):
        """The render hot path reuses one envelope per (length, ramp);
        the same request returns the same read-only array."""
        first = raised_cosine_envelope(1600, 16000, ramp=0.01)
        again = raised_cosine_envelope(1600, 16000, ramp=0.01)
        assert again is first
        assert not first.flags.writeable

    def test_equal_ramp_lengths_share_an_envelope(self):
        # Distinct (ramp, sample_rate) pairs that round to the same
        # ramp length in samples hit the same cache entry.
        a = raised_cosine_envelope(1600, 16000, ramp=0.01)
        b = raised_cosine_envelope(1600, 32000, ramp=0.005)
        assert b is a


class TestHarmonicTone:
    def test_contains_harmonics(self, analyzer):
        tone = harmonic_tone(500, 0.2, level_db=70.0, num_harmonics=3)
        spectrum = analyzer.analyze(tone)
        for k in (1, 2, 3):
            assert spectrum.level_at(500 * k) > 40.0

    def test_harmonics_roll_off(self, analyzer):
        tone = harmonic_tone(500, 0.2, level_db=70.0, harmonic_rolloff_db=10.0)
        spectrum = analyzer.analyze(tone)
        assert spectrum.level_at(500) > spectrum.level_at(1000) > spectrum.level_at(1500)

    def test_harmonics_above_nyquist_skipped(self):
        tone = harmonic_tone(3000, 0.1, num_harmonics=10, sample_rate=16000)
        assert len(tone) > 0  # does not raise

    def test_rejects_zero_harmonics(self):
        with pytest.raises(ValueError):
            harmonic_tone(500, 0.1, num_harmonics=0)


class TestChirp:
    def test_sweeps_band(self, analyzer):
        sweep = chirp(500, 2000, 1.0, level_db=70.0)
        early = analyzer.analyze(sweep.slice_time(0.0, 0.1))
        late = analyzer.analyze(sweep.slice_time(0.9, 1.0))
        early_peak = analyzer.find_peaks(early, 10.0)[0].frequency
        late_peak = analyzer.find_peaks(late, 10.0)[0].frequency
        assert early_peak < 800
        assert late_peak > 1700

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            chirp(0, 1000, 1.0)
        with pytest.raises(ValueError):
            chirp(500, 9000, 1.0, sample_rate=16000)
        with pytest.raises(ValueError):
            chirp(500, 1000, 0.0)


class TestToneSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ToneSpec(-1, 0.1)
        with pytest.raises(ValueError):
            ToneSpec(440, 0)

    def test_render_matches_sine_with_signalling_ramp(self):
        from repro.audio import signalling_ramp
        spec = ToneSpec(880, 0.1, 65.0)
        rendered = spec.render()
        direct = sine_tone(880, 0.1, 65.0, ramp=signalling_ramp(0.1))
        np.testing.assert_allclose(rendered.samples, direct.samples)

    def test_render_explicit_ramp_override(self):
        spec = ToneSpec(880, 0.1, 65.0)
        rendered = spec.render(ramp=0.005)
        direct = sine_tone(880, 0.1, 65.0, ramp=0.005)
        np.testing.assert_allclose(rendered.samples, direct.samples)

    def test_signalling_ramp_rule(self):
        from repro.audio import MAX_SIGNALLING_RAMP, signalling_ramp
        assert signalling_ramp(0.04) == pytest.approx(0.01)
        assert signalling_ramp(1.0) == MAX_SIGNALLING_RAMP


class TestToneSequence:
    def test_empty(self):
        assert len(tone_sequence([])) == 0

    def test_total_duration(self):
        specs = [ToneSpec(500, 0.1), ToneSpec(600, 0.1), ToneSpec(700, 0.1)]
        melody = tone_sequence(specs, gap=0.05)
        assert melody.duration == pytest.approx(0.4, abs=0.01)

    def test_order_preserved(self, analyzer):
        specs = [ToneSpec(500, 0.1, 70), ToneSpec(1500, 0.1, 70)]
        melody = tone_sequence(specs, gap=0.02)
        first = analyzer.analyze(melody.slice_time(0.0, 0.1))
        second = analyzer.analyze(melody.slice_time(0.12, 0.22))
        assert first.level_at(500) > first.level_at(1500)
        assert second.level_at(1500) > second.level_at(500)

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            tone_sequence([ToneSpec(500, 0.1)], gap=-0.1)
