"""Unit tests for the AudioSignal container and dB calibration."""

import math

import numpy as np
import pytest

from repro.audio import (
    DEFAULT_SAMPLE_RATE,
    FULL_SCALE_DB,
    SILENCE_DB,
    AudioSignal,
    amplitude_to_db,
    db_to_amplitude,
)


class TestDbConversion:
    def test_full_scale_maps_to_unit_amplitude(self):
        assert db_to_amplitude(FULL_SCALE_DB) == pytest.approx(1.0)

    def test_each_20db_is_a_factor_of_ten(self):
        assert db_to_amplitude(FULL_SCALE_DB - 20) == pytest.approx(0.1)
        assert db_to_amplitude(FULL_SCALE_DB + 20) == pytest.approx(10.0)

    def test_roundtrip(self):
        for level in (-10.0, 0.0, 30.0, 60.0, 94.0, 120.0):
            assert amplitude_to_db(db_to_amplitude(level)) == pytest.approx(level)

    def test_zero_amplitude_is_silence_floor(self):
        assert amplitude_to_db(0.0) == SILENCE_DB
        assert amplitude_to_db(-1.0) == SILENCE_DB


class TestConstruction:
    def test_samples_coerced_to_float64(self):
        signal = AudioSignal(np.array([1, 2, 3], dtype=np.int16))
        assert signal.samples.dtype == np.float64

    def test_rejects_2d_samples(self):
        with pytest.raises(ValueError, match="1-D"):
            AudioSignal(np.zeros((2, 3)))

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError, match="sample_rate"):
            AudioSignal(np.zeros(4), sample_rate=0)

    def test_silence_has_correct_length_and_level(self):
        signal = AudioSignal.silence(0.5)
        assert len(signal) == DEFAULT_SAMPLE_RATE // 2
        assert signal.rms() == 0.0
        assert signal.level_db() == SILENCE_DB

    def test_silence_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            AudioSignal.silence(-0.1)

    def test_empty_from_components(self):
        signal = AudioSignal.from_components([])
        assert len(signal) == 0

    def test_from_components_pads_shorter(self):
        a = AudioSignal(np.ones(10))
        b = AudioSignal(np.ones(4))
        mixed = AudioSignal.from_components([a, b])
        assert len(mixed) == 10
        assert mixed.samples[0] == 2.0
        assert mixed.samples[9] == 1.0

    def test_from_components_rejects_rate_mismatch(self):
        a = AudioSignal(np.ones(10), sample_rate=8000)
        with pytest.raises(ValueError, match="sample rate"):
            AudioSignal.from_components([a], sample_rate=16000)


class TestIntrospection:
    def test_duration(self):
        signal = AudioSignal(np.zeros(DEFAULT_SAMPLE_RATE))
        assert signal.duration == pytest.approx(1.0)

    def test_rms_of_constant(self):
        signal = AudioSignal(np.full(100, 0.5))
        assert signal.rms() == pytest.approx(0.5)

    def test_rms_of_sine(self):
        t = np.arange(16000) / 16000
        signal = AudioSignal(np.sin(2 * np.pi * 100 * t))
        assert signal.rms() == pytest.approx(1 / math.sqrt(2), rel=1e-3)

    def test_peak(self):
        signal = AudioSignal(np.array([0.1, -0.7, 0.3]))
        assert signal.peak() == pytest.approx(0.7)

    def test_empty_signal_stats(self):
        signal = AudioSignal(np.zeros(0))
        assert signal.rms() == 0.0
        assert signal.peak() == 0.0


class TestTransformations:
    def test_mix_is_commutative(self):
        a = AudioSignal(np.array([1.0, 2.0]))
        b = AudioSignal(np.array([3.0, 4.0, 5.0]))
        np.testing.assert_allclose(a.mix(b).samples, b.mix(a).samples)

    def test_scale(self):
        signal = AudioSignal(np.ones(4)).scale(0.25)
        assert signal.rms() == pytest.approx(0.25)

    def test_attenuate_db(self):
        signal = AudioSignal(np.ones(4)).attenuate_db(20.0)
        assert signal.rms() == pytest.approx(0.1)

    def test_concat(self):
        a = AudioSignal(np.ones(3))
        b = AudioSignal(np.zeros(2))
        joined = a.concat(b)
        assert len(joined) == 5
        assert joined.samples[-1] == 0.0

    def test_concat_rejects_rate_mismatch(self):
        a = AudioSignal(np.ones(3), sample_rate=8000)
        b = AudioSignal(np.ones(3), sample_rate=16000)
        with pytest.raises(ValueError, match="concat"):
            a.concat(b)

    def test_slice_time(self):
        signal = AudioSignal(np.arange(16000, dtype=float))
        part = signal.slice_time(0.25, 0.5)
        assert len(part) == 4000
        assert part.samples[0] == 4000

    def test_slice_time_clamps(self):
        signal = AudioSignal(np.arange(100, dtype=float))
        part = signal.slice_time(0.0, 10.0)
        assert len(part) == 100

    def test_slice_outside_is_empty(self):
        signal = AudioSignal(np.arange(100, dtype=float))
        assert len(signal.slice_time(10.0, 11.0)) == 0

    def test_slice_rejects_reversed_bounds(self):
        signal = AudioSignal(np.zeros(10))
        with pytest.raises(ValueError):
            signal.slice_time(0.5, 0.1)


class TestFrames:
    def test_non_overlapping_frames(self):
        signal = AudioSignal(np.arange(16000, dtype=float))
        frames = list(signal.frames(0.25))
        assert len(frames) == 4
        starts = [start for start, _frame in frames]
        assert starts == pytest.approx([0.0, 0.25, 0.5, 0.75])

    def test_partial_trailing_frame_dropped(self):
        signal = AudioSignal(np.zeros(15000))
        frames = list(signal.frames(0.25))
        assert len(frames) == 3

    def test_overlapping_frames(self):
        signal = AudioSignal(np.zeros(16000))
        frames = list(signal.frames(0.5, hop_duration=0.25))
        assert len(frames) == 3

    def test_invalid_frame_params(self):
        signal = AudioSignal(np.zeros(100))
        with pytest.raises(ValueError):
            list(signal.frames(0.0))
        with pytest.raises(ValueError):
            list(signal.frames(0.1, hop_duration=0.0))
