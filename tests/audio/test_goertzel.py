"""Unit tests for the Goertzel detection backend."""

import numpy as np
import pytest

from repro.audio import (
    AudioSignal,
    GoertzelBank,
    SpectrumAnalyzer,
    goertzel_magnitude,
    sine_tone,
    white_noise,
)


class TestGoertzelMagnitude:
    def test_matches_fft_calibration(self):
        """Goertzel and the FFT backend agree on a tone's level."""
        tone = sine_tone(1000, 0.1, level_db=60.0)
        fft_level = SpectrumAnalyzer().analyze(tone).level_at(1000)
        from repro.audio import amplitude_to_db
        goertzel_level = amplitude_to_db(goertzel_magnitude(tone, 1000))
        assert goertzel_level == pytest.approx(fft_level, abs=0.1)

    def test_off_tone_magnitude_is_small(self):
        tone = sine_tone(1000, 0.1, level_db=60.0)
        on = goertzel_magnitude(tone, 1000)
        off = goertzel_magnitude(tone, 2000)
        assert on > 1000 * off

    def test_empty_signal(self):
        assert goertzel_magnitude(AudioSignal(np.zeros(0)), 440) == 0.0

    def test_dc_bin_not_inflated(self):
        """Regression: the one-sided x-sqrt(2) correction must not apply
        at DC — a constant offset of RMS r reports r, matching the FFT
        backend bin for bin."""
        offset = AudioSignal(np.full(1600, 0.5))
        goertzel_mag = goertzel_magnitude(offset, 0.0)
        fft_mag = SpectrumAnalyzer().analyze(offset).magnitude_at(0.0)
        assert goertzel_mag == pytest.approx(0.5, abs=1e-9)
        assert goertzel_mag == pytest.approx(fft_mag, abs=1e-9)

    def test_nyquist_bin_not_inflated(self):
        """Regression: same for the Nyquist bin (k = N/2), which also
        has no mirrored negative-frequency bin."""
        nyquist_tone = AudioSignal(0.25 * np.cos(np.pi * np.arange(1600)))
        nyquist_hz = nyquist_tone.sample_rate / 2.0
        goertzel_mag = goertzel_magnitude(nyquist_tone, nyquist_hz)
        fft_mag = SpectrumAnalyzer().analyze(nyquist_tone).magnitude_at(nyquist_hz)
        assert goertzel_mag == pytest.approx(nyquist_tone.rms(), abs=1e-9)
        assert goertzel_mag == pytest.approx(fft_mag, abs=1e-9)

    def test_rejects_out_of_range_frequency(self):
        tone = sine_tone(1000, 0.05)
        with pytest.raises(ValueError):
            goertzel_magnitude(tone, -1.0)
        with pytest.raises(ValueError):
            goertzel_magnitude(tone, 9000.0)


class TestGoertzelBank:
    def test_requires_frequencies(self):
        with pytest.raises(ValueError):
            GoertzelBank([])

    def test_analyze_returns_all_watched(self):
        bank = GoertzelBank([500, 1000, 1500])
        results = bank.analyze(sine_tone(1000, 0.1, level_db=60.0))
        assert [r.frequency for r in results] == [500, 1000, 1500]

    def test_detect_picks_present_tone(self):
        bank = GoertzelBank([500, 1000, 1500])
        hits = bank.detect(sine_tone(1000, 0.1, level_db=60.0))
        assert [h.frequency for h in hits] == [1000]

    def test_detect_with_noise(self, rng):
        bank = GoertzelBank([500, 1000, 1500])
        mix = sine_tone(1500, 0.2, level_db=65.0).mix(
            white_noise(0.2, level_db=40.0, rng=rng)
        )
        hits = bank.detect(mix)
        assert [h.frequency for h in hits] == [1500]

    def test_detect_multiple_simultaneous(self):
        bank = GoertzelBank([500, 1000, 1500])
        mix = AudioSignal.from_components([
            sine_tone(500, 0.2, level_db=60.0),
            sine_tone(1500, 0.2, level_db=62.0),
        ])
        hits = bank.detect(mix)
        assert {h.frequency for h in hits} == {500, 1500}


class TestFloorProbes:
    def test_probes_clear_of_watched_frequencies(self):
        """Every floor probe keeps its distance from the watch list —
        including for low watch lists, where the legacy low-edge probe
        (freqs[0] * 0.5 + 10 Hz) landed exactly on a 20 Hz tone."""
        for watched in ([20.0], [20.0, 40.0], [500.0, 540.0, 580.0]):
            bank = GoertzelBank(watched)
            probes = bank.floor_probe_frequencies(16_000)
            assert probes, watched
            for probe in probes:
                assert min(abs(probe - f) for f in watched) >= 20.0, (
                    watched, probe
                )

    def test_low_frequency_plan_tone_detected(self):
        """Regression: with a 20 Hz watch list, the on-tone low-edge
        probe inflated the floor and suppressed the detection."""
        bank = GoertzelBank([20.0])
        tone = sine_tone(20.0, 0.5, level_db=60.0)
        hits = bank.detect(tone)
        assert [h.frequency for h in hits] == [20.0]

    def test_low_frequency_plan_stays_quiet_on_silence(self):
        """The relocated probes must still reject empty windows."""
        bank = GoertzelBank([20.0, 40.0])
        assert bank.detect(AudioSignal.silence(0.5)) == []

    def test_midband_probe_set_unchanged_for_guarded_plans(self):
        """A standard 40 Hz-guard plan keeps its legacy probe layout:
        midpoints plus one probe below and one above the band."""
        watched = [500.0 + 40.0 * i for i in range(4)]
        bank = GoertzelBank(watched)
        probes = bank.floor_probe_frequencies(16_000)
        assert probes == [520.0, 560.0, 600.0, 260.0, 806.0]
