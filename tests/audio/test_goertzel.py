"""Unit tests for the Goertzel detection backend."""

import numpy as np
import pytest

from repro.audio import (
    AudioSignal,
    GoertzelBank,
    SpectrumAnalyzer,
    goertzel_magnitude,
    sine_tone,
    white_noise,
)


class TestGoertzelMagnitude:
    def test_matches_fft_calibration(self):
        """Goertzel and the FFT backend agree on a tone's level."""
        tone = sine_tone(1000, 0.1, level_db=60.0)
        fft_level = SpectrumAnalyzer().analyze(tone).level_at(1000)
        from repro.audio import amplitude_to_db
        goertzel_level = amplitude_to_db(goertzel_magnitude(tone, 1000))
        assert goertzel_level == pytest.approx(fft_level, abs=0.1)

    def test_off_tone_magnitude_is_small(self):
        tone = sine_tone(1000, 0.1, level_db=60.0)
        on = goertzel_magnitude(tone, 1000)
        off = goertzel_magnitude(tone, 2000)
        assert on > 1000 * off

    def test_empty_signal(self):
        assert goertzel_magnitude(AudioSignal(np.zeros(0)), 440) == 0.0

    def test_rejects_out_of_range_frequency(self):
        tone = sine_tone(1000, 0.05)
        with pytest.raises(ValueError):
            goertzel_magnitude(tone, -1.0)
        with pytest.raises(ValueError):
            goertzel_magnitude(tone, 9000.0)


class TestGoertzelBank:
    def test_requires_frequencies(self):
        with pytest.raises(ValueError):
            GoertzelBank([])

    def test_analyze_returns_all_watched(self):
        bank = GoertzelBank([500, 1000, 1500])
        results = bank.analyze(sine_tone(1000, 0.1, level_db=60.0))
        assert [r.frequency for r in results] == [500, 1000, 1500]

    def test_detect_picks_present_tone(self):
        bank = GoertzelBank([500, 1000, 1500])
        hits = bank.detect(sine_tone(1000, 0.1, level_db=60.0))
        assert [h.frequency for h in hits] == [1000]

    def test_detect_with_noise(self, rng):
        bank = GoertzelBank([500, 1000, 1500])
        mix = sine_tone(1500, 0.2, level_db=65.0).mix(
            white_noise(0.2, level_db=40.0, rng=rng)
        )
        hits = bank.detect(mix)
        assert [h.frequency for h in hits] == [1500]

    def test_detect_multiple_simultaneous(self):
        bank = GoertzelBank([500, 1000, 1500])
        mix = AudioSignal.from_components([
            sine_tone(500, 0.2, level_db=60.0),
            sine_tone(1500, 0.2, level_db=62.0),
        ])
        hits = bank.detect(mix)
        assert {h.frequency for h in hits} == {500, 1500}
