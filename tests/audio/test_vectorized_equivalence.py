"""Equivalence suite: vectorized hot paths vs their scalar references.

The listening loop's vectorized implementations (the Goertzel phasor
bank, the batched spectrogram, the streaming detector) must reproduce
the scalar/looped reference implementations within 1e-9 — the RMS
calibration contract of DESIGN.md §5 — across window sizes, hop sizes
and zero-pad factors, including non-divisible frame/hop combinations.
"""

import numpy as np
import pytest

from repro.audio import (
    AudioSignal,
    FrequencyDetector,
    GoertzelBank,
    SpectrumAnalyzer,
    chirp,
    goertzel_magnitude,
    power_spectrogram,
    power_spectrogram_reference,
    sine_tone,
    white_noise,
)

TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def busy_signal():
    """One second of tones + noise: every bin has energy to compare."""
    rng = np.random.default_rng(99)
    return AudioSignal.from_components([
        sine_tone(500, 1.0, level_db=62.0),
        sine_tone(940, 1.0, level_db=58.0),
        chirp(1200, 2400, 1.0, level_db=55.0),
        white_noise(1.0, level_db=45.0, rng=rng),
    ])


class TestGoertzelBankEquivalence:
    @pytest.mark.parametrize("window_duration", [0.02, 0.05, 0.1, 0.0501])
    def test_bank_matches_scalar_reference(self, busy_signal, window_duration):
        """analyze() equals goertzel_magnitude per watched frequency."""
        window = busy_signal.slice_time(0.1, 0.1 + window_duration)
        frequencies = [500.0 + 40.0 * i for i in range(16)]
        bank = GoertzelBank(frequencies)
        vectorized = np.array([r.magnitude for r in bank.analyze(window)])
        reference = np.array([
            goertzel_magnitude(window, f) for f in frequencies
        ])
        np.testing.assert_allclose(vectorized, reference, atol=TOLERANCE)

    def test_bank_matches_reference_at_odd_window_length(self, busy_signal):
        """Odd sample counts exercise the no-Nyquist-bin phasor path."""
        window = AudioSignal(busy_signal.samples[:801])
        frequencies = [0.0, 440.0, 8000.0]
        bank = GoertzelBank(frequencies)
        vectorized = np.array([r.magnitude for r in bank.analyze(window)])
        reference = np.array([
            goertzel_magnitude(window, f) for f in frequencies
        ])
        np.testing.assert_allclose(vectorized, reference, atol=TOLERANCE)

    @pytest.mark.parametrize(("frame_duration", "hop_duration"),
                             [(0.05, None), (0.05, 0.02), (0.05, 0.037)])
    def test_analyze_block_matches_per_window(self, busy_signal,
                                              frame_duration, hop_duration):
        """Batched frames produce the same magnitudes as one-at-a-time."""
        bank = GoertzelBank([500.0, 940.0, 1500.0, 2400.0])
        times, frames = busy_signal.frame_matrix(frame_duration, hop_duration)
        block = bank.analyze_block(frames, busy_signal.sample_rate)
        assert block.shape == (len(times), 4)
        for index, (_start, frame) in enumerate(
            busy_signal.frames(frame_duration, hop_duration)
        ):
            reference = np.array([r.magnitude for r in bank.analyze(frame)])
            np.testing.assert_allclose(block[index], reference, atol=TOLERANCE)

    def test_floor_block_matches_estimate_floor(self, busy_signal):
        bank = GoertzelBank([500.0, 940.0, 1500.0])
        times, frames = busy_signal.frame_matrix(0.05)
        floors = bank.floor_block(frames, busy_signal.sample_rate)
        for index, (_start, frame) in enumerate(busy_signal.frames(0.05)):
            assert floors[index] == pytest.approx(
                bank._estimate_floor(frame), abs=TOLERANCE
            )


class TestSpectrogramEquivalence:
    @pytest.mark.parametrize(("frame_duration", "hop_duration"), [
        (0.05, None),          # non-overlapping
        (0.05, 0.025),         # half-overlap
        (0.05, 0.037),         # non-divisible frame/hop
        (0.1, 0.03),           # hop does not divide the frame
        (0.0501, 0.0203),      # neither aligns with the sample grid
    ])
    @pytest.mark.parametrize("zero_pad_factor", [1, 2, 3])
    def test_batched_matches_looped_reference(self, busy_signal,
                                              frame_duration, hop_duration,
                                              zero_pad_factor):
        analyzer = SpectrumAnalyzer(zero_pad_factor=zero_pad_factor)
        times, frequencies, magnitudes = power_spectrogram(
            busy_signal, frame_duration, hop_duration, analyzer
        )
        ref_times, ref_frequencies, ref_magnitudes = power_spectrogram_reference(
            busy_signal, frame_duration, hop_duration, analyzer
        )
        np.testing.assert_array_equal(times, ref_times)
        np.testing.assert_array_equal(frequencies, ref_frequencies)
        np.testing.assert_allclose(magnitudes, ref_magnitudes, atol=TOLERANCE)

    def test_rect_window_matches_reference(self, busy_signal):
        analyzer = SpectrumAnalyzer(window="rect")
        _t, _f, magnitudes = power_spectrogram(busy_signal, 0.05, None, analyzer)
        _t, _f, reference = power_spectrogram_reference(
            busy_signal, 0.05, None, analyzer
        )
        np.testing.assert_allclose(magnitudes, reference, atol=TOLERANCE)

    def test_frame_matrix_matches_frames_iterator(self, busy_signal):
        times, frames = busy_signal.frame_matrix(0.05, 0.037)
        reference = list(busy_signal.frames(0.05, 0.037))
        assert len(times) == len(reference)
        for index, (start, frame) in enumerate(reference):
            assert times[index] == start
            np.testing.assert_array_equal(frames[index], frame.samples)


class TestDetectStreamEquivalence:
    @pytest.mark.parametrize("backend", ["fft", "goertzel"])
    @pytest.mark.parametrize("hop_duration", [None, 0.03])
    def test_stream_matches_manual_framing(self, busy_signal, backend,
                                           hop_duration):
        """detect_stream == framing the signal yourself + detect per frame."""
        detector = FrequencyDetector([500.0, 940.0, 1500.0], backend=backend)
        stream = detector.detect_stream(busy_signal, 0.05, hop_duration)
        manual = [
            event
            for start, frame in busy_signal.frames(0.05, hop_duration)
            for event in detector.detect(frame, start)
        ]
        assert len(stream) == len(manual)
        for got, want in zip(stream, manual):
            assert got.frequency == want.frequency
            assert got.time == want.time
            assert got.measured_frequency == pytest.approx(
                want.measured_frequency, abs=TOLERANCE
            )
            assert got.level_db == pytest.approx(want.level_db, abs=TOLERANCE)
