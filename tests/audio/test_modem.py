"""Unit tests for the FSK acoustic data modem."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import (
    AcousticChannel,
    FskReceiver,
    FskTransmitter,
    Microphone,
    ModemConfig,
    ModemError,
    Position,
    SongNoise,
    Speaker,
    default_modem_config,
)
from repro.core import FrequencyPlan


@pytest.fixture
def config():
    plan = FrequencyPlan(low_hz=1000.0, guard_hz=40.0)
    return default_modem_config(plan.allocate("modem", 5))


def roundtrip(config, payload, noise=None, mic_seed=9):
    channel = AcousticChannel()
    if noise is not None:
        channel.add_noise(noise, Position(2.0, 2.0, 0.0))
    transmitter = FskTransmitter(config, Speaker(Position(0.6, 0.0, 0.0)))
    end = transmitter.send(channel, 0.5, payload)
    capture = Microphone(Position(), seed=mic_seed).record(
        channel, 0.0, end + 0.3
    )
    return FskReceiver(config).decode(capture, 0.0)


class TestConfig:
    def test_alphabet_must_pack_into_bytes(self):
        with pytest.raises(ValueError):
            ModemConfig(frequencies=(500.0, 540.0, 580.0),
                        preamble_frequency=460.0)
        # 8-FSK (3 bits/symbol) straddles byte boundaries: rejected.
        with pytest.raises(ValueError):
            ModemConfig(
                frequencies=tuple(500.0 + 40.0 * i for i in range(8)),
                preamble_frequency=460.0,
            )

    def test_preamble_not_in_alphabet(self):
        with pytest.raises(ValueError):
            ModemConfig(frequencies=(500.0, 540.0),
                        preamble_frequency=500.0)

    def test_throughput_math(self, config):
        # 4-FSK = 2 bits/symbol at 75 ms/symbol -> ~26.7 bit/s.
        assert config.bits_per_symbol == 2
        assert config.bits_per_second == pytest.approx(26.7, abs=0.1)

    def test_twenty_bytes_takes_seconds(self, config):
        """The paper cites ~6 s for a 20-byte packet over one acoustic
        hop; our defaults land in the same regime."""
        assert 4.0 < config.frame_airtime(20) < 10.0

    def test_default_config_needs_five_frequencies(self):
        plan = FrequencyPlan(low_hz=1000.0, guard_hz=40.0)
        with pytest.raises(ValueError):
            default_modem_config(plan.allocate("small", 3))


class TestRoundtrip:
    def test_short_payload(self, config):
        assert roundtrip(config, b"hi") == b"hi"

    def test_longer_payload(self, config):
        payload = b"MDN management alert: fan 3 failing"
        assert roundtrip(config, payload) == payload

    def test_empty_payload(self, config):
        assert roundtrip(config, b"") == b""

    def test_binary_payload(self, config):
        payload = bytes(range(0, 256, 17))
        assert roundtrip(config, payload) == payload

    def test_roundtrip_with_song_noise(self, config):
        song = SongNoise(seed=5, level_db=50.0).render(6.0)
        assert roundtrip(config, b"noisy", noise=song) == b"noisy"

    def test_payload_too_long_rejected(self, config):
        transmitter = FskTransmitter(config, Speaker())
        with pytest.raises(ValueError, match="too long"):
            transmitter.send(AcousticChannel(), 0.0, bytes(300))

    @settings(max_examples=10, deadline=None)
    @given(payload=st.binary(min_size=1, max_size=8))
    def test_roundtrip_property(self, payload):
        plan = FrequencyPlan(low_hz=1000.0, guard_hz=40.0)
        fresh_config = default_modem_config(plan.allocate("modem", 5))
        assert roundtrip(fresh_config, payload) == payload

    def test_bfsk_roundtrip(self):
        """2-FSK: one bit per symbol, slowest but simplest alphabet."""
        config = ModemConfig(frequencies=(1200.0, 1280.0),
                             preamble_frequency=1100.0)
        assert config.bits_per_symbol == 1
        assert roundtrip(config, b"slow") == b"slow"

    def test_16fsk_roundtrip(self):
        """16-FSK: a nibble per symbol, twice the default throughput."""
        config = ModemConfig(
            frequencies=tuple(1200.0 + 60.0 * i for i in range(16)),
            preamble_frequency=1100.0,
        )
        assert config.bits_per_symbol == 4
        assert config.bits_per_second > 50.0
        assert roundtrip(config, b"fast nibbles") == b"fast nibbles"


class TestDecodeErrors:
    def test_no_preamble(self, config):
        channel = AcousticChannel()
        capture = Microphone(Position(), seed=1).record(channel, 0.0, 1.0)
        with pytest.raises(ModemError, match="preamble"):
            FskReceiver(config).decode(capture, 0.0)

    def test_truncated_frame(self, config):
        channel = AcousticChannel()
        transmitter = FskTransmitter(config, Speaker(Position(0.5, 0, 0)))
        end = transmitter.send(channel, 0.1, b"hello world")
        # Capture only half the frame.
        capture = Microphone(Position(), seed=2).record(
            channel, 0.0, 0.1 + (end - 0.1) / 2
        )
        with pytest.raises(ModemError):
            FskReceiver(config).decode(capture, 0.0)
