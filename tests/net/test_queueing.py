"""Unit tests for drop-tail queues and the queue band classifier."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import FlowKey, Packet, PacketQueue, QueueBands


def make_packet(index: int = 0) -> Packet:
    return Packet(FlowKey("10.0.0.1", "10.0.0.2", 1000 + index, 80))


class TestPacketQueue:
    def test_fifo_order(self):
        queue = PacketQueue(capacity=10)
        packets = [make_packet(i) for i in range(3)]
        for packet in packets:
            assert queue.enqueue(packet)
        assert [queue.dequeue() for _ in range(3)] == packets

    def test_capacity_enforced(self):
        queue = PacketQueue(capacity=2)
        assert queue.enqueue(make_packet(0))
        assert queue.enqueue(make_packet(1))
        assert not queue.enqueue(make_packet(2))
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PacketQueue(capacity=0)

    def test_dequeue_empty(self):
        assert PacketQueue().dequeue() is None

    def test_head_peeks(self):
        queue = PacketQueue()
        packet = make_packet()
        queue.enqueue(packet)
        assert queue.head() is packet
        assert len(queue) == 1

    def test_peak_length_tracked(self):
        queue = PacketQueue(capacity=10)
        for i in range(5):
            queue.enqueue(make_packet(i))
        for _ in range(5):
            queue.dequeue()
        assert queue.peak_length == 5
        assert len(queue) == 0

    def test_sample_records_series(self):
        queue = PacketQueue(name="q")
        queue.enqueue(make_packet())
        assert queue.sample(1.0) == 1
        queue.enqueue(make_packet(1))
        assert queue.sample(2.0) == 2
        assert queue.occupancy.values == [1, 2]

    def test_bytes_queued(self):
        queue = PacketQueue()
        queue.enqueue(Packet(FlowKey("a", "b", 1, 2), size_bytes=500))
        queue.enqueue(Packet(FlowKey("a", "b", 1, 2), size_bytes=700))
        assert queue.bytes_queued() == 1200

    @given(st.lists(st.sampled_from(["enq", "deq"]), max_size=60))
    def test_accounting_invariant(self, operations):
        """enqueued == dequeued + len(queue), always; drops counted
        separately; length never exceeds capacity."""
        queue = PacketQueue(capacity=5)
        for op in operations:
            if op == "enq":
                queue.enqueue(make_packet())
            else:
                queue.dequeue()
            assert len(queue) <= queue.capacity
            assert queue.enqueued == queue.dequeued + len(queue)


class TestQueueBands:
    def test_paper_thresholds(self):
        bands = QueueBands()  # 25 / 75
        assert bands.classify(0) == "low"
        assert bands.classify(24) == "low"
        assert bands.classify(25) == "medium"
        assert bands.classify(75) == "medium"
        assert bands.classify(76) == "high"
        assert bands.classify(150) == "high"

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueBands(low=0, high=10)
        with pytest.raises(ValueError):
            QueueBands(low=50, high=50)

    @given(st.integers(min_value=0, max_value=1000))
    def test_total_classification(self, length):
        assert QueueBands().classify(length) in ("low", "medium", "high")
