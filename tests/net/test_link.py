"""Unit tests for links: serialization, delay, queueing, failure."""

import pytest

from repro.net import FlowKey, Link, Node, Packet, Simulator


class Sink(Node):
    """Test node recording (packet, in_port, time) arrivals."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []

    def receive(self, packet, in_port):
        self.arrivals.append((packet, in_port, self.sim.now))


def packet(size=1000):
    return Packet(FlowKey("10.0.0.1", "10.0.0.2", 1, 2), size_bytes=size)


@pytest.fixture
def wired():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = Link(sim, a, 1, b, 1, bandwidth_bps=1_000_000, delay=0.01)
    return sim, a, b, link


class TestDelivery:
    def test_serialization_plus_propagation(self, wired):
        sim, a, b, link = wired
        # 1000 B at 1 Mb/s -> 8 ms serialization + 10 ms delay = 18 ms.
        a.transmit(packet(1000), 1)
        sim.run(1.0)
        assert len(b.arrivals) == 1
        _pkt, in_port, when = b.arrivals[0]
        assert in_port == 1
        assert when == pytest.approx(0.018)

    def test_bidirectional(self, wired):
        sim, a, b, link = wired
        a.transmit(packet(), 1)
        b.transmit(packet(), 1)
        sim.run(1.0)
        assert len(a.arrivals) == 1
        assert len(b.arrivals) == 1

    def test_hop_count_incremented(self, wired):
        sim, a, b, _link = wired
        pkt = packet()
        assert pkt.hops == 0
        a.transmit(pkt, 1)
        sim.run(1.0)
        assert b.arrivals[0][0].hops == 1

    def test_back_to_back_packets_serialize(self, wired):
        sim, a, b, _link = wired
        for _ in range(3):
            a.transmit(packet(1000), 1)
        sim.run(1.0)
        times = [when for _p, _ip, when in b.arrivals]
        # 8 ms apart: the line is busy, packets queue.
        assert times == pytest.approx([0.018, 0.026, 0.034])

    def test_counters(self, wired):
        sim, a, b, link = wired
        a.transmit(packet(500), 1)
        sim.run(1.0)
        assert link.a_to_b.bytes_sent.total == 500
        assert link.a_to_b.packets_sent.total == 1


class TestQueueing:
    def test_overflow_drops(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(sim, a, 1, b, 1, bandwidth_bps=1_000_000, delay=0.001,
             queue_capacity=2)
        # One transmitting + 2 queued; the rest are dropped.
        results = [a.transmit(packet(), 1) for _ in range(5)]
        assert results == [True, True, True, False, False]
        sim.run(1.0)
        assert len(b.arrivals) == 3

    def test_queue_length_visible_from_node(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(sim, a, 1, b, 1, bandwidth_bps=1_000_000, delay=0.001)
        for _ in range(4):
            a.transmit(packet(), 1)
        assert a.queue_length(1) == 3  # head is on the wire

    def test_unknown_port_errors(self):
        sim = Simulator()
        node = Sink(sim, "x")
        with pytest.raises(ValueError):
            node.transmit(packet(), 9)
        with pytest.raises(ValueError):
            node.queue_length(9)

    def test_double_attach_rejected(self):
        sim = Simulator()
        a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
        Link(sim, a, 1, b, 1)
        with pytest.raises(ValueError):
            Link(sim, a, 1, c, 1)


class TestAsymmetry:
    def test_per_direction_bandwidth(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(sim, a, 1, b, 1, bandwidth_bps=8_000_000, delay=0.0,
             bandwidth_ba_bps=1_000_000)
        a.transmit(packet(1000), 1)   # 1 ms at 8 Mb/s
        b.transmit(packet(1000), 1)   # 8 ms at 1 Mb/s
        sim.run(1.0)
        assert b.arrivals[0][2] == pytest.approx(0.001)
        assert a.arrivals[0][2] == pytest.approx(0.008)


class TestFailure:
    def test_failed_link_drops_traffic(self, wired):
        sim, a, b, link = wired
        link.fail()
        assert not a.transmit(packet(), 1)
        sim.run(1.0)
        assert b.arrivals == []

    def test_fail_flushes_queue(self, wired):
        sim, a, b, link = wired
        for _ in range(3):
            a.transmit(packet(), 1)
        link.fail()
        sim.run(1.0)
        assert b.arrivals == []
        assert a.queue_length(1) == 0

    def test_in_flight_packet_lost_on_failure(self, wired):
        sim, a, b, link = wired
        a.transmit(packet(), 1)   # arrives at 18 ms if healthy
        sim.run(0.005)
        link.fail()
        sim.run(1.0)
        assert b.arrivals == []

    def test_restore_resumes(self, wired):
        sim, a, b, link = wired
        link.fail()
        link.restore()
        a.transmit(packet(), 1)
        sim.run(1.0)
        assert len(b.arrivals) == 1

    def test_validation(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a, 1, b, 1, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(sim, a, 2, b, 2, delay=-1.0)
