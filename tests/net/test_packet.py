"""Unit tests for packets and flow hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import FlowKey, Packet, Protocol

ports = st.integers(min_value=0, max_value=65535)
ips = st.from_regex(r"10\.\d{1,3}\.\d{1,3}\.\d{1,3}", fullmatch=True)


class TestFlowKey:
    def test_port_validation(self):
        with pytest.raises(ValueError):
            FlowKey("a", "b", -1, 80)
        with pytest.raises(ValueError):
            FlowKey("a", "b", 80, 70000)

    def test_reversed(self):
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80, Protocol.TCP)
        rev = flow.reversed()
        assert rev.src_ip == "10.0.0.2"
        assert rev.dst_port == 1234
        assert rev.reversed() == flow

    def test_str_format(self):
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
        assert str(flow) == "10.0.0.1:1234->10.0.0.2:80/TCP"

    def test_hash_is_stable_known_value(self):
        """Pin one hash value: a change here would silently remap every
        flow to a different frequency across versions."""
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80, Protocol.TCP)
        assert flow.stable_hash() == FlowKey(
            "10.0.0.1", "10.0.0.2", 1234, 80, Protocol.TCP
        ).stable_hash()
        assert 0 <= flow.stable_hash() < 2**64

    @given(ips, ips, ports, ports)
    def test_hash_deterministic(self, src, dst, sport, dport):
        a = FlowKey(src, dst, sport, dport).stable_hash()
        b = FlowKey(src, dst, sport, dport).stable_hash()
        assert a == b

    @given(ips, ips, ports, ports)
    def test_protocol_distinguishes_flows(self, src, dst, sport, dport):
        tcp = FlowKey(src, dst, sport, dport, Protocol.TCP).stable_hash()
        udp = FlowKey(src, dst, sport, dport, Protocol.UDP).stable_hash()
        assert tcp != udp

    def test_direction_distinguishes_flows(self):
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
        assert flow.stable_hash() != flow.reversed().stable_hash()

    def test_hash_spreads_over_buckets(self):
        """1000 distinct flows into 16 buckets: no bucket is empty."""
        buckets = set()
        for index in range(1000):
            flow = FlowKey("10.0.0.1", "10.0.0.2", 1000 + index, 80)
            buckets.add(flow.stable_hash() % 16)
        assert buckets == set(range(16))


class TestPacket:
    def test_rejects_nonpositive_size(self):
        flow = FlowKey("a", "b", 1, 2)
        with pytest.raises(ValueError):
            Packet(flow, size_bytes=0)

    def test_size_bits(self):
        flow = FlowKey("a", "b", 1, 2)
        assert Packet(flow, size_bytes=125).size_bits == 1000

    def test_ids_unique(self):
        flow = FlowKey("a", "b", 1, 2)
        first = Packet(flow)
        second = Packet(flow)
        assert first.packet_id != second.packet_id
