"""Unit tests for traffic generators."""

import pytest

from repro.net import (
    ConstantRateSource,
    FlowMixWorkload,
    OnOffSource,
    PoissonSource,
    PortScanSource,
    RampSource,
    Simulator,
    single_switch_topology,
)


@pytest.fixture
def net():
    sim = Simulator()
    topo = single_switch_topology(sim, 2, bandwidth_bps=50_000_000,
                                  access_bandwidth_bps=50_000_000)
    return sim, topo.hosts["h1"], topo.hosts["h2"]


class TestConstantRate:
    def test_emits_at_rate(self, net):
        sim, h1, h2 = net
        src = ConstantRateSource(h1, "10.0.0.2", 80, rate_pps=100,
                                 start=0.0, stop=2.0)
        src.launch()
        sim.run(3.0)
        assert src.packets_emitted == pytest.approx(200, abs=2)
        assert h2.packets_received.total == src.packets_emitted

    def test_start_stop_window(self, net):
        sim, h1, _h2 = net
        src = ConstantRateSource(h1, "10.0.0.2", 80, rate_pps=10,
                                 start=1.0, stop=1.5)
        src.launch()
        sim.run(0.9)
        assert src.packets_emitted == 0
        sim.run(3.0)
        assert 4 <= src.packets_emitted <= 6

    def test_halt(self, net):
        sim, h1, _h2 = net
        src = ConstantRateSource(h1, "10.0.0.2", 80, rate_pps=100)
        src.launch()
        sim.run(0.5)
        src.halt()
        count = src.packets_emitted
        sim.run(2.0)
        assert src.packets_emitted == count

    def test_double_launch_rejected(self, net):
        _sim, h1, _h2 = net
        src = ConstantRateSource(h1, "10.0.0.2", 80, rate_pps=10)
        src.launch()
        with pytest.raises(RuntimeError):
            src.launch()

    def test_validation(self, net):
        _sim, h1, _h2 = net
        with pytest.raises(ValueError):
            ConstantRateSource(h1, "10.0.0.2", 80, rate_pps=0)


class TestRamp:
    def test_rate_increases(self, net):
        sim, h1, _h2 = net
        src = RampSource(h1, "10.0.0.2", 80, initial_rate_pps=10,
                         slope_pps_per_s=20)
        src.launch()
        sim.run(1.0)
        first_second = src.packets_emitted
        sim.run(2.0)
        second_second = src.packets_emitted - first_second
        assert second_second > first_second

    def test_cap_respected(self, net):
        sim, h1, _h2 = net
        src = RampSource(h1, "10.0.0.2", 80, initial_rate_pps=10,
                         slope_pps_per_s=1000, max_rate_pps=50)
        src.launch()
        sim.run(5.0)
        assert src.current_rate() == 50

    def test_validation(self, net):
        _sim, h1, _h2 = net
        with pytest.raises(ValueError):
            RampSource(h1, "10.0.0.2", 80, initial_rate_pps=0,
                       slope_pps_per_s=1)
        with pytest.raises(ValueError):
            RampSource(h1, "10.0.0.2", 80, initial_rate_pps=1,
                       slope_pps_per_s=-1)


class TestPoisson:
    def test_mean_rate(self, net):
        sim, h1, _h2 = net
        src = PoissonSource(h1, "10.0.0.2", 80, rate_pps=200, seed=1)
        src.launch()
        sim.run(5.0)
        assert src.packets_emitted == pytest.approx(1000, rel=0.15)

    def test_deterministic_with_seed(self):
        counts = []
        for _ in range(2):
            sim = Simulator()
            topo = single_switch_topology(sim, 2)
            src = PoissonSource(topo.hosts["h1"], "10.0.0.2", 80,
                                rate_pps=50, seed=9)
            src.launch()
            sim.run(2.0)
            counts.append(src.packets_emitted)
        assert counts[0] == counts[1]


class TestOnOff:
    def test_bursts_and_silence(self, net):
        sim, h1, _h2 = net
        src = OnOffSource(h1, "10.0.0.2", 80, rate_pps=100,
                          on_duration=0.5, off_duration=0.5)
        src.launch()
        sim.run(2.0)
        # Two ON halves of ~50 packets each.
        assert src.packets_emitted == pytest.approx(100, abs=6)

    def test_validation(self, net):
        _sim, h1, _h2 = net
        with pytest.raises(ValueError):
            OnOffSource(h1, "10.0.0.2", 80, rate_pps=10,
                        on_duration=0, off_duration=1)


class TestPortScan:
    def test_covers_all_ports_once(self, net):
        sim, h1, h2 = net
        src = PortScanSource(h1, "10.0.0.2", range(8000, 8020), interval=0.01)
        src.launch()
        sim.run(1.0)
        assert src.packets_emitted == 20
        assert set(h2.port_bytes) == set(range(8000, 8020))

    def test_probes_per_port(self, net):
        sim, h1, h2 = net
        src = PortScanSource(h1, "10.0.0.2", range(8000, 8005),
                             interval=0.01, probes_per_port=3)
        src.launch()
        sim.run(1.0)
        assert src.packets_emitted == 15
        assert all(v == 3000 for v in h2.port_bytes.values())

    def test_sequential_order(self, net):
        sim, h1, h2 = net
        arrivals = []
        h2.on_delivery(lambda pkt: arrivals.append(pkt.flow.dst_port))
        src = PortScanSource(h1, "10.0.0.2", range(8000, 8010), interval=0.02)
        src.launch()
        sim.run(1.0)
        assert arrivals == sorted(arrivals)

    def test_validation(self, net):
        _sim, h1, _h2 = net
        with pytest.raises(ValueError):
            PortScanSource(h1, "10.0.0.2", range(0))


class TestFlowMix:
    def test_heavy_flow_dominates(self, net):
        sim, h1, h2 = net
        mix = FlowMixWorkload(h1, "10.0.0.2", link_capacity_pps=250,
                              num_flows=8, heavy_fraction=0.3, seed=3)
        mix.launch()
        sim.run(4.0)
        mix.halt()
        assert len(mix.heavy_flows) == 1
        heavy = mix.heavy_flows[0]
        per_port = h2.port_bytes
        heavy_bytes = per_port.get(heavy.dst_port, 0)
        others = [v for port, v in per_port.items() if port != heavy.dst_port]
        assert heavy_bytes > 3 * max(others, default=0)

    def test_heavy_rate_targets_fraction(self, net):
        _sim, h1, _h2 = net
        mix = FlowMixWorkload(h1, "10.0.0.2", link_capacity_pps=200,
                              heavy_fraction=0.4)
        heavy_spec = mix.specs[0]
        assert heavy_spec.rate_pps == pytest.approx(80.0)

    def test_validation(self, net):
        _sim, h1, _h2 = net
        with pytest.raises(ValueError):
            FlowMixWorkload(h1, "10.0.0.2", 100, heavy_fraction=1.5)
        with pytest.raises(ValueError):
            FlowMixWorkload(h1, "10.0.0.2", 100, num_flows=2, num_heavy=3)


class TestHaltRelaunch:
    def test_relaunch_emits_at_exactly_configured_rate(self, net):
        """Regression: the pre-halt emission chain used to survive a
        halt() + launch() cycle — two chains then drove the source at
        double its configured rate.  The generation token retires the
        stale chain, so a relaunched source emits at exactly rate_pps."""
        sim, h1, _h2 = net
        src = ConstantRateSource(h1, "10.0.0.2", 80, rate_pps=100)
        src.launch()
        sim.run(0.5)
        src.halt()
        sim.run(1.0)
        before = src.packets_emitted
        src.launch()
        sim.run(3.0)  # exactly 2.0 s of relaunched run
        emitted = src.packets_emitted - before
        assert emitted == pytest.approx(200, abs=3)

    def test_repeated_cycles_do_not_accumulate_chains(self, net):
        sim, h1, _h2 = net
        src = ConstantRateSource(h1, "10.0.0.2", 80, rate_pps=50)
        now = 0.0
        for _cycle in range(4):
            src.launch()
            now += 0.25
            sim.run(now)
            src.halt()
        before = src.packets_emitted
        src.launch()
        sim.run(now + 2.0)
        # One live chain: 2 s at 50 pps, not 5 chains' worth.
        assert src.packets_emitted - before == pytest.approx(100, abs=3)

    def test_onoff_source_relaunch_keeps_duty_cycle(self, net):
        sim, h1, _h2 = net
        src = OnOffSource(h1, "10.0.0.2", 80, rate_pps=100,
                          on_duration=0.5, off_duration=0.5)
        src.launch()
        sim.run(0.3)
        src.halt()
        before = src.packets_emitted
        src.launch()
        sim.run(4.3)  # 4 more seconds: ~2.0 s of ON time at 100 pps
        emitted = src.packets_emitted - before
        assert emitted <= 2.0 * 100 + 10
