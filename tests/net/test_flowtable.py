"""Unit tests for OpenFlow-style flow tables."""

import pytest

from repro.net import Action, ActionType, FlowEntry, FlowKey, FlowTable, Match, Packet, Protocol


def packet(dst_port=80, src_ip="10.0.0.1", dst_ip="10.0.0.2",
           protocol=Protocol.TCP):
    return Packet(FlowKey(src_ip, dst_ip, 1234, dst_port, protocol))


class TestMatch:
    def test_wildcard_matches_everything(self):
        assert Match().matches(packet(), in_port=3)

    def test_exact_field_match(self):
        match = Match(dst_port=80)
        assert match.matches(packet(80), 1)
        assert not match.matches(packet(81), 1)

    def test_in_port_match(self):
        match = Match(in_port=2)
        assert match.matches(packet(), 2)
        assert not match.matches(packet(), 3)

    def test_multiple_fields_all_required(self):
        match = Match(dst_ip="10.0.0.2", dst_port=80, protocol=Protocol.TCP)
        assert match.matches(packet(), 1)
        assert not match.matches(packet(protocol=Protocol.UDP), 1)

    def test_for_flow_is_exact(self):
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
        match = Match.for_flow(flow)
        assert match.matches(Packet(flow), 7)
        other = FlowKey("10.0.0.1", "10.0.0.2", 9999, 80)
        assert not match.matches(Packet(other), 7)

    def test_specificity(self):
        assert Match().specificity() == 0
        assert Match(dst_port=80).specificity() == 1
        assert Match.for_flow(
            FlowKey("a", "b", 1, 2)
        ).specificity() == 5


class TestAction:
    def test_constructors(self):
        assert Action.forward(3).out_ports == (3,)
        assert Action.drop().type is ActionType.DROP
        assert Action.flood().type is ActionType.FLOOD
        assert Action.split([1, 2]).out_ports == (1, 2)
        assert Action.controller().type is ActionType.CONTROLLER

    def test_split_requires_two_ports(self):
        with pytest.raises(ValueError):
            Action.split([1])

    def test_split_round_robin(self):
        entry = FlowEntry(Match(), Action.split([1, 2, 3]))
        picks = [entry.next_split_port() for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_round_robin_only_for_split(self):
        entry = FlowEntry(Match(), Action.forward(1))
        with pytest.raises(ValueError):
            entry.next_split_port()


class TestFlowTable:
    def test_miss_returns_none(self):
        assert FlowTable().lookup(packet(), 1) is None

    def test_priority_wins(self):
        table = FlowTable()
        table.install(Match(), Action.drop(), priority=0)
        table.install(Match(dst_port=80), Action.forward(1), priority=10)
        entry = table.lookup(packet(80), 1)
        assert entry.action.type is ActionType.FORWARD

    def test_specificity_breaks_priority_ties(self):
        table = FlowTable()
        table.install(Match(), Action.drop(), priority=5)
        table.install(Match(dst_port=80), Action.forward(2), priority=5)
        entry = table.lookup(packet(80), 1)
        assert entry.action.out_ports == (2,)

    def test_add_replaces_same_match_and_priority(self):
        table = FlowTable()
        table.install(Match(dst_port=80), Action.drop(), priority=5)
        table.install(Match(dst_port=80), Action.forward(1), priority=5)
        assert len(table) == 1
        assert table.lookup(packet(80), 1).action.type is ActionType.FORWARD

    def test_same_match_different_priority_coexist(self):
        table = FlowTable()
        table.install(Match(dst_port=80), Action.drop(), priority=1)
        table.install(Match(dst_port=80), Action.forward(1), priority=2)
        assert len(table) == 2

    def test_remove(self):
        table = FlowTable()
        table.install(Match(dst_port=80), Action.drop(), priority=1)
        table.install(Match(dst_port=80), Action.drop(), priority=2)
        assert table.remove(Match(dst_port=80), priority=1) == 1
        assert len(table) == 1
        assert table.remove(Match(dst_port=80)) == 1
        assert len(table) == 0

    def test_counters_account(self):
        table = FlowTable()
        entry = table.install(Match(dst_port=80), Action.forward(1))
        pkt = packet(80)
        entry.account(pkt)
        entry.account(pkt)
        assert entry.packet_count == 2
        assert entry.byte_count == 2 * pkt.size_bytes
