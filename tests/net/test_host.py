"""Unit tests for end hosts."""

import pytest

from repro.net import (
    ByteCounterSampler,
    FlowKey,
    Host,
    Link,
    Packet,
    Protocol,
    Simulator,
)


@pytest.fixture
def pair():
    sim = Simulator()
    h1 = Host(sim, "h1", "10.0.0.1")
    h2 = Host(sim, "h2", "10.0.0.2")
    Link(sim, h1, Host.NIC_PORT, h2, Host.NIC_PORT,
         bandwidth_bps=10_000_000, delay=0.0001)
    return sim, h1, h2


class TestSendReceive:
    def test_send_to_delivers(self, pair):
        sim, h1, h2 = pair
        h1.send_to("10.0.0.2", 80, size_bytes=500)
        sim.run(0.1)
        assert h2.bytes_received.total == 500
        assert h2.port_bytes == {80: 500}
        assert h1.bytes_sent.total == 500

    def test_wrong_destination_ignored(self, pair):
        sim, h1, h2 = pair
        h1.send_to("10.0.0.99", 80)
        sim.run(0.1)
        assert h2.bytes_received.total == 0

    def test_delivery_handler_called(self, pair):
        sim, h1, h2 = pair
        seen = []
        h2.on_delivery(lambda pkt: seen.append(pkt.flow.dst_port))
        h1.send_to("10.0.0.2", 443)
        sim.run(0.1)
        assert seen == [443]

    def test_explicit_src_port(self, pair):
        sim, h1, h2 = pair
        pkt = h1.send_to("10.0.0.2", 80, src_port=5555)
        assert pkt.flow.src_port == 5555

    def test_ephemeral_ports_vary(self, pair):
        _sim, h1, _h2 = pair
        a = h1.send_to("10.0.0.2", 80)
        b = h1.send_to("10.0.0.2", 80)
        assert a.flow.src_port != b.flow.src_port

    def test_protocol_propagated(self, pair):
        _sim, h1, _h2 = pair
        pkt = h1.send_to("10.0.0.2", 53, protocol=Protocol.UDP)
        assert pkt.flow.protocol is Protocol.UDP

    def test_packet_counters(self, pair):
        sim, h1, h2 = pair
        for _ in range(3):
            h1.send_to("10.0.0.2", 80)
        sim.run(0.1)
        assert h1.packets_sent.total == 3
        assert h2.packets_received.total == 3


class TestByteCounterSampler:
    def test_series_track_counters(self, pair):
        sim, h1, h2 = pair
        sampler = ByteCounterSampler(sim, h2, interval=0.5)
        sim.schedule_at(0.7, lambda: h1.send_to("10.0.0.2", 80, size_bytes=1000))
        sim.run(2.0)
        sampler.stop()
        # Samples at 0, 0.5 (before delivery) read 0; later read 1000.
        assert sampler.received.value_at(0.5) == 0
        assert sampler.received.value_at(1.5) == 1000

    def test_stop_halts_sampling(self, pair):
        sim, _h1, h2 = pair
        sampler = ByteCounterSampler(sim, h2, interval=0.1)
        sim.run(0.5)
        sampler.stop()
        count = len(sampler.received)
        sim.run(1.0)
        assert len(sampler.received) == count
