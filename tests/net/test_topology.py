"""Unit tests for topology builders and routing."""

import pytest

from repro.net import (
    Action,
    Simulator,
    Topology,
    linear_topology,
    rhombus_topology,
    single_switch_topology,
)


class TestTopologyBuilder:
    def test_duplicate_names_rejected(self):
        topo = Topology(Simulator())
        topo.add_switch("x")
        with pytest.raises(ValueError):
            topo.add_switch("x")
        with pytest.raises(ValueError):
            topo.add_host("x", "10.0.0.1")

    def test_node_lookup(self):
        topo = Topology(Simulator())
        topo.add_switch("s")
        topo.add_host("h", "10.0.0.1")
        assert topo.node("s").name == "s"
        assert topo.node("h").ip == "10.0.0.1"
        with pytest.raises(KeyError):
            topo.node("ghost")

    def test_port_towards(self):
        topo = Topology(Simulator())
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_switch("c")
        topo.connect("a", "b")
        topo.connect("a", "c")
        assert topo.port_towards("a", "b") == 1
        assert topo.port_towards("a", "c") == 2
        assert topo.port_towards("b", "a") == 1
        with pytest.raises(ValueError):
            topo.port_towards("b", "c")

    def test_install_route_requires_two_nodes(self):
        topo = Topology(Simulator())
        with pytest.raises(ValueError):
            topo.install_route(["a"], "10.0.0.1")


class TestSingleSwitch:
    def test_hosts_reach_each_other(self):
        sim = Simulator()
        topo = single_switch_topology(sim, num_hosts=3)
        topo.hosts["h1"].send_to("10.0.0.3", 80, size_bytes=700)
        sim.run(0.5)
        assert topo.hosts["h3"].bytes_received.total == 700
        assert topo.hosts["h2"].bytes_received.total == 0

    def test_closed_switch_drops(self):
        sim = Simulator()
        topo = single_switch_topology(sim, 2, default_action=Action.drop())
        topo.hosts["h1"].send_to("10.0.0.2", 80)
        sim.run(0.5)
        assert topo.hosts["h2"].bytes_received.total == 0
        assert topo.switches["s1"].packets_dropped.total == 1

    def test_requires_hosts(self):
        with pytest.raises(ValueError):
            single_switch_topology(Simulator(), 0)


class TestRhombus:
    def test_forward_path_via_top(self):
        sim = Simulator()
        topo = rhombus_topology(sim)
        topo.hosts["h1"].send_to("10.0.0.2", 80)
        sim.run(0.5)
        assert topo.hosts["h2"].bytes_received.total == 1000
        assert topo.switches["s_top"].packets_forwarded.total == 1
        assert topo.switches["s_bottom"].packets_forwarded.total == 0

    def test_reverse_path_via_bottom(self):
        sim = Simulator()
        topo = rhombus_topology(sim)
        topo.hosts["h2"].send_to("10.0.0.1", 80)
        sim.run(0.5)
        assert topo.hosts["h1"].bytes_received.total == 1000
        assert topo.switches["s_bottom"].packets_forwarded.total == 1

    def test_bottom_path_usable_after_split(self):
        from repro.net import Match
        sim = Simulator()
        topo = rhombus_topology(sim)
        s_in = topo.switches["s_in"]
        ports = [topo.port_towards("s_in", "s_top"),
                 topo.port_towards("s_in", "s_bottom")]
        s_in.flow_table.install(Match(dst_ip="10.0.0.2"),
                                Action.split(ports), priority=50)
        for _ in range(4):
            topo.hosts["h1"].send_to("10.0.0.2", 80)
        sim.run(0.5)
        assert topo.hosts["h2"].bytes_received.total == 4000
        assert topo.switches["s_top"].packets_forwarded.total == 2
        assert topo.switches["s_bottom"].packets_forwarded.total == 2


class TestLinear:
    def test_multi_hop_delivery(self):
        sim = Simulator()
        topo = linear_topology(sim, num_switches=4)
        topo.hosts["h1"].send_to("10.0.0.2", 80)
        sim.run(0.5)
        assert topo.hosts["h2"].bytes_received.total == 1000
        for name in ("s1", "s2", "s3", "s4"):
            assert topo.switches[name].packets_forwarded.total == 1

    def test_reverse_direction(self):
        sim = Simulator()
        topo = linear_topology(sim, num_switches=2)
        topo.hosts["h2"].send_to("10.0.0.1", 80)
        sim.run(0.5)
        assert topo.hosts["h1"].bytes_received.total == 1000

    def test_requires_switches(self):
        with pytest.raises(ValueError):
            linear_topology(Simulator(), 0)
