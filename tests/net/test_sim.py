"""Unit tests for the discrete-event simulator."""

import pytest

from repro.net import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(0.3, log.append, "c")
        sim.schedule(0.1, log.append, "a")
        sim.schedule(0.2, log.append, "b")
        sim.run(1.0)
        assert log == ["a", "b", "c"]

    def test_tie_break_by_schedule_order(self):
        sim = Simulator()
        log = []
        sim.schedule(0.1, log.append, 1)
        sim.schedule(0.1, log.append, 2)
        sim.schedule(0.1, log.append, 3)
        sim.run(1.0)
        assert log == [1, 2, 3]

    def test_now_advances_during_callbacks(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run(1.0)
        assert seen == [0.5]

    def test_clock_lands_on_until(self):
        sim = Simulator()
        sim.run(2.5)
        assert sim.now == 2.5

    def test_back_to_back_runs_compose(self):
        sim = Simulator()
        log = []
        sim.schedule(1.5, log.append, "late")
        sim.run(1.0)
        assert log == []
        sim.run(2.0)
        assert log == ["late"]

    def test_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_rejects_past_absolute_time(self):
        sim = Simulator()
        sim.run(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_rejects_running_backwards(self):
        sim = Simulator()
        sim.run(5.0)
        with pytest.raises(ValueError):
            sim.run(1.0)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        log = []

        def chain():
            log.append(sim.now)
            if sim.now < 0.5:
                sim.schedule(0.1, chain)

        sim.schedule(0.1, chain)
        sim.run(1.0)
        assert len(log) == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        event = sim.schedule(0.5, log.append, "x")
        event.cancel()
        sim.run(1.0)
        assert log == []

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(0.5, lambda: None)
        drop = sim.schedule(0.6, lambda: None)
        drop.cancel()
        assert sim.pending_events() == 1
        keep.cancel()
        assert sim.pending_events() == 0


class TestPeriodicTimer:
    def test_fires_on_interval(self):
        sim = Simulator()
        ticks = []
        sim.every(0.25, lambda: ticks.append(sim.now))
        sim.run(1.0)
        assert ticks == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_explicit_start(self):
        sim = Simulator()
        ticks = []
        sim.every(0.5, lambda: ticks.append(sim.now), start=0.1)
        sim.run(1.2)
        assert ticks == pytest.approx([0.1, 0.6, 1.1])

    def test_stop_halts_firing(self):
        sim = Simulator()
        timer = sim.every(0.1, lambda: None)
        sim.run(0.35)
        timer.stop()
        count = timer.fire_count
        sim.run(1.0)
        assert timer.fire_count == count
        assert count == 3

    def test_rejects_bad_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.every(0.0, lambda: None)

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        timer = sim.every(0.1, lambda: timer.stop())
        sim.run(1.0)
        assert timer.fire_count == 1

    def test_no_phase_drift_over_ten_thousand_firings(self):
        """Regression: re-arming must stay on the ``origin + n*interval``
        grid.  The old ``now + interval`` accumulation drifted ~3.6e-10
        by the 10,000th firing of a 0.3 s timer (growing linearly), so
        the 1e-12 bound below fails under accumulation while the grid
        computation lands exactly."""
        sim = Simulator()
        interval = 0.3
        times: list[float] = []
        timer = sim.every(interval, lambda: times.append(sim.now))
        sim.run(interval * 10_001)
        assert timer.fire_count >= 10_000
        # The nth firing sits at origin + (n-1)*interval, origin = one
        # interval after schedule time 0.
        worst = max(
            abs(t - (interval + n * interval))
            for n, t in enumerate(times[:10_000])
        )
        assert worst < 1e-9   # the ISSUE's acceptance bound
        assert worst < 1e-12  # grid-exactness: fails under accumulation

    def test_grid_anchored_to_explicit_start(self):
        """With ``start=`` given, the grid origin is that start — every
        firing lands exactly on ``start + n * interval``."""
        sim = Simulator()
        ticks: list[float] = []
        sim.every(0.1, lambda: ticks.append(sim.now), start=0.05)
        sim.run(10.1)
        assert len(ticks) == 101
        worst = max(abs(t - (0.05 + n * 0.1)) for n, t in enumerate(ticks))
        assert worst < 1e-12


class TestRunToCompletion:
    def test_drains_heap(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        sim.run_to_completion()
        assert log == ["a", "b"]
        assert sim.now == 2.0

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run_to_completion(max_events=100)
