"""Unit tests for the match-action switch."""

import pytest

from repro.net import (
    Action,
    ControlChannel,
    ControllerBase,
    FlowKey,
    FlowMod,
    FlowModCommand,
    Link,
    Match,
    Packet,
    Simulator,
    Switch,
)
from tests.net.test_link import Sink


def packet(dst_port=80, dst_ip="10.0.0.2"):
    return Packet(FlowKey("10.0.0.1", dst_ip, 1234, dst_port))


@pytest.fixture
def fabric():
    """One switch with three sinks on ports 1..3."""
    sim = Simulator()
    switch = Switch(sim, "s1")
    sinks = {}
    for port in (1, 2, 3):
        sink = Sink(sim, f"sink{port}")
        Link(sim, switch, port, sink, 1, bandwidth_bps=10_000_000, delay=0.0001)
        sinks[port] = sink
    return sim, switch, sinks


class TestForwarding:
    def test_forward_action(self, fabric):
        sim, switch, sinks = fabric
        switch.flow_table.install(Match(dst_port=80), Action.forward(2))
        switch.receive(packet(80), in_port=1)
        sim.run(0.1)
        assert len(sinks[2].arrivals) == 1
        assert sinks[1].arrivals == []

    def test_default_drop(self, fabric):
        sim, switch, sinks = fabric
        switch.receive(packet(), in_port=1)
        sim.run(0.1)
        assert all(s.arrivals == [] for s in sinks.values())
        assert switch.packets_dropped.total == 1

    def test_flood_excludes_ingress(self, fabric):
        sim, switch, sinks = fabric
        switch.flow_table.install(Match(), Action.flood())
        switch.receive(packet(), in_port=2)
        sim.run(0.1)
        assert len(sinks[1].arrivals) == 1
        assert len(sinks[3].arrivals) == 1
        assert sinks[2].arrivals == []

    def test_split_round_robins(self, fabric):
        sim, switch, sinks = fabric
        switch.flow_table.install(Match(), Action.split([2, 3]))
        for _ in range(4):
            switch.receive(packet(), in_port=1)
        sim.run(0.1)
        assert len(sinks[2].arrivals) == 2
        assert len(sinks[3].arrivals) == 2

    def test_forward_to_missing_port_drops(self, fabric):
        sim, switch, _sinks = fabric
        switch.flow_table.install(Match(), Action.forward(9))
        switch.receive(packet(), in_port=1)
        assert switch.packets_dropped.total == 1

    def test_counters(self, fabric):
        sim, switch, _sinks = fabric
        switch.flow_table.install(Match(dst_port=80), Action.forward(2))
        switch.receive(packet(80), in_port=1)
        switch.receive(packet(81), in_port=1)  # dropped
        assert switch.packets_received.total == 2
        assert switch.packets_forwarded.total == 1
        assert switch.packets_dropped.total == 1
        assert switch.bytes_received.total == 2000


class TestHooks:
    def test_receive_hook_sees_dropped_packets(self, fabric):
        """The port-knocking emitter relies on hearing packets the flow
        table drops."""
        _sim, switch, _sinks = fabric
        seen = []
        switch.on_receive(lambda pkt, in_port: seen.append(pkt.flow.dst_port))
        switch.receive(packet(7001), in_port=1)
        assert seen == [7001]

    def test_forward_hook_sees_out_port(self, fabric):
        _sim, switch, _sinks = fabric
        switch.flow_table.install(Match(), Action.forward(3))
        seen = []
        switch.on_forward(lambda pkt, ip, op: seen.append((ip, op)))
        switch.receive(packet(), in_port=1)
        assert seen == [(1, 3)]

    def test_forward_hook_not_called_on_drop(self, fabric):
        _sim, switch, _sinks = fabric
        seen = []
        switch.on_forward(lambda pkt, ip, op: seen.append(op))
        switch.receive(packet(), in_port=1)  # default drop
        assert seen == []


class RecordingController(ControllerBase):
    def __init__(self):
        self.packet_ins = []

    def handle_packet_in(self, message):
        self.packet_ins.append(message)


class TestControlPlane:
    def test_controller_punt(self, fabric):
        sim, switch, _sinks = fabric
        switch.default_action = Action.controller()
        channel = ControlChannel(sim, latency=0.002)
        channel.register_switch(switch)
        controller = RecordingController()
        channel.register_controller(controller)
        switch.receive(packet(80), in_port=1)
        sim.run(0.01)
        assert len(controller.packet_ins) == 1
        message = controller.packet_ins[0]
        assert message.switch_name == "s1"
        assert message.in_port == 1

    def test_punt_without_channel_drops(self, fabric):
        _sim, switch, _sinks = fabric
        switch.default_action = Action.controller()
        switch.receive(packet(), in_port=1)
        assert switch.packets_dropped.total == 1

    def test_flow_mod_add_and_delete(self, fabric):
        sim, switch, sinks = fabric
        channel = ControlChannel(sim, latency=0.001)
        channel.register_switch(switch)
        channel.send_flow_mod(
            "s1", FlowMod(Match(dst_port=80), Action.forward(2), priority=5)
        )
        sim.run(0.01)
        switch.receive(packet(80), in_port=1)
        sim.run(0.02)
        assert len(sinks[2].arrivals) == 1
        channel.send_flow_mod(
            "s1", FlowMod(Match(dst_port=80), command=FlowModCommand.DELETE)
        )
        sim.run(0.03)
        switch.receive(packet(80), in_port=1)
        sim.run(0.04)
        assert len(sinks[2].arrivals) == 1  # now dropped

    def test_flow_mod_add_requires_action(self):
        with pytest.raises(ValueError):
            FlowMod(Match(), action=None, command=FlowModCommand.ADD)

    def test_channel_failure_drops_messages(self, fabric):
        sim, switch, _sinks = fabric
        channel = ControlChannel(sim, latency=0.001)
        channel.register_switch(switch)
        channel.fail()
        channel.send_flow_mod("s1", FlowMod(Match(), Action.drop()))
        sim.run(0.01)
        assert channel.messages_dropped == 1
        assert len(switch.flow_table) == 0

    def test_unknown_switch_rejected(self, fabric):
        sim, _switch, _sinks = fabric
        channel = ControlChannel(sim)
        with pytest.raises(ValueError):
            channel.send_flow_mod("nope", FlowMod(Match(), Action.drop()))

    def test_duplicate_switch_registration_rejected(self, fabric):
        sim, switch, _sinks = fabric
        channel = ControlChannel(sim)
        channel.register_switch(switch)
        with pytest.raises(ValueError):
            channel.register_switch(switch)

    def test_port_stats(self, fabric):
        sim, switch, _sinks = fabric
        channel = ControlChannel(sim)
        channel.register_switch(switch)
        switch.flow_table.install(Match(), Action.forward(2))
        switch.receive(packet(), in_port=1)
        sim.run(0.1)
        stats = channel.request_port_stats("s1", 2)
        assert stats.packets_sent == 1
        assert stats.queue_length == 0
