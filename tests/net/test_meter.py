"""Tests for token-bucket metering and metered flow entries."""

import pytest

from repro.net import (
    Action,
    FlowKey,
    FlowMod,
    FlowModCommand,
    Match,
    Packet,
    Simulator,
    TokenBucket,
    single_switch_topology,
)


def packet():
    return Packet(FlowKey("10.0.0.1", "10.0.0.2", 1, 80))


class TestTokenBucket:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TokenBucket(sim, rate_pps=0)
        with pytest.raises(ValueError):
            TokenBucket(sim, rate_pps=10, burst=0)

    def test_burst_allowed_then_policed(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_pps=10, burst=5)
        outcomes = [bucket.allow(packet()) for _ in range(8)]
        assert outcomes == [True] * 5 + [False] * 3
        assert bucket.policed == 3

    def test_tokens_refill_over_time(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_pps=10, burst=5)
        for _ in range(5):
            bucket.allow(packet())
        assert not bucket.allow(packet())
        sim.run(0.5)  # +5 tokens
        assert bucket.tokens == pytest.approx(5.0, abs=0.1)
        assert bucket.allow(packet())

    def test_bucket_caps_at_burst(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_pps=100, burst=5)
        sim.run(10.0)
        assert bucket.tokens == 5.0

    def test_sustained_rate_enforced(self):
        """Over a long window, conformant packets ~= rate * time."""
        sim = Simulator()
        bucket = TokenBucket(sim, rate_pps=50, burst=5)
        allowed = 0
        for step in range(1000):  # 100 pps offered for 10 s
            sim.run(step * 0.01)
            if bucket.allow(packet()):
                allowed += 1
        assert allowed == pytest.approx(50 * 10, rel=0.05)


class TestMeteredEntries:
    def test_metered_entry_polices(self):
        sim = Simulator()
        topo = single_switch_topology(sim, 2)
        s1 = topo.switches["s1"]
        port = topo.port_towards("s1", "h2")
        meter = TokenBucket(sim, rate_pps=10, burst=2)
        s1.flow_table.install(Match(dst_port=80), Action.forward(port),
                              priority=50, meter=meter)
        for _ in range(5):
            s1.receive(packet(), in_port=1)
        assert s1.packets_policed.total == 3
        assert s1.packets_forwarded.total == 2

    def test_flow_mod_installs_meter(self):
        from repro.net import ControlChannel

        sim = Simulator()
        topo = single_switch_topology(sim, 2)
        s1 = topo.switches["s1"]
        channel = ControlChannel(sim)
        channel.register_switch(s1)
        port = topo.port_towards("s1", "h2")
        channel.send_flow_mod("s1", FlowMod(
            Match(dst_port=80), Action.forward(port), priority=50,
            meter_rate_pps=10.0, meter_burst=2.0,
        ))
        sim.run(0.01)
        entry = s1.flow_table.lookup(packet(), 1)
        assert entry.meter is not None
        assert entry.meter.rate_pps == 10.0

    def test_flow_mod_meter_validation(self):
        with pytest.raises(ValueError):
            FlowMod(Match(), Action.drop(), meter_rate_pps=0.0)

    def test_strict_delete_spares_base_route(self):
        from repro.net import ControlChannel

        sim = Simulator()
        topo = single_switch_topology(sim, 2)  # installs base routes
        s1 = topo.switches["s1"]
        channel = ControlChannel(sim)
        channel.register_switch(s1)
        port = topo.port_towards("s1", "h2")
        base_entries = len(s1.flow_table)
        channel.send_flow_mod("s1", FlowMod(
            Match(dst_ip="10.0.0.2"), Action.forward(port), priority=100,
            meter_rate_pps=50.0,
        ))
        sim.run(0.01)
        assert len(s1.flow_table) == base_entries + 1
        channel.send_flow_mod("s1", FlowMod(
            Match(dst_ip="10.0.0.2"), priority=100,
            command=FlowModCommand.DELETE, strict=True,
        ))
        sim.run(0.02)
        # Only the metered overlay is gone; the base route survives.
        assert len(s1.flow_table) == base_entries
        topo.hosts["h1"].send_to("10.0.0.2", 80)
        sim.run(0.1)
        assert topo.hosts["h2"].bytes_received.total == 1000
