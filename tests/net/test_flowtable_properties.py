"""Property-based tests for flow-table lookup semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Action, FlowKey, FlowTable, Match, Packet, Protocol

ports = st.integers(min_value=1, max_value=10)
priorities = st.integers(min_value=0, max_value=10)
dst_ports = st.sampled_from([80, 443, 8080, None])
protocols = st.sampled_from([Protocol.TCP, Protocol.UDP, None])


@st.composite
def entries(draw):
    match = Match(dst_port=draw(dst_ports), protocol=draw(protocols))
    return match, Action.forward(draw(ports)), draw(priorities)


def make_packet(dst_port=80, protocol=Protocol.TCP):
    return Packet(FlowKey("10.0.0.1", "10.0.0.2", 1111, dst_port, protocol))


class TestLookupProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(entries(), max_size=12),
           st.sampled_from([80, 443, 8080]),
           st.sampled_from([Protocol.TCP, Protocol.UDP]))
    def test_winner_has_maximal_priority_among_matches(
        self, rows, dst_port, protocol
    ):
        table = FlowTable()
        for match, action, priority in rows:
            table.install(match, action, priority)
        packet = make_packet(dst_port, protocol)
        winner = table.lookup(packet, in_port=1)
        matching = [entry for entry in table.entries
                    if entry.match.matches(packet, 1)]
        if not matching:
            assert winner is None
        else:
            assert winner is not None
            best = max(entry.priority for entry in matching)
            assert winner.priority == best
            # Among equal priorities, no more-specific match was passed
            # over.
            peers = [entry for entry in matching if entry.priority == best]
            assert winner.match.specificity() == max(
                entry.match.specificity() for entry in peers
            )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(entries(), min_size=1, max_size=10))
    def test_add_is_idempotent_for_same_match_priority(self, rows):
        """Installing the same (match, priority) twice leaves exactly
        one entry for it."""
        table = FlowTable()
        for match, action, priority in rows:
            table.install(match, action, priority)
            table.install(match, action, priority)
        keys = [(entry.match, entry.priority) for entry in table.entries]
        assert len(keys) == len(set(keys))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(entries(), min_size=1, max_size=10), st.data())
    def test_remove_deletes_exactly_the_match(self, rows, data):
        table = FlowTable()
        for match, action, priority in rows:
            table.install(match, action, priority)
        victim_match, _a, _p = data.draw(st.sampled_from(rows))
        removed = table.remove(victim_match)
        assert removed >= 1
        assert all(entry.match != victim_match for entry in table.entries)
