"""Tests for automatic shortest-path routing and the larger shapes."""

import pytest

from repro.net import Simulator, Topology, linear_topology
from repro.net.routing import (
    adjacency,
    install_all_routes,
    leaf_spine_topology,
    shortest_path,
    star_topology,
)


class TestShortestPath:
    def test_trivial(self):
        topo = linear_topology(Simulator(), 2)
        assert shortest_path(topo, "s1", "s1") == ["s1"]

    def test_linear_path(self):
        topo = linear_topology(Simulator(), 3)
        assert shortest_path(topo, "h1", "h2") == \
            ["h1", "s1", "s2", "s3", "h2"]

    def test_disconnected_nodes_raise(self):
        sim = Simulator()
        topo = Topology(sim)
        topo.add_switch("a")
        topo.add_switch("b")  # no link between them
        with pytest.raises(ValueError, match="no path"):
            shortest_path(topo, "a", "b")

    def test_host_is_valid_final_hop_only(self):
        """BFS treats hosts as leaves: a host can terminate a path but
        never transit one — a host on switch sA is not a shortcut
        between sA and sB."""
        sim = Simulator()
        topo = Topology(sim)
        topo.add_switch("sA")
        topo.add_switch("sB")
        topo.add_host("h", "10.0.0.9")
        topo.connect("h", "sA")
        topo.connect("sA", "sB")
        assert shortest_path(topo, "sB", "h") == ["sB", "sA", "h"]
        assert shortest_path(topo, "sA", "sB") == ["sA", "sB"]

    def test_unknown_node(self):
        topo = linear_topology(Simulator(), 2)
        with pytest.raises(ValueError):
            shortest_path(topo, "s1", "ghost")

    def test_deterministic_tiebreak(self):
        """Equal-length paths resolve identically across runs."""
        paths = set()
        for _ in range(3):
            sim = Simulator()
            topo = Topology(sim)
            for name in ("src", "via_a", "via_b", "dst"):
                topo.add_switch(name)
            topo.connect("src", "via_b")
            topo.connect("src", "via_a")
            topo.connect("via_a", "dst")
            topo.connect("via_b", "dst")
            paths.add(tuple(shortest_path(topo, "src", "dst")))
        assert len(paths) == 1

    def test_adjacency(self):
        topo = linear_topology(Simulator(), 2)
        neighbours = adjacency(topo)
        assert neighbours["s1"] == ["h1", "s2"]


class TestInstallAllRoutes:
    def test_counts(self):
        sim = Simulator()
        topo = linear_topology(sim, 2)
        # linear_topology already installed routes; count a re-install.
        installed = install_all_routes(topo, priority=5)
        # 2 switches x 2 destination hosts.
        assert installed == 4


class TestStar:
    def test_all_pairs_connectivity(self):
        sim = Simulator()
        topo = star_topology(sim, num_hosts=4)
        topo.hosts["h1"].send_to("10.0.0.3", 80, size_bytes=400)
        topo.hosts["h4"].send_to("10.0.0.2", 80, size_bytes=600)
        sim.run(0.5)
        assert topo.hosts["h3"].bytes_received.total == 400
        assert topo.hosts["h2"].bytes_received.total == 600

    def test_core_transits(self):
        sim = Simulator()
        topo = star_topology(sim, num_hosts=3)
        topo.hosts["h1"].send_to("10.0.0.2", 80)
        sim.run(0.5)
        assert topo.switches["core"].packets_forwarded.total == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            star_topology(Simulator(), num_hosts=1)


class TestLeafSpine:
    def test_cross_leaf_traffic(self):
        sim = Simulator()
        topo = leaf_spine_topology(sim, num_leaves=3, num_spines=2)
        topo.hosts["h1_1"].send_to("10.3.0.2", 80, size_bytes=800)
        sim.run(0.5)
        assert topo.hosts["h3_2"].bytes_received.total == 800
        # Exactly one spine transited.
        spine_forwards = sum(
            topo.switches[f"spine{index}"].packets_forwarded.total
            for index in (1, 2)
        )
        assert spine_forwards == 1

    def test_same_leaf_stays_local(self):
        sim = Simulator()
        topo = leaf_spine_topology(sim, num_leaves=2, num_spines=2)
        topo.hosts["h1_1"].send_to("10.1.0.2", 80)
        sim.run(0.5)
        assert topo.hosts["h1_2"].bytes_received.total == 1000
        spine_forwards = sum(
            topo.switches[f"spine{index}"].packets_forwarded.total
            for index in (1, 2)
        )
        assert spine_forwards == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            leaf_spine_topology(Simulator(), num_leaves=0)
