"""Property-based tests for the discrete-event simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Simulator

delays = st.lists(st.floats(min_value=0.0, max_value=100.0),
                  min_size=1, max_size=40)


class TestExecutionOrder:
    @settings(max_examples=60, deadline=None)
    @given(delays)
    def test_events_fire_in_time_order(self, schedule):
        sim = Simulator()
        fired = []
        for delay in schedule:
            sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
        sim.run(200.0)
        times = [time for time, _delay in fired]
        assert times == sorted(times)
        assert len(fired) == len(schedule)
        for time, delay in fired:
            assert time == delay

    @settings(max_examples=40, deadline=None)
    @given(delays, st.data())
    def test_cancelled_events_never_fire(self, schedule, data):
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(delay, lambda index=index: fired.append(index))
            for index, delay in enumerate(schedule)
        ]
        to_cancel = data.draw(st.sets(
            st.integers(min_value=0, max_value=len(events) - 1)
        ))
        for index in to_cancel:
            events[index].cancel()
        sim.run(200.0)
        assert set(fired) == set(range(len(events))) - to_cancel

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=10.0),
                    min_size=1, max_size=10))
    def test_run_in_chunks_equals_run_at_once(self, boundaries):
        """Splitting a run() into arbitrary chunks never changes what
        executes or when."""
        def build():
            sim = Simulator()
            log = []
            for delay in (0.5, 1.5, 3.0, 7.5, 9.9):
                sim.schedule(delay, lambda d=delay: log.append((sim.now, d)))
            return sim, log

        sim_single, log_single = build()
        sim_single.run(12.0)

        sim_chunked, log_chunked = build()
        clock = 0.0
        for boundary in sorted(boundaries):
            clock = max(clock, boundary)
            sim_chunked.run(clock)
        sim_chunked.run(12.0)

        assert log_single == log_chunked

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.05, max_value=3.0),
           st.floats(min_value=1.0, max_value=30.0))
    def test_periodic_fire_count(self, interval, horizon):
        sim = Simulator()
        timer = sim.every(interval, lambda: None)
        sim.run(horizon)
        # Repeated float addition accumulates ~1 ulp per firing, so the
        # final tick may land just across the horizon in either
        # direction: exact count up to ±1.
        expected = int(horizon / interval + 1e-9)
        assert abs(timer.fire_count - expected) <= 1
