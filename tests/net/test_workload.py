"""Workload layer tests: determinism, the scalar↔vector equivalence
contract, pattern semantics, sinks and the audio-free event bus."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apps import (
    FlowToneMapper,
    HeavyHitterDetectorApp,
    PortScanDetectorApp,
    PortToneMapper,
    heavy_hitter_truth_buckets,
    scan_truth_intervals,
    score_heavy_hitter,
    score_port_scan,
)
from repro.core.frequency_plan import Allocation
from repro.core.telemetry import ToneEventBus
from repro.net import (
    BucketPresenceTap,
    ChurnPattern,
    CountingHost,
    CountingSink,
    ElephantMicePattern,
    FlowPopulation,
    HostSink,
    OnOffPattern,
    PortPresenceTap,
    PortScanPattern,
    PresenceSink,
    Simulator,
    VectorizedFlowDriver,
    WorkloadSpec,
    build_workload,
    launch_reference_sources,
    single_switch_topology,
)
from repro.net.flowpop import (
    LABEL_ELEPHANT,
    LABEL_MOUSE,
    LABEL_SCAN,
    VARY_DST_PORT,
)
from repro.net.workload import DEFAULT_SCAN_PORTS

SEED = 16


def _population(spec: WorkloadSpec) -> FlowPopulation:
    population = spec.build()
    assert len(population) > 0
    return population


def _drive(population, duration, batch_window=0.25):
    sim = Simulator()
    sink = CountingSink(population)
    driver = VectorizedFlowDriver(sim, population, sink, stop=duration,
                                  batch_window=batch_window)
    driver.launch()
    sim.run(duration)
    return sink, driver


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = build_workload("elephants-mice", num_flows=300, seed=SEED).build()
        b = build_workload("elephants-mice", num_flows=300, seed=SEED).build()
        assert a.src_ips == b.src_ips
        assert a.dst_ips == b.dst_ips
        np.testing.assert_array_equal(a.src_ports, b.src_ports)
        np.testing.assert_array_equal(a.rates, b.rates)
        np.testing.assert_array_equal(a.phases, b.phases)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.stable_hashes, b.stable_hashes)

    def test_same_seed_same_departure_schedule(self):
        a = build_workload("scan-churn", num_flows=200, seed=SEED).build()
        b = build_workload("scan-churn", num_flows=200, seed=SEED).build()
        ta, fa, ka = a.departures_between(0.0, 8.0)
        tb, fb, kb = b.departures_between(0.0, 8.0)
        np.testing.assert_array_equal(ta, tb)
        np.testing.assert_array_equal(fa, fb)
        np.testing.assert_array_equal(ka, kb)

    def test_different_seed_different_population(self):
        a = build_workload("mice", num_flows=100, seed=1).build()
        b = build_workload("mice", num_flows=100, seed=2).build()
        assert not np.array_equal(a.rates, b.rates)

    def test_batch_window_does_not_change_emissions(self):
        population = build_workload("scan-churn", num_flows=150,
                                    seed=SEED).build()
        fine, _ = _drive(population, 4.0, batch_window=0.05)
        coarse, _ = _drive(population, 4.0, batch_window=1.0)
        assert fine.total == coarse.total
        np.testing.assert_array_equal(fine.per_flow, coarse.per_flow)


class TestDepartureModel:
    def test_on_off_gates_departures(self):
        spec = WorkloadSpec(seed=SEED, duration=4.0, patterns=(
            OnOffPattern(num_flows=20, rate_range=(10.0, 10.0),
                         on_range=(0.5, 0.5), off_range=(0.5, 0.5)),
        ))
        population = _population(spec)
        times, flow_idx, _ks = population.departures_between(0.0, 4.0)
        rel = times - population.starts[flow_idx]
        assert np.all(rel % 1.0 < 0.5)
        # Roughly half the always-on volume: 20 flows * 10 pps * 4 s / 2.
        assert 300 < len(times) < 500

    def test_diurnal_thins_toward_trough(self):
        spec = WorkloadSpec(
            seed=SEED, duration=8.0,
            patterns=(ElephantMicePattern(num_mice=0, num_elephants=50),),
            diurnal_amplitude=0.8, diurnal_period=8.0,
        )
        population = _population(spec)
        times, _f, _k = population.departures_between(0.0, 8.0)
        # Triangle wave: m(0) = 0.2 rising to m(period/2) = 1 — the
        # window around the crest must carry clearly more traffic than
        # the opening trough.
        trough = np.count_nonzero(times < 2.0)
        peak = np.count_nonzero((times >= 3.0) & (times < 5.0))
        assert trough < peak * 0.6

    def test_scan_covers_all_ports_in_order(self):
        spec = WorkloadSpec(seed=SEED, duration=2.0, patterns=(
            PortScanPattern(first_port=8000, num_ports=20,
                            probe_rate=100.0),
        ))
        population = _population(spec)
        assert population.variation[0] == VARY_DST_PORT
        times, flow_idx, ks = population.departures_between(0.0, 1.0)
        ports = population.dst_ports_for(flow_idx, ks)
        assert set(ports.tolist()) == set(range(8000, 8020))
        # Sequential sweep: the first 20 probes walk the ports in order.
        np.testing.assert_array_equal(ports[:20],
                                      np.arange(8000, 8020))

    def test_churn_flows_live_and_die(self):
        spec = WorkloadSpec(seed=SEED, duration=8.0, patterns=(
            ChurnPattern(num_flows=100, lifetime_range=(0.3, 0.5)),
        ))
        population = _population(spec)
        assert np.all(np.isfinite(population.stops))
        assert np.all(population.stops - population.starts <= 0.5 + 1e-9)
        times, flow_idx, _ks = population.departures_between(0.0, 8.0)
        assert np.all(times >= population.starts[flow_idx])
        assert np.all(times < population.stops[flow_idx])

    def test_labels_and_counts(self):
        population = build_workload("scan-churn", num_flows=500,
                                    seed=SEED).build()
        counts = population.label_counts()
        assert counts["scan"] >= 1
        assert counts["churn"] > 0
        rows = population.indices_with_label(LABEL_SCAN)
        assert np.all(population.labels[rows] == LABEL_SCAN)


class TestScalarVectorEquivalence:
    def test_reference_sources_match_driver_exactly(self):
        population = build_workload("scan-churn", num_flows=120,
                                    seed=SEED, duration=3.0).build()
        sink, _ = _drive(population, 3.0)

        sim = Simulator()
        host = CountingHost(sim)
        sources = launch_reference_sources(host, population, 3.0)
        sim.run(3.0)
        reference = [source.packets_emitted for source in sources]
        assert reference == sink.per_flow.tolist()
        assert host.packets_sent == sink.total

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           num_flows=st.integers(1, 40),
           duration=st.floats(0.5, 4.0),
           batch_window=st.sampled_from([0.1, 0.3, 0.7]))
    def test_equivalence_property(self, seed, num_flows, duration,
                                  batch_window):
        """Any seeded mix: the vectorized driver and the per-flow
        reference emit identical per-flow packet counts."""
        spec = WorkloadSpec(
            seed=seed, duration=duration,
            patterns=(
                ElephantMicePattern(
                    num_mice=num_flows,
                    num_elephants=num_flows // 8,
                    mouse_rate_range=(0.5, 20.0),
                ),
                PortScanPattern(probe_rate=30.0,
                                start=duration * 0.25),
            ),
            diurnal_amplitude=0.5, diurnal_period=duration,
        )
        population = spec.build()
        sink, _ = _drive(population, duration, batch_window=batch_window)

        sim = Simulator()
        host = CountingHost(sim)
        sources = launch_reference_sources(host, population, duration)
        sim.run(duration)
        reference = [source.packets_emitted for source in sources]
        assert reference == sink.per_flow.tolist()

    def test_scalar_accept_matches_vector_mask(self):
        population = WorkloadSpec(
            seed=SEED, duration=4.0,
            patterns=(ElephantMicePattern(num_mice=30, num_elephants=2),),
            diurnal_amplitude=0.7, diurnal_period=4.0,
        ).build()
        times, flow_idx, ks = population.departures_between(0.0, 4.0)
        for t, i, k in zip(times[:200], flow_idx[:200], ks[:200]):
            assert population.accept(int(i), int(k), float(t))


class TestSinks:
    def test_host_sink_sends_real_packets(self):
        sim = Simulator()
        topo = single_switch_topology(sim, 2, bandwidth_bps=50_000_000,
                                      access_bandwidth_bps=50_000_000)
        population = build_workload(
            "elephants-mice", num_flows=20, seed=SEED, duration=2.0,
        ).build().retarget(topo.hosts["h2"].ip)
        sink = HostSink(topo.hosts["h1"], population)
        driver = VectorizedFlowDriver(sim, population, sink, stop=2.0)
        driver.launch()
        sim.run(2.5)
        assert driver.packets_emitted > 0
        assert topo.hosts["h2"].packets_received.total == \
            driver.packets_emitted

    def test_retarget_recomputes_hashes(self):
        population = build_workload("elephants-mice", num_flows=20,
                                    seed=SEED).build()
        retargeted = population.retarget("10.0.0.2")
        assert set(retargeted.dst_ips) == {"10.0.0.2"}
        assert retargeted.flow_key(0).dst_ip == "10.0.0.2"
        assert retargeted.stable_hashes[0] == \
            np.uint64(retargeted.flow_key(0).stable_hash())
        # Same traffic model, different keys.
        np.testing.assert_array_equal(population.rates, retargeted.rates)
        assert not np.array_equal(population.stable_hashes,
                                  retargeted.stable_hashes)

    def test_presence_tap_dedupes_within_window(self):
        frequencies = [1000.0 + 20 * i for i in range(8)]
        tap = BucketPresenceTap(frequencies, period=0.1)
        population = WorkloadSpec(seed=SEED, duration=1.0, patterns=(
            ElephantMicePattern(num_mice=0, num_elephants=4,
                                elephant_rate_range=(100.0, 100.0)),
        )).build()
        bus = ToneEventBus(window=0.1)
        sim = Simulator()
        sink = PresenceSink(bus, [tap])
        driver = VectorizedFlowDriver(sim, population, sink, stop=1.0)
        driver.launch()
        sim.run(1.0)
        # 4 elephants at 100 pps for 1 s = ~400 packets, but at most
        # (distinct buckets) x (10 windows) presences.
        buckets = len(set(
            int(h % np.uint64(len(frequencies)))
            for h in population.stable_hashes
        ))
        assert driver.packets_emitted > 300
        assert tap.tones <= buckets * 11


class TestToneEventBus:
    def test_windows_and_onset_suppression(self):
        bus = ToneEventBus(window=0.1)
        onsets, detections, windows = [], [], []
        bus.watch([700.0], on_detection=detections.append,
                  on_onset=onsets.append)
        bus.on_window(lambda events, end: windows.append(end))
        # Present in three consecutive windows, then a gap, then again.
        for slot in (0, 1, 2, 5):
            bus.push(700.0, slot * 0.1 + 0.01)
        delivered = bus.dispatch()
        assert delivered == 4
        assert len(detections) == 4
        # Onsets: suppressed while contiguous, fresh after the gap.
        assert [round(e.time, 1) for e in onsets] == [0.0, 0.5]
        assert windows == pytest.approx([0.1, 0.2, 0.3, 0.6])

    def test_suppression_tracked_across_dispatch_calls(self):
        bus = ToneEventBus(window=0.1)
        onsets = []
        bus.watch([500.0], on_onset=onsets.append)
        bus.push(500.0, 0.0)
        bus.dispatch()
        bus.push(500.0, 0.1)   # contiguous with the previous call
        bus.dispatch()
        bus.push(500.0, 0.4)   # gap -> new onset
        bus.dispatch()
        assert len(onsets) == 2

    def test_duplicate_presences_collapse(self):
        bus = ToneEventBus(window=0.1)
        detections = []
        bus.watch([600.0], on_detection=detections.append)
        bus.push_batch(np.asarray([600.0, 600.0, 600.0]),
                       np.asarray([0.01, 0.05, 0.09]))
        assert bus.dispatch() == 1
        assert len(detections) == 1


class TestEvaluation:
    def _detector_run(self, mix, num_flows=400, duration=4.0):
        population = build_workload(mix, num_flows=num_flows, seed=SEED,
                                    duration=duration).build()
        buckets = Allocation("t-hh", tuple(
            1000.0 + 20.0 * i for i in range(64)))
        ports = Allocation("t-scan", tuple(
            3000.0 + 20.0 * i for i in range(len(DEFAULT_SCAN_PORTS))))
        bus = ToneEventBus(window=0.1)
        hh = HeavyHitterDetectorApp(bus, FlowToneMapper(buckets))
        scan = PortScanDetectorApp(
            bus, PortToneMapper(ports, DEFAULT_SCAN_PORTS))
        sim = Simulator()
        sink = PresenceSink(bus, [
            BucketPresenceTap(list(buckets.frequencies), 0.1),
            PortPresenceTap(DEFAULT_SCAN_PORTS, list(ports.frequencies),
                            0.1),
        ])
        VectorizedFlowDriver(sim, population, sink, stop=duration).launch()
        sim.run(duration)
        bus.dispatch()
        hh.finalize(duration)
        scan.finalize(duration)
        return population, hh, scan, duration

    def test_elephants_scored_against_truth(self):
        population, hh, _scan, duration = self._detector_run(
            "elephants-mice")
        truth = heavy_hitter_truth_buckets(population, 64)
        assert truth  # the mix plants at least one elephant
        pr = score_heavy_hitter(hh, population)
        assert pr.recall == 1.0
        assert pr.true_positives == len(truth)

    def test_scan_campaign_scored_against_truth(self):
        population, _hh, scan, duration = self._detector_run("scan-churn")
        truth = scan_truth_intervals(population, DEFAULT_SCAN_PORTS,
                                     1.0, duration)
        assert truth  # the campaign is hot in at least one interval
        pr = score_port_scan(scan, population, DEFAULT_SCAN_PORTS,
                             duration)
        assert pr.recall == 1.0

    def test_mice_only_has_no_truth(self):
        population = build_workload("mice", num_flows=100,
                                    seed=SEED).build()
        assert heavy_hitter_truth_buckets(population, 64) == set()
        assert np.count_nonzero(
            population.labels == LABEL_ELEPHANT) == 0
        assert np.all(population.labels == LABEL_MOUSE)


class TestBuildWorkload:
    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="mice"):
            build_workload("no-such-mix")

    def test_all_named_mixes_build(self):
        from repro.net import WORKLOAD_MIXES
        for name in WORKLOAD_MIXES:
            population = build_workload(name, num_flows=50, seed=SEED,
                                        duration=2.0).build()
            assert len(population) > 0
