"""Unit tests for the time-series and counter helpers."""

import pytest

from repro.net import Counter, TimeSeries


class TestTimeSeries:
    def test_record_and_len(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert len(series) == 2

    def test_rejects_decreasing_times(self):
        series = TimeSeries()
        series.record(2.0, 1.0)
        with pytest.raises(ValueError):
            series.record(1.0, 5.0)

    def test_equal_times_allowed(self):
        series = TimeSeries()
        series.record(1.0, 1.0)
        series.record(1.0, 2.0)
        assert series.values == [1.0, 2.0]

    def test_value_at(self):
        series = TimeSeries()
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.value_at(0.5) == 0.0
        assert series.value_at(1.0) == 10.0
        assert series.value_at(1.5) == 10.0
        assert series.value_at(3.0) == 20.0

    def test_min_max_final(self):
        series = TimeSeries()
        for t, v in [(0, 3.0), (1, -1.0), (2, 7.0)]:
            series.record(t, v)
        assert series.max() == 7.0
        assert series.min() == -1.0
        assert series.final() == 7.0

    def test_empty_stats(self):
        series = TimeSeries()
        assert series.max() == 0.0
        assert series.final() == 0.0

    def test_window(self):
        series = TimeSeries("w")
        for t in range(5):
            series.record(float(t), float(t))
        sub = series.window(1.0, 3.0)
        assert sub.times == [1.0, 2.0]

    def test_rate_series(self):
        series = TimeSeries("bytes")
        series.record(0.0, 0.0)
        series.record(1.0, 100.0)
        series.record(3.0, 300.0)
        rate = series.rate_series()
        assert rate.values == pytest.approx([100.0, 100.0])


class TestCounter:
    def test_add_and_increment(self):
        counter = Counter("c")
        counter.add(5.0)
        counter.increment()
        assert counter.total == 6.0

    def test_rejects_negative(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.add(-1.0)
