"""Unit tests for the time-series and counter helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import Counter, TimeSeries


class TestTimeSeries:
    def test_record_and_len(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert len(series) == 2

    def test_rejects_decreasing_times(self):
        series = TimeSeries()
        series.record(2.0, 1.0)
        with pytest.raises(ValueError):
            series.record(1.0, 5.0)

    def test_equal_times_allowed(self):
        series = TimeSeries()
        series.record(1.0, 1.0)
        series.record(1.0, 2.0)
        assert series.values == [1.0, 2.0]

    def test_value_at(self):
        series = TimeSeries()
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.value_at(0.5) == 0.0
        assert series.value_at(1.0) == 10.0
        assert series.value_at(1.5) == 10.0
        assert series.value_at(3.0) == 20.0

    def test_min_max_final(self):
        series = TimeSeries()
        for t, v in [(0, 3.0), (1, -1.0), (2, 7.0)]:
            series.record(t, v)
        assert series.max() == 7.0
        assert series.min() == -1.0
        assert series.final() == 7.0

    def test_empty_stats(self):
        series = TimeSeries()
        assert series.max() == 0.0
        assert series.final() == 0.0

    def test_window(self):
        series = TimeSeries("w")
        for t in range(5):
            series.record(float(t), float(t))
        sub = series.window(1.0, 3.0)
        assert sub.times == [1.0, 2.0]

    @given(
        times=st.lists(
            st.floats(0.0, 100.0, allow_nan=False), max_size=60
        ),
        start=st.floats(-10.0, 110.0, allow_nan=False),
        length=st.floats(0.0, 120.0, allow_nan=False),
    )
    def test_window_bisect_matches_linear_scan(self, times, start, length):
        """The bisected slice must select exactly what the old
        ``start <= time < end`` linear scan did, duplicates included."""
        series = TimeSeries("p")
        for index, time in enumerate(sorted(times)):
            series.record(time, float(index))
        end = start + length
        sub = series.window(start, end)
        expected = [
            (time, value)
            for time, value in zip(series.times, series.values)
            if start <= time < end
        ]
        assert list(zip(sub.times, sub.values)) == expected
        assert sub.name == series.name

    def test_rate_series(self):
        series = TimeSeries("bytes")
        series.record(0.0, 0.0)
        series.record(1.0, 100.0)
        series.record(3.0, 300.0)
        rate = series.rate_series()
        assert rate.values == pytest.approx([100.0, 100.0])


class TestCounter:
    def test_add_and_increment(self):
        counter = Counter("c")
        counter.add(5.0)
        counter.increment()
        assert counter.total == 6.0

    def test_rejects_negative(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.add(-1.0)
