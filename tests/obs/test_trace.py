"""Unit tests for the ring-buffer tracer."""

import pytest

from repro.obs import Tracer


class TestSpans:
    def test_span_records_wall_time(self):
        tracer = Tracer()
        with tracer.span("work", label="x"):
            pass
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.name == "work"
        assert span.attrs == {"label": "x"}
        assert span.wall_end >= span.wall_start
        assert span.wall_ms >= 0.0

    def test_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("innermost"):
                    pass
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["innermost"].depth == 2
        # Inner spans complete (and append) before outer ones.
        assert [s.name for s in tracer.spans] == \
            ["innermost", "inner", "outer"]

    def test_depth_recovers_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        with tracer.span("after"):
            pass
        assert tracer.by_name("after")[0].depth == 0

    def test_sim_clock_stamps(self):
        clock = [1.5]
        tracer = Tracer(clock=lambda: clock[0])
        with tracer.span("window"):
            clock[0] = 1.6
        span = tracer.spans[0]
        assert span.sim_start == 1.5
        assert span.sim_end == 1.6
        assert span.sim_duration == pytest.approx(0.1)

    def test_no_clock_means_no_sim_stamps(self):
        tracer = Tracer()
        with tracer.span("window"):
            pass
        span = tracer.spans[0]
        assert span.sim_start is None
        assert span.sim_duration is None

    def test_bind_clock_after_construction(self):
        tracer = Tracer()
        tracer.bind_clock(lambda: 42.0)
        with tracer.span("late"):
            pass
        assert tracer.spans[0].sim_start == 42.0


class TestRing:
    def test_ring_bounds_retained_spans(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans) == 4
        assert [span.name for span in tracer.spans] == \
            ["s6", "s7", "s8", "s9"]
        assert tracer.started == 10  # lifetime count survives eviction

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_resets_ring_but_not_started(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.spans == ()
        assert tracer.started == 1


class TestOutput:
    def test_report_aggregates_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("render"):
                pass
        with tracer.span("detect"):
            pass
        report = tracer.report()
        assert "render" in report and "n=3" in report
        assert "detect" in report
        assert "slowest" in report

    def test_snapshot_limit(self):
        tracer = Tracer()
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        snap = tracer.snapshot(limit=2)
        assert [entry["name"] for entry in snap] == ["s3", "s4"]
        assert all("wall_ms" in entry for entry in snap)
