"""Integration: the observability layer wired through a listening rig.

A Fig 5-style run (switch chirps, controller listens, queues fill) with
a *co-located second listener* — the configuration that exercises the
channel's render memo — must land nonzero values in the registry and
spans in the tracer, and the disabled default must leave components
fully functional with free-floating counters.
"""

from repro import obs
from repro.audio import AcousticChannel, Microphone, Position, Speaker
from repro.core import MDNController
from repro.core.agent import MusicAgent
from repro.net import Packet, PacketQueue, Simulator
from repro.net.packet import FlowKey


def _listening_rig():
    sim = Simulator()
    channel = AcousticChannel()
    agent = MusicAgent(sim, channel, Speaker(Position(0.5, 0, 0)), "s1")
    # Two controllers sharing one listening position: the second one's
    # renders are memo hits (the air is mixed once per window).
    first = MDNController(sim, channel, Microphone(Position(), seed=1),
                          listen_interval=0.1)
    second = MDNController(sim, channel, Microphone(Position(), seed=2),
                           listen_interval=0.1)
    return sim, agent, first, second


class TestEnabledRun:
    def test_fig5_style_run_emits_metrics_and_spans(self, enabled_obs):
        registry, tracer = enabled_obs
        sim, agent, first, second = _listening_rig()
        heard = []
        first.watch([700.0], on_detection=heard.append)
        second.watch([700.0], on_detection=lambda event: None)
        first.start()
        second.start()
        sim.schedule_at(0.25, lambda: agent.play(700.0, 0.3, 72))
        sim.run(1.0)

        assert heard  # the rig actually detected the chirp
        # Window-latency quantiles are populated.
        window_ms = registry.get("controller.window_ms")
        assert window_ms is not None and window_ms.count > 0
        assert window_ms.p99 >= window_ms.p50 > 0.0
        # The co-located listener hit the render memo.
        assert registry.total("channel.memo_hits") > 0
        # Both controllers' windows are visible (dedup suffixes).
        assert registry.total("controller.windows_processed") == 20
        assert registry.total("sim.events_processed") > 0
        # Spans carry simulation timestamps from the bound clock.
        spans = tracer.by_name("controller.window")
        assert spans
        assert all(span.sim_start is not None for span in spans)
        assert tracer.by_name("sim.run")

    def test_per_callback_site_histograms(self, enabled_obs):
        registry, _tracer = enabled_obs
        sim, agent, first, _second = _listening_rig()
        first.watch([700.0], on_detection=lambda event: None)
        first.start()
        sim.run(0.5)
        site_names = registry.names("sim.callback_ms.")
        assert any("PeriodicTimer._fire" in name for name in site_names)

    def test_queue_occupancy_histogram(self, enabled_obs):
        registry, _tracer = enabled_obs
        queue = PacketQueue(capacity=2, name="q")
        packet = Packet(FlowKey("10.0.0.1", "10.0.0.2", 1, 80))
        queue.enqueue(packet)
        queue.sample(0.1)
        queue.enqueue(packet)
        queue.enqueue(packet)  # over capacity -> drop
        queue.sample(0.2)
        hist = registry.get("queue.occupancy")
        assert hist is not None and hist.count == 2
        assert hist.max == 2
        assert registry.total("queue.drops") == 1

    def test_export_round_trip(self, enabled_obs, tmp_path):
        registry, tracer = enabled_obs
        sim, agent, first, _second = _listening_rig()
        first.watch([700.0], on_detection=lambda event: None)
        first.start()
        sim.run(0.3)
        path = registry.export(tmp_path / "OBS_rig.json",
                               extra={"trace": tracer.snapshot(limit=10)})
        assert path.exists()


class TestDisabledRun:
    def test_counters_still_count_without_registry(self):
        assert not obs.enabled()
        sim, agent, first, _second = _listening_rig()
        first.watch([700.0], on_detection=lambda event: None)
        first.start()
        sim.schedule_at(0.25, lambda: agent.play(700.0, 0.3, 72))
        sim.run(1.0)
        # API-compatible properties keep working with obs off.
        assert first.windows_processed == 10
        assert first.detections > 0
        assert sim.events_processed > 0
        assert first.channel.render_cache_misses > 0
