"""Unit tests for the metric instruments and registry."""

import json

import pytest

from repro import obs
from repro.obs import (
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_defaults_to_one(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_tracks_last_value_and_updates(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5
        assert gauge.updates == 2

    def test_callback_gauge_pulls_at_read_time(self):
        backing = [0]
        gauge = CallbackGauge("g", lambda: backing[0])
        assert gauge.value == 0
        backing[0] = 7
        assert gauge.value == 7


class TestHistogram:
    def test_exact_quantiles_small_sample(self):
        hist = Histogram("h")
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.count == 100
        assert hist.mean == pytest.approx(50.5)
        assert hist.min == 1.0
        assert hist.max == 100.0
        # Linear interpolation over 100 samples: p50 between 50 and 51.
        assert hist.p50 == pytest.approx(50.5)
        assert hist.p90 == pytest.approx(90.1)
        assert hist.p99 == pytest.approx(99.01)

    def test_quantile_interpolates(self):
        hist = Histogram("h")
        hist.observe(0.0)
        hist.observe(10.0)
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 10.0

    def test_quantile_rejects_out_of_range(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_empty_histogram_reports_zero(self):
        hist = Histogram("h")
        assert hist.mean == 0.0
        assert hist.p99 == 0.0
        assert hist.snapshot() == {"type": "histogram", "count": 0}

    def test_reservoir_bounds_memory_but_keeps_exact_stats(self):
        hist = Histogram("h", capacity=8)
        for value in range(1000):
            hist.observe(float(value))
        assert hist.count == 1000
        assert hist.max == 999.0
        assert hist.min == 0.0
        assert len(hist._samples) == 8
        # Quantiles come from the retained (recent) ring.
        assert hist.p50 >= 900.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Histogram("h", capacity=0)


class TestRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("x.hits")
        b = registry.counter("x.hits")
        assert a is b
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_register_dedups_names(self):
        registry = MetricsRegistry()
        first = registry.register(Counter("c.windows"))
        second = registry.register(Counter("c.windows"))
        third = registry.register(Counter("c.windows"))
        assert first.name == "c.windows"
        assert second.name == "c.windows#2"
        assert third.name == "c.windows#3"
        assert registry.get("c.windows#2") is second

    def test_total_sums_prefix_across_dedup_suffixes(self):
        registry = MetricsRegistry()
        registry.register(Counter("c.hits")).inc(2)
        registry.register(Counter("c.hits")).inc(3)
        registry.histogram("c.hits_ms").observe(1.0)  # ignored by total
        assert registry.total("c.hits") == 5

    def test_names_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("a.one")
        registry.counter("a.two")
        registry.counter("b.one")
        assert registry.names("a.") == ["a.one", "a.two"]
        assert "a.one" in registry

    def test_report_includes_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h.latency")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        registry.counter("h.count").inc(3)
        report = registry.report()
        assert "h.latency" in report
        assert "p50" in report and "p90" in report and "p99" in report
        assert "h.count" in report

    def test_export_writes_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("e.hits").inc(4)
        registry.gauge_fn("e.depth", lambda: 2)
        path = registry.export(tmp_path / "OBS_test.json",
                               extra={"experiment": "test"})
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "test"
        assert payload["metrics"]["e.hits"]["value"] == 4
        assert payload["metrics"]["e.depth"]["value"] == 2
        assert "timestamp" in payload


class TestModuleApi:
    def test_disabled_instruments_float_free(self):
        assert not obs.enabled()
        counter = obs.counter("free.counter")
        counter.inc()
        assert counter.value == 1
        assert obs.get_registry() is None

    def test_enabled_instruments_register(self, enabled_obs):
        registry, _tracer = enabled_obs
        counter = obs.counter("wired.counter")
        counter.inc(2)
        assert registry.get("wired.counter") is counter
        # A second instance of the same call site dedups, not aliases.
        other = obs.counter("wired.counter")
        assert other is not counter
        assert other.name == "wired.counter#2"

    def test_enable_is_idempotent(self, enabled_obs):
        registry, tracer = enabled_obs
        again_registry, again_tracer = obs.enable()
        assert again_registry is registry
        assert again_tracer is tracer

    def test_span_is_noop_when_disabled(self):
        assert not obs.enabled()
        with obs.span("anything", key="value") as span:
            assert span is None
