"""Shared fixtures for the observability tests."""

import pytest

from repro import obs


@pytest.fixture
def enabled_obs():
    """A process-global registry + tracer, torn down after the test so
    tier-1 runs stay un-instrumented."""
    pair = obs.enable()
    try:
        yield pair
    finally:
        obs.disable()
