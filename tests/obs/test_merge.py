"""Merge semantics for the fleet rollup: ``Instrument.merge`` and
``MetricsRegistry.merge``.

These are the contracts the sharded fleet driver leans on: merging N
shard registries must behave exactly like one process having observed
everything, for every instrument kind, including the ``#n`` de-dup
suffixes that keep per-instance streams aligned across shards.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------

def test_counter_merge_sums():
    a, b = Counter("hits"), Counter("hits")
    a.inc(3)
    b.inc(4)
    assert a.merge(b).value == 7
    assert b.value == 4  # the source is untouched


def test_registry_merges_counters_across_shards():
    fleet, shard1, shard2 = (MetricsRegistry() for _ in range(3))
    shard1.counter("fleet.emissions").inc(10)
    shard2.counter("fleet.emissions").inc(5)
    fleet.merge(shard1).merge(shard2)
    assert fleet.counter("fleet.emissions").value == 15


# ----------------------------------------------------------------------
# gauges
# ----------------------------------------------------------------------

def test_gauge_last_policy_merge_order_wins():
    a, b = Gauge("depth"), Gauge("depth")
    a.set(3.0)
    b.set(1.0)
    assert a.merge(b, policy="last").value == 1.0
    assert a.updates == 2


def test_gauge_max_policy_keeps_peak():
    a, b = Gauge("peak"), Gauge("peak")
    a.set(3.0)
    b.set(1.0)
    assert a.merge(b, policy="max").value == 3.0
    b2 = Gauge("peak")
    b2.set(9.0)
    assert a.merge(b2, policy="max").value == 9.0


def test_untouched_gauge_never_overwrites_a_live_reading():
    live, idle = Gauge("depth"), Gauge("depth")
    live.set(5.0)
    assert live.merge(idle, policy="last").value == 5.0
    assert live.updates == 1


def test_untouched_self_takes_other_under_max_policy():
    idle, live = Gauge("peak"), Gauge("peak")
    live.set(-2.0)  # below idle's default 0.0 — policy must still take it
    assert idle.merge(live, policy="max").value == -2.0


def test_unknown_gauge_policy_rejected():
    with pytest.raises(ValueError, match="policy"):
        Gauge("g").merge(Gauge("g"), policy="median")


def test_callback_gauge_is_sampled_into_plain_gauge():
    fleet, shard = MetricsRegistry(), MetricsRegistry()
    shard.gauge_fn("heap.depth", lambda: 7.0)
    fleet.merge(shard)
    merged = fleet.get("heap.depth")
    assert isinstance(merged, Gauge)
    assert merged.value == 7.0


def test_callback_gauge_on_self_side_rejected():
    fleet, shard = MetricsRegistry(), MetricsRegistry()
    fleet.gauge_fn("heap.depth", lambda: 1.0)
    shard.gauge("heap.depth").set(2.0)
    with pytest.raises(TypeError, match="heap.depth"):
        fleet.merge(shard)


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------

def test_histogram_merge_exact_running_stats():
    a, b = Histogram("lag"), Histogram("lag")
    for v in (1.0, 2.0, 3.0):
        a.observe(v)
    for v in (10.0, 0.5):
        b.observe(v)
    a.merge(b)
    assert a.count == 5
    assert a.total == pytest.approx(16.5)
    assert a.min == 0.5
    assert a.max == 10.0
    assert sorted(a.retained_samples()) == [0.5, 1.0, 2.0, 3.0, 10.0]


def test_histogram_merge_empty_other_is_noop():
    a = Histogram("lag")
    a.observe(4.0)
    before = a.snapshot()
    a.merge(Histogram("lag"))
    assert a.snapshot() == before
    assert a.min == 4.0  # the empty side's inf sentinels never leak


def test_empty_histogram_mean_and_quantiles_are_pinned_to_zero():
    h = Histogram("lag")
    assert h.mean == 0.0
    assert h.quantile(0.5) == 0.0
    assert h.p50 == 0.0 and h.p90 == 0.0 and h.p99 == 0.0
    assert not math.isnan(h.mean)
    assert h.snapshot() == {"type": "histogram", "count": 0}


def test_merge_into_empty_self_adopts_other():
    a, b = Histogram("lag"), Histogram("lag")
    b.observe(2.0)
    a.merge(b)
    assert (a.count, a.min, a.max) == (1, 2.0, 2.0)


def test_histogram_merge_respects_ring_capacity():
    a = Histogram("lag", capacity=4)
    b = Histogram("lag", capacity=4)
    for v in (1.0, 2.0, 3.0):
        a.observe(v)
    for v in (4.0, 5.0, 6.0):
        b.observe(v)
    a.merge(b)
    assert a.count == 6  # exact even though the ring dropped samples
    assert len(a.retained_samples()) == 4
    # the ring keeps the most recent observations in order
    assert a.retained_samples() == [3.0, 4.0, 5.0, 6.0]


# ----------------------------------------------------------------------
# registry-level semantics
# ----------------------------------------------------------------------

def test_dedup_suffixed_names_stay_aligned_across_shards():
    fleet, shard1, shard2 = (MetricsRegistry() for _ in range(3))
    for shard in (shard1, shard2):
        shard.register(Counter("arq.sent")).inc(1)
        shard.register(Counter("arq.sent")).inc(10)  # becomes arq.sent#2
    fleet.merge(shard1).merge(shard2)
    assert fleet.counter("arq.sent").value == 2
    assert fleet.counter("arq.sent#2").value == 20
    assert "arq.sent#3" not in fleet


def test_kind_collision_raises_typeerror():
    fleet, shard = MetricsRegistry(), MetricsRegistry()
    fleet.counter("x").inc()
    shard.gauge("x").set(1.0)
    with pytest.raises(TypeError, match="'x'"):
        fleet.merge(shard)


def test_merge_creates_missing_instruments_with_their_capacity():
    fleet, shard = MetricsRegistry(), MetricsRegistry()
    shard.histogram("lag", capacity=8).observe(1.0)
    fleet.merge(shard)
    assert fleet.get("lag")._capacity == 8


def test_merge_returns_self_for_chaining():
    fleet = MetricsRegistry()
    assert fleet.merge(MetricsRegistry()) is fleet


# ----------------------------------------------------------------------
# the property: merge == one process saw everything
# ----------------------------------------------------------------------

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e9, max_value=1e9)


@given(st.lists(finite, max_size=50), st.lists(finite, max_size=50))
def test_histogram_merge_equals_concatenated_observations(xs, ys):
    a, b, reference = Histogram("h"), Histogram("h"), Histogram("h")
    for v in xs:
        a.observe(v)
    for v in ys:
        b.observe(v)
    for v in xs + ys:
        reference.observe(v)
    a.merge(b)
    assert a.count == reference.count
    # Float summation is non-associative, so the two totals differ in
    # the last ulps once samples span ~1e9; the tolerance must scale
    # with magnitude (a bare abs=1e-6 is unsatisfiable up there).
    assert a.total == pytest.approx(reference.total, rel=1e-12, abs=1e-6)
    assert a.min == reference.min
    assert a.max == reference.max
    # under capacity the rings are identical, so quantiles match exactly
    assert a.retained_samples() == reference.retained_samples()
    if reference.count:
        assert a.p50 == reference.p50
        assert a.p99 == reference.p99


@given(st.lists(st.integers(min_value=0, max_value=100), max_size=20),
       st.lists(st.integers(min_value=0, max_value=100), max_size=20))
def test_registry_merge_counter_totals_are_additive(xs, ys):
    a, b = MetricsRegistry(), MetricsRegistry()
    for v in xs:
        a.counter("n").inc(v)
    for v in ys:
        b.counter("n").inc(v)
    a.merge(b)
    assert a.counter("n").value == sum(xs) + sum(ys)
