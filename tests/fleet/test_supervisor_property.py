"""Property test: the exactness contract over *random* fault schedules.

For any fault mix the supervisor recovers from (progress guaranteed
because ``max_attempts`` exceeds the plan's ``max_faulty_attempts``),
the supervised report must agree with the fault-free serial reference
on the full identity signature — and therefore on ``delivered`` /
``emissions`` — exactly.  Hypothesis drives rates, seeds and shard
counts; the straggler delay is kept at zero so hundreds of examples
cost simulation time, not wall-clock sleeping.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.faults.process import ProcessFaultPlan  # noqa: E402
from repro.fleet import FleetSpec, run_fleet, run_fleet_supervised  # noqa: E402
from repro.fleet.supervisor import SupervisorPolicy  # noqa: E402

SPEC = FleetSpec(num_rooms=3, switches_per_room=2, horizon=0.25, seed=17)

_REFERENCE_CACHE: dict = {}


def _reference():
    if "sig" not in _REFERENCE_CACHE:
        report = run_fleet(SPEC, backend="serial")
        _REFERENCE_CACHE["sig"] = report.identity_signature()
        _REFERENCE_CACHE["delivered"] = report.delivered
        _REFERENCE_CACHE["emissions"] = report.emissions
    return _REFERENCE_CACHE


rates = st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0])


@settings(max_examples=25, deadline=None)
@given(
    crash_rate=rates,
    poison_rate=rates,
    duplicate_rate=rates,
    max_faulty=st.integers(min_value=0, max_value=2),
    num_shards=st.integers(min_value=1, max_value=3),
    fault_seed=st.integers(min_value=0, max_value=10_000),
)
def test_any_recoverable_schedule_recovers_exactly(
        crash_rate, poison_rate, duplicate_rate, max_faulty, num_shards,
        fault_seed):
    plan = ProcessFaultPlan(
        crash_rate=crash_rate,
        poison_rate=poison_rate,
        duplicate_rate=duplicate_rate,
        max_faulty_attempts=max_faulty,
    )
    policy = SupervisorPolicy(
        max_attempts=max_faulty + 2,      # a clean attempt always exists
        quarantine_threshold=max_faulty + 2,  # quarantine out of reach
    )
    report = run_fleet_supervised(
        SPEC, num_shards=num_shards, backend="serial", faults=plan,
        policy=policy, seed=fault_seed,
    )
    ref = _reference()
    assert not report.failures
    assert report.delivered == ref["delivered"]
    assert report.emissions == ref["emissions"]
    assert report.identity_signature() == ref["sig"]
