"""Checkpoint spill: exact round-trips, torn-write paranoia."""

import pickle

import pytest

from repro.fleet import FleetSpec, run_room, run_shard
from repro.fleet.checkpoint import (
    MAGIC,
    CheckpointError,
    CheckpointStore,
    _frame,
    _unframe,
    checkpoint_roundtrip_exact,
)

SPEC = FleetSpec(num_rooms=2, switches_per_room=3, horizon=1.0, seed=17)
SHARD = SPEC.shard_specs(1)[0]


@pytest.fixture(scope="module")
def rooms():
    return [run_room(room_spec) for room_spec in SHARD.rooms]


def test_room_report_round_trips_exactly(rooms):
    # The exactness contract's foundation: spill + load is identity.
    for room in rooms:
        assert checkpoint_roundtrip_exact(room)


def test_shard_report_pickle_preserves_registry_merge_order(rooms):
    # ShardReport crosses the process boundary whole; its merged
    # registry (room-order merge) must survive exactly, not just
    # approximately.
    report = run_shard(SHARD)
    clone = pickle.loads(pickle.dumps(report, pickle.HIGHEST_PROTOCOL))
    assert clone.shard_id == report.shard_id
    assert clone.metrics.snapshot() == report.metrics.snapshot()
    assert ([room.identity_signature() for room in clone.rooms]
            == [room.identity_signature() for room in report.rooms])


def test_save_load_round_trip(tmp_path, rooms):
    store = CheckpointStore(tmp_path)
    for room in rooms:
        store.save_room(SHARD.shard_id, room)
    loaded = store.load_rooms(SHARD.shard_id)
    assert sorted(loaded) == [room.room_id for room in rooms]
    for room in rooms:
        assert (loaded[room.room_id].identity_signature()
                == room.identity_signature())


def test_truncated_spill_is_discarded_not_half_loaded(tmp_path, rooms):
    store = CheckpointStore(tmp_path)
    path = store.save_room(SHARD.shard_id, rooms[0])
    blob = path.read_bytes()
    # Tear the write at every interesting boundary: mid-magic,
    # mid-header, mid-payload.
    for cut in (3, len(MAGIC) + 4, len(blob) // 2, len(blob) - 1):
        path.write_bytes(blob[:cut])
        loaded = store.load_rooms(SHARD.shard_id)
        assert loaded == {}, f"cut at {cut} was half-loaded"
        assert not path.exists(), f"cut at {cut} was not discarded"
        path.write_bytes(blob)  # restore for the next cut
    # Untorn file still loads after all that.
    assert rooms[0].room_id in store.load_rooms(SHARD.shard_id)


def test_corrupt_payload_and_bad_magic_are_discarded(tmp_path, rooms):
    store = CheckpointStore(tmp_path)
    path = store.save_room(SHARD.shard_id, rooms[0])
    blob = bytearray(path.read_bytes())
    blob[-3] ^= 0xFF  # flip a payload bit: crc must catch it
    path.write_bytes(bytes(blob))
    assert store.load_rooms(SHARD.shard_id) == {}
    path2 = store.save_room(SHARD.shard_id, rooms[0])
    path2.write_bytes(b"JUNKFILE" + b"\x00" * 64)
    assert store.load_rooms(SHARD.shard_id) == {}


def test_wrong_type_payload_is_discarded(tmp_path, rooms):
    store = CheckpointStore(tmp_path)
    path = store.save_room(SHARD.shard_id, rooms[0])
    path.write_bytes(_frame(pickle.dumps({"not": "a RoomReport"})))
    assert store.load_rooms(SHARD.shard_id) == {}
    assert not path.exists()


def test_unframe_error_messages():
    with pytest.raises(CheckpointError, match="bad magic"):
        _unframe(b"nope", "t")
    with pytest.raises(CheckpointError, match="truncated header"):
        _unframe(MAGIC + b"\x00\x03", "t")
    framed = _frame(b"payload")
    with pytest.raises(CheckpointError, match="torn write"):
        _unframe(framed[:-2], "t")
    assert _unframe(framed, "t") == b"payload"


def test_atomic_write_leaves_no_tmp_droppings(tmp_path, rooms):
    store = CheckpointStore(tmp_path)
    store.save_room(SHARD.shard_id, rooms[0])
    leftovers = [p for p in tmp_path.rglob("*") if ".tmp" in p.name]
    assert leftovers == []


def test_discard_and_clear(tmp_path, rooms):
    store = CheckpointStore(tmp_path)
    for room in rooms:
        store.save_room(SHARD.shard_id, room)
    store.discard_shard(SHARD.shard_id)
    assert store.load_rooms(SHARD.shard_id) == {}
    for room in rooms:
        store.save_room(SHARD.shard_id, room)
    store.clear()
    assert store.load_rooms(SHARD.shard_id) == {}
    assert list(tmp_path.glob("shard*")) == []
