"""FleetSupervisor: exact recovery under every injected fault shape."""

import pytest

from repro.faults.process import PoisonedShardReport, ProcessFaultPlan
from repro.fleet import (
    FleetSpec,
    ShardReport,
    SupervisorPolicy,
    run_fleet,
    run_fleet_supervised,
    validate_shard_report,
)

SPEC = FleetSpec(num_rooms=4, switches_per_room=2, horizon=0.5, seed=17)


@pytest.fixture(scope="module")
def reference():
    return run_fleet(SPEC, backend="serial").identity_signature()


def _policy(**overrides):
    defaults = dict(max_attempts=6, quarantine_threshold=10)
    defaults.update(overrides)
    return SupervisorPolicy(**defaults)


# ----------------------------------------------------------------------
# fault-free: supervised == plain, bit for bit
# ----------------------------------------------------------------------

def test_plain_run_fleet_has_no_supervisor_stats():
    assert run_fleet(SPEC, backend="serial").supervisor is None


def test_clean_supervised_serial_is_bit_identical(reference):
    report = run_fleet_supervised(SPEC, num_shards=2, backend="serial")
    assert report.identity_signature() == reference
    assert report.supervisor.attempts_total == 2
    assert report.supervisor.crashes_detected == 0
    assert not report.failures


def test_clean_supervised_process_is_bit_identical(reference):
    report = run_fleet_supervised(SPEC, num_shards=2, backend="process",
                                  workers=2)
    assert report.identity_signature() == reference
    assert not report.failures


# ----------------------------------------------------------------------
# crash recovery (soft + hard), checkpoint resume
# ----------------------------------------------------------------------

def test_soft_crashes_recover_exactly_serial(reference):
    plan = ProcessFaultPlan(crash_rate=1.0, max_faulty_attempts=1)
    report = run_fleet_supervised(SPEC, num_shards=2, backend="serial",
                                  faults=plan, policy=_policy())
    assert not report.failures
    assert report.identity_signature() == reference
    stats = report.supervisor
    # Every shard crashed on attempts 0 and 1, succeeded on attempt 2.
    assert stats.crashes_detected == 4
    assert stats.attempts_total == 6
    assert stats.retries_scheduled == 4


def test_checkpoint_resume_skips_finished_rooms(reference):
    # Both shards die mid-shard once; the retry must resume the rooms
    # the corpse already spilled rather than recompute them.
    plan = ProcessFaultPlan(crash_rate=1.0, max_faulty_attempts=0)
    report = run_fleet_supervised(SPEC, num_shards=2, backend="serial",
                                  faults=plan, policy=_policy())
    assert not report.failures
    assert report.identity_signature() == reference
    assert report.supervisor.rooms_resumed >= 1
    resumed_attempts = [shard.attempt for shard in report.shards]
    assert all(attempt == 1 for attempt in resumed_attempts)


def test_checkpointing_can_be_disabled(reference):
    plan = ProcessFaultPlan(crash_rate=1.0, max_faulty_attempts=0)
    report = run_fleet_supervised(
        SPEC, num_shards=2, backend="serial", faults=plan,
        policy=_policy(checkpoint=False))
    assert not report.failures
    assert report.identity_signature() == reference
    assert report.supervisor.rooms_resumed == 0


def test_hard_crashes_break_and_rebuild_the_pool_exactly(reference):
    plan = ProcessFaultPlan(crash_rate=1.0, hard_crash=True,
                            max_faulty_attempts=0)
    report = run_fleet_supervised(SPEC, num_shards=2, backend="process",
                                  workers=2, faults=plan, policy=_policy())
    assert not report.failures
    assert report.identity_signature() == reference
    stats = report.supervisor
    assert stats.crashes_detected >= 1
    assert stats.pool_rebuilds >= 1


# ----------------------------------------------------------------------
# poison + duplicates
# ----------------------------------------------------------------------

def test_poisoned_reports_are_rejected_never_merged(reference):
    plan = ProcessFaultPlan(poison_rate=1.0, max_faulty_attempts=1)
    report = run_fleet_supervised(SPEC, num_shards=2, backend="serial",
                                  faults=plan, policy=_policy())
    assert not report.failures
    assert report.identity_signature() == reference
    assert report.supervisor.poisoned_reports == 4


def test_duplicate_deliveries_are_deduped_serial(reference):
    plan = ProcessFaultPlan(duplicate_rate=1.0, max_faulty_attempts=0)
    report = run_fleet_supervised(SPEC, num_shards=2, backend="serial",
                                  faults=plan, policy=_policy())
    assert not report.failures
    assert report.identity_signature() == reference
    stats = report.supervisor
    assert stats.duplicates_injected == 2
    assert stats.duplicates_dropped == 2


def test_duplicate_deliveries_are_deduped_process(reference):
    plan = ProcessFaultPlan(duplicate_rate=1.0, max_faulty_attempts=0)
    report = run_fleet_supervised(SPEC, num_shards=2, backend="process",
                                  workers=2, faults=plan, policy=_policy())
    assert not report.failures
    assert report.identity_signature() == reference
    stats = report.supervisor
    assert stats.duplicates_injected == 2
    assert stats.duplicates_dropped == 2


# ----------------------------------------------------------------------
# stragglers + hedging
# ----------------------------------------------------------------------

def test_stragglers_get_hedged_and_results_stay_exact(reference):
    plan = ProcessFaultPlan(straggler_rate=1.0, straggler_delay_s=0.8,
                            max_faulty_attempts=0)
    report = run_fleet_supervised(
        SPEC, num_shards=2, backend="process", workers=3, faults=plan,
        policy=_policy(hedge_after_s=0.15))
    assert not report.failures
    assert report.identity_signature() == reference
    stats = report.supervisor
    assert stats.stragglers_hedged >= 1
    # First result wins; whatever lost the race was counted, not merged.
    assert (stats.hedges_wasted + stats.late_results_dropped
            >= 0)


def test_deadline_kills_a_wedged_attempt_and_recovers(reference):
    # A straggler sleeping far past the deadline is indistinguishable
    # from a hang; the supervisor must kill it and retry (attempt 1
    # runs clean), not wait out the sleep.
    plan = ProcessFaultPlan(straggler_rate=1.0, straggler_delay_s=120.0,
                            max_faulty_attempts=0)
    report = run_fleet_supervised(
        SPEC, num_shards=2, backend="process", workers=2, faults=plan,
        policy=_policy(hedge_after_s=None, shard_deadline_s=0.5))
    assert not report.failures
    assert report.identity_signature() == reference
    stats = report.supervisor
    assert stats.deadline_kills >= 1
    assert stats.pool_rebuilds >= 1


# ----------------------------------------------------------------------
# bounded give-up: quarantine and attempt budgets
# ----------------------------------------------------------------------

def test_repeat_offender_is_quarantined():
    plan = ProcessFaultPlan(crash_rate=1.0, max_faulty_attempts=50)
    report = run_fleet_supervised(
        SPEC, num_shards=2, backend="serial", faults=plan,
        policy=_policy(max_attempts=50, quarantine_threshold=2))
    assert len(report.failures) == 2
    assert all(f.quarantined for f in report.failures)
    assert all(f.attempts == 2 for f in report.failures)
    assert report.supervisor.shards_quarantined == 2
    # The healthy half of nothing: no shard reports at all here, but
    # the run still returned a well-formed report.
    assert report.shards == []


def test_attempt_budget_exhaustion_is_a_counted_failure():
    plan = ProcessFaultPlan(crash_rate=1.0, max_faulty_attempts=50)
    report = run_fleet_supervised(
        SPEC, num_shards=2, backend="serial", faults=plan,
        policy=_policy(max_attempts=2, quarantine_threshold=50))
    assert len(report.failures) == 2
    assert all(not f.quarantined for f in report.failures)
    assert all(f.attempts == 2 for f in report.failures)


def test_process_backend_gives_up_boundedly_too():
    plan = ProcessFaultPlan(crash_rate=1.0, max_faulty_attempts=50)
    report = run_fleet_supervised(
        SPEC, num_shards=2, backend="process", workers=2, faults=plan,
        policy=_policy(max_attempts=2, quarantine_threshold=50))
    assert len(report.failures) == 2
    assert report.shards == []


# ----------------------------------------------------------------------
# validation + policy guards
# ----------------------------------------------------------------------

def test_validate_shard_report_rejects_poison_and_mismatches():
    shard = SPEC.shard_specs(2)[0]
    assert validate_shard_report(PoisonedShardReport(shard_id=0), shard)
    assert validate_shard_report("garbage", shard)
    real = run_fleet_supervised(SPEC, num_shards=2,
                                backend="serial").shards[0]
    assert validate_shard_report(real, shard) is None
    wrong_shard = SPEC.shard_specs(2)[1]
    assert validate_shard_report(real, wrong_shard)
    hollow = ShardReport(shard_id=shard.shard_id, rooms=[],
                         metrics=real.metrics)
    assert "room set mismatch" in validate_shard_report(hollow, shard)


def test_policy_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        SupervisorPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="hedge_after_s"):
        SupervisorPolicy(hedge_after_s=0.0)
    with pytest.raises(ValueError, match="shard_deadline_s"):
        SupervisorPolicy(shard_deadline_s=-1.0)
    with pytest.raises(ValueError, match="quarantine_threshold"):
        SupervisorPolicy(quarantine_threshold=0)
    with pytest.raises(ValueError, match="poll_interval_s"):
        SupervisorPolicy(poll_interval_s=0.0)
    with pytest.raises(ValueError, match="backend"):
        run_fleet_supervised(SPEC, backend="quantum")
