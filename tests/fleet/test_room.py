"""One room, end to end: determinism, delivery accounting, faults."""

import pickle

import pytest

from repro.fleet import FaultPlan, RoomSpec, run_room

#: Small-but-real room: 8 switches for ~0.5 s keeps the test quick
#: while exercising the full chirp/listen/attribute path.
SPEC = RoomSpec(room_id=0, num_switches=8, horizon=0.5)


@pytest.fixture(scope="module")
def report():
    return run_room(SPEC)


def test_room_delivers_its_chirps(report):
    assert report.emissions > 0
    assert report.delivered <= report.emissions
    assert report.delivery_ratio >= 0.9
    assert report.delivery_ratio <= 1.0  # matched accounting caps at 1
    assert report.spurious_onsets <= report.onsets


def test_room_metrics_mirror_the_report(report):
    snap = report.metrics.snapshot()
    assert snap["fleet.rooms"]["value"] == 1
    assert snap["fleet.switches"]["value"] == SPEC.num_switches
    assert snap["fleet.emissions"]["value"] == report.emissions
    assert snap["fleet.delivered"]["value"] == report.delivered
    assert snap["fleet.spurious_onsets"]["value"] == report.spurious_onsets
    assert snap["fleet.onset_lag_ms"]["count"] == report.onsets - \
        report.spurious_onsets
    # every genuine onset is attributed within the matching horizon
    max_lag_ms = (SPEC.tone_duration + 2 * SPEC.listen_interval) * 1e3
    assert snap["fleet.onset_lag_ms"]["max"] <= max_lag_ms


def test_two_runs_are_identical(report):
    again = run_room(SPEC)
    assert again.identity_signature() == report.identity_signature()


def test_wall_clock_stays_out_of_the_signature(report):
    assert "wall_s" not in report.identity_signature()
    assert report.wall_s > 0.0


def test_different_rooms_differ_but_share_the_band(report):
    other = run_room(RoomSpec(room_id=1, num_switches=8, horizon=0.5))
    # same band (spatial reuse), different placement/stagger stream
    assert other.identity_signature() != report.identity_signature()
    assert other.emissions > 0


def test_different_seed_changes_the_room(report):
    other = run_room(RoomSpec(room_id=0, num_switches=8, horizon=0.5,
                              fleet_seed=99))
    assert other.identity_signature() != report.identity_signature()


def test_faults_degrade_delivery_deterministically(report):
    faulted_spec = RoomSpec(room_id=0, num_switches=8, horizon=0.5,
                            faults=FaultPlan(speaker_outage_rate=1.0,
                                             outage_duration=0.4))
    faulted = run_room(faulted_spec)
    assert faulted.speaker_outages == SPEC.num_switches
    assert faulted.delivery_ratio < report.delivery_ratio
    again = run_room(faulted_spec)
    assert again.identity_signature() == faulted.identity_signature()


def test_report_is_picklable(report):
    clone = pickle.loads(pickle.dumps(report))
    assert clone.identity_signature() == report.identity_signature()
