"""Fleet spec validation, partitioning, and the picklability audit."""

import io
import pickle

import pytest

from repro.fleet import (
    FaultPlan,
    FleetConfigError,
    FleetSpec,
    RoomSpec,
    ShardSpec,
    ensure_picklable,
)


def _noop_scene(sim, channel, rng):
    """A module-level scene hook: the picklable kind."""


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

def test_room_spec_rejects_blurred_onsets():
    # 0.08 s tone at 10 Hz leaves a 0.02 s gap < two 1/30 s windows.
    with pytest.raises(FleetConfigError, match="blur"):
        RoomSpec(room_id=0, num_switches=4, tone_duration=0.08)


def test_room_spec_rejects_band_overflow():
    with pytest.raises(FleetConfigError, match="speaker envelope"):
        RoomSpec(room_id=0, num_switches=100, guard_hz=120.0)


@pytest.mark.parametrize("kwargs", [
    {"room_id": -1, "num_switches": 4},
    {"room_id": 0, "num_switches": 0},
    {"room_id": 0, "num_switches": 4, "horizon": 0.0},
    {"room_id": 0, "num_switches": 4, "emission_rate_hz": -1.0},
])
def test_room_spec_rejects_bad_scalars(kwargs):
    with pytest.raises(FleetConfigError):
        RoomSpec(**kwargs)


def test_fault_plan_validation():
    with pytest.raises(FleetConfigError):
        FaultPlan(speaker_outage_rate=1.5)
    with pytest.raises(FleetConfigError):
        FaultPlan(outage_duration=0.0)
    assert not FaultPlan().active
    assert FaultPlan(speaker_outage_rate=0.2).active


def test_shard_spec_needs_rooms():
    with pytest.raises(FleetConfigError, match="at least one room"):
        ShardSpec(shard_id=0, rooms=())


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------

def test_room_specs_carry_shared_knobs():
    fleet = FleetSpec(num_rooms=3, switches_per_room=5, seed=42,
                      horizon=0.7, guard_hz=150.0)
    rooms = fleet.room_specs()
    assert [room.room_id for room in rooms] == [0, 1, 2]
    assert all(room.fleet_seed == 42 for room in rooms)
    assert all(room.horizon == 0.7 for room in rooms)
    assert all(room.guard_hz == 150.0 for room in rooms)
    assert fleet.num_switches == 15
    assert fleet.nominal_emissions_per_second == 150.0


@pytest.mark.parametrize("num_rooms,num_shards", [
    (10, 1), (10, 2), (10, 3), (10, 10), (7, 4),
])
def test_shard_partition_is_contiguous_and_balanced(num_rooms, num_shards):
    fleet = FleetSpec(num_rooms=num_rooms, switches_per_room=2)
    shards = fleet.shard_specs(num_shards)
    assert len(shards) == num_shards
    flat = [room.room_id for shard in shards for room in shard.rooms]
    assert flat == list(range(num_rooms))  # contiguous, global order
    sizes = [len(shard.rooms) for shard in shards]
    assert max(sizes) - min(sizes) <= 1


def test_shard_count_bounds():
    fleet = FleetSpec(num_rooms=4, switches_per_room=2)
    with pytest.raises(FleetConfigError):
        fleet.shard_specs(0)
    with pytest.raises(FleetConfigError):
        fleet.shard_specs(5)


# ----------------------------------------------------------------------
# picklability audit
# ----------------------------------------------------------------------

def test_every_fleet_spec_kind_round_trips_through_pickle():
    fleet = FleetSpec(num_rooms=2, switches_per_room=3,
                      faults=FaultPlan(speaker_outage_rate=0.1),
                      scene=_noop_scene)
    for obj in (fleet, fleet.room_specs()[0], fleet.shard_specs(2)[0],
                FaultPlan(speaker_outage_rate=0.5)):
        clone = pickle.loads(pickle.dumps(obj))
        assert clone == obj


def test_ensure_picklable_passes_clean_specs():
    ensure_picklable(RoomSpec(room_id=0, num_switches=2), "RoomSpec")


def test_lambda_scene_hook_fails_with_clear_error():
    spec = RoomSpec(room_id=0, num_switches=2,
                    scene=lambda sim, channel, rng: None)
    with pytest.raises(FleetConfigError) as excinfo:
        ensure_picklable(spec, "RoomSpec(room_id=0)")
    message = str(excinfo.value)
    assert "RoomSpec(room_id=0)" in message
    assert "module-level" in message  # tells the user how to fix it


def test_closure_scene_hook_fails_too():
    noise = io.BytesIO()  # captured live object

    def scene(sim, channel, rng):
        noise.read()

    with pytest.raises(FleetConfigError, match="not picklable"):
        ensure_picklable(
            RoomSpec(room_id=1, num_switches=2, scene=scene),
            "RoomSpec(room_id=1)",
        )
