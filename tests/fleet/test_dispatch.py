"""Dispatch guardrails: admission pacing, breaker, retries, pickling."""

import pytest

from repro.fleet import (
    FleetDispatcher,
    FleetConfigError,
    FleetSpec,
    RoomSpec,
    ShardSpec,
)
from repro.infra import CircuitBreaker, TokenBucket

SHARDS = FleetSpec(num_rooms=4, switches_per_room=2).shard_specs(4)


class ManualTime:
    """Injectable clock + sleep pair: sleeping advances the clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self.slept: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


def _stub_runner(shard: ShardSpec) -> str:
    return f"report-{shard.shard_id}"


def test_admission_paces_dispatch_without_real_sleeping():
    time = ManualTime()
    dispatcher = FleetDispatcher(
        admission=TokenBucket(2.0, 1.0, name="test.fleet"),
        clock=time.clock, sleep=time.sleep,
    )
    reports, failures = dispatcher.run_serial(SHARDS, _stub_runner)
    assert reports == [f"report-{i}" for i in range(4)]
    assert not failures
    # burst of 1 admits the first shard at t=0; the remaining three wait
    # out the 2/s refill — ~0.5 s apart on the injected clock.
    assert time.slept  # pacing happened
    assert time.now == pytest.approx(1.5, abs=0.1)


def test_no_admission_means_no_pacing():
    time = ManualTime()
    dispatcher = FleetDispatcher(clock=time.clock, sleep=time.sleep)
    reports, _ = dispatcher.run_serial(SHARDS, _stub_runner)
    assert len(reports) == 4
    assert time.slept == []


def test_breaker_trips_on_poisoned_runner_and_fast_fails_the_rest():
    time = ManualTime()
    calls = []

    def poisoned(shard):
        calls.append(shard.shard_id)
        raise RuntimeError("poison")

    dispatcher = FleetDispatcher(
        breaker=CircuitBreaker("test.pool", failure_threshold=2,
                               recovery_timeout=60.0),
        max_attempts=1, clock=time.clock, sleep=time.sleep,
    )
    reports, failures = dispatcher.run_serial(SHARDS, poisoned)
    assert reports == []
    assert len(failures) == 4
    # two real executions trip the breaker; shards 2 and 3 never run
    assert calls == [0, 1]
    assert [f.fast_failed for f in failures] == [False, False, True, True]
    assert all("breaker" in f.error for f in failures if f.fast_failed)


def test_transient_failure_gets_one_retry():
    time = ManualTime()
    attempts = {}

    def flaky(shard):
        attempts[shard.shard_id] = attempts.get(shard.shard_id, 0) + 1
        if attempts[shard.shard_id] == 1 and shard.shard_id == 0:
            raise OSError("worker died")
        return f"report-{shard.shard_id}"

    dispatcher = FleetDispatcher(max_attempts=2,
                                 clock=time.clock, sleep=time.sleep)
    reports, failures = dispatcher.run_serial(SHARDS, flaky)
    assert len(reports) == 4
    assert not failures
    assert attempts[0] == 2  # failed once, retried, succeeded


def test_exhausted_attempts_become_a_counted_failure():
    time = ManualTime()

    def always_down(shard):
        if shard.shard_id == 1:
            raise OSError("worker keeps dying")
        return f"report-{shard.shard_id}"

    dispatcher = FleetDispatcher(
        breaker=CircuitBreaker("test.pool2", failure_threshold=10,
                               recovery_timeout=60.0),
        max_attempts=2, clock=time.clock, sleep=time.sleep,
    )
    reports, failures = dispatcher.run_serial(SHARDS, always_down)
    assert len(reports) == 3
    assert [f.shard_id for f in failures] == [1]
    assert failures[0].attempts == 2
    assert not failures[0].fast_failed


def test_unpicklable_shard_is_rejected_before_the_pool():
    shard = ShardSpec(shard_id=0, rooms=(
        RoomSpec(room_id=0, num_switches=2,
                 scene=lambda sim, channel, rng: None),
    ))
    dispatcher = FleetDispatcher()
    with pytest.raises(FleetConfigError, match="shard_id=0"):
        dispatcher.run((shard,), _stub_runner, workers=1)


def test_constructor_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        FleetDispatcher(max_attempts=0)
    dispatcher = FleetDispatcher()
    with pytest.raises(ValueError, match="workers"):
        dispatcher.run(SHARDS, _stub_runner, workers=0)
