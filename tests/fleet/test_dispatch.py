"""Dispatch guardrails: admission pacing, breaker, retries, pickling."""

import functools
import os
import time

import pytest

from repro.fleet import (
    FleetDispatcher,
    FleetConfigError,
    FleetSpec,
    RoomSpec,
    ShardSpec,
)
from repro.infra import CircuitBreaker, TokenBucket

SHARDS = FleetSpec(num_rooms=4, switches_per_room=2).shard_specs(4)


class ManualTime:
    """Injectable clock + sleep pair: sleeping advances the clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self.slept: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


def _stub_runner(shard: ShardSpec) -> str:
    return f"report-{shard.shard_id}"


def test_admission_paces_dispatch_without_real_sleeping():
    time = ManualTime()
    dispatcher = FleetDispatcher(
        admission=TokenBucket(2.0, 1.0, name="test.fleet"),
        clock=time.clock, sleep=time.sleep,
    )
    reports, failures = dispatcher.run_serial(SHARDS, _stub_runner)
    assert reports == [f"report-{i}" for i in range(4)]
    assert not failures
    # burst of 1 admits the first shard at t=0; the remaining three wait
    # out the 2/s refill — ~0.5 s apart on the injected clock.
    assert time.slept  # pacing happened
    assert time.now == pytest.approx(1.5, abs=0.1)


def test_no_admission_means_no_pacing():
    time = ManualTime()
    dispatcher = FleetDispatcher(clock=time.clock, sleep=time.sleep)
    reports, _ = dispatcher.run_serial(SHARDS, _stub_runner)
    assert len(reports) == 4
    assert time.slept == []


def test_breaker_trips_on_poisoned_runner_and_fast_fails_the_rest():
    time = ManualTime()
    calls = []

    def poisoned(shard):
        calls.append(shard.shard_id)
        raise RuntimeError("poison")

    dispatcher = FleetDispatcher(
        breaker=CircuitBreaker("test.pool", failure_threshold=2,
                               recovery_timeout=60.0),
        max_attempts=1, clock=time.clock, sleep=time.sleep,
    )
    reports, failures = dispatcher.run_serial(SHARDS, poisoned)
    assert reports == []
    assert len(failures) == 4
    # two real executions trip the breaker; shards 2 and 3 never run
    assert calls == [0, 1]
    assert [f.fast_failed for f in failures] == [False, False, True, True]
    assert all("breaker" in f.error for f in failures if f.fast_failed)


def test_transient_failure_gets_one_retry():
    time = ManualTime()
    attempts = {}

    def flaky(shard):
        attempts[shard.shard_id] = attempts.get(shard.shard_id, 0) + 1
        if attempts[shard.shard_id] == 1 and shard.shard_id == 0:
            raise OSError("worker died")
        return f"report-{shard.shard_id}"

    dispatcher = FleetDispatcher(max_attempts=2,
                                 clock=time.clock, sleep=time.sleep)
    reports, failures = dispatcher.run_serial(SHARDS, flaky)
    assert len(reports) == 4
    assert not failures
    assert attempts[0] == 2  # failed once, retried, succeeded


def test_exhausted_attempts_become_a_counted_failure():
    time = ManualTime()

    def always_down(shard):
        if shard.shard_id == 1:
            raise OSError("worker keeps dying")
        return f"report-{shard.shard_id}"

    dispatcher = FleetDispatcher(
        breaker=CircuitBreaker("test.pool2", failure_threshold=10,
                               recovery_timeout=60.0),
        max_attempts=2, clock=time.clock, sleep=time.sleep,
    )
    reports, failures = dispatcher.run_serial(SHARDS, always_down)
    assert len(reports) == 3
    assert [f.shard_id for f in failures] == [1]
    assert failures[0].attempts == 2
    assert not failures[0].fast_failed


def test_unpicklable_shard_is_rejected_before_the_pool():
    shard = ShardSpec(shard_id=0, rooms=(
        RoomSpec(room_id=0, num_switches=2,
                 scene=lambda sim, channel, rng: None),
    ))
    dispatcher = FleetDispatcher()
    with pytest.raises(FleetConfigError, match="shard_id=0"):
        dispatcher.run((shard,), _stub_runner, workers=1)


def test_constructor_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        FleetDispatcher(max_attempts=0)
    dispatcher = FleetDispatcher()
    with pytest.raises(ValueError, match="workers"):
        dispatcher.run(SHARDS, _stub_runner, workers=0)
    with pytest.raises(ValueError, match="shard_timeout"):
        dispatcher.run(SHARDS, _stub_runner, workers=1, shard_timeout=0.0)


# ----------------------------------------------------------------------
# process-level failure shapes (real pool, module-level workers)
# ----------------------------------------------------------------------

def _exit_once_runner(flag_dir: str, shard: ShardSpec) -> str:
    """Kills its worker with ``os._exit`` the first time shard 0 runs —
    the ungraceful death (OOM-kill, segfault) that breaks the whole
    ``ProcessPoolExecutor``, not just one future."""
    flag = os.path.join(flag_dir, f"died-{shard.shard_id}")
    if shard.shard_id == 0 and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(11)
    return f"report-{shard.shard_id}"


def _hang_once_runner(flag_dir: str, shard: ShardSpec) -> str:
    """Wedges (sleeps far past any test deadline) the first time
    shard 0 runs — the hung-worker shape only a timeout can evict."""
    flag = os.path.join(flag_dir, f"hung-{shard.shard_id}")
    if shard.shard_id == 0 and not os.path.exists(flag):
        open(flag, "w").close()
        time.sleep(300.0)
    return f"report-{shard.shard_id}"


def test_broken_pool_becomes_counted_retry_and_one_rebuild(tmp_path):
    # Regression pin: a worker calling os._exit used to surface as an
    # uncaught BrokenProcessPool from wait(); now it is a failed
    # attempt (retried) plus exactly one pool rebuild per break.
    dispatcher = FleetDispatcher(
        breaker=CircuitBreaker("test.pool3", failure_threshold=10,
                               recovery_timeout=60.0),
        max_attempts=2,
    )
    runner = functools.partial(_exit_once_runner, str(tmp_path))
    reports, failures = dispatcher.run(SHARDS, runner, workers=2)
    assert sorted(reports) == [f"report-{i}" for i in range(4)]
    assert not failures
    assert dispatcher._m_rebuilds.value >= 1


def _exit_always_runner(shard: ShardSpec) -> str:
    if shard.shard_id == 0:
        os._exit(11)
    return f"report-{shard.shard_id}"


def test_broken_pool_exhausting_attempts_is_a_counted_failure():
    # A shard whose *every* attempt kills its worker must end as a
    # counted ShardFailure, never a crashed or hung run.
    dispatcher = FleetDispatcher(
        breaker=CircuitBreaker("test.pool4", failure_threshold=10,
                               recovery_timeout=60.0),
        max_attempts=2,
    )
    reports, failures = dispatcher.run(
        SHARDS, _exit_always_runner, workers=2)
    assert sorted(reports) == [f"report-{i}" for i in range(1, 4)]
    assert [f.shard_id for f in failures] == [0]
    assert failures[0].attempts == 2
    assert "BrokenProcessPool" in failures[0].error or "broken" in \
        failures[0].error.lower()


def test_hung_worker_is_timed_out_killed_and_retried(tmp_path):
    # Without shard_timeout this run would block forever on wait();
    # with it, the wedged worker is killed, counted, and the shard's
    # retry (which does not hang) completes the run.
    dispatcher = FleetDispatcher(
        breaker=CircuitBreaker("test.pool5", failure_threshold=10,
                               recovery_timeout=60.0),
        max_attempts=2,
    )
    runner = functools.partial(_hang_once_runner, str(tmp_path))
    start = time.monotonic()
    reports, failures = dispatcher.run(
        SHARDS, runner, workers=2, shard_timeout=1.0)
    wall = time.monotonic() - start
    assert sorted(reports) == [f"report-{i}" for i in range(4)]
    assert not failures
    assert dispatcher._m_timed_out.value == 1
    assert dispatcher._m_rebuilds.value >= 1
    assert wall < 60.0  # evicted the hang, did not sit out the sleep
