"""The fleet driver: serial reference vs process pool, merged metrics."""

import pytest

from repro.fleet import FleetSpec, run_fleet

#: Small fleet that still spans several rooms and shards.
SPEC = FleetSpec(num_rooms=4, switches_per_room=6, horizon=0.5)


@pytest.fixture(scope="module")
def serial():
    return run_fleet(SPEC, num_shards=1, backend="serial")


def test_serial_identity_is_stable_across_shard_counts(serial):
    for num_shards in (2, 4):
        resharded = run_fleet(SPEC, num_shards=num_shards, backend="serial")
        assert resharded.identity_signature() == serial.identity_signature()


def test_process_backend_matches_serial_reference(serial):
    fanned = run_fleet(SPEC, num_shards=2, backend="process", workers=2)
    assert fanned.identity_signature() == serial.identity_signature()
    assert not fanned.failures


def test_fleet_totals_roll_up_from_rooms(serial):
    rooms = serial.rooms
    assert [room.room_id for room in rooms] == [0, 1, 2, 3]
    assert serial.emissions == sum(room.emissions for room in rooms)
    assert serial.onsets == sum(room.onsets for room in rooms)
    assert serial.delivered == sum(room.delivered for room in rooms)
    snap = serial.metrics.snapshot()
    assert snap["fleet.rooms"]["value"] == SPEC.num_rooms
    assert snap["fleet.switches"]["value"] == SPEC.num_switches
    assert snap["fleet.emissions"]["value"] == serial.emissions
    assert snap["fleet.simulated_seconds"]["value"] == pytest.approx(
        SPEC.num_rooms * SPEC.horizon)


def test_fleet_gauge_merges_with_peak_policy(serial):
    fleet_peak = serial.metrics.snapshot()["fleet.peak_tones_in_window"]
    room_peaks = [
        room.metrics.snapshot()["fleet.peak_tones_in_window"]["value"]
        for room in serial.rooms
    ]
    assert fleet_peak["value"] == max(room_peaks)


def test_real_time_factor_reports_simulated_seconds(serial):
    assert serial.simulated_seconds == pytest.approx(
        SPEC.num_rooms * SPEC.horizon)
    assert serial.real_time_factor > 0.0


def test_delivery_ratio_stays_in_unit_interval(serial):
    assert 0.0 <= serial.delivery_ratio <= 1.0
    assert serial.delivery_ratio >= 0.9  # clean fleet actually delivers


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        run_fleet(SPEC, backend="threads")


def test_rooms_property_restores_global_order(serial):
    fanned = run_fleet(SPEC, num_shards=4, backend="serial")
    assert [room.room_id for room in fanned.rooms] == [0, 1, 2, 3]
