"""Unit tests for the ECN baseline."""

import pytest

from repro.baselines import ECNMarker, ECNReceiver, ECNSourceObserver
from repro.net import (
    ConstantRateSource,
    FlowKey,
    Packet,
    Simulator,
    single_switch_topology,
)


class TestECNMarker:
    def test_marks_only_above_threshold(self):
        sim = Simulator()
        topo = single_switch_topology(sim, 2)
        s1 = topo.switches["s1"]
        port = topo.port_towards("s1", "h2")
        direction = s1.ports[port]
        marker = ECNMarker(direction, mark_threshold=2)
        capable = Packet(FlowKey("a", "b", 1, 2), ecn_capable=True)
        marker.maybe_mark(capable, 0.0)
        assert not capable.ecn_marked  # queue empty
        # Fill the queue artificially.
        for _ in range(3):
            direction.queue.enqueue(Packet(FlowKey("a", "b", 1, 2)))
        marker.maybe_mark(capable, 1.0)
        assert capable.ecn_marked
        assert marker.marked_count == 1

    def test_non_capable_packets_untouched(self):
        sim = Simulator()
        topo = single_switch_topology(sim, 2)
        direction = topo.switches["s1"].ports[topo.port_towards("s1", "h2")]
        marker = ECNMarker(direction, mark_threshold=1)
        direction.queue.enqueue(Packet(FlowKey("a", "b", 1, 2)))
        plain = Packet(FlowKey("a", "b", 1, 2), ecn_capable=False)
        marker.maybe_mark(plain, 0.0)
        assert not plain.ecn_marked

    def test_validation(self):
        sim = Simulator()
        topo = single_switch_topology(sim, 2)
        direction = topo.switches["s1"].ports[1]
        with pytest.raises(ValueError):
            ECNMarker(direction, mark_threshold=0)


class TestEndToEndEcho:
    def test_congestion_echo_reaches_source(self):
        """Build the full ECN loop: congest the switch egress, mark,
        deliver, echo, observe at the source."""
        sim = Simulator()
        topo = single_switch_topology(sim, 2, bandwidth_bps=1_000_000)
        h1, h2 = topo.hosts["h1"], topo.hosts["h2"]
        s1 = topo.switches["s1"]
        port = topo.port_towards("s1", "h2")
        marker = ECNMarker(s1.ports[port], mark_threshold=5)
        s1.on_forward(lambda pkt, ip, op: marker.maybe_mark(pkt, sim.now)
                      if op == port else None)
        ECNReceiver(h2)
        observer = ECNSourceObserver(h1)
        # 1 Mb/s = 125 pps service; send 400 pps to congest.
        source = ConstantRateSource(h1, "10.0.0.2", 80, rate_pps=400,
                                    ecn_capable=True)
        source.launch()
        sim.run(5.0)
        assert marker.marked_count > 0
        assert observer.first_echo_time is not None
        # The echo arrives only after the congested queue is traversed.
        first_mark = marker.mark_log[0][0]
        assert observer.first_echo_time > first_mark

    def test_no_congestion_no_echo(self):
        sim = Simulator()
        topo = single_switch_topology(sim, 2)
        h1, h2 = topo.hosts["h1"], topo.hosts["h2"]
        s1 = topo.switches["s1"]
        port = topo.port_towards("s1", "h2")
        marker = ECNMarker(s1.ports[port], mark_threshold=25)
        s1.on_forward(lambda pkt, ip, op: marker.maybe_mark(pkt, sim.now))
        ECNReceiver(h2)
        observer = ECNSourceObserver(h1)
        source = ConstantRateSource(h1, "10.0.0.2", 80, rate_pps=20,
                                    ecn_capable=True)
        source.launch()
        sim.run(3.0)
        assert observer.first_echo_time is None
