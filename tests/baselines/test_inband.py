"""Unit tests for the in-band management baseline and its acoustic
counterpart."""

import pytest

from repro.audio import AcousticChannel, Microphone, Position, Speaker
from repro.baselines import AcousticHeartbeat, HeartbeatMonitor, HeartbeatSender
from repro.core import MDNController
from repro.core.agent import MusicAgent
from repro.net import ConstantRateSource, Simulator, linear_topology


def build_inband(bandwidth=2_000_000.0):
    sim = Simulator()
    topo = linear_topology(sim, num_switches=2, bandwidth_bps=bandwidth)
    sender = HeartbeatSender(topo.hosts["h1"], "10.0.0.2", period=0.5)
    monitor = HeartbeatMonitor(topo.hosts["h2"], sender)
    return sim, topo, sender, monitor


class TestHeartbeatDelivery:
    def test_healthy_network_delivers_everything(self):
        sim, _topo, sender, monitor = build_inband()
        sim.run(10.0)
        sender.stop()
        sim.run(10.5)  # let the final beat land
        stats = monitor.stats(sim)
        assert stats.delivery_rate == 1.0
        assert stats.lost == 0
        assert stats.max_gap < 1.0

    def test_link_failure_cuts_heartbeats(self):
        """The §1 motivation: a data-plane failure silences in-band
        management."""
        sim, topo, sender, monitor = build_inband()
        sim.run(5.0)
        topo.links[1].fail()  # s1 - s2 link
        sim.run(15.0)
        stats = monitor.stats(sim)
        assert stats.lost > 0
        assert stats.max_gap >= 9.0

    def test_congestion_delays_heartbeats(self):
        sim, topo, sender, monitor = build_inband(bandwidth=500_000.0)
        # Cross traffic saturating the path: 500 kb/s = 62.5 pps service.
        cross = ConstantRateSource(topo.hosts["h1"], "10.0.0.2", 9999,
                                   rate_pps=200)
        cross.launch()
        sim.run(10.0)
        stats = monitor.stats(sim)
        # Heartbeats queue behind data traffic: latency far above the
        # uncongested sub-millisecond baseline (or drops appear).
        assert stats.mean_latency > 0.05 or stats.lost > 0

    def test_sender_stop(self):
        sim, _topo, sender, monitor = build_inband()
        sim.run(2.0)
        sender.stop()
        count = len(sender.sent_log)
        sim.run(5.0)
        assert len(sender.sent_log) == count

    def test_validation(self):
        sim, topo, _s, _m = build_inband()
        with pytest.raises(ValueError):
            HeartbeatSender(topo.hosts["h1"], "10.0.0.2", period=0)


class TestAcousticHeartbeat:
    def test_delivery_independent_of_data_plane(self):
        """XBASE3's punchline: cut every link; the tones keep arriving."""
        sim = Simulator()
        topo = linear_topology(sim, num_switches=2)
        channel = AcousticChannel()
        agent = MusicAgent(sim, channel, Speaker(Position(0.5, 0, 0)))
        controller = MDNController(sim, channel, Microphone(Position()),
                                   listen_interval=0.1)
        heartbeat = AcousticHeartbeat(sim, agent, frequency=1500.0, period=0.5)
        controller.watch([1500.0], on_onset=heartbeat.heard)
        controller.start()
        sim.run(3.0)
        for link in topo.links:
            link.fail()
        sim.run(10.0)
        assert heartbeat.delivery_rate() > 0.9

    def test_validation(self):
        sim = Simulator()
        agent = MusicAgent(sim, AcousticChannel(), Speaker())
        with pytest.raises(ValueError):
            AcousticHeartbeat(sim, agent, 1000.0, period=0)

    def test_stop(self):
        sim = Simulator()
        agent = MusicAgent(sim, AcousticChannel(), Speaker())
        heartbeat = AcousticHeartbeat(sim, agent, 1000.0, period=0.5)
        sim.run(2.0)
        heartbeat.stop()
        emitted = heartbeat.emitted
        sim.run(5.0)
        assert heartbeat.emitted == emitted
