"""Unit tests for the count-min sketch baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CountMinSketch, SketchHeavyHitterDetector
from repro.net import FlowKey, Packet


def flow(index: int) -> FlowKey:
    return FlowKey("10.0.0.1", "10.0.0.2", 10_000 + index, 80)


class TestCountMinSketch:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(depth=0)

    def test_single_flow_exact(self):
        sketch = CountMinSketch()
        for _ in range(10):
            sketch.update(flow(1))
        assert sketch.estimate(flow(1)) == 10

    def test_unseen_flow_zero_when_sparse(self):
        sketch = CountMinSketch(width=256)
        sketch.update(flow(1), 5)
        assert sketch.estimate(flow(2)) <= 5  # collision possible but bounded

    def test_negative_update_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch().update(flow(1), -1)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                    max_size=80))
    def test_never_underestimates(self, updates):
        """The count-min guarantee: estimate >= true count."""
        sketch = CountMinSketch(width=16, depth=3)
        truth: dict[int, int] = {}
        for index in updates:
            sketch.update(flow(index))
            truth[index] = truth.get(index, 0) + 1
        for index, count in truth.items():
            assert sketch.estimate(flow(index)) >= count

    def test_total_tracked(self):
        sketch = CountMinSketch()
        sketch.update(flow(1), 3)
        sketch.update(flow(2), 4)
        assert sketch.total == 7


class TestSketchHeavyHitterDetector:
    def test_heavy_flow_reported(self):
        detector = SketchHeavyHitterDetector(interval=1.0, threshold=25)
        heavy, mouse = flow(1), flow(2)
        for index in range(60):
            detector.observe(Packet(heavy), time=index * 0.015)
        for index in range(5):
            detector.observe(Packet(mouse), time=index * 0.1)
        detector.flush(2.0)
        assert heavy in detector.heavy_flows()
        assert mouse not in detector.heavy_flows()

    def test_interval_reset(self):
        """Counts do not leak across intervals."""
        detector = SketchHeavyHitterDetector(interval=1.0, threshold=10)
        for interval in range(3):
            for index in range(6):  # 6 per interval, under threshold
                detector.observe(Packet(flow(1)),
                                 time=interval + index * 0.1)
        detector.flush(4.0)
        assert detector.heavy_flows() == set()

    def test_validation(self):
        with pytest.raises(ValueError):
            SketchHeavyHitterDetector(interval=0)

    def test_reports_carry_interval(self):
        detector = SketchHeavyHitterDetector(interval=1.0, threshold=3)
        for index in range(10):
            detector.observe(Packet(flow(7)), time=2.0 + index * 0.05)
        detector.flush(4.0)
        assert detector.reports
        start, reported = detector.reports[0]
        assert start == 2.0
        assert reported == flow(7)
