"""Tests for the RED marker baseline."""

import pytest

from repro.baselines.red import REDMarker
from repro.net import FlowKey, Packet, Simulator, single_switch_topology


def make_direction():
    sim = Simulator()
    topo = single_switch_topology(sim, 2)
    port = topo.port_towards("s1", "h2")
    return sim, topo, topo.switches["s1"].ports[port]


def capable() -> Packet:
    return Packet(FlowKey("10.0.0.1", "10.0.0.2", 1, 80), ecn_capable=True)


class TestValidation:
    def test_thresholds(self):
        _sim, _topo, direction = make_direction()
        with pytest.raises(ValueError):
            REDMarker(direction, min_threshold=40, max_threshold=20)
        with pytest.raises(ValueError):
            REDMarker(direction, max_probability=0)
        with pytest.raises(ValueError):
            REDMarker(direction, weight=2.0)


class TestMarking:
    def test_no_marks_below_min(self):
        _sim, _topo, direction = make_direction()
        marker = REDMarker(direction, min_threshold=15, max_threshold=45)
        for _ in range(50):
            assert not marker.maybe_mark(capable(), 0.0)
        assert marker.marked_count == 0

    def test_always_marks_above_max(self):
        _sim, _topo, direction = make_direction()
        marker = REDMarker(direction, min_threshold=5, max_threshold=20,
                           weight=1.0)
        for _ in range(30):
            direction.queue.enqueue(capable())
        # weight=1.0 -> average == instantaneous == 30 > max.
        assert marker.maybe_mark(capable(), 0.0)

    def test_probabilistic_band(self):
        """Average held mid-band: some, but not all, packets marked."""
        _sim, _topo, direction = make_direction()
        marker = REDMarker(direction, min_threshold=10, max_threshold=50,
                           max_probability=0.5, weight=1.0, seed=3)
        for _ in range(30):  # average = 30: mid-band
            direction.queue.enqueue(capable())
        outcomes = [marker.maybe_mark(capable(), 0.0) for _ in range(100)]
        marked = sum(outcomes)
        assert 0 < marked < 100

    def test_ewma_smooths_bursts(self):
        """One instantaneous spike does not push a low EWMA over min."""
        _sim, _topo, direction = make_direction()
        marker = REDMarker(direction, min_threshold=10, max_threshold=40,
                           weight=0.02)
        for _ in range(30):
            direction.queue.enqueue(capable())
        # First packet after the spike: average ≈ 0.02*30 = 0.6 << 10.
        assert not marker.maybe_mark(capable(), 0.0)
        assert marker.average_queue < 1.0

    def test_non_capable_never_marked(self):
        _sim, _topo, direction = make_direction()
        marker = REDMarker(direction, min_threshold=1, max_threshold=2,
                           weight=1.0)
        for _ in range(10):
            direction.queue.enqueue(capable())
        plain = Packet(FlowKey("a", "b", 1, 2), ecn_capable=False)
        assert not marker.maybe_mark(plain, 0.0)
        assert not plain.ecn_marked
