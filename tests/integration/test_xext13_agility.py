"""XEXT13 acceptance: spectrum agility vs static plan under interference.

These pin the PR's headline claims: with a persistent narrowband
interferer covering >= 30 % of an app's allocation, the agility loop
sustains >= 95 % symbol delivery where the static plan drops below
80 %; migration commits within two beat intervals of classification;
and the epoch tags prove zero telemetry events are lost or
misattributed across the PLAN_COMMIT boundary.
"""

import pytest

from repro.experiments.xext13 import (
    _delivery,
    bandwidth_sweep,
    spectrum_agility_run,
)

PERIOD = 0.3
#: make-before-break listen window used by the xext13 agility policy
#: (2 * listen_interval) plus one listen interval of timing slack.
HANDOVER_SLACK = 0.3


class TestDeliveryAcceptance:
    @pytest.fixture(scope="class")
    def static(self):
        return spectrum_agility_run("static")

    @pytest.fixture(scope="class")
    def agility(self):
        return spectrum_agility_run("agility")

    def test_interferer_covers_at_least_30pct(self, agility):
        assert agility.covered_fraction >= 0.30

    def test_static_plan_drops_below_80pct(self, static):
        assert static.clean_delivery == 1.0
        assert static.delivery < 0.80

    def test_agility_sustains_95pct(self, agility):
        assert agility.clean_delivery == 1.0
        assert agility.delivery >= 0.95

    def test_exactly_one_migration(self, agility):
        assert agility.migrations_committed == 1
        assert agility.migrations_aborted == 0
        assert agility.plan_epoch == 1

    def test_migration_within_two_beat_intervals(self, agility):
        assert agility.classified_at is not None
        assert agility.committed_at is not None
        assert agility.migration_latency <= 2 * PERIOD

    def test_full_recovery_after_commit(self, agility):
        """Every beat emitted at/after the commit is heard correctly —
        the relocated plan restores the acoustic channel completely."""
        delivery, matched, judged = _delivery(
            agility.emissions, agility.onsets, after=agility.committed_at)
        assert judged > 0
        assert delivery == 1.0

    def test_losses_confined_to_classification_window(self, agility):
        """The only unheard beats fall between interferer onset and the
        commit — nothing is lost across the migration itself."""
        heard: dict[int, list[float]] = {}
        for onset in agility.onsets:
            heard.setdefault(onset.symbol, []).append(onset.time)
        lost = []
        for beat in agility.emissions:
            if beat.time < agility.interferer_start:
                continue
            times = heard.get(beat.symbol, ())
            lo = beat.time - 0.1 - 1e-6
            hi = beat.time + 0.35
            if not any(lo <= time <= hi for time in times):
                lost.append(beat)
        assert lost, "classification is not free: some beats must drop"
        for beat in lost:
            assert agility.interferer_start <= beat.time
            assert beat.time < agility.committed_at
            assert beat.epoch == 0

    def test_seed_reproducible(self, agility):
        again = spectrum_agility_run("agility")
        assert again.delivery == agility.delivery
        assert again.committed_at == agility.committed_at
        assert again.onsets == agility.onsets


class TestEpochBoundary:
    """Zero events lost or misattributed across PLAN_COMMIT."""

    @pytest.fixture(scope="class")
    def agility(self):
        return spectrum_agility_run("agility")

    @pytest.fixture(scope="class")
    def plan_maps(self, agility):
        epoch0 = {b.symbol: b.frequency for b in agility.emissions
                  if b.epoch == 0}
        epoch1 = {b.symbol: b.frequency for b in agility.emissions
                  if b.epoch == 1}
        return epoch0, epoch1

    def test_emitter_rebound_to_disjoint_plan(self, agility, plan_maps):
        epoch0, epoch1 = plan_maps
        assert set(epoch0) == set(epoch1) == set(range(agility.symbols))
        assert set(epoch0.values()).isdisjoint(epoch1.values())

    def test_pre_commit_onsets_carry_epoch_zero(self, agility):
        pre = [o for o in agility.onsets if o.time < agility.committed_at]
        assert pre
        assert all(onset.epoch == 0 for onset in pre)

    def test_post_handover_onsets_carry_epoch_one(self, agility):
        cutoff = agility.committed_at + HANDOVER_SLACK
        post = [o for o in agility.onsets if o.time > cutoff]
        assert post
        assert all(onset.epoch == 1 for onset in post)

    def test_no_onset_misattributed(self, agility, plan_maps):
        """Every onset's frequency is the plan entry its symbol owned
        under the epoch the tone was emitted in — with the one sanctioned
        exception: a straggler heard on the vacated tone during the
        make-before-break handover is re-attributed to the *new* entry
        while keeping its pre-commit emission epoch."""
        epoch0, epoch1 = plan_maps
        for onset in agility.onsets:
            if onset.epoch == 1:
                assert onset.frequency == epoch1[onset.symbol]
            else:
                assert onset.frequency in (
                    epoch0[onset.symbol],   # heard where it was emitted
                    epoch1[onset.symbol],   # handover alias translation
                )

    def test_every_symbol_survives_the_boundary(self, agility):
        """No subscription is dropped by the migration: every symbol is
        heard both before classification and after the handover."""
        cutoff = agility.committed_at + HANDOVER_SLACK
        before = {o.symbol for o in agility.onsets
                  if o.time < agility.interferer_start}
        after = {o.symbol for o in agility.onsets if o.time > cutoff}
        assert before == after == set(range(agility.symbols))


class TestFailoverComparison:
    def test_failover_diagnoses_but_does_not_recover(self):
        """PR 4's health layer sees the desensitized channel and bails
        to in-band — the right diagnosis, but acoustic delivery stays
        down, which is exactly the gap agility closes."""
        failover = spectrum_agility_run("failover", duration=18.0,
                                        interferer_start=4.5)
        assert failover.failovers >= 1
        assert failover.health_transitions >= 1
        assert failover.delivery < 0.80


class TestBandwidthSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return bandwidth_sweep(covered=(0, 2), duration=12.0,
                               interferer_start=2.5)

    def test_clean_air_never_migrates(self, sweep):
        clean = sweep[0]
        assert clean.migrations == 0
        assert clean.static_delivery == 1.0
        assert clean.agility_delivery == 1.0

    def test_agility_beats_static_under_interference(self, sweep):
        jammed = sweep[1]
        assert jammed.migrations >= 1
        assert jammed.static_delivery < 0.80
        assert jammed.agility_delivery >= 0.90
        assert jammed.agility_delivery > jammed.static_delivery
