"""XEXT16 end-to-end: workload mixes → precision/recall, scale and
speedup, the exported artifact, and the CLI driver."""

import json

import pytest

from repro.experiments.xext16 import (
    XEXT16_SEED,
    measure_speedup,
    workload_experiment,
)


@pytest.fixture(scope="module")
def smoke_result():
    return workload_experiment(smoke=True)


class TestMixes:
    def test_covers_the_three_acceptance_mixes(self, smoke_result):
        names = [point.name for point in smoke_result.mixes]
        assert {"mice", "elephants-mice", "scan-churn"} <= set(names)
        assert len(names) >= 3

    def test_every_mix_reports_both_scores(self, smoke_result):
        for point in smoke_result.mixes:
            for score in (point.heavy_hitter, point.port_scan):
                assert 0.0 <= score["precision"] <= 1.0
                assert 0.0 <= score["recall"] <= 1.0
            assert len(point.heavy_hitter_curve) > 1
            assert len(point.port_scan_curve) > 1
            assert point.packets > 0

    def test_planted_signals_are_recalled(self, smoke_result):
        by_name = {point.name: point for point in smoke_result.mixes}
        elephants = by_name["elephants-mice"]
        assert elephants.heavy_hitter["recall"] == 1.0
        assert elephants.heavy_hitter["true_positives"] >= 1
        scan = by_name["scan-churn"]
        assert scan.port_scan["recall"] == 1.0
        assert scan.port_scan["true_positives"] >= 1

    def test_ground_truth_labels_recorded(self, smoke_result):
        by_name = {point.name: point for point in smoke_result.mixes}
        assert by_name["mice"].label_counts == {
            "mouse": by_name["mice"].num_flows}
        assert by_name["scan-churn"].label_counts.get("scan", 0) >= 1


class TestScale:
    def test_sustains_at_least_100k_flows(self, smoke_result):
        assert smoke_result.max_flows_sustained >= 100_000
        point = max(smoke_result.scale, key=lambda p: p.num_flows)
        assert point.packets > 0
        # Smoke-feasible wall time: the driver's event cost is per
        # batch window, not per flow.
        assert point.run_s < 30.0

    def test_speedup_counts_identical(self, smoke_result):
        speedup = smoke_result.speedup
        assert speedup.num_flows == 10_000
        assert speedup.counts_match
        assert speedup.packets_vectorized == speedup.packets_reference


class TestArtifact:
    def test_export_schema(self, smoke_result, tmp_path):
        path = smoke_result.export(tmp_path / "BENCH_workload.json")
        payload = json.loads(path.read_text())
        assert payload["seed"] == XEXT16_SEED
        assert payload["smoke"] is True
        assert payload["max_flows_sustained"] >= 100_000
        assert payload["speedup"]["counts_match"] is True
        for mix in payload["mixes"]:
            assert {"precision", "recall", "f1"} <= set(
                mix["heavy_hitter"])
            assert {"threshold", "precision", "recall"} <= set(
                mix["port_scan_curve"][0])

    def test_env_override(self, smoke_result, tmp_path, monkeypatch):
        target = tmp_path / "custom.json"
        monkeypatch.setenv("BENCH_WORKLOAD_JSON", str(target))
        assert smoke_result.export() == target
        assert target.exists()


class TestCli:
    def test_run_xext16_smoke(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("BENCH_WORKLOAD_JSON",
                           str(tmp_path / "BENCH_workload.json"))
        assert main(["run", "xext16", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "XEXT16" in out
        assert "speedup" in out
        assert (tmp_path / "BENCH_workload.json").exists()

    def test_workload_choices_listed(self):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig4ab", "--workload", "bogus"])
        args = parser.parse_args(["run", "fig4ab", "--workload", "mice"])
        assert args.workload == "mice"


def test_speedup_direction_holds_at_small_scale():
    """A cheap sanity check of the perf-gate measurement (the strict
    >=10x gate runs in benchmarks/ via ``make bench-micro``)."""
    point = measure_speedup(num_flows=2_000, duration=1.0,
                            seed=XEXT16_SEED)
    assert point.counts_match
    assert point.speedup > 1.0
