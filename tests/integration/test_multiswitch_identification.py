"""Integration: concurrent multi-switch tone identification (Figure 2a).

Five switches with disjoint frequency blocks play simultaneously; the
listening side must attribute every tone to the right switch.
"""

import pytest

from repro.audio import (
    AcousticChannel,
    FrequencyDetector,
    Microphone,
    Position,
    Speaker,
    ToneSpec,
)
from repro.core import FrequencyPlan


@pytest.fixture
def five_switches():
    channel = AcousticChannel()
    plan = FrequencyPlan(low_hz=600.0, guard_hz=20.0)
    positions = [
        Position(0.8, 0, 0), Position(0, 0.9, 0), Position(-0.7, 0.4, 0),
        Position(0.5, -0.8, 0), Position(-0.4, -0.6, 0),
    ]
    speakers = {}
    for index in range(5):
        name = f"sw{index}"
        plan.allocate(name, 4)
        speakers[name] = Speaker(positions[index])
    return channel, plan, speakers


class TestFigure2A:
    def test_five_simultaneous_switches_identified(self, five_switches):
        channel, plan, speakers = five_switches
        # Every switch plays its first assigned frequency at t=0.
        for name, speaker in speakers.items():
            frequency = plan.allocation_of(name).frequency_for(0)
            speaker.play(channel, 0.0, ToneSpec(frequency, 0.4, 72.0))
        microphone = Microphone(Position(), seed=2)
        window = microphone.record(channel, 0.1, 0.35)
        detector = FrequencyDetector(plan.all_frequencies())
        events = detector.detect(window)
        heard_owners = {plan.owner_of(event.frequency) for event in events}
        assert heard_owners == set(speakers)

    def test_adjacent_block_tones_attributed_correctly(self, five_switches):
        """Two switches play tones 20 Hz apart (last slot of one block,
        first of the next): both identified, owners correct."""
        channel, plan, speakers = five_switches
        low = plan.allocation_of("sw0").frequency_for(3)   # 660
        high = plan.allocation_of("sw1").frequency_for(0)  # 680
        speakers["sw0"].play(channel, 0.0, ToneSpec(low, 0.4, 70.0))
        speakers["sw1"].play(channel, 0.0, ToneSpec(high, 0.4, 70.0))
        microphone = Microphone(Position(), seed=2)
        window = microphone.record(channel, 0.1, 0.35)
        detector = FrequencyDetector(plan.all_frequencies())
        events = detector.detect(window)
        owners = {plan.owner_of(e.frequency) for e in events}
        assert owners == {"sw0", "sw1"}

    def test_all_twenty_frequencies_simultaneously(self, five_switches):
        """Stress: every switch plays its whole block at once (20 tones
        at 20 Hz spacing).  A long window resolves all of them."""
        channel, plan, speakers = five_switches
        for name, speaker in speakers.items():
            for frequency in plan.allocation_of(name).frequencies:
                speaker.play(channel, 0.0, ToneSpec(frequency, 0.6, 70.0))
        microphone = Microphone(Position(), seed=2)
        window = microphone.record(channel, 0.1, 0.55)
        detector = FrequencyDetector(plan.all_frequencies())
        events = detector.detect(window)
        assert len(events) >= 18  # near-total recall under concurrency
