"""XEXT12 acceptance: ARQ delivery, failover latency, reproducibility.

These pin the PR's headline claims: ARQ holds ≥ 99 % MP delivery at
20 % frame loss where fire-and-forget drops below 80 %; the failover
layer hands a dead speaker to the in-band baseline within two chirp
intervals of the first silenced beat and returns after recovery; and
every number is reproducible from the seed.
"""

import pytest

from repro.core import ChannelHealth
from repro.experiments.xext12 import (
    arq_loss_sweep,
    failover_experiment,
    resilience_sweep,
)


class TestArqAcceptance:
    @pytest.fixture(scope="class")
    def at_20pct(self):
        [point] = arq_loss_sweep(loss_rates=(0.2,), frames=60)
        return point

    def test_no_arq_drops_below_80pct(self, at_20pct):
        assert at_20pct.no_arq_delivery < 0.80

    def test_arq_holds_99pct(self, at_20pct):
        assert at_20pct.arq_delivery >= 0.99
        assert at_20pct.arq_acked >= 0.99
        assert at_20pct.expired == 0
        assert at_20pct.retransmits > 0

    def test_lossless_link_is_transparent(self):
        [point] = arq_loss_sweep(loss_rates=(0.0,), frames=30)
        assert point.no_arq_delivery == 1.0
        assert point.arq_delivery == 1.0
        assert point.retransmits == 0
        assert point.frames_lost_arq == 0

    def test_seed_reproducible(self):
        first = arq_loss_sweep(loss_rates=(0.2,), frames=60)
        second = arq_loss_sweep(loss_rates=(0.2,), frames=60)
        assert first == second


class TestFailoverAcceptance:
    @pytest.fixture(scope="class")
    def episode(self):
        return failover_experiment()

    def test_speaker_declared_dead(self, episode):
        assert episode.dead_declared_at is not None
        assert episode.fault_start <= episode.dead_declared_at

    def test_failover_within_two_chirp_intervals(self, episode):
        assert episode.failover_at is not None
        assert episode.failover_latency <= 2 * episode.period

    def test_inband_covers_the_outage(self, episode):
        assert episode.inband_delivered > 0
        assert episode.inband_delivery_rate > 0.9

    def test_failback_after_recovery(self, episode):
        assert episode.failback_at is not None
        assert episode.failback_at > episode.fault_end
        assert episode.final_state is ChannelHealth.HEALTHY

    def test_event_sequence(self, episode):
        actions = [event.action for event in episode.events]
        assert actions == ["to_inband", "to_acoustic"]
        assert episode.fault_summary["speaker_dropouts"] == 1
        assert episode.fault_summary["tones_muted"] >= 1

    def test_seed_reproducible(self, episode):
        again = failover_experiment()
        assert again.failover_at == episode.failover_at
        assert again.failback_at == episode.failback_at
        assert again.inband_delivered == episode.inband_delivered
        assert again.beats_emitted == episode.beats_emitted


class TestResilienceSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return resilience_sweep(fault_rates=(0.0, 0.3), duration=12.0)

    def test_zero_fault_rate_is_clean(self, sweep):
        clean = sweep[0]
        assert clean.detection_accuracy == 1.0
        assert clean.failovers == 0
        assert clean.dropout_windows == 0

    def test_faults_degrade_acoustic_accuracy(self, sweep):
        faulty = sweep[1]
        assert faulty.detection_accuracy < 1.0
        assert faulty.dropout_windows > 0

    def test_failover_recovers_coverage(self, sweep):
        faulty = sweep[1]
        assert faulty.failovers >= 1
        assert faulty.covered_fraction > faulty.detection_accuracy
        assert faulty.covered_fraction >= 0.9
