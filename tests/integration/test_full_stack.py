"""Integration: multiple MDN applications coexisting on one testbed.

Section 3: "it is possible to support multiple MDN applications
simultaneously, as long as each task uses a different set of
frequencies and the listening application knows the frequency
mappings."  This test runs port knocking AND queue monitoring at the
same time over one air channel and one controller.
"""

import pytest

from repro.core.apps import (
    BandToneMap,
    KnockConfig,
    KnockEmitter,
    PortKnockingApp,
    QueueChirper,
    QueueMonitorApp,
)
from repro.net import Action, Match, OnOffSource
from tests.core.rig import build_rig


class TestConcurrentApplications:
    def test_knocking_and_queue_monitoring_coexist(self):
        rig = build_rig("single")
        s1 = rig.topo.switches["s1"]
        # Close only the protected port; baseline routes stay.
        s1.flow_table.install(Match(dst_port=8080), Action.drop(), priority=50)

        knock_alloc = rig.plan.allocate("s1/knock", 3)
        config = KnockConfig([7001, 7002, 7003], 8080, knock_alloc)
        KnockEmitter(s1, rig.agents["s1"], config)
        knock_app = PortKnockingApp(rig.controller, "s1", "10.0.0.2", config)
        knock_app.set_output_port(rig.topo.port_towards("s1", "h2"))

        # Queue monitoring needs its own frequencies AND its own
        # speaker (one speaker is half-duplex).
        from repro.audio import Position, Speaker
        from repro.core.agent import MusicAgent
        chirp_agent = MusicAgent(
            rig.sim, rig.channel, Speaker(Position(0.0, -0.9, 0.0)), "s1-chirp"
        )
        band_alloc = rig.plan.allocate("s1/bands", 3)
        tones = BandToneMap.from_frequencies(band_alloc.frequencies)
        port = rig.topo.port_towards("s1", "h2")
        QueueChirper(rig.sim, s1, port, chirp_agent, tones)
        monitor_app = QueueMonitorApp(rig.controller, "s1", tones)

        rig.controller.start()

        # Congest the switch while also knocking.
        burst = OnOffSource(rig.topo.hosts["h1"], "10.0.0.2", 80,
                            rate_pps=500, on_duration=1.5, off_duration=30.0)
        burst.launch()
        h1 = rig.topo.hosts["h1"]
        for index, knock_port in enumerate(config.knock_ports):
            rig.sim.schedule_at(3.0 + index,
                                lambda p=knock_port: h1.send_to("10.0.0.2", p))
        rig.sim.run(10.0)

        # Both applications did their jobs on the same air.
        assert knock_app.is_open
        bands_heard = [band for _t, band in monitor_app.band_history]
        assert "high" in bands_heard
        assert monitor_app.current_band == "low"

    def test_plan_keeps_apps_disjoint(self):
        rig = build_rig("single")
        first = rig.plan.allocate("s1/knock", 3)
        second = rig.plan.allocate("s1/bands", 3)
        assert set(first.frequencies).isdisjoint(second.frequencies)
        rig.plan.validate_disjoint()


class TestControlChannelIndependence:
    def test_sound_path_works_while_control_channel_down_for_data(self):
        """Out-of-band property: the acoustic detection itself does not
        depend on the network; only the FlowMod push needs the control
        channel."""
        rig = build_rig("single", default_action=Action.drop())
        alloc = rig.plan.allocate("s1", 3)
        config = KnockConfig([7001, 7002, 7003], 8080, alloc)
        KnockEmitter(rig.topo.switches["s1"], rig.agents["s1"], config)
        app = PortKnockingApp(rig.controller, "s1", "10.0.0.2", config)
        app.set_output_port(rig.topo.port_towards("s1", "h2"))
        rig.controller.start()
        rig.control.fail()  # southbound dead: FlowMod will be dropped
        h1 = rig.topo.hosts["h1"]
        for index, port in enumerate(config.knock_ports):
            rig.sim.schedule_at(1.0 + index,
                                lambda p=port: h1.send_to("10.0.0.2", p))
        rig.sim.run(6.0)
        # The FSM accepted (sound got through) ...
        assert app.is_open
        # ... but the flow entry never landed (control channel down).
        assert rig.control.messages_dropped >= 1
        h1.send_to("10.0.0.2", 8080)
        rig.sim.run(7.0)
        assert rig.topo.hosts["h2"].port_bytes.get(8080) is None
