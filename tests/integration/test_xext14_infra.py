"""XEXT14 acceptance: the repro.infra hardening under real workloads.

These pin the PR's headline claims on the smoke-sized run CI executes:
the circuit breaker cuts time-to-failover on a wedged link by >= 2x
over deadline-only detection (and fails back after the Pi restarts);
token-bucket admission keeps the ARQ ``in_flight`` table bounded under
a send storm with every shed counted; the controller's ingest limiter
conserves events (detections == dispatched + shed); and a shared
spectra cache halves the FFT work of two co-located listeners without
changing a single event.
"""

import pytest

from repro.experiments.xext14 import infra_experiment


@pytest.fixture(scope="module")
def result():
    return infra_experiment(smoke=True)


class TestWedgedLinkAcceptance:
    def test_both_policies_detect_the_wedge(self, result):
        wedged = result.wedged
        assert wedged.baseline_detected_at is not None
        assert wedged.breaker_failover_at is not None
        assert wedged.breaker_failover_at > wedged.wedge_at

    def test_breaker_at_least_twice_as_fast(self, result):
        assert result.wedged.speedup is not None
        assert result.wedged.speedup >= 2.0

    def test_open_breaker_fast_fails_instead_of_queueing(self, result):
        wedged = result.wedged
        assert wedged.fast_failed > 0
        # Fast-failed sends never ride the 2 s deadline, so the breaker
        # run expires far fewer frames than the deadline-only run.
        assert wedged.breaker_expired < wedged.baseline_expired

    def test_failback_after_restart(self, result):
        wedged = result.wedged
        assert wedged.failback_at is not None
        assert wedged.failback_at >= wedged.recover_at


class TestStormAcceptance:
    def test_unlimited_sender_queues_every_send(self, result):
        storm = result.storm
        assert storm.bare_peak_in_flight == storm.storm_sends

    def test_bucket_bounds_in_flight(self, result):
        storm = result.storm
        assert storm.limited_peak_in_flight <= storm.admitted_bound
        assert storm.limited_peak_in_flight < storm.bare_peak_in_flight

    def test_every_shed_is_counted(self, result):
        storm = result.storm
        assert storm.arq_shed > 0
        assert storm.arq_admitted + storm.arq_shed == storm.storm_sends

    def test_controller_ingest_conserves_events(self, result):
        storm = result.storm
        assert storm.controller_shed > 0
        assert storm.conservation_holds


class TestSharedSpectraAcceptance:
    def test_hit_rate_at_least_45pct(self, result):
        assert result.shared.hit_rate >= 0.45

    def test_events_bit_identical_across_listeners(self, result):
        shared = result.shared
        assert shared.events_identical
        assert shared.events_a > 0
