"""Integration: MDN over a leaf-spine datacenter with a microphone array.

Combines the §8 array direction with the routing substrate: five
switches across a fabric, each chirping heartbeats to its local
listening station; the array coordinates stations, and a switch dying
anywhere in the room is detected.
"""

import pytest

from repro.audio import AcousticChannel, Microphone, Position, Speaker
from repro.core import FrequencyPlan, MicrophoneArray
from repro.core.agent import MusicAgent
from repro.net import Simulator
from repro.net.routing import leaf_spine_topology


@pytest.fixture
def fabric():
    """A 2x3 leaf-spine fabric; leaves in one aisle, spines in another,
    a listening station per aisle, one shared plan."""
    sim = Simulator()
    topo = leaf_spine_topology(sim, num_leaves=3, num_spines=2)
    channel = AcousticChannel()
    plan = FrequencyPlan(low_hz=500.0, guard_hz=40.0)

    aisle_positions = {
        "leaf1": Position(0.0, 0.0, 0.0),
        "leaf2": Position(2.0, 0.0, 0.0),
        "leaf3": Position(4.0, 0.0, 0.0),
        "spine1": Position(50.0, 0.0, 0.0),
        "spine2": Position(52.0, 0.0, 0.0),
    }
    agents = {
        name: MusicAgent(sim, channel, Speaker(position), name)
        for name, position in aisle_positions.items()
    }
    stations = {
        "aisle-leaf": Microphone(Position(2.0, 1.0, 0.0), seed=81),
        "aisle-spine": Microphone(Position(51.0, 1.0, 0.0), seed=82),
    }
    array = MicrophoneArray(sim, channel, stations)
    return sim, topo, channel, plan, agents, array


class TestArrayLiveness:
    def test_all_switches_heard_by_their_aisle(self, fabric):
        sim, _topo, _channel, plan, agents, array = fabric
        frequencies = {}
        for name in sorted(agents):
            allocation = plan.allocate(name, 1)
            frequencies[name] = allocation.frequency_for(0)
        heard = []
        array.watch(list(frequencies.values()), on_onset=heard.append)
        array.start()
        # Staggered chirps, one per switch.
        for index, name in enumerate(sorted(agents)):
            sim.schedule_at(
                0.5 + index * 0.3,
                lambda n=name: agents[n].play(frequencies[n], 0.12, 65.0),
            )
        sim.run(3.0)
        heard_frequencies = {d.event.frequency for d in heard}
        assert heard_frequencies == set(frequencies.values())
        # Station attribution matches aisle geography.
        station_of = {d.event.frequency: d.station for d in heard}
        assert station_of[frequencies["leaf2"]] == "aisle-leaf"
        assert station_of[frequencies["spine1"]] == "aisle-spine"

    def test_fabric_carries_traffic_while_array_listens(self, fabric):
        """The acoustic plane and the data plane are independent: both
        run concurrently over one simulator."""
        sim, topo, _channel, plan, agents, array = fabric
        allocation = plan.allocate("leaf1", 1)
        array.watch([allocation.frequency_for(0)],
                    on_onset=lambda d: None)
        array.start()
        sim.schedule_at(0.5, lambda: agents["leaf1"].play(
            allocation.frequency_for(0), 0.12, 65.0))
        topo.hosts["h1_1"].send_to("10.3.0.1", 80, size_bytes=700)
        sim.run(2.0)
        assert topo.hosts["h3_1"].bytes_received.total == 700
        assert array.windows_processed > 0


class TestDeterminism:
    def test_identical_runs_produce_identical_results(self):
        """The reproducibility invariant: two runs of the same
        experiment are bit-identical (no hidden wall-clock or
        unordered iteration anywhere in the stack)."""
        from repro.experiments import queue_monitor_experiment

        first = queue_monitor_experiment()
        second = queue_monitor_experiment()
        assert first.queue_series.values == second.queue_series.values
        assert first.band_history == second.band_history

    def test_fig4_determinism(self):
        from repro.experiments import heavy_hitter_experiment

        first = heavy_hitter_experiment()
        second = heavy_hitter_experiment()
        assert first.per_interval_heavy_counts.values == \
            second.per_interval_heavy_counts.values
        assert first.alerts == second.alerts
