"""Integration: the paper's exact Figure 1 architecture, end to end.

The application emitters call ``.play(frequency, duration, level)`` on
whatever they are given; a :class:`~repro.core.pi.PiBridge` satisfies
the same interface but routes each request as a real 12-byte MP packet
over the switch's dedicated Ethernet port to a Pi host.  This test runs
the §4 port-knocking experiment over that faithful path.
"""

import pytest

from repro.audio import AcousticChannel, Microphone, Position, Speaker
from repro.core import FrequencyPlan, MDNController
from repro.core.agent import MusicAgent
from repro.core.apps import KnockConfig, KnockEmitter, PortKnockingApp
from repro.core.pi import PiBridge
from repro.net import Action, ControlChannel, Simulator, single_switch_topology


@pytest.fixture
def faithful_rig():
    sim = Simulator()
    topo = single_switch_topology(sim, 2, default_action=Action.drop())
    channel = AcousticChannel()
    plan = FrequencyPlan()
    control = ControlChannel(sim)
    switch = topo.switches["s1"]
    control.register_switch(switch)

    agent = MusicAgent(sim, channel, Speaker(Position(0.6, 0.0, 0.0)))
    bridge = PiBridge(sim, switch, agent)
    controller = MDNController(sim, channel, Microphone(Position(), seed=11),
                               control_channel=control)
    return sim, topo, channel, plan, bridge, controller


class TestFaithfulPortKnocking:
    def test_knock_sequence_over_mp_packets(self, faithful_rig):
        sim, topo, _channel, plan, bridge, controller = faithful_rig
        allocation = plan.allocate("s1", 3)
        config = KnockConfig([7001, 7002, 7003], 8080, allocation)
        # The emitter accepts anything with .play(): hand it the bridge,
        # so every knock tone rides an MP packet to the Pi first.
        KnockEmitter(topo.switches["s1"], bridge, config)
        app = PortKnockingApp(controller, "s1", "10.0.0.2", config)
        app.set_output_port(topo.port_towards("s1", "h2"))
        controller.start()

        h1 = topo.hosts["h1"]
        for index, port in enumerate(config.knock_ports):
            sim.schedule_at(1.0 + index,
                            lambda p=port: h1.send_to("10.0.0.2", p))
        sim.run(6.0)

        assert app.is_open
        assert bridge.mp_sent.total == 3
        assert bridge.pi.mp_played.total == 3
        # And the opened port actually carries traffic.
        h1.send_to("10.0.0.2", 8080, size_bytes=900)
        sim.run(7.0)
        assert topo.hosts["h2"].port_bytes.get(8080) == 900

    def test_pi_link_outage_disables_knocking(self, faithful_rig):
        """If the Pi link dies, the knocks are never voiced and the
        port stays shut — sound capability is a dependency, faithfully."""
        sim, topo, channel, plan, bridge, controller = faithful_rig
        allocation = plan.allocate("s1", 3)
        config = KnockConfig([7001, 7002, 7003], 8080, allocation)
        KnockEmitter(topo.switches["s1"], bridge, config)
        app = PortKnockingApp(controller, "s1", "10.0.0.2", config)
        app.set_output_port(topo.port_towards("s1", "h2"))
        controller.start()

        topo.switches["s1"].ports[bridge.pi_port].fail()
        h1 = topo.hosts["h1"]
        for index, port in enumerate(config.knock_ports):
            sim.schedule_at(1.0 + index,
                            lambda p=port: h1.send_to("10.0.0.2", p))
        sim.run(6.0)
        assert not app.is_open
        assert channel.scheduled_tones == ()
