"""Integration: key applications end to end on the Goertzel backend.

The XCAP ablation compares backends on raw detection; these tests make
sure full applications also work when the controller runs the cheap
Goertzel bank instead of the FFT.
"""

import pytest

from repro.core.apps import (
    BandToneMap,
    KnockConfig,
    KnockEmitter,
    PortKnockingApp,
    QueueChirper,
    QueueMonitorApp,
)
from repro.experiments.rigs import build_testbed
from repro.net import Action, OnOffSource


class TestGoertzelApplications:
    def test_port_knocking_on_goertzel(self):
        # The Goertzel bank has no peak-picking: a partial tone's
        # spectral smear lands directly in a 20 Hz neighbour's bin, so
        # goertzel deployments need a wider guard (40 Hz here) — noted
        # in repro/audio/detector.py and the XCAP ablation.
        testbed = build_testbed("single", default_action=Action.drop(),
                                backend="goertzel", plan_guard=40.0)
        allocation = testbed.plan.allocate("s1", 3)
        config = KnockConfig([7001, 7002, 7003], 8080, allocation)
        KnockEmitter(testbed.topo.switches["s1"], testbed.agents["s1"],
                     config)
        app = PortKnockingApp(testbed.controller, "s1", "10.0.0.2", config)
        app.set_output_port(testbed.topo.port_towards("s1", "h2"))
        testbed.controller.start()
        h1 = testbed.topo.hosts["h1"]
        for index, port in enumerate(config.knock_ports):
            testbed.sim.schedule_at(1.0 + index,
                                    lambda p=port: h1.send_to("10.0.0.2", p))
        testbed.sim.run(6.0)
        assert app.is_open

    def test_queue_monitoring_on_goertzel(self):
        testbed = build_testbed("single", backend="goertzel")
        port = testbed.topo.port_towards("s1", "h2")
        tones = BandToneMap(500.0, 600.0, 700.0)
        QueueChirper(testbed.sim, testbed.topo.switches["s1"], port,
                     testbed.agents["s1"], tones)
        app = QueueMonitorApp(testbed.controller, "s1", tones)
        testbed.controller.start()
        burst = OnOffSource(testbed.topo.hosts["h1"], "10.0.0.2", 80,
                            rate_pps=500, on_duration=1.5,
                            off_duration=30.0, start=1.0)
        burst.launch()
        testbed.sim.run(8.0)
        bands = [band for _time, band in app.band_history]
        assert "high" in bands
        assert app.current_band == "low"

    def test_backends_agree_on_band_history(self):
        """Same workload, both backends: identical heard-band sequences."""
        histories = {}
        for backend in ("fft", "goertzel"):
            testbed = build_testbed("single", backend=backend)
            port = testbed.topo.port_towards("s1", "h2")
            tones = BandToneMap(500.0, 600.0, 700.0)
            QueueChirper(testbed.sim, testbed.topo.switches["s1"], port,
                         testbed.agents["s1"], tones)
            app = QueueMonitorApp(testbed.controller, "s1", tones)
            testbed.controller.start()
            burst = OnOffSource(testbed.topo.hosts["h1"], "10.0.0.2", 80,
                                rate_pps=500, on_duration=1.5,
                                off_duration=30.0, start=1.0)
            burst.launch()
            testbed.sim.run(8.0)
            histories[backend] = [band for _t, band in app.band_history]
        assert histories["fft"] == histories["goertzel"]
