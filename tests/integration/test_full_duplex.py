"""Integration: full-duplex sound communication.

§3: "The level of noise may, however, grow significantly based on ...
full-duplex sound communications (that we did not implement)."  We
implement it: two devices transmit *simultaneously* on disjoint
frequency blocks while each listens to the other's block.  Frequency-
division duplexing is what makes this work — the blocks come from one
shared plan.
"""

import pytest

from repro.audio import (
    AcousticChannel,
    FskReceiver,
    FskTransmitter,
    Microphone,
    ModemConfig,
    Position,
    Speaker,
)
from repro.core import FrequencyPlan


def duplex_pair():
    """Two stations 3 m apart with disjoint 5-frequency blocks."""
    plan = FrequencyPlan(low_hz=1000.0, guard_hz=40.0)
    block_a = plan.allocate("station-a", 5)
    block_b = plan.allocate("station-b", 5)

    def config(block):
        return ModemConfig(
            frequencies=tuple(block.frequencies[1:5]),
            preamble_frequency=block.frequency_for(0),
        )

    return (
        (config(block_a), Position(0.0, 0.0, 0.0)),
        (config(block_b), Position(3.0, 0.0, 0.0)),
    )


class TestFullDuplex:
    def test_simultaneous_bidirectional_frames(self):
        (config_a, pos_a), (config_b, pos_b) = duplex_pair()
        channel = AcousticChannel()

        # Both stations transmit at the same instant.
        tx_a = FskTransmitter(config_a, Speaker(pos_a))
        tx_b = FskTransmitter(config_b, Speaker(pos_b))
        end_a = tx_a.send(channel, 0.5, b"a->b: queue high")
        end_b = tx_b.send(channel, 0.5, b"b->a: ack, splitting")
        end = max(end_a, end_b)

        # Each side records with its own microphone and decodes the
        # *other's* block.
        mic_a = Microphone(pos_a, seed=71)
        mic_b = Microphone(pos_b, seed=72)
        capture_at_b = mic_b.record(channel, 0.0, end + 0.3)
        capture_at_a = mic_a.record(channel, 0.0, end + 0.3)

        assert FskReceiver(config_a).decode(capture_at_b, 0.0) == \
            b"a->b: queue high"
        assert FskReceiver(config_b).decode(capture_at_a, 0.0) == \
            b"b->a: ack, splitting"

    def test_same_block_collision_fails(self):
        """Control: both stations on ONE block at the same time is a
        collision — at least one frame must be corrupted or lost.
        (This is why the plan hands out disjoint blocks.)"""
        from repro.audio import ModemError

        (config_a, pos_a), (_config_b, pos_b) = duplex_pair()
        channel = AcousticChannel()
        tx_a = FskTransmitter(config_a, Speaker(pos_a))
        tx_b = FskTransmitter(config_a, Speaker(pos_b))  # same config!
        end_a = tx_a.send(channel, 0.5, b"first")
        end_b = tx_b.send(channel, 0.5, b"other")
        listener = Microphone(Position(1.5, 0.0, 0.0), seed=73)
        capture = listener.record(channel, 0.0, max(end_a, end_b) + 0.3)
        receiver = FskReceiver(config_a)
        with pytest.raises(ModemError):
            receiver.decode(capture, 0.0)
