"""XEXT15 smoke: the fleet scaling experiment end to end.

Runs the same shrunken configuration CI runs (``--smoke``): the whole
parallel path — fork, pickle, merged registries, identity check —
plus the BENCH_fleet.json artifact schema.
"""

import json

import pytest

from repro.experiments import fleet_experiment


@pytest.fixture(scope="module")
def result():
    return fleet_experiment(smoke=True)


def test_every_point_is_identical_to_the_serial_reference(result):
    assert result.points  # serial + at least one process point
    backends = {point.backend for point in result.points}
    assert backends == {"serial", "process"}
    assert all(point.identical for point in result.points)
    assert all(point.failures == 0 for point in result.points)


def test_two_serial_runs_agree(result):
    assert result.determinism_ok


def test_the_fleet_actually_delivered(result):
    assert result.emissions > 0
    assert 0.9 <= result.delivery_ratio <= 1.0
    assert result.delivered <= result.emissions


def test_real_time_factor_is_positive_everywhere(result):
    assert all(point.real_time_factor > 0.0 for point in result.points)
    assert result.best_speedup > 0.0


def test_bench_artifact_schema(result, tmp_path):
    path = result.export(tmp_path / "BENCH_fleet.json")
    payload = json.loads(path.read_text())
    for key in ("num_rooms", "switches_per_room", "num_switches",
                "horizon", "nominal_emissions_per_second", "cpu_count",
                "emissions", "delivered", "delivery_ratio",
                "serial_wall_s", "determinism_ok", "points",
                "best_speedup"):
        assert key in payload, key
    assert payload["cpu_count"] >= 1  # the honesty anchor for speedup
    point = payload["points"][0]
    for key in ("num_shards", "backend", "workers", "wall_s", "speedup",
                "real_time_factor", "identical", "failures"):
        assert key in point, key
