"""Integration: tone spoofing — the §2 acoustic-insecurity surface,
demonstrated and defended.

Attack: the plain queue-monitoring protocol trusts any tone at the
right frequency; a rogue speaker convinces the controller the switch is
congested.  Defense: rolling-code chords reject tones arriving without
the next keyed code tone.
"""

import pytest

from repro.audio import Position, Speaker, ToneSpec
from repro.core.apps import BandToneMap, QueueChirper, QueueMonitorApp
from repro.core.apps.secure_chirp import (
    RollingCode,
    SecureQueueChirper,
    SecureQueueMonitorApp,
)
from repro.experiments.rigs import build_testbed

KEY = b"shared-secret"


class TestAttackOnPlainProtocol:
    def test_spoofed_congestion_tone_fools_the_monitor(self):
        """The vulnerability: the queue is empty, but an attacker's
        speaker plays the 700 Hz tone and the controller believes it."""
        testbed = build_testbed("single")
        port = testbed.topo.port_towards("s1", "h2")
        tones = BandToneMap(500.0, 600.0, 700.0)
        QueueChirper(testbed.sim, testbed.topo.switches["s1"], port,
                     testbed.agents["s1"], tones)
        app = QueueMonitorApp(testbed.controller, "s1", tones)
        testbed.controller.start()

        attacker = Speaker(Position(1.5, 1.5, 0.0))
        testbed.sim.schedule_at(2.05, lambda: attacker.play(
            testbed.channel, testbed.sim.now, ToneSpec(700.0, 0.2, 75.0)
        ))
        testbed.sim.run(4.0)
        # No packet ever crossed the switch...
        assert testbed.topo.switches["s1"].packets_received.total == 0
        # ...yet the controller believed a congestion event happened.
        assert "high" in [band for _t, band in app.band_history]


def build_secure(key=KEY):
    testbed = build_testbed("single")
    port = testbed.topo.port_towards("s1", "h2")
    tones = BandToneMap.from_frequencies(
        testbed.plan.allocate("s1/bands", 3).frequencies
    )
    code_block = testbed.plan.allocate("s1/code", 16)
    code_agent = testbed.extra_agent("s1-code", Position(0.0, -0.9, 0.0))
    chirper = SecureQueueChirper(
        testbed.sim, testbed.topo.switches["s1"], port,
        testbed.agents["s1"], code_agent, tones,
        RollingCode(key, code_block),
    )
    app = SecureQueueMonitorApp(
        testbed.controller, "s1", tones, RollingCode(key, code_block)
    )
    testbed.controller.start()
    return testbed, tones, code_block, chirper, app


class TestRollingCodeDefense:
    def test_legitimate_chirps_still_tracked(self):
        from repro.net import OnOffSource

        testbed, _tones, _code_block, chirper, app = build_secure()
        burst = OnOffSource(testbed.topo.hosts["h1"], "10.0.0.2", 80,
                            rate_pps=500, on_duration=1.5,
                            off_duration=30.0, start=1.0)
        burst.launch()
        testbed.sim.run(8.0)
        bands = [band for _t, band in app.band_history]
        assert "high" in bands
        assert app.current_band == "low"

    def test_spoofed_band_tone_rejected(self):
        """The §2 attack against the secured protocol: the bare band
        tone (no valid code) is counted as a spoof, not a congestion
        event."""
        testbed, tones, _code_block, _chirper, app = build_secure()
        attacker = Speaker(Position(1.5, 1.5, 0.0))
        testbed.sim.schedule_at(2.05, lambda: attacker.play(
            testbed.channel, testbed.sim.now,
            ToneSpec(tones.high, 0.2, 75.0)
        ))
        testbed.sim.run(4.0)
        assert app.current_band != "high"
        assert app.rejected_spoofs >= 1

    def test_replayed_chord_rejected(self):
        """Replay: the attacker captured a full (band, code) chord and
        plays it back later.  The code has rolled on; rejected."""
        testbed, tones, code_block, chirper, app = build_secure()
        # Capture what the first chirp's code tone will be.
        first_code = RollingCode(KEY, code_block).current_frequency("high")
        attacker = Speaker(Position(1.5, 1.5, 0.0))

        def replay() -> None:
            now = testbed.sim.now
            attacker.play(testbed.channel, now,
                          ToneSpec(tones.high, 0.2, 75.0))
            attacker.play(testbed.channel, now,
                          ToneSpec(first_code, 0.2, 75.0))

        # By t=3 the legitimate switch has chirped ~9 times; counter 0
        # is far outside the lookahead window.
        testbed.sim.schedule_at(3.05, replay)
        testbed.sim.run(5.0)
        assert app.current_band != "high"
        assert app.rejected_spoofs >= 1

    def test_wrong_key_cannot_forge(self):
        """An attacker running the same algorithm with a guessed key
        produces code tones that (almost) never validate."""
        testbed, tones, code_block, _chirper, app = build_secure()
        forger = RollingCode(b"wrong-guess", code_block)
        attacker = Speaker(Position(1.5, 1.5, 0.0))

        def forge() -> None:
            now = testbed.sim.now
            attacker.play(testbed.channel, now,
                          ToneSpec(tones.high, 0.2, 75.0))
            attacker.play(testbed.channel, now,
                          ToneSpec(forger.current_frequency("high"), 0.2, 75.0))
            forger.advance()

        for delay in (2.05, 2.55, 3.05):
            testbed.sim.schedule_at(delay, forge)
        testbed.sim.run(5.0)
        assert app.current_band != "high"

    def test_survives_lost_chirps(self):
        """The lookahead window resynchronizes after a silent speaker
        beat (the busy-policy drop path)."""
        testbed, _tones, _code_block, chirper, app = build_secure()
        # Desynchronize: the switch advances its code twice without the
        # controller hearing anything (simulates two lost chirps).
        chirper.code.advance(2)
        testbed.sim.run(3.0)
        # The controller caught back up within the lookahead and is
        # tracking the (idle -> low) state normally.
        assert app.current_band == "low"

    def test_resync_after_long_outage(self):
        """Losing more than `lookahead` chirps (a loud forklift parks
        in front of the speaker) must not desynchronize the protocol
        forever: after `resync_after` rejections the monitor opens a
        one-shot wide scan and re-locks."""
        testbed, _tones, _code_block, chirper, app = build_secure()
        # Simulate a 10-chirp outage: the switch's counter races ahead.
        chirper.code.advance(10)
        testbed.sim.run(6.0)
        assert app.resyncs >= 1
        assert app.current_band == "low"  # tracking again

    def test_rejection_streak_resets_on_accept(self):
        testbed, _tones, _code_block, _chirper, app = build_secure()
        testbed.sim.run(3.0)
        assert app._rejection_streak == 0
        assert app.resyncs == 0
