"""Integration: detection robustness under interference.

The paper tests "with and without background noise" (§3) and uses a pop
song as the interferer in Figure 4.  These tests sweep interference
types and levels against a single watched tone to characterize where
detection survives and where it honestly breaks.
"""

import numpy as np
import pytest

from repro.audio import (
    AcousticChannel,
    FrequencyDetector,
    Microphone,
    Position,
    SongNoise,
    Speaker,
    ToneSpec,
    chirp,
    datacenter_ambience,
    white_noise,
)

TONE_HZ = 2000.0
TONE_DB = 70.0


def detect_with_noise(noise_signal) -> bool:
    channel = AcousticChannel()
    if noise_signal is not None:
        channel.add_noise(noise_signal, Position(1.5, 1.5, 0))
    Speaker(Position(0.5, 0, 0)).play(channel, 0.0, ToneSpec(TONE_HZ, 0.3, TONE_DB))
    window = Microphone(Position(), seed=4).record(channel, 0.05, 0.25)
    detector = FrequencyDetector([TONE_HZ])
    return len(detector.detect(window)) == 1


class TestInterferenceTypes:
    def test_clean(self):
        assert detect_with_noise(None)

    def test_white_noise_moderate(self):
        noise = white_noise(1.0, level_db=55.0, rng=np.random.default_rng(1))
        assert detect_with_noise(noise)

    def test_song(self):
        assert detect_with_noise(SongNoise(seed=10, level_db=60.0).render(2.0))

    def test_datacenter_ambience(self):
        noise = datacenter_ambience(1.0, level_db=70.0,
                                    rng=np.random.default_rng(2))
        assert detect_with_noise(noise)

    def test_sweeping_chirp_interferer(self):
        """A chirp crossing the watched band: worst-case tonal
        interference, still survivable at moderate level."""
        sweep = chirp(500, 4000, 1.0, level_db=55.0)
        assert detect_with_noise(sweep)

    def test_overwhelming_noise_honestly_fails(self):
        """At a 30+ dB disadvantage the tone is genuinely buried; the
        detector must NOT hallucinate it."""
        channel = AcousticChannel()
        noise = white_noise(1.0, level_db=95.0, rng=np.random.default_rng(3))
        channel.add_noise(noise, Position())  # co-located with the mic
        Speaker(Position(0.5, 0, 0)).play(
            channel, 0.0, ToneSpec(TONE_HZ, 0.3, 50.0)
        )
        window = Microphone(Position(), seed=4).record(channel, 0.05, 0.25)
        detector = FrequencyDetector([TONE_HZ])
        assert detector.detect(window) == []


class TestSNRSweep:
    @pytest.mark.parametrize("noise_db,expected", [
        (40.0, True),
        (55.0, True),
        (65.0, True),
    ])
    def test_detection_vs_noise_level(self, noise_db, expected):
        noise = white_noise(1.0, level_db=noise_db,
                            rng=np.random.default_rng(5))
        assert detect_with_noise(noise) is expected

    def test_no_false_positives_in_pure_noise(self):
        """100 noise-only windows, zero detections of the watched tone."""
        detector = FrequencyDetector([TONE_HZ])
        false_positives = 0
        for seed in range(100):
            window_noise = white_noise(
                0.2, level_db=55.0, rng=np.random.default_rng(seed)
            )
            if detector.detect(window_noise):
                false_positives += 1
        assert false_positives == 0

    def test_false_positive_rate_under_song(self):
        """Song-only windows: the melody must not alias onto a watched
        20 Hz-grid frequency more than rarely."""
        detector = FrequencyDetector([TONE_HZ, TONE_HZ + 20, TONE_HZ + 40])
        song = SongNoise(seed=77, level_db=60.0).render(20.0)
        events = detector.detect_stream(song, frame_duration=0.2)
        hits = len({event.time for event in events})
        assert hits <= 10  # <= 10% of 100 windows
