"""Unit tests for the frequency-plan allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FrequencyPlan, FrequencyPlanError


class TestCapacity:
    def test_capacity_formula(self):
        plan = FrequencyPlan(low_hz=1000, high_hz=1100, guard_hz=20)
        assert plan.capacity == 6  # 1000, 1020, ..., 1100

    def test_paper_thousand_frequency_claim(self):
        """§5: ~1000 distinct frequencies in the human-hearable range
        at the paper's 20 Hz separation."""
        plan = FrequencyPlan(low_hz=20.0, high_hz=20_000.0, guard_hz=20.0)
        assert 950 <= plan.capacity <= 1050

    def test_validation(self):
        with pytest.raises(FrequencyPlanError):
            FrequencyPlan(low_hz=100, high_hz=50)
        with pytest.raises(FrequencyPlanError):
            FrequencyPlan(guard_hz=0)


class TestAllocation:
    def test_allocates_on_grid(self):
        plan = FrequencyPlan(low_hz=500, guard_hz=20)
        alloc = plan.allocate("s1", 3)
        assert alloc.frequencies == (500.0, 520.0, 540.0)

    def test_blocks_are_disjoint(self):
        plan = FrequencyPlan(low_hz=500, guard_hz=20)
        first = plan.allocate("s1", 3)
        second = plan.allocate("s2", 3)
        assert set(first.frequencies).isdisjoint(second.frequencies)
        plan.validate_disjoint()

    def test_double_allocation_rejected(self):
        plan = FrequencyPlan()
        plan.allocate("s1", 2)
        with pytest.raises(FrequencyPlanError, match="already"):
            plan.allocate("s1", 2)

    def test_exhaustion(self):
        plan = FrequencyPlan(low_hz=1000, high_hz=1060, guard_hz=20)  # 4 slots
        plan.allocate("a", 3)
        with pytest.raises(FrequencyPlanError, match="exhausted"):
            plan.allocate("b", 2)
        assert plan.remaining == 1

    def test_zero_count_rejected(self):
        with pytest.raises(FrequencyPlanError):
            FrequencyPlan().allocate("x", 0)

    def test_owner_lookup(self):
        plan = FrequencyPlan(low_hz=500, guard_hz=20)
        plan.allocate("s1", 2)
        plan.allocate("s2", 2)
        assert plan.owner_of(500.0) == "s1"
        assert plan.owner_of(540.0) == "s2"
        assert plan.owner_of(999.0) is None

    def test_allocation_of(self):
        plan = FrequencyPlan()
        alloc = plan.allocate("s1", 2)
        assert plan.allocation_of("s1") is alloc
        with pytest.raises(FrequencyPlanError):
            plan.allocation_of("ghost")

    def test_all_frequencies_sorted(self):
        plan = FrequencyPlan(low_hz=500, guard_hz=20)
        plan.allocate("a", 2)
        plan.allocate("b", 2)
        freqs = plan.all_frequencies()
        assert freqs == sorted(freqs)
        assert len(freqs) == 4

    def test_slot_frequency_bounds(self):
        plan = FrequencyPlan(low_hz=1000, high_hz=1100, guard_hz=20)
        assert plan.slot_frequency(0) == 1000.0
        assert plan.slot_frequency(5) == 1100.0
        with pytest.raises(FrequencyPlanError):
            plan.slot_frequency(6)


class TestAllocationObject:
    def test_index_roundtrip(self):
        plan = FrequencyPlan(low_hz=600, guard_hz=20)
        alloc = plan.allocate("s1", 5)
        for index in range(5):
            assert alloc.index_of(alloc.frequency_for(index)) == index

    def test_len(self):
        assert len(FrequencyPlan().allocate("s1", 7)) == 7


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        counts=st.lists(st.integers(min_value=1, max_value=20),
                        min_size=1, max_size=10),
        guard=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_guard_invariant_always_holds(self, counts, guard):
        """Any allocation pattern keeps every pair >= guard apart."""
        plan = FrequencyPlan(low_hz=200.0, high_hz=200.0 + guard * 300,
                             guard_hz=guard)
        for index, count in enumerate(counts):
            if plan.remaining < count:
                break
            plan.allocate(f"dev{index}", count)
        plan.validate_disjoint()

    @settings(max_examples=30, deadline=None)
    @given(count=st.integers(min_value=1, max_value=50))
    def test_accounting(self, count):
        plan = FrequencyPlan(low_hz=100, high_hz=10_000, guard_hz=20)
        before = plan.remaining
        plan.allocate("dev", count)
        assert plan.remaining == before - count
        assert plan.allocated_count == count
