"""Unit tests for the frequency-plan allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FrequencyPlan, FrequencyPlanError


class TestCapacity:
    def test_capacity_formula(self):
        plan = FrequencyPlan(low_hz=1000, high_hz=1100, guard_hz=20)
        assert plan.capacity == 6  # 1000, 1020, ..., 1100

    def test_paper_thousand_frequency_claim(self):
        """§5: ~1000 distinct frequencies in the human-hearable range
        at the paper's 20 Hz separation."""
        plan = FrequencyPlan(low_hz=20.0, high_hz=20_000.0, guard_hz=20.0)
        assert 950 <= plan.capacity <= 1050

    def test_validation(self):
        with pytest.raises(FrequencyPlanError):
            FrequencyPlan(low_hz=100, high_hz=50)
        with pytest.raises(FrequencyPlanError):
            FrequencyPlan(guard_hz=0)


class TestAllocation:
    def test_allocates_on_grid(self):
        plan = FrequencyPlan(low_hz=500, guard_hz=20)
        alloc = plan.allocate("s1", 3)
        assert alloc.frequencies == (500.0, 520.0, 540.0)

    def test_blocks_are_disjoint(self):
        plan = FrequencyPlan(low_hz=500, guard_hz=20)
        first = plan.allocate("s1", 3)
        second = plan.allocate("s2", 3)
        assert set(first.frequencies).isdisjoint(second.frequencies)
        plan.validate_disjoint()

    def test_double_allocation_rejected(self):
        plan = FrequencyPlan()
        plan.allocate("s1", 2)
        with pytest.raises(FrequencyPlanError, match="already"):
            plan.allocate("s1", 2)

    def test_exhaustion(self):
        plan = FrequencyPlan(low_hz=1000, high_hz=1060, guard_hz=20)  # 4 slots
        plan.allocate("a", 3)
        with pytest.raises(FrequencyPlanError, match="exhausted"):
            plan.allocate("b", 2)
        assert plan.remaining == 1

    def test_zero_count_rejected(self):
        with pytest.raises(FrequencyPlanError):
            FrequencyPlan().allocate("x", 0)

    def test_owner_lookup(self):
        plan = FrequencyPlan(low_hz=500, guard_hz=20)
        plan.allocate("s1", 2)
        plan.allocate("s2", 2)
        assert plan.owner_of(500.0) == "s1"
        assert plan.owner_of(540.0) == "s2"
        assert plan.owner_of(999.0) is None

    def test_allocation_of(self):
        plan = FrequencyPlan()
        alloc = plan.allocate("s1", 2)
        assert plan.allocation_of("s1") is alloc
        with pytest.raises(FrequencyPlanError):
            plan.allocation_of("ghost")

    def test_all_frequencies_sorted(self):
        plan = FrequencyPlan(low_hz=500, guard_hz=20)
        plan.allocate("a", 2)
        plan.allocate("b", 2)
        freqs = plan.all_frequencies()
        assert freqs == sorted(freqs)
        assert len(freqs) == 4

    def test_slot_frequency_bounds(self):
        plan = FrequencyPlan(low_hz=1000, high_hz=1100, guard_hz=20)
        assert plan.slot_frequency(0) == 1000.0
        assert plan.slot_frequency(5) == 1100.0
        with pytest.raises(FrequencyPlanError):
            plan.slot_frequency(6)


class TestAllocationObject:
    def test_index_roundtrip(self):
        plan = FrequencyPlan(low_hz=600, guard_hz=20)
        alloc = plan.allocate("s1", 5)
        for index in range(5):
            assert alloc.index_of(alloc.frequency_for(index)) == index

    def test_len(self):
        assert len(FrequencyPlan().allocate("s1", 7)) == 7


class TestToleranceLookup:
    def test_index_of_accepts_fft_quantized_frequency(self):
        # The detector reports bin-centre frequencies: on the 5 Hz FFT
        # grid a 523 Hz assignment comes back as 525 Hz.  Lookups must
        # tolerate anything within half a guard band.
        plan = FrequencyPlan(low_hz=523.0, guard_hz=20.0)
        alloc = plan.allocate("s1", 3)
        assert alloc.index_of(525.0) == 0
        assert alloc.index_of(540.0) == 1
        assert alloc.index_of(523.0 + 2 * 20.0 - 4.9) == 2

    def test_index_of_rejects_out_of_tolerance(self):
        alloc = FrequencyPlan(low_hz=500.0, guard_hz=20.0).allocate("s1", 2)
        with pytest.raises(ValueError):
            alloc.index_of(531.0)   # beyond guard/2 of both entries

    def test_index_of_exact_mode(self):
        alloc = FrequencyPlan(low_hz=500.0, guard_hz=20.0).allocate("s1", 2)
        assert alloc.index_of(500.0, tolerance_hz=0.0) == 0
        with pytest.raises(ValueError):
            alloc.index_of(500.1, tolerance_hz=0.0)

    def test_owner_of_tolerant(self):
        plan = FrequencyPlan(low_hz=500.0, guard_hz=20.0)
        plan.allocate("s1", 2)
        plan.allocate("s2", 2)
        assert plan.owner_of(504.9) == "s1"
        assert plan.owner_of(544.9) == "s2"
        assert plan.owner_of(575.0) is None       # past every entry
        assert plan.owner_of(504.9, tolerance_hz=0.0) is None


class TestReleaseAndReuse:
    def test_release_frees_slots_for_reuse(self):
        plan = FrequencyPlan(low_hz=500.0, guard_hz=20.0)
        first = plan.allocate("a", 3)
        plan.allocate("b", 2)
        plan.release("a")
        assert plan.owner_of(first.frequency_for(0)) is None
        again = plan.allocate("c", 3)
        # Lowest free slots are reused, so "c" lands where "a" was.
        assert again.frequencies == first.frequencies
        plan.validate_disjoint()

    def test_release_unknown_device_raises(self):
        with pytest.raises(FrequencyPlanError):
            FrequencyPlan().release("ghost")

    def test_release_updates_accounting(self):
        plan = FrequencyPlan(low_hz=500.0, high_hz=580.0, guard_hz=20.0)
        plan.allocate("a", 3)
        assert plan.remaining == 2
        plan.release("a")
        assert plan.remaining == 5
        assert plan.allocated_count == 0
        assert "a" not in plan.devices()


class TestApplyMoves:
    def test_moves_bump_epoch_and_rebuild(self):
        plan = FrequencyPlan(low_hz=500.0, guard_hz=20.0)
        plan.allocate("a", 2)                       # slots 0, 1
        fresh = plan.apply_moves([("a", 1, 5)])
        assert plan.epoch == 1
        assert fresh["a"].frequencies == (500.0, plan.slot_frequency(5))
        assert plan.owner_of(plan.slot_frequency(5)) == "a"
        assert plan.owner_of(520.0) is None
        plan.validate_disjoint()

    def test_move_to_occupied_slot_rejected_atomically(self):
        plan = FrequencyPlan(low_hz=500.0, guard_hz=20.0)
        plan.allocate("a", 2)
        plan.allocate("b", 2)                       # slots 2, 3
        with pytest.raises(FrequencyPlanError):
            plan.apply_moves([("a", 0, 9), ("a", 1, 2)])
        # The valid first move must not have leaked through.
        assert plan.epoch == 0
        assert plan.allocation_of("a").frequencies == (500.0, 520.0)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        counts=st.lists(st.integers(min_value=1, max_value=20),
                        min_size=1, max_size=10),
        guard=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_guard_invariant_always_holds(self, counts, guard):
        """Any allocation pattern keeps every pair >= guard apart."""
        plan = FrequencyPlan(low_hz=200.0, high_hz=200.0 + guard * 300,
                             guard_hz=guard)
        for index, count in enumerate(counts):
            if plan.remaining < count:
                break
            plan.allocate(f"dev{index}", count)
        plan.validate_disjoint()

    @settings(max_examples=30, deadline=None)
    @given(count=st.integers(min_value=1, max_value=50))
    def test_accounting(self, count):
        plan = FrequencyPlan(low_hz=100, high_hz=10_000, guard_hz=20)
        before = plan.remaining
        plan.allocate("dev", count)
        assert plan.remaining == before - count
        assert plan.allocated_count == count

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=7),
                  st.integers(min_value=1, max_value=6)),
        min_size=1, max_size=40,
    ))
    def test_allocate_release_never_violates_grid(self, ops):
        """Random interleaved allocate/release churn always leaves
        every pair of live frequencies >= guard apart and disjoint."""
        plan = FrequencyPlan(low_hz=300.0, high_hz=900.0, guard_hz=20.0)
        live: set[str] = set()
        for is_alloc, slot_id, count in ops:
            device = f"dev{slot_id}"
            if is_alloc and device not in live:
                if plan.remaining >= count:
                    plan.allocate(device, count)
                    live.add(device)
            elif not is_alloc and device in live:
                plan.release(device)
                live.discard(device)
            plan.validate_disjoint()
            assert plan.allocated_count == sum(
                len(plan.allocation_of(d)) for d in live)
