"""Unit tests for the per-emitter channel-health monitor.

Driven through a stub controller so beats and windows can be placed
exactly on (and off) the grid without an acoustic stack in the loop.
"""

import pytest

from repro.audio.detector import DetectionEvent
from repro.core import ChannelHealth, ChannelHealthMonitor
from repro.net.sim import Simulator

FREQ = 1000.0
PERIOD = 1.0


class StubController:
    """The slice of MDNController the health monitor consumes."""

    def __init__(self):
        self.sim = Simulator()
        self.listen_interval = 0.1
        self.min_level_db = 30.0
        self.detection_cb = None
        self.window_cb = None

    def watch(self, frequencies, on_detection=None, on_onset=None):
        self.detection_cb = on_detection

    def on_window(self, callback):
        self.window_cb = callback


def _monitor(**kwargs):
    controller = StubController()
    monitor = ChannelHealthMonitor(controller, {"dev": FREQ},
                                   period=PERIOD, **kwargs)
    return controller, monitor


def _beat(controller, time, level_db=60.0):
    controller.detection_cb(DetectionEvent(FREQ, FREQ, level_db, time))


class TestValidation:
    def test_needs_emitters(self):
        with pytest.raises(ValueError):
            ChannelHealthMonitor(StubController(), {}, period=1.0)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            ChannelHealthMonitor(StubController(), {"a": 500.0}, period=0.0)

    def test_rejects_duplicate_frequencies(self):
        with pytest.raises(ValueError, match="unique"):
            ChannelHealthMonitor(StubController(),
                                 {"a": 500.0, "b": 500.0}, period=1.0)


class TestLiveness:
    def test_steady_beats_stay_healthy(self):
        controller, monitor = _monitor()
        for beat in range(10):
            _beat(controller, 0.5 + beat * PERIOD)
            controller.window_cb([], 0.5 + beat * PERIOD + 0.1)
        assert monitor.state_of("dev") is ChannelHealth.HEALTHY
        assert monitor.transitions == []

    def test_silence_goes_dead(self):
        controller, monitor = _monitor(dead_misses=2)
        _beat(controller, 0.5)
        dead_after = 2 * PERIOD + controller.listen_interval
        # While beats are missing but the deadline hasn't passed, the
        # rising miss rate reads DEGRADED — not yet DEAD.
        controller.window_cb([], 0.5 + dead_after - 0.05)
        assert monitor.state_of("dev") is not ChannelHealth.DEAD
        controller.window_cb([], 0.5 + dead_after + 0.05)
        assert monitor.state_of("dev") is ChannelHealth.DEAD
        assert monitor.transitions[-1].state is ChannelHealth.DEAD

    def test_never_heard_grace_then_dead(self):
        controller, monitor = _monitor(dead_misses=2)
        controller.window_cb([], 0.5)
        assert monitor.state_of("dev") is ChannelHealth.HEALTHY
        controller.window_cb([], 4.0)
        assert monitor.state_of("dev") is ChannelHealth.DEAD

    def test_late_detection_does_not_stretch_deadline(self):
        """A beat detected 0.4 s late snaps to its grid slot; the DEAD
        deadline stays grid-anchored."""
        controller, monitor = _monitor(dead_misses=2)
        _beat(controller, 0.5)          # origin: grid = 0.5 + n
        _beat(controller, 1.9)          # slot 1 (grid 1.5), heard late
        dead_after = 2 * PERIOD + controller.listen_interval
        # From the grid reference (1.5) the deadline passes at 3.6;
        # from the raw arrival (1.9) it would not pass until 4.0.
        controller.window_cb([], 1.5 + dead_after + 0.1)
        assert monitor.state_of("dev") is ChannelHealth.DEAD

    def test_recovery_returns_to_healthy(self):
        controller, monitor = _monitor(dead_misses=2, window_beats=4)
        _beat(controller, 0.5)
        controller.window_cb([], 4.5)
        assert monitor.state_of("dev") is ChannelHealth.DEAD
        # Beats resume on the same grid; the miss window drains.
        for beat in range(8, 20):
            _beat(controller, 0.5 + beat * PERIOD)
            controller.window_cb([], 0.5 + beat * PERIOD + 0.1)
        assert monitor.state_of("dev") is ChannelHealth.HEALTHY
        states = [t.state for t in monitor.transitions]
        assert states[0] is ChannelHealth.DEAD
        assert states[-1] is ChannelHealth.HEALTHY


class TestRecoveryHysteresis:
    """DEGRADED/DEAD -> HEALTHY requires a *sustained* clean verdict."""

    def _degrade_then_recover(self, controller, monitor):
        """Beat, two misses (-> DEGRADED), then steady beats again.
        Returns the grid times of the recovery-phase windows."""
        _beat(controller, 0.5)
        controller.window_cb([], 2.6)       # slots 1, 2 missed
        assert monitor.state_of("dev") is ChannelHealth.DEGRADED
        for beat in range(3, 8):
            _beat(controller, 0.5 + beat * PERIOD)
            controller.window_cb([], 0.5 + beat * PERIOD + 0.1)

    def test_single_clean_window_does_not_restore(self):
        controller, monitor = _monitor(window_beats=4)
        _beat(controller, 0.5)
        controller.window_cb([], 2.6)
        assert monitor.state_of("dev") is ChannelHealth.DEGRADED
        for beat in range(3, 7):
            _beat(controller, 0.5 + beat * PERIOD)
        # First window with a clean verdict (miss rate back under the
        # threshold): the default recovery_beats=2 must hold the line.
        controller.window_cb([], 6.6)
        assert monitor.state_of("dev") is ChannelHealth.DEGRADED

    def test_sustained_clean_verdict_restores(self):
        controller, monitor = _monitor(window_beats=4)
        self._degrade_then_recover(controller, monitor)
        assert monitor.state_of("dev") is ChannelHealth.HEALTHY
        states = [t.state for t in monitor.transitions]
        assert states == [ChannelHealth.DEGRADED, ChannelHealth.HEALTHY]

    def test_recovery_beats_one_restores_immediately(self):
        controller, monitor = _monitor(window_beats=4, recovery_beats=1)
        _beat(controller, 0.5)
        controller.window_cb([], 2.6)
        assert monitor.state_of("dev") is ChannelHealth.DEGRADED
        for beat in range(3, 7):
            _beat(controller, 0.5 + beat * PERIOD)
        controller.window_cb([], 6.6)
        assert monitor.state_of("dev") is ChannelHealth.HEALTHY

    def test_longer_hysteresis_waits_longer(self):
        controller, monitor = _monitor(window_beats=4, recovery_beats=3)
        self._degrade_then_recover(controller, monitor)
        # Clean verdicts begin at 6.6; two whole periods are required,
        # so the 7.6 window (one period sustained) still holds DEGRADED.
        assert monitor.state_of("dev") is ChannelHealth.DEGRADED
        for beat in range(8, 10):
            _beat(controller, 0.5 + beat * PERIOD)
            controller.window_cb([], 0.5 + beat * PERIOD + 0.1)
        assert monitor.state_of("dev") is ChannelHealth.HEALTHY

    def test_recovery_beats_validated(self):
        with pytest.raises(ValueError):
            _monitor(recovery_beats=0)


class TestDegradation:
    def test_missed_beats_degrade(self):
        controller, monitor = _monitor(window_beats=10,
                                       degraded_miss_rate=0.34)
        for beat in range(0, 20, 2):   # every other beat lost
            _beat(controller, 0.5 + beat * PERIOD)
        time = 0.5 + 19 * PERIOD
        controller.window_cb([], time)
        assert monitor.state_of("dev") is ChannelHealth.DEGRADED
        assert monitor.miss_rate("dev", time) >= 0.34

    def test_low_snr_margin_degrades(self):
        controller, monitor = _monitor(min_snr_margin_db=3.0)
        for beat in range(6):
            _beat(controller, 0.5 + beat * PERIOD, level_db=31.0)
        controller.window_cb([], 0.5 + 5 * PERIOD + 0.1)
        assert monitor.state_of("dev") is ChannelHealth.DEGRADED
        assert monitor.snr_margin_db("dev") == pytest.approx(1.0)

    def test_strong_steady_signal_not_degraded(self):
        controller, monitor = _monitor()
        for beat in range(6):
            _beat(controller, 0.5 + beat * PERIOD, level_db=60.0)
        controller.window_cb([], 0.5 + 5 * PERIOD + 0.1)
        assert monitor.state_of("dev") is ChannelHealth.HEALTHY
        assert monitor.states() == {"dev": ChannelHealth.HEALTHY}
