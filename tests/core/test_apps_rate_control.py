"""Tests for the sound-driven in-network rate controller."""

import pytest

from repro.core.apps import (
    BandToneMap,
    QueueChirper,
    RateControlApp,
    RateControlPolicy,
)
from repro.net import ConstantRateSource, Match
from repro.experiments.rigs import build_testbed


def assemble(limit_pps=150.0, release_after=5):
    testbed = build_testbed("single")
    switch = testbed.topo.switches["s1"]
    port = testbed.topo.port_towards("s1", "h2")
    tones = BandToneMap.from_frequencies(
        testbed.plan.allocate("s1", 3).frequencies
    )
    chirper = QueueChirper(testbed.sim, switch, port, testbed.agents["s1"],
                           tones)
    app = RateControlApp(
        testbed.controller, tones,
        RateControlPolicy("s1", Match(dst_ip="10.0.0.2"), port,
                          limit_pps=limit_pps),
        release_after=release_after,
    )
    testbed.controller.start()
    return testbed, switch, chirper, app


class TestValidation:
    def test_release_after(self):
        testbed = build_testbed("single")
        tones = BandToneMap(500, 600, 700)
        with pytest.raises(ValueError):
            RateControlApp(testbed.controller, tones,
                           RateControlPolicy("s1", Match(), 1, 100.0),
                           release_after=0)


class TestControlLoop:
    def test_congestion_installs_meter_and_queue_drains(self):
        testbed, switch, chirper, app = assemble()
        # 450 pps into a 250 pps egress: congests within a second.
        source = ConstantRateSource(testbed.topo.hosts["h1"], "10.0.0.2",
                                    80, rate_pps=450, stop=6.0)
        source.launch()
        testbed.sim.run(3.0)
        assert app.metered
        assert switch.packets_policed.total > 0
        # The queue came back under the high threshold post-metering.
        assert chirper.queue_series.final() <= 75

    def test_meter_released_after_sustained_low(self):
        testbed, _switch, chirper, app = assemble()
        source = ConstantRateSource(testbed.topo.hosts["h1"], "10.0.0.2",
                                    80, rate_pps=450, stop=2.0)
        source.launch()
        testbed.sim.run(12.0)
        assert not app.metered           # load gone -> meter removed
        assert len(app.released_at) >= 1
        assert chirper.queue_series.final() == 0

    def test_no_congestion_no_meter(self):
        testbed, switch, _chirper, app = assemble()
        source = ConstantRateSource(testbed.topo.hosts["h1"], "10.0.0.2",
                                    80, rate_pps=100, stop=5.0)
        source.launch()
        testbed.sim.run(8.0)
        assert not app.metered
        assert app.installed_at == []
        assert switch.packets_policed.total == 0

    def test_persistent_overload_reinstalls(self):
        """The naive release rule oscillates under sustained overload:
        release -> queue rebuilds -> re-meter.  Documented behaviour
        (a smarter hold-down is future work)."""
        testbed, _switch, _chirper, app = assemble(release_after=3)
        source = ConstantRateSource(testbed.topo.hosts["h1"], "10.0.0.2",
                                    80, rate_pps=450, stop=15.0)
        source.launch()
        testbed.sim.run(18.0)
        assert len(app.installed_at) >= 2

    def test_base_route_survives_release(self):
        """After the meter is removed, plain traffic still flows (the
        strict delete never touched the base route)."""
        testbed, _switch, _chirper, app = assemble()
        source = ConstantRateSource(testbed.topo.hosts["h1"], "10.0.0.2",
                                    80, rate_pps=450, stop=2.0)
        source.launch()
        testbed.sim.run(12.0)
        assert not app.metered
        before = testbed.topo.hosts["h2"].bytes_received.total
        testbed.topo.hosts["h1"].send_to("10.0.0.2", 80, size_bytes=500)
        testbed.sim.run(13.0)
        assert testbed.topo.hosts["h2"].bytes_received.total == before + 500
