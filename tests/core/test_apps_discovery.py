"""Tests for acoustic boot discovery."""

import pytest

from repro.core.apps.discovery import (
    BOOT_TUNE,
    BootAnnouncer,
    DiscoveryApp,
)
from repro.experiments.rigs import build_testbed


def assemble(num_devices=2):
    testbed = build_testbed("rhombus")
    names = sorted(testbed.agents)[:num_devices]
    devices = {
        name: testbed.plan.allocate(f"boot/{name}", 3) for name in names
    }
    app = DiscoveryApp(testbed.controller, devices)
    testbed.controller.start()
    return testbed, devices, app


class TestValidation:
    def test_needs_devices(self):
        testbed = build_testbed("single")
        with pytest.raises(ValueError):
            DiscoveryApp(testbed.controller, {})

    def test_shared_frequencies_rejected(self):
        testbed = build_testbed("single")
        allocation = testbed.plan.allocate("shared", 3)
        with pytest.raises(ValueError, match="share"):
            DiscoveryApp(testbed.controller,
                         {"a": allocation, "b": allocation})

    def test_announcer_needs_enough_notes(self):
        testbed = build_testbed("single")
        small = testbed.plan.allocate("tiny", 1)
        with pytest.raises(ValueError, match="boot tune"):
            BootAnnouncer(testbed.sim, testbed.agents["s1"], small)


class TestDiscovery:
    def test_booting_device_registered(self):
        testbed, devices, app = assemble(1)
        name = next(iter(devices))
        BootAnnouncer(testbed.sim, testbed.agents[name], devices[name],
                      boot_time=1.0)
        testbed.sim.run(4.0)
        assert app.is_discovered(name)
        assert app.registry[name].time == pytest.approx(1.4, abs=0.3)

    def test_silent_device_not_registered(self):
        testbed, devices, app = assemble(2)
        names = sorted(devices)
        BootAnnouncer(testbed.sim, testbed.agents[names[0]],
                      devices[names[0]], boot_time=1.0)
        testbed.sim.run(4.0)
        assert app.discovered() == [names[0]]

    def test_staggered_boots_both_registered(self):
        testbed, devices, app = assemble(2)
        names = sorted(devices)
        BootAnnouncer(testbed.sim, testbed.agents[names[0]],
                      devices[names[0]], boot_time=1.0)
        BootAnnouncer(testbed.sim, testbed.agents[names[1]],
                      devices[names[1]], boot_time=3.0)
        testbed.sim.run(6.0)
        assert app.discovered() == names

    def test_simultaneous_boots_both_registered(self):
        """Two devices booting at the same instant (a rack power-on):
        disjoint frequency blocks keep the tunes separable."""
        testbed, devices, app = assemble(2)
        names = sorted(devices)
        for name in names:
            BootAnnouncer(testbed.sim, testbed.agents[name],
                          devices[name], boot_time=1.0)
        testbed.sim.run(4.0)
        assert app.discovered() == names

    def test_wrong_melody_not_registered(self):
        """A device playing its notes out of order is not a boot."""
        testbed, devices, app = assemble(1)
        name = next(iter(devices))
        agent = testbed.agents[name]
        allocation = devices[name]
        wrong_order = (BOOT_TUNE[1], BOOT_TUNE[0], BOOT_TUNE[2])
        for index, note in enumerate(wrong_order):
            testbed.sim.schedule_at(
                1.0 + index * 0.2,
                lambda n=note: agent.play(allocation.frequency_for(n),
                                          0.12, 70.0),
            )
        testbed.sim.run(4.0)
        assert not app.is_discovered(name)

    def test_reboot_not_double_registered(self):
        testbed, devices, app = assemble(1)
        name = next(iter(devices))
        BootAnnouncer(testbed.sim, testbed.agents[name], devices[name],
                      boot_time=1.0)
        BootAnnouncer(testbed.sim, testbed.agents[name], devices[name],
                      boot_time=3.0)
        testbed.sim.run(6.0)
        first = app.registry[name].time
        assert first < 2.0  # the original registration stands
