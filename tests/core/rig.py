"""Shared wiring helpers for application tests: a single-switch or
rhombus testbed with the full acoustic path attached."""

from dataclasses import dataclass

from repro.audio import AcousticChannel, Microphone, Position, Speaker
from repro.core import FrequencyPlan, MDNController
from repro.core.agent import MusicAgent
from repro.net import (
    Action,
    ControlChannel,
    Simulator,
    Topology,
    rhombus_topology,
    single_switch_topology,
)


@dataclass
class Rig:
    """One assembled testbed: network + air + controller."""

    sim: Simulator
    topo: Topology
    channel: AcousticChannel
    plan: FrequencyPlan
    control: ControlChannel
    controller: MDNController
    agents: dict[str, MusicAgent]


def build_rig(
    shape: str = "single",
    default_action: Action | None = None,
    listen_interval: float = 0.1,
    plan_guard: float = 20.0,
    bandwidth_bps: float = 2_000_000.0,
    backend: str = "fft",
) -> Rig:
    """Assemble a testbed with one MusicAgent per switch.

    Agents' speakers sit at distinct positions around the microphone at
    the origin, all within a metre or two (the paper's close-range,
    single-hop regime).
    """
    sim = Simulator()
    if shape == "single":
        topo = single_switch_topology(sim, 2, bandwidth_bps=bandwidth_bps,
                                      default_action=default_action)
    elif shape == "rhombus":
        topo = rhombus_topology(sim, bandwidth_bps=bandwidth_bps)
    else:
        raise ValueError(f"unknown shape {shape!r}")

    channel = AcousticChannel()
    plan = FrequencyPlan(guard_hz=plan_guard)
    control = ControlChannel(sim)
    agents = {}
    positions = [
        Position(0.6, 0.0, 0.0),
        Position(0.0, 0.8, 0.0),
        Position(-0.7, 0.3, 0.0),
        Position(0.4, -0.9, 0.0),
    ]
    for index, (name, switch) in enumerate(sorted(topo.switches.items())):
        control.register_switch(switch)
        agents[name] = MusicAgent(
            sim, channel, Speaker(positions[index % len(positions)]), name
        )
    controller = MDNController(
        sim, channel, Microphone(Position(), seed=11),
        listen_interval=listen_interval, control_channel=control,
        backend=backend,
    )
    return Rig(sim, topo, channel, plan, control, controller, agents)
