"""Unit/integration tests for the multi-hop tone relay (§8 extension)."""

import pytest

from repro.audio import (
    AcousticChannel,
    FrequencyDetector,
    Microphone,
    Position,
    Speaker,
    ToneSpec,
)
from repro.core import FrequencyPlan, ToneRelay, build_relay_chain
from repro.net import Simulator


def make_relay(sim, channel, plan, position=Position(20, 0, 0), **kwargs):
    uplink = plan.allocate("up", 3)
    downlink = plan.allocate("down", 3)
    relay = ToneRelay(
        sim, channel,
        Microphone(position, seed=50), Speaker(position),
        uplink, downlink, **kwargs,
    )
    return relay, uplink, downlink


class TestValidation:
    def test_block_sizes_must_match(self):
        sim, channel = Simulator(), AcousticChannel()
        plan = FrequencyPlan(low_hz=800, guard_hz=40)
        up = plan.allocate("up", 3)
        down = plan.allocate("down", 2)
        with pytest.raises(ValueError, match="size"):
            ToneRelay(sim, channel, Microphone(), Speaker(), up, down)

    def test_double_start_rejected(self):
        sim, channel = Simulator(), AcousticChannel()
        plan = FrequencyPlan(low_hz=800, guard_hz=40)
        relay, _up, _down = make_relay(sim, channel, plan)
        relay.start()
        with pytest.raises(RuntimeError):
            relay.start()


class TestSingleRelay:
    def test_translates_tone(self):
        sim, channel = Simulator(), AcousticChannel()
        plan = FrequencyPlan(low_hz=800, guard_hz=40)
        relay, uplink, downlink = make_relay(sim, channel, plan)
        relay.start()
        source = Speaker(Position(19.0, 0, 0))  # near the relay
        sim.schedule_at(0.5, lambda: source.play(
            channel, sim.now, ToneSpec(uplink.frequency_for(1), 0.15, 70.0)
        ))
        sim.run(2.0)
        assert relay.relayed.total == 1
        emitted = [tone for tone in channel.scheduled_tones
                   if tone.spec.frequency == downlink.frequency_for(1)]
        assert len(emitted) == 1

    def test_translate_mapping(self):
        sim, channel = Simulator(), AcousticChannel()
        plan = FrequencyPlan(low_hz=800, guard_hz=40)
        relay, uplink, downlink = make_relay(sim, channel, plan)
        for index in range(3):
            assert relay.translate(uplink.frequency_for(index)) == \
                downlink.frequency_for(index)

    def test_ignores_downlink_tones(self):
        """No feedback loop: the relay's own output block does not
        re-trigger it."""
        sim, channel = Simulator(), AcousticChannel()
        plan = FrequencyPlan(low_hz=800, guard_hz=40)
        relay, _uplink, downlink = make_relay(sim, channel, plan)
        relay.start()
        near = Speaker(Position(19.5, 0, 0))
        sim.schedule_at(0.5, lambda: near.play(
            channel, sim.now, ToneSpec(downlink.frequency_for(0), 0.2, 75.0)
        ))
        sim.run(2.0)
        assert relay.relayed.total == 0

    def test_refractory_suppresses_duplicates(self):
        sim, channel = Simulator(), AcousticChannel()
        plan = FrequencyPlan(low_hz=800, guard_hz=40)
        relay, uplink, _downlink = make_relay(sim, channel, plan,
                                              refractory=1.0)
        relay.start()
        source = Speaker(Position(19.0, 0, 0))
        for delay in (0.5, 0.8):  # two tones within the refractory
            sim.schedule_at(delay, lambda: source.play(
                channel, sim.now, ToneSpec(uplink.frequency_for(0), 0.12, 70.0)
            ))
        sim.run(3.0)
        assert relay.relayed.total == 1

    def test_amplifies_weak_tones(self):
        """A tone arriving at 35 dB leaves at 35+gain (capped by the
        speaker's maximum)."""
        sim, channel = Simulator(), AcousticChannel()
        plan = FrequencyPlan(low_hz=800, guard_hz=40)
        relay, uplink, downlink = make_relay(sim, channel, plan, gain_db=30.0)
        relay.start()
        far_source = Speaker(Position(-15.0, 0, 0))  # 35 m from relay
        sim.schedule_at(0.5, lambda: far_source.play(
            channel, sim.now, ToneSpec(uplink.frequency_for(0), 0.2, 66.0)
        ))
        sim.run(2.0)
        emitted = [tone for tone in channel.scheduled_tones
                   if tone.spec.frequency == downlink.frequency_for(0)]
        assert len(emitted) == 1
        # Received ~ 66 - 20log10(35) ≈ 35 dB; re-emitted at ~65 dB.
        assert emitted[0].spec.level_db > 55.0


class TestRelayChain:
    def test_two_hop_chain_extends_range(self):
        """The §8 scenario: the source is far beyond single-hop range
        of the controller, but a chain of relays carries the tone."""
        sim, channel = Simulator(), AcousticChannel()
        plan = FrequencyPlan(low_hz=800, guard_hz=40)
        relays = build_relay_chain(
            sim, channel, plan,
            [Position(30, 0, 0), Position(60, 0, 0)], block_size=2,
            gain_db=35.0,
        )
        ingress = plan.allocation_of("relay-block0")
        final = plan.allocation_of("relay-block2")

        source = Speaker(Position(0, 0, 0))
        sim.schedule_at(1.0, lambda: source.play(
            channel, sim.now, ToneSpec(ingress.frequency_for(0), 0.15, 60.0)
        ))

        listener = Microphone(Position(90, 0, 0), seed=55)
        detector = FrequencyDetector(list(final.frequencies),
                                     min_level_db=30.0)
        heard = []
        sim.every(0.1, lambda: heard.extend(
            detector.detect(listener.record(channel, sim.now - 0.1, sim.now),
                            sim.now - 0.1)
        ))
        sim.run(3.0)
        assert all(relay.relayed.total == 1 for relay in relays)
        assert any(event.frequency == final.frequency_for(0)
                   for event in heard)

    def test_direct_signal_fails_at_that_range(self):
        """Control: without relays, 90 m of spreading puts the tone
        below a 40 dB detection floor."""
        sim, channel = Simulator(), AcousticChannel()
        plan = FrequencyPlan(low_hz=800, guard_hz=40)
        ingress = plan.allocate("solo", 2)
        source = Speaker(Position(0, 0, 0))
        sim.schedule_at(1.0, lambda: source.play(
            channel, sim.now, ToneSpec(ingress.frequency_for(0), 0.15, 60.0)
        ))
        listener = Microphone(Position(90, 0, 0), seed=55)
        detector = FrequencyDetector(list(ingress.frequencies),
                                     min_level_db=30.0)
        heard = []
        sim.every(0.1, lambda: heard.extend(
            detector.detect(listener.record(channel, sim.now - 0.1, sim.now))
        ))
        sim.run(3.0)
        assert heard == []
