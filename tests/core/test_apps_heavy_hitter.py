"""Application tests for acoustic heavy-hitter detection (§5)."""

import numpy as np
import pytest

from repro.audio import SongNoise
from repro.core.apps import (
    FlowToneMapper,
    HeavyHitterDetectorApp,
    HeavyHitterEmitter,
)
from repro.net import FlowKey, FlowMixWorkload, Protocol
from tests.core.rig import build_rig

LINK_PPS = 250.0  # 2 Mb/s at 1000 B packets


def assemble(num_buckets=16, with_song=False, seed=3):
    rig = build_rig("single")
    alloc = rig.plan.allocate("s1", num_buckets)
    mapper = FlowToneMapper(alloc)
    HeavyHitterEmitter(rig.topo.switches["s1"], rig.agents["s1"], mapper)
    app = HeavyHitterDetectorApp(rig.controller, mapper, interval=1.0,
                                 count_threshold=5)
    if with_song:
        song = SongNoise(seed=2018, level_db=55.0).render(8.0)
        rig.channel.add_noise(song, loop=True)
    rig.controller.start()
    mix = FlowMixWorkload(rig.topo.hosts["h1"], "10.0.0.2",
                          link_capacity_pps=LINK_PPS, num_flows=10,
                          heavy_fraction=0.3, seed=seed)
    return rig, mapper, app, mix


class TestFlowToneMapper:
    def test_deterministic(self):
        rig = build_rig("single")
        mapper = FlowToneMapper(rig.plan.allocate("s1", 8))
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
        assert mapper.frequency_of(flow) == mapper.frequency_of(flow)

    def test_maps_into_allocation(self):
        rig = build_rig("single")
        alloc = rig.plan.allocate("s1", 8)
        mapper = FlowToneMapper(alloc)
        for index in range(50):
            flow = FlowKey("10.0.0.1", "10.0.0.2", 1000 + index, 80,
                           Protocol.UDP)
            assert mapper.frequency_of(flow) in alloc.frequencies


class TestDetection:
    def test_heavy_flow_flagged(self):
        rig, mapper, app, mix = assemble()
        mix.launch()
        rig.sim.run(6.0)
        heavy = mix.heavy_flows[0]
        assert app.is_flow_heavy(heavy)

    def test_mice_not_flagged(self):
        rig, mapper, app, mix = assemble()
        mix.launch()
        rig.sim.run(6.0)
        heavy_freq = mapper.frequency_of(mix.heavy_flows[0])
        flagged = app.heavy_frequencies()
        # Mice buckets (different from the heavy bucket) stay unflagged.
        mouse_freqs = {
            mapper.frequency_of(spec.flow)
            for spec in mix.specs[1:]
        } - {heavy_freq}
        assert flagged.isdisjoint(mouse_freqs)

    def test_alert_carries_interval_and_count(self):
        rig, _mapper, app, mix = assemble()
        mix.launch()
        rig.sim.run(6.0)
        assert app.alerts
        alert = app.alerts[0]
        assert alert.count > 5
        assert alert.interval_start >= 0.0

    def test_detection_with_song_noise(self):
        """Figure 4b: detection still works with a pop song playing."""
        rig, _mapper, app, mix = assemble(with_song=True)
        mix.launch()
        rig.sim.run(6.0)
        assert app.is_flow_heavy(mix.heavy_flows[0])

    def test_no_traffic_no_alerts(self):
        rig, _mapper, app, _mix = assemble()
        rig.sim.run(4.0)
        assert app.alerts == []

    def test_detection_latency_within_two_intervals(self):
        rig, _mapper, app, mix = assemble()
        mix.launch()
        rig.sim.run(6.0)
        assert app.alerts[0].interval_start <= 2.0
