"""Application tests for acoustic heavy-hitter detection (§5)."""

import numpy as np
import pytest

from repro.audio import SongNoise
from repro.core.apps import (
    FlowToneMapper,
    HeavyHitterDetectorApp,
    HeavyHitterEmitter,
)
from repro.net import FlowKey, FlowMixWorkload, Protocol
from tests.core.rig import build_rig

LINK_PPS = 250.0  # 2 Mb/s at 1000 B packets


def assemble(num_buckets=16, with_song=False, seed=3):
    rig = build_rig("single")
    alloc = rig.plan.allocate("s1", num_buckets)
    mapper = FlowToneMapper(alloc)
    HeavyHitterEmitter(rig.topo.switches["s1"], rig.agents["s1"], mapper)
    app = HeavyHitterDetectorApp(rig.controller, mapper, interval=1.0,
                                 count_threshold=5)
    if with_song:
        song = SongNoise(seed=2018, level_db=55.0).render(8.0)
        rig.channel.add_noise(song, loop=True)
    rig.controller.start()
    mix = FlowMixWorkload(rig.topo.hosts["h1"], "10.0.0.2",
                          link_capacity_pps=LINK_PPS, num_flows=10,
                          heavy_fraction=0.3, seed=seed)
    return rig, mapper, app, mix


class TestFlowToneMapper:
    def test_deterministic(self):
        rig = build_rig("single")
        mapper = FlowToneMapper(rig.plan.allocate("s1", 8))
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
        assert mapper.frequency_of(flow) == mapper.frequency_of(flow)

    def test_maps_into_allocation(self):
        rig = build_rig("single")
        alloc = rig.plan.allocate("s1", 8)
        mapper = FlowToneMapper(alloc)
        for index in range(50):
            flow = FlowKey("10.0.0.1", "10.0.0.2", 1000 + index, 80,
                           Protocol.UDP)
            assert mapper.frequency_of(flow) in alloc.frequencies


class TestDetection:
    def test_heavy_flow_flagged(self):
        rig, mapper, app, mix = assemble()
        mix.launch()
        rig.sim.run(6.0)
        heavy = mix.heavy_flows[0]
        assert app.is_flow_heavy(heavy)

    def test_mice_not_flagged(self):
        rig, mapper, app, mix = assemble()
        mix.launch()
        rig.sim.run(6.0)
        heavy_freq = mapper.frequency_of(mix.heavy_flows[0])
        flagged = app.heavy_frequencies()
        # Mice buckets (different from the heavy bucket) stay unflagged.
        mouse_freqs = {
            mapper.frequency_of(spec.flow)
            for spec in mix.specs[1:]
        } - {heavy_freq}
        assert flagged.isdisjoint(mouse_freqs)

    def test_alert_carries_interval_and_count(self):
        rig, _mapper, app, mix = assemble()
        mix.launch()
        rig.sim.run(6.0)
        assert app.alerts
        alert = app.alerts[0]
        assert alert.count > 5
        assert alert.interval_start >= 0.0

    def test_detection_with_song_noise(self):
        """Figure 4b: detection still works with a pop song playing."""
        rig, _mapper, app, mix = assemble(with_song=True)
        mix.launch()
        rig.sim.run(6.0)
        assert app.is_flow_heavy(mix.heavy_flows[0])

    def test_no_traffic_no_alerts(self):
        rig, _mapper, app, _mix = assemble()
        rig.sim.run(4.0)
        assert app.alerts == []

    def test_detection_latency_within_two_intervals(self):
        rig, _mapper, app, mix = assemble()
        mix.launch()
        rig.sim.run(6.0)
        assert app.alerts[0].interval_start <= 2.0


class TestScanCursor:
    """Regression: _scan_closed used to rescan every closed interval on
    every window (quadratic) and dedup alerts through an unbounded
    ``_alerted`` set.  The cursor makes each interval scanned once."""

    def _bus_app(self, count_threshold=5):
        from repro.core.frequency_plan import Allocation
        from repro.core.telemetry import ToneEventBus

        bus = ToneEventBus(window=0.1)
        alloc = Allocation("cursor-test", (1000.0, 1020.0, 1040.0))
        app = HeavyHitterDetectorApp(bus, FlowToneMapper(alloc),
                                     interval=1.0,
                                     count_threshold=count_threshold)
        return bus, app

    def test_one_alert_per_hot_interval_no_duplicates(self):
        bus, app = self._bus_app()
        intervals = 25
        for interval in range(intervals):
            for window in range(10):  # 10 windows of presence > 5
                bus.push(1000.0, interval + window * 0.1)
            bus.dispatch()  # repeated dispatches rescan closed history
        app.finalize(float(intervals))
        starts = [alert.interval_start for alert in app.alerts]
        assert starts == [float(i) for i in range(intervals)]

    def test_cursor_tracks_closed_and_alerted_set_is_gone(self):
        bus, app = self._bus_app()
        for interval in range(5):
            for window in range(10):
                bus.push(1000.0, interval + window * 0.1)
            bus.dispatch()
        app.finalize(5.0)
        assert app._scan_cursor == len(app.counter.closed)
        assert not hasattr(app, "_alerted")

    def test_quiet_buckets_never_alert(self):
        bus, app = self._bus_app()
        for interval in range(10):
            for window in range(3):  # 3 <= threshold 5
                bus.push(1020.0, interval + window * 0.1)
            bus.dispatch()
        app.finalize(10.0)
        assert app.alerts == []


class TestEmitterRebind:
    """Regression: the emitter's rate-limit state was keyed by
    frequency, so a spectrum-agility rebind orphaned every entry —
    unbounded growth across migrations and a synchronized tone burst
    into the new slots at commit."""

    def _emitter(self):
        from repro.core.frequency_plan import Allocation
        from repro.net import Packet

        rig = build_rig("single")
        alloc = rig.plan.allocate("s1", 8)
        mapper = FlowToneMapper(alloc)
        emitter = HeavyHitterEmitter(rig.topo.switches["s1"],
                                     rig.agents["s1"], mapper)
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80, Protocol.UDP)
        packet = Packet(flow, 1000)
        fresh = Allocation("s1", tuple(
            3000.0 + 30.0 * i for i in range(8)))
        return rig, mapper, emitter, packet, fresh

    def test_no_burst_across_migration(self):
        rig, mapper, emitter, packet, fresh = self._emitter()
        emitter._on_forward(packet, 0, 1)
        assert emitter.tones_requested == 1
        mapper.rebind(fresh)
        # Still inside the emission period: the bucket's limiter must
        # survive the retune (no burst into the new slots).
        emitter._on_forward(packet, 0, 1)
        assert emitter.tones_requested == 1
        # After the period elapses the bucket may sound again.
        rig.sim.schedule_at(0.2, emitter._on_forward, packet, 0, 1)
        rig.sim.run(0.3)
        assert emitter.tones_requested == 2

    def test_rate_limit_state_stays_bounded_across_rebinds(self):
        from repro.core.frequency_plan import Allocation

        rig, mapper, emitter, packet, fresh = self._emitter()
        for migration in range(10):
            emitter._on_forward(packet, 0, 1)
            mapper.rebind(Allocation("s1", tuple(
                5000.0 + 100.0 * migration + 10.0 * i for i in range(8))))
        assert len(emitter._last_emission) <= len(mapper.allocation)
