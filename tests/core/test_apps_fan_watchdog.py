"""Application tests for the fan failure watchdog (§7)."""

import numpy as np
import pytest

from repro.core.apps import FanWatchdog, amplitude_difference
from repro.fans import Server, datacenter_scene, office_scene


class TestAmplitudeDifference:
    def test_identical_profiles_zero(self):
        profile = np.array([1.0, 2.0, 3.0])
        assert amplitude_difference(profile, profile) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            amplitude_difference(np.zeros(3), np.zeros(4))

    def test_band_limiting(self):
        reference = np.array([0.0, 0.0, 5.0, 0.0])
        sample = np.array([9.0, 0.0, 0.0, 0.0])
        assert amplitude_difference(reference, sample, slice(2, 4)) == 5.0


class TestValidation:
    def test_bad_parameters(self):
        scene = office_scene(duration=2.0)
        with pytest.raises(ValueError):
            FanWatchdog(scene.channel, scene.microphone, baseline_samples=1)
        with pytest.raises(ValueError):
            FanWatchdog(scene.channel, scene.microphone,
                        sample_duration=0.5, period=0.2)


def run_watchdog(scene, duration, **kwargs):
    watchdog = FanWatchdog(scene.channel, scene.microphone, **kwargs)
    watchdog.run(0.0, duration)
    return watchdog


class TestOfficeDetection:
    def test_failure_detected(self):
        server = Server("target")
        server.fail_all(5.0)
        scene = office_scene(duration=10.0, server=server)
        watchdog = run_watchdog(scene, 10.0)
        assert watchdog.failure_detected
        # Spin-down takes ~1.5 s; alert within 3 s of the failure.
        assert 5.0 <= watchdog.detection_time() <= 8.0

    def test_healthy_fan_no_alert(self):
        scene = office_scene(duration=8.0)
        watchdog = run_watchdog(scene, 8.0)
        assert not watchdog.failure_detected

    def test_scores_jump_on_failure(self):
        """The Figure 7 shape: on-vs-on scores sit near the baseline;
        on-vs-off scores are much larger."""
        server = Server("target")
        server.fail_all(5.0)
        scene = office_scene(duration=10.0, server=server)
        watchdog = run_watchdog(scene, 10.0)
        healthy = watchdog.scores.window(2.0, 4.5)
        failed = watchdog.scores.window(7.5, 10.0)
        assert failed.min() > 3 * healthy.max()


class TestDatacenterDetection:
    def test_failure_detected_despite_ambience(self):
        """The paper's open question, answered positively: a close
        microphone detects one server's failure through datacenter
        noise and neighbouring racks."""
        server = Server("target")
        server.fail_all(5.0)
        scene = datacenter_scene(duration=10.0, server=server)
        watchdog = run_watchdog(scene, 10.0)
        assert watchdog.failure_detected
        assert watchdog.detection_time() >= 5.0

    def test_healthy_no_alert_in_datacenter(self):
        scene = datacenter_scene(duration=8.0)
        watchdog = run_watchdog(scene, 8.0)
        assert not watchdog.failure_detected

    def test_single_fan_failure_detected(self):
        """Losing one of four fans is subtler but still visible."""
        server = Server("target")
        server.fail_fan(0, 5.0)
        scene = datacenter_scene(duration=10.0, server=server)
        watchdog = run_watchdog(scene, 10.0, threshold_factor=2.0)
        assert watchdog.failure_detected

    def test_band_limited_comparison(self):
        server = Server("target")
        server.fail_all(5.0)
        scene = datacenter_scene(duration=10.0, server=server)
        low, high = 800.0, 6000.0
        watchdog = run_watchdog(scene, 10.0, band_hz=(low, high))
        assert watchdog.failure_detected


class TestBaselinePhase:
    def test_no_scores_during_baseline(self):
        scene = office_scene(duration=6.0)
        watchdog = FanWatchdog(scene.channel, scene.microphone,
                               baseline_samples=4, period=0.5)
        results = [watchdog.observe(t * 0.5) for t in range(4)]
        assert results == [None, None, None, None]
        assert watchdog.observe(2.0) is not None

    def test_threshold_nan_until_baseline_done(self):
        scene = office_scene(duration=4.0)
        watchdog = FanWatchdog(scene.channel, scene.microphone)
        assert np.isnan(watchdog.threshold)

    def test_empty_band_rejected(self):
        scene = office_scene(duration=4.0)
        watchdog = FanWatchdog(scene.channel, scene.microphone,
                               band_hz=(7999.9, 7999.95))
        with pytest.raises(ValueError, match="band"):
            watchdog.observe(0.0)
