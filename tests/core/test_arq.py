"""Unit tests for the MP and acoustic ARQ modes."""

import pytest

from repro.audio import AcousticChannel, Microphone, Position, Speaker
from repro.audio.detector import DetectionEvent
from repro.core import (
    AckToneResponder,
    ArqConfig,
    MDNController,
    MpArqSender,
    MusicAgent,
    MusicProtocolMessage,
    PiBridge,
    ToneArqSender,
)
from repro.faults import FaultHarness
from repro.net.sim import Simulator
from repro.net.switch import Switch

MESSAGE = MusicProtocolMessage(1000.0, 0.05, 70.0)


class TestArqConfig:
    def test_defaults_valid(self):
        ArqConfig()

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ArqConfig(initial_timeout=0.0)
        with pytest.raises(ValueError):
            ArqConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ArqConfig(max_timeout=0.01, initial_timeout=0.05)
        with pytest.raises(ValueError):
            ArqConfig(deadline=-1.0)


def _mp_rig(loss_rate=0.0, seed=3):
    sim = Simulator()
    channel = AcousticChannel()
    agent = MusicAgent(sim, channel, Speaker(Position(1.0, 0.0, 0.0)),
                       name="s1")
    switch = Switch(sim, "s1")
    bridge = PiBridge(sim, switch, agent)
    if loss_rate:
        FaultHarness(sim, seed=seed).mp_link(
            switch.ports[bridge.pi_port], loss_rate=loss_rate, label="arq"
        )
    return sim, bridge


class TestMpArqSender:
    def test_clean_link_acks_first_try(self):
        sim, bridge = _mp_rig()
        sender = MpArqSender(bridge)
        sender.send(MESSAGE)
        sim.run(1.0)
        stats = sender.stats()
        assert stats.acked == 1
        assert stats.retransmits == 0
        assert sender.in_flight == 0
        assert bridge.pi.mp_seen_seqs == {0}
        assert bridge.pi.acks_sent.total == 1

    def test_retransmits_through_loss(self):
        sim, bridge = _mp_rig(loss_rate=0.3)
        sender = MpArqSender(bridge)
        for index in range(20):
            sim.schedule_at(index * 0.3, sender.send, MESSAGE)
        sim.run(10.0)
        stats = sender.stats()
        assert stats.acked == 20
        assert stats.retransmits > 0
        assert stats.expired == 0

    def test_deadline_expires_on_dead_link(self):
        sim, bridge = _mp_rig(loss_rate=1.0)
        config = ArqConfig(deadline=0.5)
        sender = MpArqSender(bridge, config)
        sender.send(MESSAGE)
        sim.run(2.0)
        stats = sender.stats()
        assert stats.expired == 1
        assert stats.acked == 0
        assert sender.in_flight == 0

    def test_sequence_numbers_increment(self):
        sim, bridge = _mp_rig()
        sender = MpArqSender(bridge)
        assert [sender.send(MESSAGE) for _ in range(3)] == [0, 1, 2]

    def test_legacy_bare_path_not_acked(self):
        """Fire-and-forget frames must not trigger ACK machinery."""
        sim, bridge = _mp_rig()
        bridge.send_mp(MESSAGE)
        sim.run(1.0)
        assert bridge.pi.mp_played.total == 1
        assert bridge.pi.acks_sent.total == 0
        assert bridge.pi.mp_seen_seqs == set()

    def test_duplicate_delivery_counted_once(self):
        """Retransmitted frames that both arrive play twice but count
        as one distinct delivery."""
        sim, bridge = _mp_rig()
        sender = MpArqSender(bridge, ArqConfig(initial_timeout=0.0001))
        sender.send(MESSAGE)
        sim.run(1.0)
        assert len(bridge.pi.mp_seen_seqs) == 1


class TestToneArq:
    def _rig(self):
        sim = Simulator()
        channel = AcousticChannel()
        device_position = Position(1.0, 0.0, 0.0)
        device = MusicAgent(sim, channel, Speaker(device_position), "dev")
        device_mic = Microphone(device_position, seed=21)
        controller = MDNController(sim, channel,
                                   Microphone(Position(), seed=11))
        station = MusicAgent(sim, channel,
                             Speaker(Position(0.2, 0.0, 0.0)), "station")
        responder = AckToneResponder(controller, station,
                                     {1000.0: 1400.0})
        sender = ToneArqSender(sim, channel, device, device_mic,
                               data_frequency=1000.0,
                               ack_frequency=1400.0)
        return sim, channel, controller, responder, sender

    def test_delivered_first_try_on_clean_air(self):
        sim, channel, controller, responder, sender = self._rig()
        controller.start()
        sim.schedule_at(0.2, sender.send)
        sim.run(3.0)
        assert sender.delivered
        assert sender.attempts == 1
        assert responder.acks_played >= 1

    def test_repetition_covers_speaker_dropout(self):
        sim, channel, controller, responder, sender = self._rig()
        air = FaultHarness(sim, seed=3).acoustic(channel)
        air.drop_speaker(Position(1.0, 0.0, 0.0), 0.0, 1.0)
        controller.start()
        sim.schedule_at(0.2, sender.send)
        sim.run(4.0)
        assert sender.delivered
        assert sender.attempts > 1
        assert sender.delivered_at > 1.0

    def test_expires_when_ack_path_dead(self):
        sim, channel, controller, responder, sender = self._rig()
        air = FaultHarness(sim, seed=3).acoustic(channel)
        air.drop_speaker(Position(0.2, 0.0, 0.0), 0.0, 100.0)  # station
        controller.start()
        sim.schedule_at(0.2, sender.send)
        sim.run(5.0)
        assert sender.expired
        assert not sender.delivered

    def test_responder_requires_map(self):
        sim = Simulator()
        channel = AcousticChannel()
        controller = MDNController(sim, channel,
                                   Microphone(Position(), seed=11))
        station = MusicAgent(sim, channel, Speaker(Position()))
        with pytest.raises(ValueError):
            AckToneResponder(controller, station, {})


class TestPerInstanceStats:
    def test_two_senders_keep_independent_tallies(self):
        """Regression: stats() once read the globally-named obs
        counters, so a second sender's traffic leaked into the first
        sender's report."""
        sim, bridge_a = _mp_rig()
        switch_b = Switch(sim, "s2")
        agent_b = MusicAgent(sim, AcousticChannel(),
                             Speaker(Position(0.0, 1.0, 0.0)), name="s2")
        bridge_b = PiBridge(sim, switch_b, agent_b)
        sender_a = MpArqSender(bridge_a)
        sender_b = MpArqSender(bridge_b)
        for _ in range(3):
            sender_a.send(MESSAGE)
        sender_b.send(MESSAGE)
        sim.run(1.0)
        stats_a, stats_b = sender_a.stats(), sender_b.stats()
        assert (stats_a.sent, stats_a.acked) == (3, 3)
        assert (stats_b.sent, stats_b.acked) == (1, 1)

    def test_expirations_stay_per_instance(self):
        sim, bridge_dead = _mp_rig(loss_rate=1.0)
        switch_b = Switch(sim, "s2")
        agent_b = MusicAgent(sim, AcousticChannel(),
                             Speaker(Position(0.0, 1.0, 0.0)), name="s2")
        bridge_ok = PiBridge(sim, switch_b, agent_b)
        dead = MpArqSender(bridge_dead)
        ok = MpArqSender(bridge_ok)
        dead.send(MESSAGE)
        ok.send(MESSAGE)
        sim.run(3.0)
        assert dead.stats().expired == 1 and dead.stats().acked == 0
        assert ok.stats().expired == 0 and ok.stats().acked == 1


class TestSequenceWraparound:
    def test_sequence_wraps_past_65535(self):
        sim, bridge = _mp_rig()
        sender = MpArqSender(bridge)
        sender._next_sequence = 65_535
        assert sender.send(MESSAGE) == 65_535
        assert sender.send(MESSAGE) == 0
        sim.run(1.0)
        assert sender.stats().acked == 2

    def test_wrap_onto_pending_frame_expires_the_stale_one(self):
        """Regression: a wrapped sequence number landing on a frame
        still in flight used to let the stale frame's timers retransmit
        and expire the *new* frame's state."""
        sim, bridge = _mp_rig(loss_rate=1.0)
        sender = MpArqSender(bridge)
        expired = []
        sender._next_sequence = 65_535
        assert sender.send_wire(MESSAGE.marshal(),
                                on_expire=expired.append) == 65_535
        # Force an immediate wrap back onto the in-flight sequence.
        sender._next_sequence = 65_535
        assert sender.send_wire(MESSAGE.marshal(),
                                on_expire=expired.append) == 65_535
        # The stale frame was expired on the spot, unambiguously.
        assert expired == [65_535]
        assert sender.in_flight == 1
        sim.run(4.0)
        # The replacement ran its own full deadline; the stale frame's
        # leftover timers died on the identity guard without double
        # counting or resurrecting anything.
        assert expired == [65_535, 65_535]
        stats = sender.stats()
        assert stats.sent == 2
        assert stats.expired == 2
        assert sender.in_flight == 0


class TestRetrySchedulePinned:
    def test_wire_retransmit_offsets_unchanged(self):
        """The RetryPolicy refactor must not move the MP wire schedule:
        retries at +0.05/0.15/0.35/0.75/1.25/1.75, expiry at +2.0."""
        sim, bridge = _mp_rig(loss_rate=1.0)
        sender = MpArqSender(bridge)
        expired_at = []
        sim.schedule_at(1.0, sender.send_wire, MESSAGE.marshal(), None,
                        lambda seq: expired_at.append(sim.now))
        sim.run(5.0)
        stats = sender.stats()
        assert stats.retransmits == 6
        assert expired_at == [3.0]

    def test_jitter_shrinks_but_keeps_deadline(self):
        sim, bridge = _mp_rig(loss_rate=1.0)
        sender = MpArqSender(bridge, ArqConfig(jitter=0.5))
        expired_at = []
        sender.send_wire(MESSAGE.marshal(), None,
                         lambda seq: expired_at.append(sim.now))
        sim.run(5.0)
        assert expired_at == [2.0]
        assert sender.stats().retransmits >= 6


class TestAckToneTolerance:
    def _responder(self):
        sim = Simulator()
        channel = AcousticChannel()
        controller = MDNController(sim, channel,
                                   Microphone(Position(), seed=11))
        station = MusicAgent(sim, channel,
                             Speaker(Position(0.2, 0.0, 0.0)), "station")
        responder = AckToneResponder(controller, station, {1000.0: 1400.0})
        return sim, responder

    @staticmethod
    def _onset(frequency):
        return DetectionEvent(frequency=frequency,
                              measured_frequency=frequency,
                              level_db=60.0, time=0.5)

    def test_quantized_onset_still_acked(self):
        """Regression: a bin-quantized onset (1004 Hz for the 1000 Hz
        entry) used to raise KeyError out of the dispatch loop."""
        sim, responder = self._responder()
        responder._on_onset(self._onset(1004.0))
        assert responder.acks_played == 1
        assert responder.acks_skipped == 0

    def test_far_onset_skipped_not_crashed(self):
        sim, responder = self._responder()
        responder._on_onset(self._onset(1050.0))
        assert responder.acks_played == 0
        assert responder.acks_skipped == 1

    def test_rebind_follows_migration_then_acks(self):
        """After a plan migration the responder answers the relocated
        frequency (and its quantized neighbours), not the old one."""
        sim, responder = self._responder()
        responder.rebind(1000.0, 1150.0)
        responder._on_onset(self._onset(1147.0))
        assert responder.acks_played == 1
        responder._on_onset(self._onset(1000.0))
        assert responder.acks_skipped == 1
        assert responder.ack_map == {1150.0: 1400.0}
