"""Tests for the microphone array (§8 extension)."""

import pytest

from repro.audio import (
    AcousticChannel,
    FrequencyDetector,
    Microphone,
    Position,
    Speaker,
    ToneSpec,
)
from repro.core import FrequencyPlan, MicrophoneArray
from repro.net import Simulator


@pytest.fixture
def far_groups():
    """Two switch groups 80 m apart, a station at each, plan blocks
    per group."""
    sim = Simulator()
    channel = AcousticChannel()
    plan = FrequencyPlan(low_hz=700.0, guard_hz=40.0)
    group_a = plan.allocate("groupA", 2)
    group_b = plan.allocate("groupB", 2)
    speaker_a = Speaker(Position(0.0, 0.0, 0.0))
    speaker_b = Speaker(Position(80.0, 0.0, 0.0))
    stations = {
        "station-a": Microphone(Position(1.0, 0.0, 0.0), seed=21),
        "station-b": Microphone(Position(79.0, 0.0, 0.0), seed=22),
    }
    return sim, channel, plan, group_a, group_b, speaker_a, speaker_b, stations


class TestValidation:
    def test_requires_stations(self):
        with pytest.raises(ValueError):
            MicrophoneArray(Simulator(), AcousticChannel(), {})

    def test_requires_watches_before_start(self):
        array = MicrophoneArray(Simulator(), AcousticChannel(),
                                {"m": Microphone()})
        with pytest.raises(RuntimeError):
            array.start()

    def test_watch_after_start_rejected(self):
        sim = Simulator()
        array = MicrophoneArray(sim, AcousticChannel(), {"m": Microphone()})
        array.watch([1000.0], on_detection=lambda d: None)
        array.start()
        with pytest.raises(RuntimeError):
            array.watch([2000.0], on_detection=lambda d: None)


class TestCoverage:
    def test_array_hears_both_groups(self, far_groups):
        (sim, channel, _plan, group_a, group_b,
         speaker_a, speaker_b, stations) = far_groups
        array = MicrophoneArray(sim, channel, stations)
        heard = []
        array.watch(
            list(group_a.frequencies) + list(group_b.frequencies),
            on_onset=heard.append,
        )
        array.start()
        sim.schedule_at(0.5, lambda: speaker_a.play(
            channel, sim.now, ToneSpec(group_a.frequency_for(0), 0.2, 65.0)
        ))
        sim.schedule_at(1.0, lambda: speaker_b.play(
            channel, sim.now, ToneSpec(group_b.frequency_for(0), 0.2, 65.0)
        ))
        sim.run(2.0)
        frequencies = {d.event.frequency for d in heard}
        assert frequencies == {group_a.frequency_for(0),
                               group_b.frequency_for(0)}
        # Each tone was won by its local station.
        by_frequency = {d.event.frequency: d.station for d in heard}
        assert by_frequency[group_a.frequency_for(0)] == "station-a"
        assert by_frequency[group_b.frequency_for(0)] == "station-b"

    def test_single_central_mic_misses_far_group(self, far_groups):
        """Control: one microphone in the middle hears neither group
        clearly — 60 dB emission over 40 m arrives below the 30 dB
        detection floor."""
        (sim, channel, _plan, group_a, _group_b,
         speaker_a, _speaker_b, _stations) = far_groups
        central = Microphone(Position(40.0, 0.0, 0.0), seed=23)
        detector = FrequencyDetector(list(group_a.frequencies))
        sim.schedule_at(0.5, lambda: speaker_a.play(
            channel, sim.now, ToneSpec(group_a.frequency_for(0), 0.2, 60.0)
        ))
        heard = []
        sim.every(0.1, lambda: heard.extend(
            detector.detect(central.record(channel, sim.now - 0.1, sim.now))
        ))
        sim.run(2.0)
        assert heard == []

    def test_duplicate_suppression(self, far_groups):
        """A tone audible at both stations yields one onset, attributed
        to the louder station, listing both hearers."""
        (sim, channel, _plan, group_a, _group_b,
         speaker_a, _speaker_b, _stations) = far_groups
        stations = {
            "near": Microphone(Position(1.0, 0.0, 0.0), seed=31),
            "far": Microphone(Position(5.0, 0.0, 0.0), seed=32),
        }
        array = MicrophoneArray(sim, channel, stations)
        heard = []
        array.watch(list(group_a.frequencies), on_onset=heard.append)
        array.start()
        sim.schedule_at(0.45, lambda: speaker_a.play(
            channel, sim.now, ToneSpec(group_a.frequency_for(0), 0.1, 75.0)
        ))
        sim.run(1.0)
        assert len(heard) == 1
        detection = heard[0]
        assert detection.station == "near"
        assert set(detection.stations_heard) == {"near", "far"}

    def test_coverage_map(self, far_groups):
        (sim, channel, _plan, group_a, group_b,
         speaker_a, speaker_b, stations) = far_groups
        array = MicrophoneArray(sim, channel, stations)
        array.watch(
            list(group_a.frequencies) + list(group_b.frequencies),
            on_detection=lambda d: None,
        )
        array.start()
        sim.schedule_at(0.5, lambda: speaker_a.play(
            channel, sim.now, ToneSpec(group_a.frequency_for(1), 0.2, 65.0)
        ))
        sim.run(1.5)
        assert array.coverage[group_a.frequency_for(1)] == "station-a"
