"""API-surface tests for the experiments package: validation paths and
result invariants that the benchmarks (which use defaults) don't hit."""

import pytest

from repro.experiments import (
    build_testbed,
    fan_spectrogram_panel,
    fft_latency_cdf,
    multiswitch_fft,
    superspreader_experiment,
)
from repro.experiments.rigs import SPEAKER_RING


class TestBuildTestbed:
    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            build_testbed("torus")

    def test_rhombus_has_four_agents(self):
        testbed = build_testbed("rhombus")
        assert set(testbed.agents) == {"s_in", "s_top", "s_bottom", "s_out"}

    def test_agents_at_distinct_positions(self):
        testbed = build_testbed("rhombus")
        positions = {
            (agent.speaker.position.x, agent.speaker.position.y)
            for agent in testbed.agents.values()
        }
        assert len(positions) == len(testbed.agents)

    def test_extra_agent_registered(self):
        testbed = build_testbed("single")
        agent = testbed.extra_agent("aux", SPEAKER_RING[-1])
        assert testbed.agents["aux"] is agent

    def test_goertzel_backend_selectable(self):
        testbed = build_testbed("single", backend="goertzel")
        assert testbed.controller.backend == "goertzel"


class TestExperimentValidation:
    def test_fan_panel_unknown_room(self):
        with pytest.raises(ValueError, match="room"):
            fan_spectrogram_panel("closet", True)

    def test_superspreader_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            superspreader_experiment(mode="teardrop")


class TestResultInvariants:
    def test_fig2b_percentiles_monotone(self):
        result = fft_latency_cdf(num_samples=100)
        points = result.cdf_points()
        values = [value for _quantile, value in points]
        assert values == sorted(values)

    def test_fig2a_respects_switch_count(self):
        result = multiswitch_fft(num_switches=3)
        assert len(result.played) == 3
        assert result.all_identified
