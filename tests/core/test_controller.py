"""Unit tests for the MDN controller's listen loop."""

import pytest

from repro.audio import AcousticChannel, Microphone, Position, Speaker
from repro.core import MDNController
from repro.core.agent import MusicAgent
from repro.net import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    channel = AcousticChannel()
    agent = MusicAgent(sim, channel, Speaker(Position(0.5, 0, 0)), "s1")
    microphone = Microphone(Position(), seed=3)
    controller = MDNController(sim, channel, microphone, listen_interval=0.1)
    return sim, agent, controller


class TestLifecycle:
    def test_start_requires_watches(self, rig):
        _sim, _agent, controller = rig
        with pytest.raises(RuntimeError, match="watch"):
            controller.start()

    def test_watch_requires_callback(self, rig):
        _sim, _agent, controller = rig
        with pytest.raises(ValueError):
            controller.watch([1000])

    def test_watch_after_start_rejected(self, rig):
        _sim, _agent, controller = rig
        controller.watch([1000], on_detection=lambda e: None)
        controller.start()
        with pytest.raises(RuntimeError):
            controller.watch([2000], on_detection=lambda e: None)

    def test_double_start_rejected(self, rig):
        _sim, _agent, controller = rig
        controller.watch([1000], on_detection=lambda e: None)
        controller.start()
        with pytest.raises(RuntimeError):
            controller.start()

    def test_invalid_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MDNController(sim, AcousticChannel(), Microphone(),
                          listen_interval=0)

    def test_stop_halts_listening(self, rig):
        sim, _agent, controller = rig
        controller.watch([1000], on_detection=lambda e: None)
        controller.start()
        sim.run(0.5)
        controller.stop()
        processed = controller.windows_processed
        sim.run(1.0)
        assert controller.windows_processed == processed


class TestDispatch:
    def test_detection_fires_per_window(self, rig):
        sim, agent, controller = rig
        hits = []
        controller.watch([1000], on_detection=hits.append)
        controller.start()
        sim.schedule_at(0.2, lambda: agent.play(1000, 0.35, 72))
        sim.run(1.0)
        # A 350 ms tone spans 3-4 consecutive 100 ms windows.
        assert 3 <= len(hits) <= 4

    def test_stop_start_round_trip_fires_fresh_onset(self, rig):
        """Regression: ``stop()`` must clear the onset-suppression set.
        A tone sustained across a stop/restart is news to the restarted
        listener and must fire an onset on the first post-restart
        window — the stale ``_previous_window`` used to swallow it."""
        sim, agent, controller = rig
        onsets = []
        controller.watch([1000], on_onset=onsets.append)
        controller.start()
        sim.schedule_at(0.15, lambda: agent.play(1000, 2.5, 72))
        sim.run(0.5)
        assert len(onsets) == 1  # heard once while running
        controller.stop()
        controller.start()
        sim.run(1.0)  # tone still playing on restart
        assert len(onsets) == 2

    def test_onset_fires_once_per_tone(self, rig):
        sim, agent, controller = rig
        onsets = []
        controller.watch([1000], on_onset=onsets.append)
        controller.start()
        sim.schedule_at(0.2, lambda: agent.play(1000, 0.35, 72))
        sim.schedule_at(1.0, lambda: agent.play(1000, 0.35, 72))
        sim.run(2.0)
        assert len(onsets) == 2

    def test_unwatched_frequency_ignored(self, rig):
        sim, agent, controller = rig
        hits = []
        controller.watch([2000], on_detection=hits.append)
        controller.start()
        sim.schedule_at(0.2, lambda: agent.play(1000, 0.3, 72))
        sim.run(1.0)
        assert hits == []

    def test_multiple_subscribers_same_frequency(self, rig):
        sim, agent, controller = rig
        first, second = [], []
        controller.watch([1000], on_detection=first.append)
        controller.watch([1000], on_detection=second.append)
        controller.start()
        sim.schedule_at(0.2, lambda: agent.play(1000, 0.3, 72))
        sim.run(1.0)
        assert len(first) == len(second) > 0

    def test_window_callback_sees_all_events(self, rig):
        sim, agent, controller = rig
        windows = []
        controller.watch([1000, 1500], on_detection=lambda e: None)
        controller.on_window(lambda events, time: windows.append((time, len(events))))
        controller.start()
        sim.schedule_at(0.25, lambda: agent.play(1000, 0.1, 72))
        sim.run(1.0)
        assert len(windows) == 10  # every window reported
        assert any(count > 0 for _t, count in windows)

    def test_event_time_is_window_start(self, rig):
        sim, agent, controller = rig
        events = []
        controller.watch([1000], on_onset=events.append)
        controller.start()
        sim.schedule_at(0.42, lambda: agent.play(1000, 0.2, 72))
        sim.run(1.0)
        assert events
        # Tone starts at 0.42 -> first window containing it is [0.4, 0.5).
        assert events[0].time == pytest.approx(0.4, abs=0.0501)

    def test_goertzel_backend(self):
        sim = Simulator()
        channel = AcousticChannel()
        agent = MusicAgent(sim, channel, Speaker(Position(0.5, 0, 0)))
        controller = MDNController(sim, channel, Microphone(Position()),
                                   listen_interval=0.1, backend="goertzel")
        onsets = []
        controller.watch([1200], on_onset=onsets.append)
        controller.start()
        sim.schedule_at(0.3, lambda: agent.play(1200, 0.2, 72))
        sim.run(1.0)
        assert len(onsets) == 1

    def test_flow_mod_without_channel_rejected(self, rig):
        _sim, _agent, controller = rig
        from repro.net import Action, FlowMod, Match
        with pytest.raises(RuntimeError):
            controller.send_flow_mod("s1", FlowMod(Match(), Action.drop()))
