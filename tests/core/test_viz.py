"""Tests for the terminal visualization helpers."""

import numpy as np
import pytest

from repro.net import TimeSeries
from repro.viz import RAMP, cdf_plot, series_plot, sparkline, spectrogram_heatmap


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_capped(self):
        line = sparkline(range(1000), width=40)
        assert len(line) <= 41

    def test_monotone_values_monotone_glyphs(self):
        line = sparkline([0, 25, 50, 75, 100])
        indices = [RAMP.index(char) for char in line]
        assert indices == sorted(indices)

    def test_all_zero(self):
        assert set(sparkline([0, 0, 0])) == {RAMP[0]}

    def test_peak_pins_scale(self):
        half = sparkline([50], peak=100)
        full = sparkline([50], peak=50)
        assert RAMP.index(half) < RAMP.index(full)


class TestSeriesPlot:
    def test_empty(self):
        assert "empty" in series_plot(TimeSeries("x"))

    def test_contains_label_and_axis(self):
        series = TimeSeries("queue")
        for t in range(10):
            series.record(float(t), float(t * t))
        plot = series_plot(series, label="queue occupancy")
        assert "queue occupancy" in plot
        assert "t = 0.0 s" in plot
        assert "#" in plot

    def test_height_respected(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        plot = series_plot(series, height=5, label="")
        # 5 data rows + axis + time footer.
        assert len(plot.splitlines()) == 7


class TestSpectrogramHeatmap:
    def test_empty(self):
        assert "empty" in spectrogram_heatmap(
            np.zeros(0), np.zeros(0), np.zeros((0, 0))
        )

    def test_tone_renders_bright_row(self):
        from repro.audio import mel_spectrogram, sine_tone

        tone = sine_tone(2000, 1.0, level_db=70.0)
        times, centers, mags = mel_spectrogram(tone, num_filters=32,
                                               frame_duration=0.1)
        art = spectrogram_heatmap(times, centers, mags, height=10)
        lines = art.splitlines()
        # Exactly the rows nearest 2 kHz should be bright.
        bright = [line for line in lines if "@" in line]
        assert bright
        assert all("Hz" in line for line in bright)

    def test_shape_fits_requested_grid(self):
        times = np.linspace(0, 1, 100)
        freqs = np.linspace(100, 4000, 50)
        mags = np.random.default_rng(1).random((100, 50))
        art = spectrogram_heatmap(times, freqs, mags, height=8, width=40)
        data_lines = [line for line in art.splitlines() if "Hz" in line]
        assert len(data_lines) == 8


class TestCdfPlot:
    def test_empty(self):
        assert "no samples" in cdf_plot([])

    def test_percentile_rows(self):
        plot = cdf_plot(range(100))
        assert "p50" in plot
        assert "p99" in plot

    def test_bars_monotone(self):
        plot = cdf_plot(range(1, 1000))
        lengths = [line.count("#") for line in plot.splitlines()]
        assert lengths == sorted(lengths)
