"""Application tests for queue chirping, monitoring and load balancing (§6)."""

import pytest

from repro.core.apps import (
    BandToneMap,
    FIG5_BAND_FREQUENCIES,
    LoadBalancerApp,
    QueueChirper,
    QueueMonitorApp,
    SplitRule,
)
from repro.net import Match, OnOffSource, QueueBands, RampSource
from tests.core.rig import build_rig

FIG5_TONES = BandToneMap(**{k: v for k, v in zip(
    ("low", "medium", "high"),
    (FIG5_BAND_FREQUENCIES["low"], FIG5_BAND_FREQUENCIES["medium"],
     FIG5_BAND_FREQUENCIES["high"]),
)})


class TestBandToneMap:
    def test_roundtrip(self):
        tones = BandToneMap(500, 600, 700)
        for band in ("low", "medium", "high"):
            assert tones.band_of(tones.frequency_of(band)) == band

    def test_from_frequencies(self):
        tones = BandToneMap.from_frequencies((500.0, 600.0, 700.0, 800.0))
        assert tones.frequencies() == [500.0, 600.0, 700.0]

    def test_from_frequencies_requires_three(self):
        with pytest.raises(ValueError):
            BandToneMap.from_frequencies((500.0, 600.0))


class TestQueueChirper:
    def test_chirps_low_band_when_idle(self):
        rig = build_rig("single")
        s1 = rig.topo.switches["s1"]
        port = rig.topo.port_towards("s1", "h2")
        chirper = QueueChirper(rig.sim, s1, port, rig.agents["s1"], FIG5_TONES)
        rig.sim.run(1.0)
        tones = rig.channel.scheduled_tones
        assert len(tones) == 3  # every 300 ms
        assert all(t.spec.frequency == 500.0 for t in tones)
        chirper.stop()

    def test_chirp_frequency_tracks_band(self):
        rig = build_rig("single")
        s1 = rig.topo.switches["s1"]
        port = rig.topo.port_towards("s1", "h2")
        chirper = QueueChirper(rig.sim, s1, port, rig.agents["s1"], FIG5_TONES)
        # Burst that fills the queue past 75 packets: 2 Mb/s egress
        # drains 250 pps; send 600 pps for 1 s -> queue ~ 350 capped at 150.
        source = OnOffSource(rig.topo.hosts["h1"], "10.0.0.2", 80,
                             rate_pps=600, on_duration=1.0, off_duration=5.0)
        source.launch()
        rig.sim.run(1.1)
        high_chirps = [t for t in rig.channel.scheduled_tones
                       if t.spec.frequency == 700.0]
        assert high_chirps
        assert chirper.queue_series.max() > 75

    def test_queue_series_recorded(self):
        rig = build_rig("single")
        port = rig.topo.port_towards("s1", "h2")
        chirper = QueueChirper(rig.sim, rig.topo.switches["s1"], port,
                               rig.agents["s1"], FIG5_TONES)
        rig.sim.run(2.0)
        assert len(chirper.queue_series) == 6

    def test_change_only_mode_quiet_in_steady_state(self):
        rig = build_rig("single")
        port = rig.topo.port_towards("s1", "h2")
        QueueChirper(rig.sim, rig.topo.switches["s1"], port,
                     rig.agents["s1"], FIG5_TONES, always_chirp=False,
                     refresh_every=100)
        rig.sim.run(2.0)
        # Only the first classification chirps; band never changes.
        assert len(rig.channel.scheduled_tones) == 1


class TestQueueMonitorApp:
    def build(self):
        rig = build_rig("single")
        port = rig.topo.port_towards("s1", "h2")
        chirper = QueueChirper(rig.sim, rig.topo.switches["s1"], port,
                               rig.agents["s1"], FIG5_TONES)
        app = QueueMonitorApp(rig.controller, "s1", FIG5_TONES)
        rig.controller.start()
        return rig, chirper, app

    def test_tracks_idle_as_low(self):
        rig, _chirper, app = self.build()
        rig.sim.run(2.0)
        assert app.current_band == "low"
        assert not app.is_congested

    def test_figure5c_fill_and_drain_cycle(self):
        """Queue fills (low->medium->high) then drains back to low; the
        controller's heard-band history must follow, ending at low —
        'the queue size gets again lower than 25 packets and the
        controller is notified with another sound at a lower
        frequency (500 Hz)'."""
        rig, chirper, app = self.build()
        source = OnOffSource(rig.topo.hosts["h1"], "10.0.0.2", 80,
                             rate_pps=500, on_duration=1.2, off_duration=30.0)
        source.launch()
        rig.sim.run(8.0)
        bands_heard = [band for _t, band in app.band_history]
        assert "high" in bands_heard
        assert app.current_band == "low"
        # The actual queue really did cross 75 and come back under 25.
        assert chirper.queue_series.max() > 75
        assert chirper.queue_series.final() < 25

    def test_band_at_history_lookup(self):
        rig, _chirper, app = self.build()
        rig.sim.run(1.5)
        assert app.band_at(0.0) is None
        assert app.band_at(1.4) == "low"


class TestLoadBalancerApp:
    def build(self, max_rate=350):
        rig = build_rig("rhombus")
        p_top = rig.topo.port_towards("s_in", "s_top")
        p_bottom = rig.topo.port_towards("s_in", "s_bottom")
        alloc = rig.plan.allocate("s_in", 3)
        tones = BandToneMap.from_frequencies(alloc.frequencies)
        chirper = QueueChirper(rig.sim, rig.topo.switches["s_in"], p_top,
                               rig.agents["s_in"], tones)
        app = LoadBalancerApp(
            rig.controller,
            {"s_in": tones},
            {"s_in": SplitRule("s_in", Match(dst_ip="10.0.0.2"),
                               [p_top, p_bottom])},
        )
        rig.controller.start()
        ramp = RampSource(rig.topo.hosts["h1"], "10.0.0.2", 80,
                          initial_rate_pps=50, slope_pps_per_s=60,
                          max_rate_pps=max_rate)
        ramp.launch()
        return rig, chirper, app

    def test_congestion_triggers_split(self):
        rig, _chirper, app = self.build()
        rig.sim.run(15.0)
        assert app.any_rebalanced
        assert "s_in" in app.rebalanced_at

    def test_queue_drains_after_split(self):
        """The Figure 5a shape: queue builds, the split lands, queue
        returns below the low threshold."""
        rig, chirper, app = self.build()
        rig.sim.run(20.0)
        split_time = app.rebalanced_at["s_in"]
        before = chirper.queue_series.window(0.0, split_time + 0.31)
        after = chirper.queue_series.window(split_time + 3.0, 20.0)
        assert before.max() > 75
        assert after.final() < 25

    def test_traffic_flows_on_both_paths_after_split(self):
        rig, _chirper, _app = self.build()
        rig.sim.run(15.0)
        assert rig.topo.switches["s_bottom"].packets_forwarded.total > 0

    def test_split_installed_once(self):
        rig, _chirper, app = self.build()
        rig.sim.run(20.0)
        assert rig.control.flow_mods_sent == 1

    def test_no_congestion_no_split(self):
        rig, _chirper, app = self.build(max_rate=100)  # under capacity
        rig.sim.run(10.0)
        assert not app.any_rebalanced

    def test_tone_log_records_bands(self):
        rig, _chirper, app = self.build()
        rig.sim.run(10.0)
        bands = {band for _t, _s, band in app.tone_log}
        assert "low" in bands
        assert "high" in bands

    def test_rules_for_unmonitored_switch_rejected(self):
        rig = build_rig("rhombus")
        alloc = rig.plan.allocate("s_in", 3)
        tones = BandToneMap.from_frequencies(alloc.frequencies)
        with pytest.raises(ValueError, match="unmonitored"):
            LoadBalancerApp(rig.controller, {"s_in": tones},
                            {"ghost": SplitRule("ghost", Match(), [1, 2])})
