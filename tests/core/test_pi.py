"""Tests for the faithful switch→Pi→speaker path (Figure 1)."""

import pytest

from repro.audio import (
    AcousticChannel,
    FrequencyDetector,
    Microphone,
    Position,
    Speaker,
)
from repro.core import MusicProtocolMessage
from repro.core.agent import MusicAgent
from repro.core.pi import MP_PORT, PiBridge
from repro.net import Simulator, single_switch_topology


@pytest.fixture
def bridged():
    sim = Simulator()
    topo = single_switch_topology(sim, 2)
    channel = AcousticChannel()
    agent = MusicAgent(sim, channel, Speaker(Position(0.6, 0.0, 0.0)))
    bridge = PiBridge(sim, topo.switches["s1"], agent)
    return sim, topo, channel, agent, bridge


class TestWirePath:
    def test_mp_message_crosses_the_link_and_plays(self, bridged):
        sim, _topo, channel, _agent, bridge = bridged
        assert bridge.play(1000.0, 0.1, 70.0)
        assert len(channel.scheduled_tones) == 0  # still in flight
        sim.run(0.1)
        tones = channel.scheduled_tones
        assert len(tones) == 1
        assert tones[0].spec.frequency == 1000.0
        assert bridge.pi.mp_played.total == 1

    def test_tone_starts_after_network_latency(self, bridged):
        """The MP packet's serialization + propagation delays the tone
        — the faithful path is not instantaneous."""
        sim, _topo, channel, _agent, bridge = bridged
        sim.run(1.0)
        bridge.play(1000.0)
        sim.run(1.1)
        tone = channel.scheduled_tones[0]
        assert tone.start_time > 1.0
        assert tone.start_time < 1.005  # but well under 5 ms

    def test_corrupted_mp_rejected(self, bridged):
        from repro.net import FlowKey, Packet, Protocol

        sim, _topo, channel, _agent, bridge = bridged
        bad = Packet(
            FlowKey("0.0.0.0", bridge.pi.ip, MP_PORT, MP_PORT, Protocol.UDP),
            size_bytes=54,
            payload=b"\x00" * 12,  # wrong magic, wrong checksum
        )
        bridge.switch.transmit(bad, bridge.pi_port)
        sim.run(0.1)
        assert bridge.pi.mp_rejected.total == 1
        assert channel.scheduled_tones == ()

    def test_unplayable_tone_rejected_at_pi(self, bridged):
        sim, _topo, channel, _agent, bridge = bridged
        # 10 ms duration: below the speaker's 30 ms gate.
        bridge.send_mp(MusicProtocolMessage(1000.0, 0.01, 70.0))
        sim.run(0.1)
        assert bridge.pi.mp_rejected.total == 1
        assert channel.scheduled_tones == ()

    def test_non_mp_traffic_ignored(self, bridged):
        from repro.net import FlowKey, Packet, Protocol

        sim, _topo, channel, _agent, bridge = bridged
        stray = Packet(
            FlowKey("0.0.0.0", bridge.pi.ip, 1234, 80, Protocol.TCP),
            size_bytes=100,
        )
        bridge.switch.transmit(stray, bridge.pi_port)
        sim.run(0.1)
        assert bridge.pi.mp_played.total == 0
        assert bridge.pi.mp_rejected.total == 0


class TestEndToEndFidelity:
    def test_full_figure1_loop(self, bridged):
        """Switch event -> MP bytes over Ethernet -> Pi unmarshal ->
        speaker -> air -> microphone -> FFT -> identified frequency."""
        sim, topo, channel, _agent, bridge = bridged
        switch = topo.switches["s1"]
        # The switch plays a sound whenever it sees a packet to port 7001.
        switch.on_receive(
            lambda packet, _in: bridge.play(1200.0, 0.1, 70.0)
            if packet.flow.dst_port == 7001 else None
        )
        microphone = Microphone(Position(), seed=5)
        detector = FrequencyDetector([1200.0])
        topo.hosts["h1"].send_to("10.0.0.2", 7001)
        sim.run(0.5)
        window = microphone.record(channel, 0.0, 0.3)
        events = detector.detect(window)
        assert [event.frequency for event in events] == [1200.0]
        assert bridge.mp_sent.total == 1
        assert bridge.pi.mp_played.total == 1

    def test_pi_link_failure_silences_the_switch(self, bridged):
        """Cut the Pi link: the MP bytes are lost with it (the sound
        capability fails like any peripheral)."""
        sim, topo, channel, _agent, bridge = bridged
        pi_direction = topo.switches["s1"].ports[bridge.pi_port]
        pi_direction.fail()
        assert not bridge.play(1000.0)
        sim.run(0.2)
        assert channel.scheduled_tones == ()
