"""Application tests for acoustic port-scan detection (§5)."""

import pytest

from repro.audio import SongNoise
from repro.core.apps import PortScanDetectorApp, PortScanEmitter, PortToneMapper
from repro.net import ConstantRateSource, PortScanSource
from tests.core.rig import build_rig

PORT_RANGE = range(8000, 8020)


def assemble(with_song=False, distinct_threshold=5):
    rig = build_rig("single", plan_guard=40.0)
    alloc = rig.plan.allocate("s1", len(PORT_RANGE))
    mapper = PortToneMapper(alloc, PORT_RANGE)
    PortScanEmitter(rig.topo.switches["s1"], rig.agents["s1"], mapper)
    app = PortScanDetectorApp(rig.controller, mapper, interval=1.0,
                              distinct_threshold=distinct_threshold)
    if with_song:
        song = SongNoise(seed=2018, level_db=55.0).render(8.0)
        rig.channel.add_noise(song, loop=True)
    rig.controller.start()
    return rig, mapper, app


class TestPortToneMapper:
    def test_roundtrip(self):
        rig = build_rig("single", plan_guard=40.0)
        mapper = PortToneMapper(rig.plan.allocate("s1", 20), PORT_RANGE)
        for port in PORT_RANGE:
            assert mapper.port_of(mapper.frequency_of(port)) == port

    def test_unmonitored_port_is_silent(self):
        rig = build_rig("single", plan_guard=40.0)
        mapper = PortToneMapper(rig.plan.allocate("s1", 20), PORT_RANGE)
        assert mapper.frequency_of(9999) is None

    def test_linear_monotone_mapping(self):
        """Higher port -> higher frequency: the spectrogram sweep."""
        rig = build_rig("single", plan_guard=40.0)
        mapper = PortToneMapper(rig.plan.allocate("s1", 20), PORT_RANGE)
        freqs = [mapper.frequency_of(p) for p in PORT_RANGE]
        assert freqs == sorted(freqs)

    def test_allocation_too_small_rejected(self):
        rig = build_rig("single", plan_guard=40.0)
        with pytest.raises(ValueError):
            PortToneMapper(rig.plan.allocate("s1", 3), PORT_RANGE)


class TestScanDetection:
    def test_scan_raises_alert(self):
        rig, _mapper, app = assemble()
        scan = PortScanSource(rig.topo.hosts["h1"], "10.0.0.2", PORT_RANGE,
                              interval=0.11)
        scan.launch()
        rig.sim.run(5.0)
        assert app.scan_detected
        assert app.alerts[0].distinct_ports > 5

    def test_benign_traffic_no_alert(self):
        """Steady traffic to two service ports never looks like a scan."""
        rig, _mapper, app = assemble()
        for port in (8000, 8001):
            src = ConstantRateSource(rig.topo.hosts["h1"], "10.0.0.2", port,
                                     rate_pps=20, src_port=30_000 + port)
            src.launch()
        rig.sim.run(5.0)
        assert not app.scan_detected

    def test_scan_with_song_noise(self):
        """Figure 4d: the scan is still visible through the music."""
        rig, _mapper, app = assemble(with_song=True)
        scan = PortScanSource(rig.topo.hosts["h1"], "10.0.0.2", PORT_RANGE,
                              interval=0.11)
        scan.launch()
        rig.sim.run(5.0)
        assert app.scan_detected

    def test_ports_heard_reproduces_sweep(self):
        rig, _mapper, app = assemble()
        scan = PortScanSource(rig.topo.hosts["h1"], "10.0.0.2", PORT_RANGE,
                              interval=0.12)
        scan.launch()
        rig.sim.run(6.0)
        heard = app.ports_heard()
        assert len(heard) >= 15
        assert heard == sorted(heard)

    def test_slow_scan_evades_interval_rule(self):
        """A scan slower than the interval threshold stays under the
        distinct-count radar — the 'naive port scan' caveat of §5."""
        rig, _mapper, app = assemble()
        scan = PortScanSource(rig.topo.hosts["h1"], "10.0.0.2",
                              range(8000, 8008), interval=0.6)
        scan.launch()
        rig.sim.run(6.0)
        assert not app.scan_detected


class TestScanCursor:
    """Regression: _scan_closed rescanned all closed intervals on every
    window and deduped through an unbounded ``_alerted`` set."""

    def _bus_app(self):
        from repro.core.frequency_plan import Allocation
        from repro.core.telemetry import ToneEventBus

        bus = ToneEventBus(window=0.1)
        ports = range(8000, 8020)
        alloc = Allocation("cursor-test", tuple(
            2000.0 + 20.0 * i for i in range(len(ports))))
        app = PortScanDetectorApp(bus, PortToneMapper(alloc, ports),
                                  interval=1.0, distinct_threshold=5)
        return bus, alloc, app

    def test_one_alert_per_hot_interval_no_duplicates(self):
        bus, alloc, app = self._bus_app()
        intervals = 20
        for interval in range(intervals):
            for index in range(10):  # 10 distinct tones > threshold 5
                bus.push(alloc.frequency_for(index), interval + 0.01)
            bus.dispatch()
        app.finalize(float(intervals))
        starts = [alert.interval_start for alert in app.alerts]
        assert starts == [float(i) for i in range(intervals)]
        assert all(alert.distinct_ports == 10 for alert in app.alerts)

    def test_cursor_tracks_closed_and_alerted_set_is_gone(self):
        bus, alloc, app = self._bus_app()
        for interval in range(4):
            for index in range(10):
                bus.push(alloc.frequency_for(index), interval + 0.01)
            bus.dispatch()
        app.finalize(4.0)
        assert app._scan_cursor == len(app.counter.closed)
        assert not hasattr(app, "_alerted")
