"""Tests for TDOA acoustic source localization."""

import numpy as np
import pytest

from repro.audio import (
    AcousticChannel,
    Microphone,
    Position,
    Speaker,
    ToneSpec,
    sine_tone,
    white_noise,
)
from repro.core.localize import TdoaLocalizer, gcc_phat_delay

STATIONS = {
    "nw": Position(0.0, 10.0, 0.0),
    "ne": Position(12.0, 10.0, 0.0),
    "s": Position(6.0, -2.0, 0.0),
    "w": Position(-2.0, 0.0, 0.0),
}


def build_array(seed=1):
    return {
        name: Microphone(position, seed=seed + index)
        for index, (name, position) in enumerate(sorted(STATIONS.items()))
    }


class TestGccPhat:
    def test_zero_delay(self):
        tone = sine_tone(1000, 0.2, 65.0)
        assert gcc_phat_delay(tone, tone) == pytest.approx(0.0, abs=1e-4)

    def test_known_delay_recovered(self):
        rng = np.random.default_rng(3)
        noise = white_noise(0.3, 60.0, rng=rng)
        shift = 37  # samples
        delayed_samples = np.concatenate(
            [np.zeros(shift), noise.samples[:-shift]]
        )
        from repro.audio import AudioSignal
        delayed = AudioSignal(delayed_samples, noise.sample_rate)
        measured = gcc_phat_delay(noise, delayed)
        assert measured == pytest.approx(shift / 16000, abs=1e-4)

    def test_rate_mismatch_rejected(self):
        from repro.audio import AudioSignal
        a = AudioSignal(np.zeros(100), 16000)
        b = AudioSignal(np.zeros(100), 8000)
        with pytest.raises(ValueError):
            gcc_phat_delay(a, b)

    def test_too_short_rejected(self):
        from repro.audio import AudioSignal
        tiny = AudioSignal(np.zeros(4), 16000)
        with pytest.raises(ValueError):
            gcc_phat_delay(tiny, tiny)


class TestLocalization:
    def test_needs_three_stations(self):
        with pytest.raises(ValueError):
            TdoaLocalizer({"a": Microphone(), "b": Microphone()})

    @pytest.mark.parametrize("true_position", [
        Position(6.0, 3.0, 0.0),
        Position(1.0, 8.0, 0.0),
        Position(10.0, 0.5, 0.0),
    ])
    def test_tone_source_located(self, true_position):
        channel = AcousticChannel()
        Speaker(true_position).play(channel, 1.0, ToneSpec(2500, 0.5, 70.0))
        localizer = TdoaLocalizer(build_array())
        result = localizer.locate(channel, 1.0, 1.6)
        assert result.position.distance_to(true_position) < 0.5

    def test_localization_through_ambient_noise(self):
        channel = AcousticChannel()
        channel.add_noise(
            white_noise(1.0, level_db=50.0, rng=np.random.default_rng(9)),
            Position(3.0, 3.0, 0.0),
        )
        true_position = Position(8.0, 6.0, 0.0)
        Speaker(true_position).play(channel, 1.0, ToneSpec(3000, 0.5, 72.0))
        localizer = TdoaLocalizer(build_array())
        # Band-isolate the hunted tone: the noise bed is a coherent
        # point source whose own TDOA would otherwise bias the peak.
        result = localizer.locate(channel, 1.0, 1.6, band=(2700.0, 3300.0))
        assert result.position.distance_to(true_position) < 1.0

    def test_beeping_server_found_in_the_datacenter(self):
        """The §7 anecdote, solved: 'a misconfigured server beeping for
        weeks' — the array walks straight to it.  A server beeps
        periodically; the array localizes it despite another server's
        fan wash nearby."""
        from repro.fans import Server

        channel = AcousticChannel()
        # Background: a healthy (noisy) server elsewhere in the room.
        bystander = Server("healthy")
        bystander.position = Position(2.0, 8.0, 0.0)
        bystander.attach_to_channel(channel, 3.0)
        # The culprit beeps at 4 kHz, once.
        culprit_position = Position(9.0, 2.0, 0.0)
        Speaker(culprit_position).play(channel, 1.0,
                                       ToneSpec(4000, 0.4, 75.0))
        localizer = TdoaLocalizer(build_array())
        result = localizer.locate(channel, 1.0, 1.5, band=(3700.0, 4300.0))
        assert result.position.distance_to(culprit_position) < 1.5

    def test_residual_reported(self):
        channel = AcousticChannel()
        Speaker(Position(5.0, 5.0, 0.0)).play(channel, 0.5,
                                              ToneSpec(2000, 0.4, 70.0))
        result = TdoaLocalizer(build_array()).locate(channel, 0.5, 1.0)
        assert result.residual_m < 3.0
        assert set(result.tdoas) == {"nw", "s", "w"}


class TestRobustness:
    def test_drowned_station_reported_excluded(self):
        """The station next to the roaring server is gated out and
        named in the result."""
        from repro.fans import Server

        channel = AcousticChannel()
        bystander = Server("healthy")
        bystander.position = Position(2.0, 8.0, 0.0)
        bystander.attach_to_channel(channel, 3.0)
        Speaker(Position(9.0, 2.0, 0.0)).play(channel, 1.0,
                                              ToneSpec(4000, 0.4, 75.0))
        localizer = TdoaLocalizer(build_array())
        result = localizer.locate(channel, 1.0, 1.5, band=(3700.0, 4300.0))
        assert "nw" in result.excluded  # nw sits 2.8 m from the roarer

    def test_onset_quality_separates_clean_from_drowned(self):
        from repro.core.localize import onset_quality
        from repro.audio import AudioSignal, bandpass_filter
        clean_channel = AcousticChannel()
        Speaker(Position(5.0, 5.0, 0.0)).play(clean_channel, 0.5,
                                              ToneSpec(3000, 0.3, 70.0))
        mic = Microphone(Position(0.0, 0.0, 0.0), seed=2)
        clean = mic.record(clean_channel, 0.5, 1.0)
        assert onset_quality(clean) > 50.0
        flat = AudioSignal(
            np.abs(np.random.default_rng(1).standard_normal(8000)) * 0.01
        )
        assert onset_quality(flat) < 5.0
