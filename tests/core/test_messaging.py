"""Tests for the always-on acoustic message service."""

import pytest

from repro.audio import (
    AcousticChannel,
    FskTransmitter,
    Microphone,
    Position,
    SongNoise,
    Speaker,
    default_modem_config,
)
from repro.core import FrequencyPlan
from repro.core.messaging import AcousticMessageService
from repro.net import Simulator


def rig(poll_interval=0.25, with_song=False, mic_seed=9):
    sim = Simulator()
    channel = AcousticChannel()
    if with_song:
        channel.add_noise(SongNoise(seed=5, level_db=50.0).render(10.0),
                          Position(2.0, 2.0, 0.0))
    plan = FrequencyPlan(low_hz=1000.0, guard_hz=40.0)
    config = default_modem_config(plan.allocate("modem", 5))
    transmitter = FskTransmitter(config, Speaker(Position(0.6, 0.0, 0.0)))
    received = []
    service = AcousticMessageService(
        sim, channel, Microphone(Position(), seed=mic_seed), config,
        on_message=lambda payload, time: received.append((time, payload)),
        poll_interval=poll_interval,
    )
    service.start()
    return sim, channel, transmitter, service, received


class TestLifecycle:
    def test_validation(self):
        sim = Simulator()
        plan = FrequencyPlan(low_hz=1000.0, guard_hz=40.0)
        config = default_modem_config(plan.allocate("m", 5))
        with pytest.raises(ValueError):
            AcousticMessageService(sim, AcousticChannel(), Microphone(),
                                   config, poll_interval=0)

    def test_double_start_rejected(self):
        sim, _channel, _tx, service, _received = rig()
        with pytest.raises(RuntimeError):
            service.start()

    def test_stop_halts_polling(self):
        sim, channel, transmitter, service, received = rig()
        service.stop()
        transmitter.send(channel, 1.0, b"unheard")
        sim.run(10.0)
        assert received == []


class TestReception:
    def test_single_unsolicited_frame(self):
        sim, channel, transmitter, _service, received = rig()
        sim.schedule_at(1.3, lambda: transmitter.send(channel, sim.now,
                                                      b"hello"))
        sim.run(8.0)
        assert len(received) == 1
        time, payload = received[0]
        assert payload == b"hello"
        assert time == pytest.approx(1.3, abs=0.05)

    def test_back_to_back_frames(self):
        sim, channel, transmitter, service, received = rig()
        sim.schedule_at(1.0, lambda: transmitter.send(channel, sim.now,
                                                      b"one"))
        sim.schedule_at(6.0, lambda: transmitter.send(channel, sim.now,
                                                      b"two"))
        sim.run(14.0)
        assert [payload for _t, payload in received] == [b"one", b"two"]
        assert service.decode_errors == 0

    def test_long_frame(self):
        sim, channel, transmitter, _service, received = rig()
        payload = b"0123456789" * 5
        sim.schedule_at(0.8, lambda: transmitter.send(channel, sim.now,
                                                      payload))
        sim.run(25.0)
        assert received and received[0][1] == payload

    def test_reception_under_song(self):
        sim, channel, transmitter, _service, received = rig(with_song=True)
        sim.schedule_at(1.0, lambda: transmitter.send(channel, sim.now,
                                                      b"noisy ok"))
        sim.run(8.0)
        assert received and received[0][1] == b"noisy ok"

    def test_quiet_air_no_frames_no_errors(self):
        sim, _channel, _tx, service, received = rig()
        sim.run(10.0)
        assert received == []
        assert service.decode_errors == 0
        assert service.frames == []
