"""Unit tests for the finite state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FSMError, StateMachine, sequence_machine


class TestStateMachine:
    def test_basic_transition(self):
        machine = StateMachine("idle", {("idle", "go"): "running"},
                               accepting=frozenset({"running"}))
        assert not machine.accepted
        machine.feed("go")
        assert machine.state == "running"
        assert machine.accepted

    def test_unmatched_symbol_stays_without_default(self):
        machine = StateMachine("a", {("a", 1): "b"})
        machine.feed(99)
        assert machine.state == "a"

    def test_unmatched_symbol_goes_to_default(self):
        machine = StateMachine("b", {("a", 1): "b"}, default_state="a")
        machine.feed(99)
        assert machine.state == "a"

    def test_unknown_default_rejected(self):
        with pytest.raises(FSMError):
            StateMachine("a", {("a", 1): "b"}, default_state="ghost")

    def test_reset(self):
        machine = StateMachine("a", {("a", 1): "b"})
        machine.feed(1)
        machine.reset()
        assert machine.state == "a"

    def test_transition_hook(self):
        machine = StateMachine("a", {("a", 1): "b", ("b", 2): "c"})
        log = []
        machine.on_transition(lambda s, sym, t: log.append((s, sym, t)))
        machine.feed(1)
        machine.feed(2)
        assert log == [("a", 1, "b"), ("b", 2, "c")]


class TestSequenceMachine:
    def test_accepts_exact_sequence(self):
        machine = sequence_machine([7001, 7002, 7003])
        for symbol in (7001, 7002, 7003):
            machine.feed(symbol)
        assert machine.accepted

    def test_wrong_order_resets(self):
        machine = sequence_machine([1, 2, 3])
        machine.feed(1)
        machine.feed(3)  # wrong
        assert machine.state == "s0"
        machine.feed(1)
        machine.feed(2)
        machine.feed(3)
        assert machine.accepted

    def test_wrong_symbol_without_reset_stays(self):
        machine = sequence_machine([1, 2, 3], reset_on_error=False)
        machine.feed(1)
        machine.feed(9)
        assert machine.state == "s1"
        machine.feed(2)
        machine.feed(3)
        assert machine.accepted

    def test_repeated_first_symbol_restarts_attempt(self):
        machine = sequence_machine([1, 2, 3])
        machine.feed(1)
        machine.feed(1)  # start over, still counts as the first knock
        machine.feed(2)
        machine.feed(3)
        assert machine.accepted

    def test_prefix_not_accepted(self):
        machine = sequence_machine([1, 2, 3])
        machine.feed(1)
        machine.feed(2)
        assert not machine.accepted

    def test_empty_sequence_rejected(self):
        with pytest.raises(FSMError):
            sequence_machine([])

    def test_single_symbol_sequence(self):
        machine = sequence_machine(["knock"])
        machine.feed("knock")
        assert machine.accepted

    @settings(max_examples=50, deadline=None)
    @given(
        secret=st.lists(st.integers(min_value=0, max_value=9), min_size=2,
                        max_size=5, unique=True),
        prefix=st.lists(st.integers(min_value=0, max_value=9), max_size=12),
    )
    def test_random_prefix_then_secret_always_accepts(self, secret, prefix):
        """Whatever garbage came before, feeding the exact secret
        afterwards opens the lock (the FSM cannot be wedged)."""
        machine = sequence_machine(secret)
        for symbol in prefix:
            machine.feed(symbol)
        for symbol in secret:
            machine.feed(symbol)
        assert machine.accepted

    @settings(max_examples=50, deadline=None)
    @given(
        secret=st.lists(st.integers(min_value=0, max_value=4), min_size=3,
                        max_size=5, unique=True),
        attempt=st.lists(st.integers(min_value=0, max_value=4), max_size=6),
    )
    def test_acceptance_requires_secret_subsequence(self, secret, attempt):
        """If the machine accepted, the fed symbols must end with a run
        matching the secret's tail transition — i.e. the last len(secret)
        effective symbols walked s0..sN.  Weak form: an attempt shorter
        than the secret never accepts."""
        machine = sequence_machine(secret)
        for symbol in attempt:
            machine.feed(symbol)
        if len(attempt) < len(secret):
            assert not machine.accepted
