"""Tests for acoustic device liveness monitoring."""

import pytest

from repro.core.apps import (
    HeartbeatChirper,
    LivenessMonitorApp,
    build_liveness_mesh,
)
from repro.experiments.rigs import build_testbed


@pytest.fixture
def mesh():
    testbed = build_testbed("rhombus")
    chirpers, monitor = build_liveness_mesh(testbed.controller,
                                            testbed.agents, testbed.plan)
    testbed.controller.start()
    return testbed, chirpers, monitor


class TestValidation:
    def test_needs_devices(self):
        testbed = build_testbed("single")
        with pytest.raises(ValueError):
            LivenessMonitorApp(testbed.controller, {})

    def test_unique_frequencies_required(self):
        testbed = build_testbed("single")
        with pytest.raises(ValueError, match="unique"):
            LivenessMonitorApp(testbed.controller,
                               {"a": 500.0, "b": 500.0})

    def test_miss_threshold(self):
        testbed = build_testbed("single")
        with pytest.raises(ValueError):
            LivenessMonitorApp(testbed.controller, {"a": 500.0},
                               miss_threshold=0)

    def test_chirper_phase_validation(self):
        testbed = build_testbed("single")
        with pytest.raises(ValueError, match="phase"):
            HeartbeatChirper(testbed.sim, testbed.agents["s1"], 500.0,
                             period=1.0, phase=1.5)


class TestLiveness:
    def test_all_devices_alive(self, mesh):
        testbed, _chirpers, monitor = mesh
        testbed.sim.run(6.0)
        assert monitor.devices_down() == []
        assert set(monitor.last_heard) == set(monitor.devices)

    def test_dead_device_detected(self, mesh):
        testbed, chirpers, monitor = mesh
        testbed.sim.run(4.0)
        chirpers["s_top"].kill()
        testbed.sim.run(10.0)
        assert monitor.devices_down() == ["s_top"]
        alert = monitor.alerts[-1]
        assert alert.device == "s_top"
        assert alert.missed_beats >= 2

    def test_detection_latency_bounded(self, mesh):
        """Alert within miss_threshold + 1 periods of the death."""
        testbed, chirpers, monitor = mesh
        testbed.sim.run(4.0)
        chirpers["s_in"].kill()
        death = testbed.sim.now
        testbed.sim.run(12.0)
        alert = next(a for a in monitor.alerts if a.device == "s_in")
        assert alert.time - death < (monitor.miss_threshold + 1) * monitor.period + 0.5

    def test_revived_device_clears(self, mesh):
        testbed, chirpers, monitor = mesh
        testbed.sim.run(4.0)
        chirpers["s_bottom"].kill()
        testbed.sim.run(10.0)
        assert monitor.is_down("s_bottom")
        chirpers["s_bottom"].revive()
        testbed.sim.run(14.0)
        assert not monitor.is_down("s_bottom")
        # The historical alert is retained.
        assert any(a.device == "s_bottom" for a in monitor.alerts)

    def test_multiple_simultaneous_deaths(self, mesh):
        testbed, chirpers, monitor = mesh
        testbed.sim.run(4.0)
        chirpers["s_top"].kill()
        chirpers["s_out"].kill()
        testbed.sim.run(11.0)
        assert monitor.devices_down() == ["s_out", "s_top"]

    def test_beats_staggered(self, mesh):
        """The mesh staggers device phases so beats land in different
        capture windows."""
        _testbed, chirpers, _monitor = mesh
        starts = sorted(
            chirper._timer._event.time if chirper._timer._event else 0.0
            for chirper in chirpers.values()
        )
        gaps = [second - first for first, second in zip(starts, starts[1:])]
        assert all(gap > 0.2 for gap in gaps)
