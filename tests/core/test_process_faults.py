"""Unit tests for the process-level (worker) fault model."""

import pickle

import pytest

from repro.faults.process import (
    PoisonedShardReport,
    ProcessFaultPlan,
    ShardFaultDecision,
    SimulatedWorkerCrash,
    crash_now,
    shard_fault_decision,
)
from repro.fleet import FleetSpec, ensure_picklable
from repro.fleet.worker import ShardJob

PLAN = ProcessFaultPlan(crash_rate=0.4, straggler_rate=0.3,
                        poison_rate=0.2, duplicate_rate=0.2)


class TestDecisionDeterminism:
    def test_same_inputs_same_fate(self):
        for shard_id in range(6):
            for attempt in range(4):
                a = shard_fault_decision(PLAN, 17, shard_id, attempt)
                b = shard_fault_decision(PLAN, 17, shard_id, attempt)
                assert a == b

    def test_attempts_have_independent_fates(self):
        fates = {shard_fault_decision(PLAN, 17, 0, attempt)
                 for attempt in range(3)}
        # With 5 fresh draws per attempt, identical fates across all
        # three early attempts would mean the blocks are not advancing.
        assert len(fates) > 1 or not any(f.crash or f.straggle or f.poison
                                         or f.duplicate for f in fates)

    def test_earlier_attempts_fate_is_stable_under_later_queries(self):
        # Attempt 1's fate must not depend on whether attempt 3 was
        # ever asked about (fixed-width blocks, stable offsets).
        first = shard_fault_decision(PLAN, 17, 2, 1)
        shard_fault_decision(PLAN, 17, 2, 3)
        assert shard_fault_decision(PLAN, 17, 2, 1) == first

    def test_shards_have_independent_streams(self):
        fates = [shard_fault_decision(
            ProcessFaultPlan(crash_rate=0.5), 17, shard_id, 0).crash
            for shard_id in range(32)]
        assert any(fates) and not all(fates)

    def test_disabled_plan_is_clean_and_drawless(self):
        assert shard_fault_decision(None, 17, 0, 0).clean
        assert shard_fault_decision(ProcessFaultPlan(), 17, 0, 0).clean

    def test_attempts_past_max_faulty_run_clean(self):
        plan = ProcessFaultPlan(crash_rate=1.0, max_faulty_attempts=1)
        assert shard_fault_decision(plan, 17, 0, 0).crash
        assert shard_fault_decision(plan, 17, 0, 1).crash
        assert shard_fault_decision(plan, 17, 0, 2).clean
        assert shard_fault_decision(plan, 17, 0, 99).clean

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            shard_fault_decision(PLAN, 17, 0, -1)


class TestPlanValidation:
    def test_rates_must_be_probabilities(self):
        for kw in ("crash_rate", "straggler_rate", "poison_rate",
                   "duplicate_rate"):
            with pytest.raises(ValueError, match=kw):
                ProcessFaultPlan(**{kw: 1.5})

    def test_delay_and_budget_bounds(self):
        with pytest.raises(ValueError, match="straggler_delay_s"):
            ProcessFaultPlan(straggler_delay_s=-0.1)
        with pytest.raises(ValueError, match="max_faulty_attempts"):
            ProcessFaultPlan(max_faulty_attempts=-1)

    def test_active_property(self):
        assert not ProcessFaultPlan().active
        assert ProcessFaultPlan(crash_rate=0.1).active
        assert ProcessFaultPlan(duplicate_rate=0.1).active


class TestCrashShapes:
    def test_soft_crash_raises(self):
        with pytest.raises(SimulatedWorkerCrash):
            crash_now(hard=False)

    def test_crash_after_rooms_costs_something(self):
        always = ShardFaultDecision(crash=True, crash_after_fraction=0.999)
        assert always.crash_after_rooms(10) == 9  # never "all done"
        assert always.crash_after_rooms(1) == 0
        early = ShardFaultDecision(crash=True, crash_after_fraction=0.0)
        assert early.crash_after_rooms(10) == 0
        assert ShardFaultDecision().crash_after_rooms(10) is None


class TestPicklability:
    def test_plan_and_job_cross_the_process_boundary(self):
        shard = FleetSpec(num_rooms=2, switches_per_room=2).shard_specs(1)[0]
        job = ShardJob(shard=shard, attempt=1, seed=17, faults=PLAN,
                       checkpoint_dir="/tmp/nowhere", hard_crash_ok=True)
        ensure_picklable(PLAN, "plan")
        ensure_picklable(job, "job")
        clone = pickle.loads(pickle.dumps(job))
        assert clone.faults == PLAN
        assert clone.attempt == 1

    def test_poison_is_deliberately_picklable(self):
        # An unpicklable poison would wedge the executor's result
        # thread itself; the poison we inject must *arrive* and then
        # fail validation.
        poison = PoisonedShardReport(shard_id=3)
        assert pickle.loads(pickle.dumps(poison)) == poison
