"""Unit tests for the MusicAgent (the Pi + speaker)."""

import pytest

from repro.audio import AcousticChannel, DeviceCapabilityError, Position, Speaker
from repro.core import MusicProtocolMessage
from repro.core.agent import MusicAgent
from repro.net import Simulator


@pytest.fixture
def agent():
    sim = Simulator()
    channel = AcousticChannel()
    speaker = Speaker(Position(0.5, 0, 0))
    return sim, channel, MusicAgent(sim, channel, speaker, "s1")


class TestPlayback:
    def test_tone_scheduled_at_now(self, agent):
        sim, channel, music_agent = agent
        sim.run(2.0)
        assert music_agent.play(1000, 0.05, 70)
        tone = channel.scheduled_tones[0]
        assert tone.start_time == 2.0
        assert tone.spec.frequency == 1000

    def test_handle_message(self, agent):
        _sim, channel, music_agent = agent
        message = MusicProtocolMessage(880, 0.06, 65)
        assert music_agent.handle_message(message)
        assert channel.scheduled_tones[0].spec.frequency == 880

    def test_handle_wire(self, agent):
        _sim, channel, music_agent = agent
        wire = MusicProtocolMessage(700, 0.05, 60).marshal()
        assert music_agent.handle_wire(wire)
        assert channel.scheduled_tones[0].spec.frequency == 700

    def test_speaker_envelope_enforced(self, agent):
        _sim, channel, music_agent = agent
        with pytest.raises(DeviceCapabilityError):
            music_agent.play(1000, 0.001, 70)  # below 30 ms minimum
        assert len(channel.scheduled_tones) == 0

    def test_counters(self, agent):
        _sim, _channel, music_agent = agent
        music_agent.play(1000, 0.05, 70)
        assert music_agent.played.total == 1


class TestBusyPolicy:
    def test_drop_policy_discards_overlap(self, agent):
        sim, channel, music_agent = agent
        assert music_agent.play(1000, 0.2, 70)
        assert not music_agent.play(2000, 0.2, 70)  # still busy
        assert music_agent.dropped.total == 1
        assert len(channel.scheduled_tones) == 1

    def test_speaker_free_after_tone(self, agent):
        sim, _channel, music_agent = agent
        music_agent.play(1000, 0.1, 70)
        assert music_agent.is_busy
        sim.run(0.15)
        assert not music_agent.is_busy
        assert music_agent.play(2000, 0.1, 70)

    def test_queue_policy_serializes(self):
        sim = Simulator()
        channel = AcousticChannel()
        music_agent = MusicAgent(sim, channel, Speaker(), busy_policy="queue")
        music_agent.play(1000, 0.2, 70)
        music_agent.play(2000, 0.2, 70)
        tones = channel.scheduled_tones
        assert len(tones) == 2
        assert tones[1].start_time == pytest.approx(0.2)

    def test_unknown_policy_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MusicAgent(sim, AcousticChannel(), Speaker(), busy_policy="mix")
