"""Spectrum agility: sentinel classification, shadow-aware replanning,
and the two-phase migration protocol."""

import numpy as np
import pytest

from repro.audio.fft import Spectrum
from repro.audio.signal import db_to_amplitude
from repro.core import (
    FrequencyPlan,
    FrequencyPlanError,
    InterferenceSentinel,
    LocalPlanParticipant,
    MpArqSender,
    PiBridge,
    PiPlanParticipant,
    SpectrumAgilityManager,
    replan,
    shadowed_slots,
)
from tests.core.rig import build_rig

SAMPLE_RATE = 16_000


def make_spectrum(hot_bands=(), floor_db=18.0, level_db=70.0) -> Spectrum:
    """A synthetic 5 Hz-grid spectrum: flat floor plus hot intervals."""
    frequencies = np.arange(0.0, 2000.0, 5.0)
    magnitudes = np.full(len(frequencies), db_to_amplitude(floor_db))
    for low, high in hot_bands:
        mask = (frequencies >= low) & (frequencies <= high)
        magnitudes[mask] = db_to_amplitude(level_db)
    return Spectrum(frequencies, magnitudes, SAMPLE_RATE, 0.1)


def make_sentinel(plan, **kwargs):
    defaults = dict(persistence_windows=5, on_fraction=0.8, clear_windows=3)
    defaults.update(kwargs)
    return InterferenceSentinel(plan, **defaults)


class TestInterferenceSentinel:
    def test_persistent_interferer_classified(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=600.0)
        sentinel = make_sentinel(plan)
        changes = []
        sentinel.on_change(lambda a, r, t: changes.append((a, r, t)))
        hot = make_spectrum(hot_bands=[(415.0, 445.0)])
        for window in range(4):
            sentinel.observe(hot, window * 0.1)
            assert not sentinel.interfered_slots()
        sentinel.observe(hot, 0.4)
        assert sentinel.interfered_slots() == {1, 2}
        (added, removed, time), = changes
        assert added == {1, 2} and not removed and time == 0.4

    def test_transient_burst_ignored(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=600.0)
        sentinel = make_sentinel(plan)
        hot = make_spectrum(hot_bands=[(415.0, 445.0)])
        cool = make_spectrum()
        for window in range(3):
            sentinel.observe(hot, window * 0.1)
        for window in range(20):
            sentinel.observe(cool, 0.3 + window * 0.1)
        assert not sentinel.interfered_slots()

    def test_chirp_duty_cycle_ignored(self):
        # A legitimate beat: one hot window in four can never reach the
        # 80% on-fraction, no matter how long it repeats.
        plan = FrequencyPlan(low_hz=400.0, high_hz=600.0)
        sentinel = make_sentinel(plan)
        hot = make_spectrum(hot_bands=[(415.0, 425.0)])
        cool = make_spectrum()
        for cycle in range(20):
            sentinel.observe(hot, cycle * 0.4)
            for step in range(3):
                sentinel.observe(cool, cycle * 0.4 + (step + 1) * 0.1)
        assert not sentinel.interfered_slots()

    def test_clears_after_sustained_quiet(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=600.0)
        sentinel = make_sentinel(plan)
        changes = []
        sentinel.on_change(lambda a, r, t: changes.append((a, r)))
        hot = make_spectrum(hot_bands=[(415.0, 425.0)])
        cool = make_spectrum()
        for window in range(5):
            sentinel.observe(hot, window * 0.1)
        assert sentinel.interfered_slots() == {1}
        sentinel.observe(cool, 0.5)
        sentinel.observe(cool, 0.6)
        assert sentinel.interfered_slots() == {1}  # hysteresis holds
        sentinel.observe(cool, 0.7)
        assert not sentinel.interfered_slots()
        assert changes[-1] == (frozenset(), frozenset({1}))

    def test_quiet_band_below_min_level_never_hot(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=600.0)
        sentinel = make_sentinel(plan, margin_db=6.0, min_level_db=40.0)
        # 25 dB above an 8 dB floor: prominent but too quiet to mask.
        faint = make_spectrum(hot_bands=[(415.0, 425.0)],
                              floor_db=8.0, level_db=33.0)
        for window in range(10):
            sentinel.observe(faint, window * 0.1)
        assert not sentinel.interfered_slots()

    def test_disabled_sentinel_observes_nothing(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=600.0)
        sentinel = make_sentinel(plan, enabled=False)
        hot = make_spectrum(hot_bands=[(415.0, 445.0)])
        for window in range(10):
            sentinel.observe(hot, window * 0.1)
        assert sentinel.windows_seen == 0
        assert not sentinel.interfered_slots()


class TestReplan:
    def test_no_interference_no_moves(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=600.0)
        plan.allocate("dev", 3)
        assert replan(plan, ()) == ()

    def test_minimal_diff_moves_only_interfered(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=600.0)
        a = plan.allocate("a", 2)      # slots 0, 1
        plan.allocate("b", 2)          # slots 2, 3
        moves = replan(plan, {1})
        assert len(moves) == 1
        (move,) = moves
        assert move.device == "a"
        assert move.old_hz == a.frequency_for(1)
        assert move.new_slot not in {0, 1, 2, 3}
        assert plan.is_slot_free(move.new_slot)

    def test_targets_prefer_clean_neighbours(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=600.0)
        plan.allocate("a", 2)          # slots 0, 1
        moves = replan(plan, {1})
        (move,) = moves
        # Slot 2 borders the interfered slot 1; slot 3 is the first
        # target with clean neighbours on both sides.
        assert move.new_slot == 3

    def test_shadow_relocates_desensitized_neighbours(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=2000.0)
        plan.allocate("a", 4)          # slots 0..3 (400..460 Hz)
        moves = replan(plan, {1}, shadow_hz=40.0)
        # Slot 1 interfered; slots 0..3 all sit within 40 Hz of it.
        assert {m.old_slot for m in moves} == {0, 1, 2, 3}
        # Targets must clear the shadow too: centre distance > 40 Hz
        # from slot 1 (420 Hz), i.e. slot 4 (480 Hz) onward.
        assert all(m.new_slot >= 4 for m in moves)
        new_slots = [m.new_slot for m in moves]
        assert len(set(new_slots)) == len(new_slots)

    def test_shadowed_slots_radius(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=2000.0)
        shadow = shadowed_slots(plan, {10}, 120.0)
        assert shadow == set(range(4, 17))
        assert shadowed_slots(plan, (), 120.0) == frozenset()
        assert shadowed_slots(plan, {0}, 0.0) == {0}

    def test_exhausted_spectrum_raises(self):
        plan = FrequencyPlan(low_hz=400.0, high_hz=480.0)  # 5 slots
        plan.allocate("a", 4)
        with pytest.raises(FrequencyPlanError):
            replan(plan, {0}, shadow_hz=100.0)


def _jam_slots(sentinel, plan, slots, windows=6):
    low = min(plan.slot_frequency(s) for s in slots) - 5.0
    high = max(plan.slot_frequency(s) for s in slots) + 5.0
    hot = make_spectrum(hot_bands=[(low, high)])
    for window in range(windows):
        sentinel.observe(hot, window * 0.1)


class TestSpectrumAgilityManager:
    def test_local_commit_end_to_end(self):
        rig = build_rig()
        allocation = rig.plan.allocate("dev", 2)   # 400, 420 Hz
        rig.controller.watch(list(allocation.frequencies),
                             on_onset=lambda event: None)
        sentinel = make_sentinel(rig.plan)
        manager = SpectrumAgilityManager(
            rig.controller, rig.plan, sentinel, prepare_timeout=0.5,
        )
        committed = []
        manager.add_participant("dev", LocalPlanParticipant(
            rig.sim, "dev", on_commit=[committed.append]))

        _jam_slots(sentinel, rig.plan, {1})
        assert manager.migrations_committed == 1
        assert rig.plan.epoch == 1
        assert rig.controller.epoch == 1
        (fresh,) = committed
        assert fresh == rig.plan.allocation_of("dev")
        # With the default 120 Hz shadow both original slots moved.
        record = manager.records[0]
        assert {m.old_slot for m in record.moves} == {0, 1}
        watched = set(rig.controller.live_frequencies)
        for move in record.moves:
            assert move.new_hz in watched
            assert abs(move.new_hz - rig.plan.slot_frequency(1)) > 120.0

    def test_rollback_on_deadline_then_retry(self):
        rig = build_rig()
        rig.plan.allocate("dev", 2)
        sentinel = make_sentinel(rig.plan)
        manager = SpectrumAgilityManager(
            rig.controller, rig.plan, sentinel,
            prepare_timeout=0.3, retry_backoff=0.5,
        )
        participant = LocalPlanParticipant(
            rig.sim, "dev", fail_prepare=True)
        manager.add_participant("dev", participant)
        before = set(rig.controller.live_frequencies)

        _jam_slots(sentinel, rig.plan, {1})
        rig.sim.run(0.4)
        assert manager.migrations_aborted == 1
        assert manager.migrations_committed == 0
        assert rig.plan.epoch == 0
        assert "deadline" in manager.records[0].reason
        # Make-before-break watch extension was retracted.
        assert set(rig.controller.live_frequencies) == before

        participant.fail_prepare = False
        rig.sim.run(1.5)      # retry_backoff elapses, retry commits
        assert manager.migrations_committed == 1
        assert rig.plan.epoch == 1

    def test_pi_participant_commits_over_arq(self):
        rig = build_rig()
        allocation = rig.plan.allocate("dev", 2)
        sentinel = make_sentinel(rig.plan)
        manager = SpectrumAgilityManager(
            rig.controller, rig.plan, sentinel, prepare_timeout=0.5,
        )
        bridge = PiBridge(rig.sim, rig.topo.switches["s1"],
                          rig.agents["s1"])
        sender = MpArqSender(bridge)
        rebinds = []
        participant = PiPlanParticipant(
            sender, "dev", allocation, on_commit=[rebinds.append])
        manager.add_participant("dev", participant)

        _jam_slots(sentinel, rig.plan, {1})
        rig.sim.run(1.0)      # PREPARE + ACK + COMMIT ride the wire
        assert manager.migrations_committed == 1
        assert participant.committed_epochs == [1]
        assert bridge.pi.plan_handled.total == 2   # PREPARE + COMMIT
        (fresh,) = rebinds
        assert fresh == participant.allocation
        assert tuple(fresh.frequencies) == tuple(
            rig.plan.allocation_of("dev").frequencies)

    def test_unplannable_interference_counted_not_crashed(self):
        rig = build_rig()
        # Fill the whole grid so no clean slot can absorb a move.
        plan = FrequencyPlan(low_hz=400.0, high_hz=480.0)
        plan.allocate("dev", plan.capacity)
        sentinel = make_sentinel(plan)
        manager = SpectrumAgilityManager(
            rig.controller, plan, sentinel, prepare_timeout=0.5,
        )
        _jam_slots(sentinel, plan, {2})
        assert manager.migrations_committed == 0
        assert manager.migrations_aborted == 0
        assert plan.epoch == 0


class TestMakeBeforeBreakWatch:
    def test_extend_and_retract(self):
        rig = build_rig()
        rig.controller.watch([500.0], on_onset=lambda event: None)
        rig.controller.extend_watch([900.0, 940.0])
        assert {900.0, 940.0} <= set(rig.controller.live_frequencies)
        rig.controller.retract_watch([900.0, 940.0, 500.0])
        watched = set(rig.controller.live_frequencies)
        assert 900.0 not in watched and 940.0 not in watched
        # Subscribed frequencies are not retractable.
        assert 500.0 in watched

    def test_migrate_watch_translates_and_tags_epochs(self):
        rig = build_rig()
        old_hz, new_hz = 500.0, 900.0
        onsets = []
        rig.controller.watch(
            [old_hz],
            on_onset=lambda event: onsets.append(
                (event.time, event.frequency, event.epoch)),
        )
        agent = rig.agents["s1"]
        sim = rig.sim
        sim.schedule_at(0.15, agent.play, old_hz, 0.08, 70.0)
        # Handover: a straggler tone still on the old frequency after
        # the commit re-attributes to the new plan entry, old epoch.
        sim.schedule_at(0.50, rig.controller.migrate_watch,
                        {old_hz: new_hz}, 1, 0.4)
        sim.schedule_at(0.55, agent.play, old_hz, 0.08, 70.0)
        sim.schedule_at(1.20, agent.play, new_hz, 0.08, 70.0)
        # After the handover the vacated frequency is dead air.
        sim.schedule_at(1.60, agent.play, old_hz, 0.08, 70.0)
        rig.controller.start()
        sim.run(2.0)

        assert len(onsets) == 3
        (pre, straggler, post) = onsets
        assert pre[1:] == (old_hz, 0)
        assert straggler[1:] == (new_hz, 0)    # translated, pre-commit epoch
        assert post[1:] == (new_hz, 1)
