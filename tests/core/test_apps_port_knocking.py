"""Application tests for sound-based port knocking (§4)."""

import pytest

from repro.core.apps import KnockConfig, KnockEmitter, PortKnockingApp
from repro.net import Action, ConstantRateSource
from tests.core.rig import build_rig

KNOCK_PORTS = [7001, 7002, 7003]
PROTECTED = 8080


@pytest.fixture
def knocking_rig():
    rig = build_rig("single", default_action=Action.drop())
    alloc = rig.plan.allocate("s1", 3)
    config = KnockConfig(KNOCK_PORTS, PROTECTED, alloc)
    KnockEmitter(rig.topo.switches["s1"], rig.agents["s1"], config)
    app = PortKnockingApp(rig.controller, "s1", "10.0.0.2", config)
    app.set_output_port(rig.topo.port_towards("s1", "h2"))
    rig.controller.start()
    return rig, config, app


def knock(rig, ports, start=1.0, spacing=1.0):
    h1 = rig.topo.hosts["h1"]
    for index, port in enumerate(ports):
        rig.sim.schedule_at(start + index * spacing,
                            lambda p=port: h1.send_to("10.0.0.2", p))


class TestKnockConfig:
    def test_validation(self, knocking_rig):
        rig, config, _app = knocking_rig
        with pytest.raises(ValueError):
            KnockConfig([], PROTECTED, config.allocation)
        with pytest.raises(ValueError):
            KnockConfig([1, 1, 2], PROTECTED, config.allocation)
        with pytest.raises(ValueError):
            KnockConfig([PROTECTED, 2], PROTECTED, config.allocation)
        with pytest.raises(ValueError):
            KnockConfig([1, 2, 3, 4], PROTECTED, config.allocation)

    def test_port_frequency_roundtrip(self, knocking_rig):
        _rig, config, _app = knocking_rig
        for port in KNOCK_PORTS:
            assert config.port_of(config.frequency_of(port)) == port


class TestKnockSequence:
    def test_correct_sequence_opens_port(self, knocking_rig):
        rig, _config, app = knocking_rig
        knock(rig, KNOCK_PORTS)
        rig.sim.run(5.0)
        assert app.is_open
        # Traffic on the protected port now flows.
        rig.topo.hosts["h1"].send_to("10.0.0.2", PROTECTED, size_bytes=500)
        rig.sim.run(6.0)
        assert rig.topo.hosts["h2"].port_bytes.get(PROTECTED) == 500

    def test_wrong_order_keeps_port_closed(self, knocking_rig):
        rig, _config, app = knocking_rig
        knock(rig, [7001, 7003, 7002])
        rig.sim.run(5.0)
        assert not app.is_open
        rig.topo.hosts["h1"].send_to("10.0.0.2", PROTECTED)
        rig.sim.run(6.0)
        assert rig.topo.hosts["h2"].port_bytes.get(PROTECTED) is None

    def test_partial_sequence_keeps_port_closed(self, knocking_rig):
        rig, _config, app = knocking_rig
        knock(rig, [7001, 7002])
        rig.sim.run(5.0)
        assert not app.is_open

    def test_recovery_after_bad_attempt(self, knocking_rig):
        rig, _config, app = knocking_rig
        knock(rig, [7002, 7001, 7003], start=1.0)   # garbage
        knock(rig, KNOCK_PORTS, start=6.0)          # real secret
        rig.sim.run(12.0)
        assert app.is_open

    def test_knock_traffic_itself_is_dropped(self, knocking_rig):
        """The knock packets never reach h2 — only their sounds matter."""
        rig, _config, _app = knocking_rig
        knock(rig, KNOCK_PORTS)
        rig.sim.run(5.0)
        h2 = rig.topo.hosts["h2"]
        assert all(port not in h2.port_bytes for port in KNOCK_PORTS)

    def test_burst_debounced_to_one_knock(self, knocking_rig):
        """A burst of packets to one knock port within the refractory
        window must register as a single knock, not advance the FSM
        multiple times."""
        rig, _config, app = knocking_rig
        h1 = rig.topo.hosts["h1"]
        for offset in (0.0, 0.02, 0.04):
            rig.sim.schedule_at(1.0 + offset,
                                lambda: h1.send_to("10.0.0.2", 7001))
        rig.sim.run(3.0)
        assert len(app.knock_log) == 1

    def test_unconfigured_output_port_raises(self):
        rig = build_rig("single", default_action=Action.drop())
        alloc = rig.plan.allocate("s1", 3)
        config = KnockConfig(KNOCK_PORTS, PROTECTED, alloc)
        KnockEmitter(rig.topo.switches["s1"], rig.agents["s1"], config)
        app = PortKnockingApp(rig.controller, "s1", "10.0.0.2", config)
        rig.controller.start()
        knock(rig, KNOCK_PORTS)
        with pytest.raises(RuntimeError, match="set_output_port"):
            rig.sim.run(5.0)


class TestHonestLimitations:
    def test_interleaved_knockers_confuse_the_fsm(self, knocking_rig):
        """Sound carries no source identity: the controller cannot tell
        two knockers apart, so interleaved independent attempts corrupt
        each other's progress.  (Packet-based port knocking tracks
        per-source state; the acoustic channel fundamentally cannot —
        an honest limitation of the §4 design.)"""
        rig, _config, app = knocking_rig
        h1 = rig.topo.hosts["h1"]
        # Knocker A plays 7001; knocker B (same physical host here, but
        # any host triggers the same switch tones) plays 7001 right
        # after; then A continues 7002, 7003.  The FSM saw
        # 7001,7001,7002,7003 — which, via the restart shortcut, still
        # accepts.  But B interleaving its own *different* step breaks A:
        schedule = [(1.0, 7001), (2.0, 7003), (3.0, 7002), (4.0, 7003)]
        for time, port in schedule:
            rig.sim.schedule_at(time,
                                lambda p=port: h1.send_to("10.0.0.2", p))
        rig.sim.run(6.0)
        assert not app.is_open  # A's valid subsequence was corrupted

    def test_cannot_attribute_knocks_to_a_source(self, knocking_rig):
        """The knock log records ports only — there is no source field
        to record, by construction of the medium."""
        rig, _config, app = knocking_rig
        rig.topo.hosts["h1"].send_to("10.0.0.2", 7001)
        rig.sim.run(2.0)
        assert app.knock_log
        time, port = app.knock_log[0]
        assert isinstance(port, int)  # that's all the air tells us


class TestFigure3Shape:
    def test_bytes_received_zero_until_open_then_tracks(self, knocking_rig):
        """The Figure 3a shape: received stays at zero while sent
        grows; after the third knock, received climbs."""
        rig, _config, app = knocking_rig
        h1, h2 = rig.topo.hosts["h1"], rig.topo.hosts["h2"]
        source = ConstantRateSource(h1, "10.0.0.2", PROTECTED, rate_pps=40,
                                    start=0.0, stop=20.0)
        source.launch()
        knock(rig, KNOCK_PORTS, start=8.0, spacing=1.0)
        rig.sim.run(20.0)
        assert app.opened_at == pytest.approx(10.0, abs=0.5)
        assert h2.bytes_received.total > 0
        # Everything sent before the opening was dropped.
        sent_before_open = 40 * 10.0 * 1000
        assert h2.bytes_received.total < h1.bytes_sent.total
        assert h1.bytes_sent.total - h2.bytes_received.total >= 0.8 * sent_before_open
