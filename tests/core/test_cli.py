"""Tests for the command-line driver."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRun:
    def test_run_fig2a(self, capsys):
        assert main(["run", "fig2a"]) == 0
        out = capsys.readouterr().out
        assert "Fig 2a" in out
        assert "all identified: True" in out

    def test_run_fig2a_with_noise_flag(self, capsys):
        assert main(["run", "fig2a", "--noise", "--switches", "3"]) == 0
        assert "all identified: True" in capsys.readouterr().out

    def test_run_fig2b_sample_count(self, capsys):
        assert main(["run", "fig2b", "--samples", "50"]) == 0
        assert "p90" in capsys.readouterr().out

    def test_run_fig5cd(self, capsys):
        assert main(["run", "fig5cd"]) == 0
        out = capsys.readouterr().out
        assert "500 Hz" in out
        assert "700 Hz" in out

    def test_run_fig4ab_song_flag(self, capsys):
        assert main(["run", "fig4ab", "--song"]) == 0
        out = capsys.readouterr().out
        assert "with song" in out
        assert "detected: True" in out


class TestRender:
    @pytest.mark.parametrize("scene", ["knock", "chirps", "song"])
    def test_render_writes_wav(self, scene, tmp_path, capsys):
        target = tmp_path / f"{scene}.wav"
        assert main(["render", scene, str(target)]) == 0
        assert target.stat().st_size > 10_000
        assert "have a listen" in capsys.readouterr().out

    def test_rendered_knock_contains_the_melody(self, tmp_path):
        """The exported WAV really carries the three knock tones."""
        from repro.audio import FrequencyDetector, read_wav

        target = tmp_path / "knock.wav"
        main(["render", "knock", str(target)])
        signal = read_wav(target)
        # The knock frequencies are the first three plan slots (400,
        # 420, 440 Hz with the default plan).  The WAV is normalized:
        # use a permissive absolute floor.
        detector = FrequencyDetector([400.0, 420.0, 440.0],
                                     min_level_db=-100.0)
        heard = {
            event.frequency
            for event in detector.detect_stream(signal, frame_duration=0.2)
        }
        assert heard == {400.0, 420.0, 440.0}

    def test_unknown_scene_rejected(self):
        with pytest.raises(SystemExit):
            main(["render", "silence", "x.wav"])
