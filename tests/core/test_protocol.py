"""Unit tests for the Music Protocol wire format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.audio import ToneSpec
from repro.core import (
    MusicProtocolError,
    MusicProtocolMessage,
    WIRE_SIZE,
)


class TestValidation:
    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(MusicProtocolError):
            MusicProtocolMessage(0, 0.1)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(MusicProtocolError):
            MusicProtocolMessage(440, 0)

    def test_rejects_overlong_duration(self):
        with pytest.raises(MusicProtocolError):
            MusicProtocolMessage(440, 100.0)

    def test_rejects_negative_intensity(self):
        with pytest.raises(MusicProtocolError):
            MusicProtocolMessage(440, 0.1, -5.0)


class TestWireFormat:
    def test_size(self):
        assert len(MusicProtocolMessage(440, 0.05, 60).marshal()) == WIRE_SIZE

    def test_roundtrip(self):
        message = MusicProtocolMessage(1234.56, 0.25, 72.5)
        decoded = MusicProtocolMessage.unmarshal(message.marshal())
        assert decoded.frequency == pytest.approx(1234.56, abs=0.01)
        assert decoded.duration == pytest.approx(0.25, abs=0.001)
        assert decoded.intensity_db == pytest.approx(72.5, abs=0.01)

    def test_magic_enforced(self):
        wire = bytearray(MusicProtocolMessage(440, 0.1).marshal())
        wire[0] = ord("X")
        wire[-1] = _xor(bytes(wire[:-1]))
        with pytest.raises(MusicProtocolError, match="magic"):
            MusicProtocolMessage.unmarshal(bytes(wire))

    def test_version_enforced(self):
        wire = bytearray(MusicProtocolMessage(440, 0.1).marshal())
        wire[2] = 99
        wire[-1] = _xor(bytes(wire[:-1]))
        with pytest.raises(MusicProtocolError, match="version"):
            MusicProtocolMessage.unmarshal(bytes(wire))

    def test_checksum_detects_corruption(self):
        wire = bytearray(MusicProtocolMessage(440, 0.1).marshal())
        wire[5] ^= 0xFF
        with pytest.raises(MusicProtocolError, match="checksum"):
            MusicProtocolMessage.unmarshal(bytes(wire))

    def test_wrong_length_rejected(self):
        with pytest.raises(MusicProtocolError, match="bytes"):
            MusicProtocolMessage.unmarshal(b"short")

    def test_zero_fields_rejected_on_decode(self):
        wire = bytearray(MusicProtocolMessage(440, 0.1).marshal())
        wire[3:7] = (0).to_bytes(4, "big")  # frequency = 0
        wire[-1] = _xor(bytes(wire[:-1]))
        with pytest.raises(MusicProtocolError, match="frequency"):
            MusicProtocolMessage.unmarshal(bytes(wire))

    @given(
        frequency=st.floats(min_value=0.01, max_value=20000.0),
        duration=st.floats(min_value=0.001, max_value=60.0),
        intensity=st.floats(min_value=0.0, max_value=120.0),
    )
    def test_roundtrip_property(self, frequency, duration, intensity):
        """Quantization error bounded by the wire resolution."""
        message = MusicProtocolMessage(frequency, duration, intensity)
        decoded = MusicProtocolMessage.unmarshal(message.marshal())
        assert abs(decoded.frequency - frequency) <= 0.005 + 1e-9
        assert abs(decoded.duration - duration) <= 0.0005 + 1e-9
        assert abs(decoded.intensity_db - intensity) <= 0.005 + 1e-9


class TestDecodeHardening:
    """A receiver parsing untrusted frames must only ever see
    MusicProtocolError — never a bare struct.error or ValueError."""

    def test_decode_is_unmarshal(self):
        message = MusicProtocolMessage(440, 0.1)
        assert MusicProtocolMessage.decode(message.marshal()) == (
            MusicProtocolMessage.unmarshal(message.marshal())
        )

    def test_non_bytes_rejected(self):
        for junk in ("MPstring12ch", 12, None, [1, 2, 3]):
            with pytest.raises(MusicProtocolError):
                MusicProtocolMessage.decode(junk)

    def test_bytearray_and_memoryview_accepted(self):
        wire = MusicProtocolMessage(440, 0.1).marshal()
        assert MusicProtocolMessage.decode(bytearray(wire)) == (
            MusicProtocolMessage.decode(memoryview(wire))
        )

    def test_every_truncation_rejected(self):
        wire = MusicProtocolMessage(440, 0.1).marshal()
        for length in range(WIRE_SIZE):
            with pytest.raises(MusicProtocolError):
                MusicProtocolMessage.decode(wire[:length])

    def test_every_single_bit_flip_rejected(self):
        """The XOR checksum catches all 96 single-bit corruptions."""
        wire = MusicProtocolMessage(1000.0, 0.05, 70.0).marshal()
        for bit in range(len(wire) * 8):
            flipped = bytearray(wire)
            flipped[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(MusicProtocolError):
                MusicProtocolMessage.decode(bytes(flipped))

    @given(blob=st.binary(min_size=0, max_size=3 * WIRE_SIZE))
    def test_random_bytes_never_leak_bare_errors(self, blob):
        try:
            MusicProtocolMessage.decode(blob)
        except MusicProtocolError:
            pass  # the only permitted failure mode

    @given(
        frequency=st.floats(min_value=0.01, max_value=20000.0),
        duration=st.floats(min_value=0.001, max_value=60.0),
        intensity=st.floats(min_value=0.0, max_value=120.0),
        bit=st.integers(min_value=0, max_value=WIRE_SIZE * 8 - 1),
    )
    def test_fuzzed_bit_flips_on_valid_frames(self, frequency, duration,
                                              intensity, bit):
        """Round-trip survives marshalling; any one flipped bit is
        rejected, whatever the payload underneath."""
        wire = MusicProtocolMessage(frequency, duration, intensity).marshal()
        MusicProtocolMessage.decode(wire)  # pristine frame decodes
        flipped = bytearray(wire)
        flipped[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(MusicProtocolError):
            MusicProtocolMessage.decode(bytes(flipped))


class TestToneSpecBridge:
    def test_to_tone_spec(self):
        spec = MusicProtocolMessage(880, 0.05, 65).to_tone_spec()
        assert spec == ToneSpec(880, 0.05, 65)

    def test_from_tone_spec_roundtrip(self):
        spec = ToneSpec(600, 0.3, 70)
        message = MusicProtocolMessage.from_tone_spec(spec)
        assert message.to_tone_spec() == spec


def _xor(data: bytes) -> int:
    value = 0
    for byte in data:
        value ^= byte
    return value
