"""Unit tests for the deterministic fault-injection subsystem."""

import numpy as np
import pytest

from repro.audio import AcousticChannel, Microphone, Position, Speaker
from repro.audio.synth import ToneSpec
from repro.core import MicrophoneArray, MusicAgent, PiBridge
from repro.core import MusicProtocolMessage
from repro.faults import FaultHarness, seeded_rng
from repro.net.sim import Simulator
from repro.net.switch import Switch

TONE = ToneSpec(1000.0, 0.08, 70.0)
SPEAKER_AT = Position(1.0, 0.0, 0.0)
LISTENER = Position()


def _rms(signal) -> float:
    return float(np.sqrt(np.mean(signal.samples**2)))


class TestSeededRng:
    def test_deterministic_per_label(self):
        assert (seeded_rng(7, "a").random(4) == seeded_rng(7, "a").random(4)).all()

    def test_labels_independent(self):
        assert not (
            seeded_rng(7, "a").random(4) == seeded_rng(7, "b").random(4)
        ).all()

    def test_seeds_independent(self):
        assert not (
            seeded_rng(7, "a").random(4) == seeded_rng(8, "a").random(4)
        ).all()


class TestDisabledIsFree:
    """With no faults scheduled the plant must be bit-identical."""

    def _render(self, attach_harness: bool):
        sim = Simulator()
        channel = AcousticChannel()
        channel.play_tone(0.1, TONE, SPEAKER_AT)
        if attach_harness:
            harness = FaultHarness(sim, seed=3)
            harness.acoustic(channel)
        return channel.render_at(LISTENER, 0.0, 0.3)

    def test_idle_injector_is_bit_identical(self):
        baseline = self._render(attach_harness=False)
        with_model = self._render(attach_harness=True)
        assert (baseline.samples == with_model.samples).all()

    def test_mic_without_faults_is_bit_identical(self):
        channel = AcousticChannel()
        channel.play_tone(0.1, TONE, SPEAKER_AT)
        baseline = Microphone(LISTENER, seed=5).record(channel, 0.0, 0.3)
        mic = Microphone(LISTENER, seed=5)
        FaultHarness(Simulator(), seed=3).microphone(mic)
        assert (mic.record(channel, 0.0, 0.3).samples == baseline.samples).all()


class TestSpeakerDropout:
    def _rig(self):
        sim = Simulator()
        channel = AcousticChannel()
        harness = FaultHarness(sim, seed=3)
        air = harness.acoustic(channel)
        return sim, channel, harness, air

    def test_render_during_outage_is_silent(self):
        sim, channel, harness, air = self._rig()
        channel.play_tone(0.1, TONE, SPEAKER_AT)
        air.drop_speaker(SPEAKER_AT, 0.0, 0.5)
        assert _rms(channel.render_at(LISTENER, 0.0, 0.3)) < 1e-6

    def test_tone_outside_outage_unaffected(self):
        sim, channel, harness, air = self._rig()
        channel.play_tone(0.1, TONE, SPEAKER_AT)
        air.drop_speaker(SPEAKER_AT, 0.5, 1.0)
        assert _rms(channel.render_at(LISTENER, 0.0, 0.3)) > 1e-3

    def test_emission_overlap_semantics(self):
        """A tone straddling the outage edge is fully muted."""
        sim, channel, harness, air = self._rig()
        channel.play_tone(0.1, TONE, SPEAKER_AT)  # emission [0.1, 0.18)
        air.drop_speaker(SPEAKER_AT, 0.15, 0.5)
        assert _rms(channel.render_at(LISTENER, 0.0, 0.3)) < 1e-6

    def test_other_speakers_unaffected(self):
        sim, channel, harness, air = self._rig()
        other = Position(0.0, 1.0, 0.0)
        channel.play_tone(0.1, TONE, SPEAKER_AT)
        channel.play_tone(0.1, TONE, other)
        air.drop_speaker(SPEAKER_AT, 0.0, 0.5)
        assert _rms(channel.render_at(LISTENER, 0.0, 0.3)) > 1e-3

    def test_cache_invalidated_by_fault_state_change(self):
        """A memoized window must be re-rendered — not served stale —
        once a fault covering it is scheduled."""
        sim, channel, harness, air = self._rig()
        channel.play_tone(1.1, TONE, SPEAKER_AT)
        loud = channel.render_at(LISTENER, 1.0, 1.3)
        cached = channel.render_at(LISTENER, 1.0, 1.3)  # memo hit
        assert (loud.samples == cached.samples).all()
        assert _rms(loud) > 1e-3
        air.drop_speaker(SPEAKER_AT, 1.0, 2.0)  # must evict the memo
        muted = channel.render_at(LISTENER, 1.0, 1.3)
        assert _rms(muted) < 1e-6

    def test_reference_path_equivalent_under_faults(self):
        sim, channel, harness, air = self._rig()
        channel.play_tone(0.05, TONE, SPEAKER_AT)
        channel.play_tone(0.1, ToneSpec(1500.0, 0.08, 68.0), SPEAKER_AT)
        air.drop_speaker(SPEAKER_AT, 0.0, 0.08)
        air.degrade_speaker(SPEAKER_AT, 0.0, 1.0, loss_db=6.0)
        fast = channel.render_at(LISTENER, 0.0, 0.3)
        reference = channel.render_at_reference(LISTENER, 0.0, 0.3)
        np.testing.assert_allclose(fast.samples, reference.samples,
                                   atol=1e-9)

    def test_counters(self):
        sim, channel, harness, air = self._rig()
        channel.play_tone(0.1, TONE, SPEAKER_AT)
        air.drop_speaker(SPEAKER_AT, 0.0, 0.5)
        channel.render_at(LISTENER, 0.0, 0.3)
        summary = harness.summary()
        assert summary["speaker_dropouts"] == 1
        assert summary["tones_muted"] >= 1

    def test_validation(self):
        sim, channel, harness, air = self._rig()
        with pytest.raises(ValueError):
            air.drop_speaker(SPEAKER_AT, 1.0, 1.0)
        with pytest.raises(ValueError):
            air.degrade_speaker(SPEAKER_AT, 0.0, 1.0, loss_db=-3.0)
        with pytest.raises(ValueError):
            air.random_dropouts(SPEAKER_AT, 0.0, 10.0, rate=1.0)


class TestSpeakerDegradation:
    def test_attenuates_by_loss_db(self):
        sim = Simulator()
        channel = AcousticChannel()
        channel.play_tone(0.1, TONE, SPEAKER_AT)
        clean = channel.render_at(LISTENER, 0.0, 0.3)
        air = FaultHarness(sim, seed=3).acoustic(channel)
        air.degrade_speaker(SPEAKER_AT, 0.0, 1.0, loss_db=20.0)
        degraded = channel.render_at(LISTENER, 0.0, 0.3)
        ratio = _rms(degraded) / _rms(clean)
        assert ratio == pytest.approx(10 ** (-20.0 / 20.0), rel=1e-3)

    def test_overlapping_degradations_stack(self):
        sim = Simulator()
        channel = AcousticChannel()
        channel.play_tone(0.1, TONE, SPEAKER_AT)
        clean = channel.render_at(LISTENER, 0.0, 0.3)
        air = FaultHarness(sim, seed=3).acoustic(channel)
        air.degrade_speaker(SPEAKER_AT, 0.0, 1.0, loss_db=6.0)
        air.degrade_speaker(SPEAKER_AT, 0.0, 1.0, loss_db=6.0)
        degraded = channel.render_at(LISTENER, 0.0, 0.3)
        ratio = _rms(degraded) / _rms(clean)
        assert ratio == pytest.approx(10 ** (-12.0 / 20.0), rel=1e-3)


class TestClockSkew:
    def test_emission_shifted(self):
        sim = Simulator()
        channel = AcousticChannel()
        air = FaultHarness(sim, seed=3).acoustic(channel)
        air.set_clock_skew(SPEAKER_AT, 0.25)
        tone = channel.play_tone(0.1, TONE, SPEAKER_AT)
        assert tone.start_time == pytest.approx(0.35)

    def test_negative_skew_clamped_at_zero(self):
        sim = Simulator()
        channel = AcousticChannel()
        air = FaultHarness(sim, seed=3).acoustic(channel)
        air.set_clock_skew(SPEAKER_AT, -0.5)
        tone = channel.play_tone(0.1, TONE, SPEAKER_AT)
        assert tone.start_time == 0.0


class TestRandomDropouts:
    def test_deterministic(self):
        def windows():
            sim = Simulator()
            channel = AcousticChannel()
            air = FaultHarness(sim, seed=9).acoustic(channel)
            return air.random_dropouts(SPEAKER_AT, 0.0, 60.0, rate=0.3,
                                       label="x")

        assert windows() == windows()

    def test_duty_cycle_near_rate(self):
        sim = Simulator()
        channel = AcousticChannel()
        air = FaultHarness(sim, seed=9).acoustic(channel)
        spans = air.random_dropouts(SPEAKER_AT, 0.0, 600.0, rate=0.3,
                                    label="duty")
        down = sum(end - start for start, end in spans)
        assert down / 600.0 == pytest.approx(0.3, abs=0.1)

    def test_zero_rate_schedules_nothing(self):
        sim = Simulator()
        channel = AcousticChannel()
        air = FaultHarness(sim, seed=9).acoustic(channel)
        assert air.random_dropouts(SPEAKER_AT, 0.0, 60.0, rate=0.0) == []


class TestMicrophoneFaults:
    def _rig(self):
        sim = Simulator()
        channel = AcousticChannel()
        channel.play_tone(0.1, TONE, SPEAKER_AT)
        mic = Microphone(LISTENER, seed=5)
        faults = FaultHarness(sim, seed=3).microphone(mic)
        return channel, mic, faults

    def test_failed_mic_records_silence(self):
        channel, mic, faults = self._rig()
        faults.fail(0.0, 1.0)
        assert _rms(mic.record(channel, 0.0, 0.3)) == 0.0

    def test_clipping_limits_amplitude(self):
        channel, mic, faults = self._rig()
        clean = mic.record(channel, 0.0, 0.3)
        faults.clip(0.0, 1.0, clip_level_db=40.0)
        clipped = mic.record(channel, 0.0, 0.3)
        assert np.abs(clipped.samples).max() < np.abs(clean.samples).max()

    def test_capture_outside_window_unaffected(self):
        channel, mic, faults = self._rig()
        faults.fail(1.0, 2.0)
        assert _rms(mic.record(channel, 0.0, 0.3)) > 1e-3


class TestArrayWithDeadMics:
    def _array(self, fail_stations):
        sim = Simulator()
        channel = AcousticChannel()
        harness = FaultHarness(sim, seed=3)
        stations = {
            "near": Microphone(Position(), seed=1),
            "far": Microphone(Position(3.0, 0.0, 0.0), seed=2),
        }
        for name in fail_stations:
            harness.microphone(stations[name]).fail(0.0, 100.0)
        agent = MusicAgent(sim, channel, Speaker(SPEAKER_AT))
        array = MicrophoneArray(sim, channel, stations)
        heard = []
        array.watch([TONE.frequency], on_detection=heard.append)
        array.start()
        sim.every(0.5, lambda: agent.play(TONE.frequency, TONE.duration,
                                          TONE.level_db), start=0.25)
        sim.run(3.0)
        return array, heard

    def test_zero_working_mics_yields_no_detections(self):
        array, heard = self._array(fail_stations=("near", "far"))
        assert heard == []
        assert array.windows_processed > 0  # kept polling, no crash

    def test_one_dead_station_falls_back_to_the_other(self):
        array, heard = self._array(fail_stations=("near",))
        assert heard
        assert {d.station for d in heard} == {"far"}


class TestMpLinkFaults:
    def _run(self, loss_rate, corrupt_rate, frames=40, seed=3):
        sim = Simulator()
        channel = AcousticChannel()
        agent = MusicAgent(sim, channel, Speaker(SPEAKER_AT), name="s1")
        switch = Switch(sim, "s1")
        bridge = PiBridge(sim, switch, agent)
        harness = FaultHarness(sim, seed=seed)
        harness.mp_link(switch.ports[bridge.pi_port], loss_rate=loss_rate,
                        corrupt_rate=corrupt_rate, label="t")
        message = MusicProtocolMessage(1000.0, 0.05, 70.0)
        for index in range(frames):
            sim.schedule_at(index * 0.2, bridge.send_mp, message)
        sim.run(frames * 0.2 + 1.0)
        return bridge, harness.summary()

    def test_loss_drops_frames(self):
        bridge, summary = self._run(loss_rate=0.3, corrupt_rate=0.0)
        assert summary["mp_frames_lost"] > 0
        assert (bridge.pi.mp_played.total
                == 40 - summary["mp_frames_lost"])

    def test_corruption_rejected_by_checksum(self):
        bridge, summary = self._run(loss_rate=0.0, corrupt_rate=0.5)
        assert summary["mp_frames_corrupted"] > 0
        assert bridge.pi.mp_rejected.total == summary["mp_frames_corrupted"]
        assert (bridge.pi.mp_played.total
                == 40 - summary["mp_frames_corrupted"])

    def test_loss_stream_is_seed_deterministic(self):
        first, _ = self._run(loss_rate=0.3, corrupt_rate=0.0)
        second, _ = self._run(loss_rate=0.3, corrupt_rate=0.0)
        assert first.pi.mp_played.total == second.pi.mp_played.total

    def test_rate_validation(self):
        sim = Simulator()
        channel = AcousticChannel()
        agent = MusicAgent(sim, channel, Speaker(SPEAKER_AT), name="s1")
        switch = Switch(sim, "s1")
        bridge = PiBridge(sim, switch, agent)
        with pytest.raises(ValueError):
            FaultHarness(sim).mp_link(switch.ports[bridge.pi_port],
                                      loss_rate=1.5)


class TestPiFaults:
    def test_crash_window_drops_then_recovers(self):
        sim = Simulator()
        channel = AcousticChannel()
        agent = MusicAgent(sim, channel, Speaker(SPEAKER_AT), name="s1")
        switch = Switch(sim, "s1")
        bridge = PiBridge(sim, switch, agent)
        harness = FaultHarness(sim, seed=3)
        harness.pi(bridge.pi).crash(1.0, 2.0)
        message = MusicProtocolMessage(1000.0, 0.05, 70.0)
        for index in range(30):
            sim.schedule_at(index * 0.1, bridge.send_mp, message)
        sim.run(4.0)
        assert bridge.pi.mp_dropped_crashed.total > 0
        assert bridge.pi.mp_played.total == 30 - bridge.pi.mp_dropped_crashed.total
        assert not bridge.pi.crashed
        assert harness.summary()["pi_crashes"] == 1
