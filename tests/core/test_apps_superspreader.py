"""Tests for the chord-based DDoS / superspreader detector (§5 open
problem)."""

import pytest

from repro.audio import Position
from repro.core.apps import (
    AddressToneMapper,
    ChordEmitter,
    SuperspreaderDetectorApp,
)
from repro.net import ConstantRateSource, FanInSource, FanOutSource
from repro.experiments.rigs import build_testbed


def assemble(k=5, buckets=12):
    testbed = build_testbed("single")
    src_block = testbed.plan.allocate("s1/src", buckets)
    dst_block = testbed.plan.allocate("s1/dst", buckets)
    mapper = AddressToneMapper(src_block, dst_block)
    second_agent = testbed.extra_agent("s1-chord", Position(0.0, -0.9, 0.0))
    ChordEmitter(testbed.topo.switches["s1"], testbed.agents["s1"],
                 second_agent, mapper)
    app = SuperspreaderDetectorApp(testbed.controller, mapper, k=k)
    testbed.controller.start()
    return testbed, mapper, app


class TestMapper:
    def test_blocks_must_be_disjoint(self):
        testbed = build_testbed("single")
        block = testbed.plan.allocate("only", 4)
        with pytest.raises(ValueError):
            AddressToneMapper(block, block)

    def test_deterministic_buckets(self):
        testbed = build_testbed("single")
        mapper = AddressToneMapper(testbed.plan.allocate("a", 8),
                                   testbed.plan.allocate("b", 8))
        assert mapper.src_frequency("10.0.0.1") == mapper.src_frequency("10.0.0.1")
        assert mapper.dst_frequency("10.0.0.9") in mapper.dst_block.frequencies


class TestChordEmitter:
    def test_needs_two_speakers(self):
        testbed = build_testbed("single")
        mapper = AddressToneMapper(testbed.plan.allocate("a", 4),
                                   testbed.plan.allocate("b", 4))
        with pytest.raises(ValueError, match="two"):
            ChordEmitter(testbed.topo.switches["s1"], testbed.agents["s1"],
                         testbed.agents["s1"], mapper)

    def test_plays_chords(self):
        testbed, _mapper, _app = assemble()
        testbed.topo.hosts["h1"].send_to("10.0.0.2", 80)
        testbed.sim.run(0.5)
        # Two tones scheduled at the same instant: a chord.
        tones = testbed.channel.scheduled_tones
        assert len(tones) == 2
        assert tones[0].start_time == tones[1].start_time


class TestSuperspreaderDetection:
    def test_fanout_source_flagged(self):
        testbed, _mapper, app = assemble()
        attack = FanOutSource(testbed.topo.hosts["h1"],
                              [f"10.1.0.{i}" for i in range(15)],
                              interval=0.12, rounds=4)
        attack.launch()
        testbed.sim.run(9.0)
        assert app.superspreader_detected
        assert app.is_source_flagged(testbed.topo.hosts["h1"].ip)

    def test_ddos_victim_flagged(self):
        testbed, _mapper, app = assemble()
        attack = FanInSource(testbed.topo.hosts["h1"],
                             [f"10.2.0.{i}" for i in range(15)],
                             "10.0.0.2", interval=0.12, rounds=4)
        attack.launch()
        testbed.sim.run(9.0)
        assert app.ddos_detected
        assert app.is_victim_flagged("10.0.0.2")

    def test_benign_traffic_not_flagged(self):
        """One host talking steadily to two services: no alerts."""
        testbed, _mapper, app = assemble()
        for port in (80, 443):
            source = ConstantRateSource(
                testbed.topo.hosts["h1"], "10.0.0.2", port, rate_pps=15,
                src_port=30_000 + port,
            )
            source.launch()
        testbed.sim.run(8.0)
        assert not app.superspreader_detected
        assert not app.ddos_detected

    def test_k_threshold_respected(self):
        """Contacting exactly k distinct destinations does not alert;
        the rule is strict inequality."""
        testbed, mapper, app = assemble(k=14)
        attack = FanOutSource(testbed.topo.hosts["h1"],
                              [f"10.1.0.{i}" for i in range(10)],
                              interval=0.12, rounds=4)
        attack.launch()
        testbed.sim.run(8.0)
        # 10 destinations can alias to at most 10 <= 14 dst buckets.
        assert not app.superspreader_detected

    def test_validation(self):
        testbed = build_testbed("single")
        mapper = AddressToneMapper(testbed.plan.allocate("a", 4),
                                   testbed.plan.allocate("b", 4))
        with pytest.raises(ValueError):
            SuperspreaderDetectorApp(testbed.controller, mapper, k=0)


class TestTrafficGenerators:
    def test_fanout_covers_all_destinations(self):
        testbed = build_testbed("single")
        source = FanOutSource(testbed.topo.hosts["h1"],
                              [f"10.1.0.{i}" for i in range(6)],
                              interval=0.05, rounds=2)
        source.launch()
        testbed.sim.run(2.0)
        assert source.packets_emitted == 12

    def test_fanin_spoofs_sources(self):
        testbed = build_testbed("single")
        seen_sources = set()
        testbed.topo.switches["s1"].on_receive(
            lambda packet, _port: seen_sources.add(packet.flow.src_ip)
        )
        source = FanInSource(testbed.topo.hosts["h1"],
                             [f"10.2.0.{i}" for i in range(6)],
                             "10.0.0.2", interval=0.05)
        source.launch()
        testbed.sim.run(2.0)
        assert len(seen_sources) == 6

    def test_validation(self):
        testbed = build_testbed("single")
        host = testbed.topo.hosts["h1"]
        with pytest.raises(ValueError):
            FanOutSource(host, [], interval=0.1)
        with pytest.raises(ValueError):
            FanInSource(host, ["10.0.0.9"], "10.0.0.2", interval=0)


class TestNoDedupSets:
    """Regression: spreader/victim alerts were deduped through
    unbounded ``_alerted_*`` sets scanned per interval; the close-once
    structure makes them impossible to duplicate without any set."""

    def _bus_app(self):
        from repro.core.apps import AddressToneMapper
        from repro.core.frequency_plan import Allocation
        from repro.core.telemetry import ToneEventBus

        bus = ToneEventBus(window=0.1)
        src_block = Allocation("src", tuple(
            1000.0 + 20.0 * i for i in range(8)))
        dst_block = Allocation("dst", tuple(
            2000.0 + 20.0 * i for i in range(8)))
        mapper = AddressToneMapper(src_block, dst_block)
        app = SuperspreaderDetectorApp(bus, mapper, interval=1.0, k=5)
        return bus, src_block, dst_block, app

    def test_one_spreader_alert_per_hot_interval(self):
        bus, src_block, dst_block, app = self._bus_app()
        intervals = 15
        for interval in range(intervals):
            # One source tone co-heard with 7 distinct dst tones (> k=5).
            bus.push(src_block.frequency_for(0), interval + 0.01)
            for index in range(7):
                bus.push(dst_block.frequency_for(index), interval + 0.01)
            bus.dispatch()
        # Push a quiet final window so the last hot interval closes.
        bus.push(src_block.frequency_for(1), float(intervals) + 0.01)
        bus.dispatch()
        starts = [alert.interval_start for alert in app.spreader_alerts]
        assert starts == [float(i) for i in range(intervals)]

    def test_dedup_sets_are_gone(self):
        _bus, _src, _dst, app = self._bus_app()
        assert not hasattr(app, "_alerted_spreaders")
        assert not hasattr(app, "_alerted_victims")
