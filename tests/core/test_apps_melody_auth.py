"""Tests for timed melody authentication."""

import pytest

from repro.core.apps.melody_auth import Melody, MelodyAuthenticator
from repro.experiments.rigs import build_testbed


def assemble(notes=(0, 2, 1), max_gap=2.0):
    testbed = build_testbed("single")
    allocation = testbed.plan.allocate("s1", 4)
    melody = Melody(notes=tuple(notes), allocation=allocation,
                    max_gap=max_gap)
    accepted_times = []
    auth = MelodyAuthenticator(testbed.controller, melody,
                               on_accept=accepted_times.append)
    testbed.controller.start()
    return testbed, melody, auth, accepted_times


def play(testbed, melody, schedule):
    """Schedule (time, note) pairs on the switch's agent."""
    agent = testbed.agents["s1"]
    for time, note in schedule:
        testbed.sim.schedule_at(
            time,
            lambda n=note: agent.play(melody.frequency_of(n), 0.12, 70.0),
        )


class TestMelody:
    def test_validation(self):
        testbed = build_testbed("single")
        allocation = testbed.plan.allocate("s1", 4)
        with pytest.raises(ValueError):
            Melody(notes=(0,), allocation=allocation)
        with pytest.raises(ValueError):
            Melody(notes=(0, 9), allocation=allocation)
        with pytest.raises(ValueError):
            Melody(notes=(0, 1), allocation=allocation, max_gap=0)

    def test_repeated_notes_allowed(self):
        testbed = build_testbed("single")
        allocation = testbed.plan.allocate("s1", 4)
        melody = Melody(notes=(0, 0, 1), allocation=allocation)
        assert len(melody.frequencies()) == 2


class TestAuthentication:
    def test_correct_melody_in_tempo_accepts(self):
        testbed, melody, auth, accepted = assemble()
        play(testbed, melody, [(1.0, 0), (2.0, 2), (3.0, 1)])
        testbed.sim.run(5.0)
        assert auth.accepted
        assert len(accepted) == 1
        assert accepted[0] == pytest.approx(3.0, abs=0.2)

    def test_wrong_order_rejected(self):
        testbed, melody, auth, _accepted = assemble()
        play(testbed, melody, [(1.0, 2), (2.0, 0), (3.0, 1)])
        testbed.sim.run(5.0)
        assert not auth.accepted

    def test_too_slow_melody_times_out(self):
        """Right notes, wrong rhythm: gaps beyond max_gap reset the
        attempt — the anti-brute-force property."""
        testbed, melody, auth, _accepted = assemble(max_gap=1.5)
        play(testbed, melody, [(1.0, 0), (2.0, 2), (6.0, 1)])  # 4 s gap
        testbed.sim.run(8.0)
        assert not auth.accepted
        assert auth.timeouts == 1

    def test_retry_after_timeout_succeeds(self):
        testbed, melody, auth, accepted = assemble(max_gap=1.5)
        play(testbed, melody, [(1.0, 0), (5.0, 0), (6.0, 2), (7.0, 1)])
        testbed.sim.run(9.0)
        assert auth.accepted
        assert auth.timeouts == 1

    def test_latches_until_reset(self):
        testbed, melody, auth, accepted = assemble()
        play(testbed, melody, [(1.0, 0), (2.0, 2), (3.0, 1),
                               (4.0, 0), (5.0, 2), (6.0, 1)])
        testbed.sim.run(8.0)
        assert len(accepted) == 1  # second rendition ignored while latched

    def test_reset_rearms(self):
        testbed, melody, auth, accepted = assemble()
        play(testbed, melody, [(1.0, 0), (2.0, 2), (3.0, 1)])
        testbed.sim.run(4.0)
        assert auth.accepted
        auth.reset()
        assert not auth.accepted
        play(testbed, melody, [(5.0, 0), (6.0, 2), (7.0, 1)])
        testbed.sim.run(9.0)
        assert auth.accepted
        assert len(accepted) == 2
