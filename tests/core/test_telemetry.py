"""Unit tests for the tone-count telemetry engine."""

import pytest

from repro.audio.detector import DetectionEvent
from repro.core import ToneCounter


def event(frequency: float, time: float) -> DetectionEvent:
    return DetectionEvent(frequency, frequency, 60.0, time)


class TestIntervals:
    def test_counts_within_interval(self):
        counter = ToneCounter(interval=1.0)
        for t in (0.1, 0.3, 0.5):
            counter.observe(event(500, t))
        counter.observe(event(600, 0.7))
        counter.flush(2.0)
        assert len(counter.closed) >= 1
        first = counter.closed[0]
        assert first.counts == {500: 3, 600: 1}
        assert first.total == 4
        assert first.distinct == 2

    def test_interval_boundaries_aligned(self):
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.observe(event(500, 1.5))
        counter.flush(3.0)
        starts = [interval.start for interval in counter.closed]
        assert starts == [0.0, 1.0, 2.0]

    def test_empty_intervals_created_by_flush(self):
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.flush(4.0)
        assert len(counter.closed) == 4
        assert counter.closed[1].total == 0

    def test_flush_before_any_event_is_noop(self):
        counter = ToneCounter()
        counter.flush(10.0)
        assert counter.closed == []

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ToneCounter(interval=0)


class TestRules:
    def test_frequencies_over_threshold(self):
        counter = ToneCounter(interval=1.0)
        for index in range(8):
            counter.observe(event(500, 0.1 + index * 0.1))
        counter.observe(event(600, 0.5))
        counter.flush(2.0)
        hits = counter.frequencies_over(5)
        assert hits == [(0.0, 500)]

    def test_distinct_over_threshold(self):
        counter = ToneCounter(interval=1.0)
        for index in range(7):
            counter.observe(event(500 + 20 * index, 0.1 + index * 0.1))
        counter.flush(2.0)
        scans = counter.intervals_with_distinct_over(5)
        assert len(scans) == 1
        assert scans[0].distinct == 7

    def test_count_history(self):
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.observe(event(500, 1.2))
        counter.observe(event(500, 1.4))
        counter.flush(3.0)
        history = counter.count_history(500)
        assert history.values == [1, 2, 0]

    def test_totals_series(self):
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.observe(event(600, 0.6))
        counter.flush(2.0)
        assert counter.totals.values == [2, 0]
