"""Unit tests for the tone-count telemetry engine."""

import pytest

from repro.audio.detector import DetectionEvent
from repro.core import ToneCounter


def event(frequency: float, time: float) -> DetectionEvent:
    return DetectionEvent(frequency, frequency, 60.0, time)


class TestIntervals:
    def test_counts_within_interval(self):
        counter = ToneCounter(interval=1.0)
        for t in (0.1, 0.3, 0.5):
            counter.observe(event(500, t))
        counter.observe(event(600, 0.7))
        counter.flush(2.0)
        assert len(counter.closed) >= 1
        first = counter.closed[0]
        assert first.counts == {500: 3, 600: 1}
        assert first.total == 4
        assert first.distinct == 2

    def test_interval_boundaries_aligned(self):
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.observe(event(500, 1.5))
        counter.flush(3.0)
        starts = [interval.start for interval in counter.closed]
        assert starts == [0.0, 1.0]
        assert all(i.end == i.start + 1.0 for i in counter.closed)

    def test_flush_skips_empty_intervals(self):
        # Skip-ahead semantics: silence never materializes empty
        # IntervalCounts; only the interval that counted something
        # closes, no matter how far flush jumps.
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.flush(4.0)
        assert len(counter.closed) == 1
        assert counter.closed[0].start == 0.0
        assert counter.closed[0].total == 1

    def test_sparse_stream_jumps_gap_in_one_step(self):
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.observe(event(500, 3600.5))  # an hour of silence between
        counter.flush(3602.0)
        assert [i.start for i in counter.closed] == [0.0, 3600.0]

    def test_flush_close_partial_counts_tail(self):
        # Without close_partial, onsets in the final partial interval
        # were lost (the tail-loss bug); with it they close as
        # [start, now).
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.observe(event(500, 2.3))
        counter.flush(2.6, close_partial=True)
        assert [(i.start, i.end) for i in counter.closed] == \
            [(0.0, 1.0), (2.0, 2.6)]
        assert counter.closed[-1].counts == {500: 1}

    def test_close_partial_then_new_observation_starts_fresh(self):
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.2))
        counter.flush(0.5, close_partial=True)
        counter.observe(event(600, 3.4))
        counter.flush(4.0)
        assert counter.closed[-1].start == 3.0
        assert counter.closed[-1].counts == {600: 1}

    def test_close_partial_noop_when_tail_is_empty(self):
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.flush(2.0, close_partial=True)
        assert len(counter.closed) == 1

    def test_flush_before_any_event_is_noop(self):
        counter = ToneCounter()
        counter.flush(10.0)
        assert counter.closed == []
        counter.flush(10.0, close_partial=True)
        assert counter.closed == []

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ToneCounter(interval=0)


class TestRules:
    def test_frequencies_over_threshold(self):
        counter = ToneCounter(interval=1.0)
        for index in range(8):
            counter.observe(event(500, 0.1 + index * 0.1))
        counter.observe(event(600, 0.5))
        counter.flush(2.0)
        hits = counter.frequencies_over(5)
        assert hits == [(0.0, 500)]

    def test_distinct_over_threshold(self):
        counter = ToneCounter(interval=1.0)
        for index in range(7):
            counter.observe(event(500 + 20 * index, 0.1 + index * 0.1))
        counter.flush(2.0)
        scans = counter.intervals_with_distinct_over(5)
        assert len(scans) == 1
        assert scans[0].distinct == 7

    def test_count_history(self):
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.observe(event(500, 1.2))
        counter.observe(event(500, 1.4))
        counter.flush(3.0)
        history = counter.count_history(500)
        assert history.values == [1, 2]

    def test_totals_series(self):
        counter = ToneCounter(interval=1.0)
        counter.observe(event(500, 0.5))
        counter.observe(event(600, 0.6))
        counter.flush(2.0)
        assert counter.totals.values == [2]
