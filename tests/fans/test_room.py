"""Unit tests for the datacenter and office listening scenes."""

import pytest

from repro.audio import SpectrumAnalyzer
from repro.fans import Server, datacenter_scene, office_scene


class TestSceneAssembly:
    def test_datacenter_has_background_servers(self):
        scene = datacenter_scene(duration=2.0)
        assert len(scene.background_servers) == 8

    def test_office_ambience_is_quieter(self):
        """Compare the rooms themselves (server off): the datacenter's
        ambient wash is far louder than the office's."""
        silent_a, silent_b = Server("a"), Server("b")
        silent_a.fail_all(0.0)
        silent_b.fail_all(0.0)
        office = office_scene(duration=2.0, server=silent_a)
        datacenter = datacenter_scene(duration=2.0, server=silent_b)
        office_level = office.capture(0.5, 1.0).level_db()
        datacenter_level = datacenter.capture(0.5, 1.0).level_db()
        assert datacenter_level > office_level + 15

    def test_scenes_deterministic(self):
        import numpy as np
        first = datacenter_scene(duration=2.0, seed=9).capture(0.2, 0.7)
        second = datacenter_scene(duration=2.0, seed=9).capture(0.2, 0.7)
        np.testing.assert_array_equal(first.samples, second.samples)

    def test_custom_server_used(self):
        server = Server("mine")
        scene = office_scene(duration=2.0, server=server)
        assert scene.server is server


class TestFigure6Phenomenon:
    """The core §7 observation: the target's blade-pass lines stand
    above ambience while on, and fall when off — in both rooms."""

    @pytest.mark.parametrize("scene_fn", [datacenter_scene, office_scene])
    def test_fan_lines_visible_when_on(self, scene_fn):
        scene = scene_fn(duration=4.0)
        spectrum = SpectrumAnalyzer().analyze(scene.capture(1.0, 2.0))
        line = scene.server.fans[0].blade_pass_hz
        assert spectrum.level_at(line) > spectrum.noise_floor_db() + 10

    @pytest.mark.parametrize("scene_fn", [datacenter_scene, office_scene])
    def test_fan_lines_fall_when_off(self, scene_fn):
        server = Server("target")
        server.fail_all(2.0)
        scene = scene_fn(duration=8.0, server=server)
        analyzer = SpectrumAnalyzer()
        line = server.fans[0].blade_pass_hz
        on = analyzer.analyze(scene.capture(0.5, 1.5)).level_at(line)
        off = analyzer.analyze(scene.capture(6.0, 7.0)).level_at(line)
        assert on - off > 15
