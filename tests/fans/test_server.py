"""Unit tests for the server chassis model."""

import numpy as np
import pytest

from repro.audio import AcousticChannel, Position, SpectrumAnalyzer
from repro.fans import FanModel, Server, default_fan_bank


class TestFanBank:
    def test_count_and_speeds_differ(self):
        fans = default_fan_bank(num_fans=4, base_rpm=9000)
        assert len(fans) == 4
        assert len({fan.rpm for fan in fans}) == 4

    def test_requires_fans(self):
        with pytest.raises(ValueError):
            default_fan_bank(num_fans=0)


class TestServer:
    def test_signature_includes_all_fans(self):
        server = Server("s", fans=default_fan_bank(3))
        freqs = server.signature_frequencies()
        per_fan = len(server.fans[0].signature_frequencies())
        assert len(freqs) == 3 * per_fan
        assert freqs == sorted(freqs)

    def test_render_mixes_fans(self):
        loud = Server("s", fans=default_fan_bank(4, seed=1))
        quiet = Server("q", fans=default_fan_bank(1, seed=1))
        assert loud.render(1.0).rms() > quiet.render(1.0).rms()

    def test_fail_fan_validation(self):
        server = Server("s")
        with pytest.raises(IndexError):
            server.fail_fan(99, 1.0)
        with pytest.raises(ValueError):
            server.fail_fan(0, -1.0)

    def test_is_failed(self):
        server = Server("s")
        assert not server.is_failed(0)
        server.fail_fan(0, 2.0)
        assert server.is_failed(0)
        assert not server.is_failed(1)

    def test_fail_all(self):
        server = Server("s")
        server.fail_all(3.0)
        assert all(server.is_failed(i) for i in range(len(server.fans)))

    def test_single_fan_failure_preserves_others(self):
        server = Server("s")
        server.fail_fan(0, 1.0)
        audio = server.render(5.0)
        late = audio.slice_time(3.5, 4.5)
        spectrum = SpectrumAnalyzer().analyze(late)
        # Fan 1 (not failed) still shows its blade-pass line.
        alive = server.fans[1].blade_pass_hz
        dead = server.fans[0].blade_pass_hz
        assert spectrum.level_at(alive) > spectrum.level_at(dead) + 8

    def test_failure_after_attach_rejected(self):
        server = Server("s")
        channel = AcousticChannel()
        server.attach_to_channel(channel, 2.0)
        with pytest.raises(RuntimeError, match="attach"):
            server.fail_fan(0, 1.0)

    def test_attached_audio_does_not_loop(self):
        server = Server("s")
        channel = AcousticChannel()
        server.attach_to_channel(channel, 1.0)
        inside = channel.render_at(Position(0.3, 0, 0), 0.2, 0.6)
        beyond = channel.render_at(Position(0.3, 0, 0), 2.0, 2.4)
        assert inside.rms() > 0
        assert beyond.rms() == 0.0


class TestLeadIn:
    def test_lead_in_preserves_t0_samples(self):
        """The pre-roll prepends hum without re-rolling the t >= 0
        realization, so failure timing and line levels are untouched."""
        fan = FanModel(seed=5)
        plain = fan.render(1.0, stop_time=0.5)
        led = fan.render(1.0, stop_time=0.5, lead_in=0.1)
        lead_count = len(led) - len(plain)
        assert lead_count == 1600
        np.testing.assert_array_equal(led.samples[lead_count:], plain.samples)
        assert np.any(led.samples[:lead_count])

    def test_never_ran_fan_lead_is_silent(self):
        fan = FanModel(seed=5)
        led = fan.render(1.0, stop_time=0.0, lead_in=0.1)
        assert not np.any(led.samples)

    def test_attach_pre_rolls_past_propagation_delay(self):
        """With delay modelling on, a server's hum is already arriving
        when capture begins — the pre-roll absorbs the speed-of-sound
        flight time so there is no onset transient at t = 0."""
        channel = AcousticChannel(enable_propagation_delay=True)
        server = Server("s", position=Position(17.15, 0, 0))  # 50 ms away
        server.attach_to_channel(channel, 1.0)
        onset = channel.render_at(Position(), 0.0, 0.04)
        assert onset.rms() > 0
