"""Unit tests for the rotor acoustic model."""

import numpy as np
import pytest

from repro.audio import SpectrumAnalyzer
from repro.fans import FanModel


class TestGeometry:
    def test_blade_pass_frequency(self):
        fan = FanModel(rpm=9000, num_blades=7)
        assert fan.blade_pass_hz == pytest.approx(1050.0)
        assert fan.shaft_hz == pytest.approx(150.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FanModel(rpm=0)
        with pytest.raises(ValueError):
            FanModel(num_blades=1)

    def test_signature_frequencies_below_nyquist(self):
        fan = FanModel(rpm=30000, num_blades=9, num_harmonics=8)
        freqs = fan.signature_frequencies(sample_rate=16000)
        assert all(f < 8000 for f in freqs)
        assert fan.shaft_hz in freqs


class TestSpectrum:
    def test_blade_pass_line_dominates(self):
        fan = FanModel(rpm=9000, num_blades=7, seed=1)
        audio = fan.render(2.0)
        spectrum = SpectrumAnalyzer().analyze(audio.slice_time(0.5, 1.5))
        line = spectrum.level_at(fan.blade_pass_hz)
        floor = spectrum.noise_floor_db()
        assert line > floor + 15

    def test_harmonics_present(self):
        fan = FanModel(rpm=6000, num_blades=5, seed=2,
                       harmonic_rolloff_db=4.0)
        audio = fan.render(2.0)
        spectrum = SpectrumAnalyzer().analyze(audio.slice_time(0.5, 1.5))
        base = fan.blade_pass_hz  # 500 Hz
        assert spectrum.level_at(2 * base) > spectrum.noise_floor_db() + 10
        assert spectrum.level_at(3 * base) > spectrum.noise_floor_db() + 8

    def test_deterministic_render(self):
        first = FanModel(seed=7).render(1.0)
        second = FanModel(seed=7).render(1.0)
        np.testing.assert_array_equal(first.samples, second.samples)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            FanModel().render(0.0)


class TestFailure:
    def test_stopped_fan_is_silent_after_spin_down(self):
        fan = FanModel(seed=3)
        audio = fan.render(6.0, stop_time=2.0, spin_down=1.0)
        running = audio.slice_time(0.5, 1.5)
        dead = audio.slice_time(4.5, 5.5)
        assert dead.rms() < running.rms() / 100

    def test_spin_down_is_gradual(self):
        fan = FanModel(seed=3)
        audio = fan.render(5.0, stop_time=2.0, spin_down=1.5)
        before = audio.slice_time(1.5, 2.0).rms()
        during = audio.slice_time(2.2, 2.6).rms()
        after = audio.slice_time(4.0, 4.5).rms()
        assert before > during > after

    def test_never_started(self):
        fan = FanModel(seed=3)
        audio = fan.render(2.0, stop_time=0.0)
        assert audio.rms() < 1e-6

    def test_blade_line_vanishes_on_stop(self):
        fan = FanModel(rpm=9000, num_blades=7, seed=5)
        audio = fan.render(6.0, stop_time=2.0)
        analyzer = SpectrumAnalyzer()
        on = analyzer.analyze(audio.slice_time(0.5, 1.5))
        off = analyzer.analyze(audio.slice_time(4.5, 5.5))
        drop = on.level_at(fan.blade_pass_hz) - off.level_at(fan.blade_pass_hz)
        assert drop > 30
