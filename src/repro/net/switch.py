"""The software switch: match-action forwarding with event hooks.

This is the Zodiac FX / Open vSwitch stand-in.  Beyond plain
forwarding it exposes the two integration points Music-Defined
Networking needs:

* **packet hooks** — callbacks fired on every received/forwarded
  packet, which is where a :class:`~repro.core.agent.MusicAgent`
  attaches to turn packet events into Music Protocol messages (e.g.
  "when hit by a packet, the switch plays a sound whose frequency is
  based on the destination port number", §5);
* **queue sampling** — instantaneous egress-queue occupancy, the §6
  signal chirped every 300 ms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .. import obs
from .flowtable import Action, ActionType, FlowEntry, FlowTable, Match
from .link import Node
from .packet import Packet
from .sim import Simulator
from .stats import Counter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .controlplane import ControlChannel, FlowMod

#: Hook signature: (packet, in_port).
PacketHook = Callable[[Packet, int], None]

#: Hook signature: (packet, in_port, out_port).
ForwardHook = Callable[[Packet, int, int], None]


class Switch(Node):
    """A store-and-forward match-action switch.

    Parameters
    ----------
    sim:
        Shared simulator.
    name:
        Unique switch name (used in control-plane addressing).
    default_action:
        What to do on a table miss: ``Action.drop()`` (default, the
        closed-by-default posture the port-knocking experiment needs),
        ``Action.flood()``, or ``Action.controller()``.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        default_action: Action | None = None,
    ) -> None:
        super().__init__(sim, name)
        self.flow_table = FlowTable()
        self.default_action = default_action or Action.drop()
        self.control_channel: "ControlChannel | None" = None
        self.packets_received = Counter(f"{name}.packets_received")
        self.packets_forwarded = Counter(f"{name}.packets_forwarded")
        self.packets_dropped = Counter(f"{name}.packets_dropped")
        self.packets_policed = Counter(f"{name}.packets_policed")
        self.bytes_received = Counter(f"{name}.bytes_received")
        self._receive_hooks: list[PacketHook] = []
        self._forward_hooks: list[ForwardHook] = []
        # Observability: mirror the data-plane totals as pull gauges so
        # metric reports/exports include them at zero hot-path cost.
        registry = obs.get_registry()
        if registry is not None:
            for counter in (self.packets_received, self.packets_forwarded,
                            self.packets_dropped, self.bytes_received):
                registry.gauge_fn(f"switch.{counter.name}",
                                  lambda c=counter: c.total)

    # ------------------------------------------------------------------
    # Hooks (where MusicAgents attach)
    # ------------------------------------------------------------------

    def on_receive(self, hook: PacketHook) -> None:
        """Call ``hook(packet, in_port)`` for every packet received."""
        self._receive_hooks.append(hook)

    def on_forward(self, hook: ForwardHook) -> None:
        """Call ``hook(packet, in_port, out_port)`` for every packet
        forwarded."""
        self._forward_hooks.append(hook)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def receive(self, packet: Packet, in_port: int) -> None:
        self.packets_received.increment()
        self.bytes_received.add(packet.size_bytes)
        for hook in self._receive_hooks:
            hook(packet, in_port)

        entry = self.flow_table.lookup(packet, in_port)
        if entry is not None:
            entry.account(packet)
            if entry.meter is not None and not entry.meter.allow(packet):
                self.packets_policed.increment()
                self.packets_dropped.increment()
                return
            action = entry.action
        else:
            action = self.default_action

        self._execute(action, entry, packet, in_port)

    def _execute(
        self,
        action: Action,
        entry: FlowEntry | None,
        packet: Packet,
        in_port: int,
    ) -> None:
        if action.type is ActionType.DROP:
            self.packets_dropped.increment()
        elif action.type is ActionType.FORWARD:
            self._forward(packet, in_port, action.out_ports[0])
        elif action.type is ActionType.FLOOD:
            for port in self.ports:
                if port != in_port:
                    self._forward(packet, in_port, port)
        elif action.type is ActionType.SPLIT:
            if entry is None:
                raise ValueError("SPLIT action requires a flow entry")
            self._forward(packet, in_port, entry.next_split_port())
        elif action.type is ActionType.CONTROLLER:
            if self.control_channel is not None:
                self.control_channel.send_packet_in(self, packet, in_port)
            else:
                self.packets_dropped.increment()
        else:  # pragma: no cover - exhaustive over ActionType
            raise ValueError(f"unhandled action type {action.type}")

    def _forward(self, packet: Packet, in_port: int, out_port: int) -> None:
        if out_port not in self.ports:
            self.packets_dropped.increment()
            return
        for hook in self._forward_hooks:
            hook(packet, in_port, out_port)
        if self.transmit(packet, out_port):
            self.packets_forwarded.increment()
        else:
            self.packets_dropped.increment()

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def apply_flow_mod(self, flow_mod: "FlowMod") -> None:
        """Apply a FlowMod received from the control channel."""
        from .controlplane import FlowModCommand
        from .meter import TokenBucket

        if flow_mod.command is FlowModCommand.ADD:
            assert flow_mod.action is not None  # validated at construction
            meter = None
            if flow_mod.meter_rate_pps is not None:
                meter = TokenBucket(self.sim, flow_mod.meter_rate_pps,
                                    flow_mod.meter_burst)
            self.flow_table.install(
                flow_mod.match, flow_mod.action, flow_mod.priority, meter
            )
        else:
            self.flow_table.remove(
                flow_mod.match,
                flow_mod.priority if flow_mod.strict else None,
            )
