"""End hosts: traffic sources and sinks with byte accounting.

Figure 3a plots "bytes sent/recvd" at the two hosts of the
port-knocking experiment; the host here keeps exactly those counters,
plus per-destination-port delivery so applications (and tests) can ask
"did traffic on port X get through?".
"""

from __future__ import annotations

import itertools
from typing import Callable

from .link import Node
from .packet import FlowKey, Packet, Protocol
from .sim import Simulator
from .stats import Counter, TimeSeries

#: Handler signature: (packet) — called on packet delivery to the host.
DeliveryHandler = Callable[[Packet], None]

_ephemeral_ports = itertools.count(40_000)


class Host(Node):
    """A single-homed end host.

    Parameters
    ----------
    sim:
        Shared simulator.
    name:
        Host name.
    ip:
        The host's address; switches route on it.
    """

    #: The single NIC's local port number.
    NIC_PORT = 0

    def __init__(self, sim: Simulator, name: str, ip: str) -> None:
        super().__init__(sim, name)
        self.ip = ip
        self.bytes_sent = Counter(f"{name}.bytes_sent")
        self.bytes_received = Counter(f"{name}.bytes_received")
        self.packets_sent = Counter(f"{name}.packets_sent")
        self.packets_received = Counter(f"{name}.packets_received")
        #: Bytes received per destination port (who got through?).
        self.port_bytes: dict[int, int] = {}
        self._handlers: list[DeliveryHandler] = []

    def on_delivery(self, handler: DeliveryHandler) -> None:
        """Call ``handler(packet)`` whenever a packet is delivered here."""
        self._handlers.append(handler)

    def receive(self, packet: Packet, in_port: int) -> None:
        if packet.flow.dst_ip != self.ip:
            # Mis-delivered (e.g. flooded) traffic is not counted as
            # received payload.
            return
        self.bytes_received.add(packet.size_bytes)
        self.packets_received.increment()
        port = packet.flow.dst_port
        self.port_bytes[port] = self.port_bytes.get(port, 0) + packet.size_bytes
        for handler in self._handlers:
            handler(packet)

    def send_packet(self, packet: Packet) -> bool:
        """Transmit a pre-built packet out of the NIC."""
        self.bytes_sent.add(packet.size_bytes)
        self.packets_sent.increment()
        return self.transmit(packet, self.NIC_PORT)

    def send_to(
        self,
        dst_ip: str,
        dst_port: int,
        size_bytes: int = 1_000,
        src_port: int | None = None,
        protocol: Protocol = Protocol.TCP,
        ecn_capable: bool = False,
    ) -> Packet:
        """Build and transmit one packet; returns the packet."""
        flow = FlowKey(
            self.ip,
            dst_ip,
            next(_ephemeral_ports) % 65_536 if src_port is None else src_port,
            dst_port,
            protocol,
        )
        packet = Packet(
            flow,
            size_bytes=size_bytes,
            created_at=self.sim.now,
            ecn_capable=ecn_capable,
        )
        self.send_packet(packet)
        return packet


class ByteCounterSampler:
    """Periodically samples a host's cumulative byte counters.

    Produces the Figure 3a series: cumulative bytes sent by the sender
    and received by the receiver over time.
    """

    def __init__(self, sim: Simulator, host: Host, interval: float = 0.5) -> None:
        self.host = host
        self.sent = TimeSeries(f"{host.name}.bytes_sent")
        self.received = TimeSeries(f"{host.name}.bytes_received")
        self._timer = sim.every(interval, self._sample, start=sim.now)

    def _sample(self) -> None:
        self.sent.record(self.host.sim.now, self.host.bytes_sent.total)
        self.received.record(self.host.sim.now, self.host.bytes_received.total)

    def stop(self) -> None:
        self._timer.stop()
