"""Network substrate: the Mininet / Zodiac FX replacement.

A deterministic discrete-event simulator providing hosts, links with
egress queues, match-action switches and an SDN control channel — the
environment the paper's Music-Defined mechanisms are grafted onto.
See DESIGN.md §2 for the substitution rationale.
"""

from .controlplane import (
    ControlChannel,
    ControllerBase,
    FlowMod,
    FlowModCommand,
    PacketIn,
    PortStats,
)
from .flowpop import (
    LABEL_CHURN,
    LABEL_ELEPHANT,
    LABEL_FANIN,
    LABEL_FANOUT,
    LABEL_MOUSE,
    LABEL_SCAN,
    FlowPopulation,
)
from .flowtable import Action, ActionType, FlowEntry, FlowTable, Match
from .host import ByteCounterSampler, Host
from .link import Link, LinkDirection, Node
from .meter import TokenBucket
from .packet import FlowKey, Packet, Protocol
from .queueing import DEFAULT_CAPACITY, PacketQueue, QueueBands
from .routing import (
    install_all_routes,
    leaf_spine_topology,
    shortest_path,
    star_topology,
)
from .sim import Event, PeriodicTimer, Simulator
from .stats import Counter, TimeSeries
from .switch import Switch
from .topology import (
    DEFAULT_BANDWIDTH,
    DEFAULT_DELAY,
    Topology,
    linear_topology,
    rhombus_topology,
    single_switch_topology,
)
from .traffic import (
    ConstantRateSource,
    FanInSource,
    FanOutSource,
    FlowMixWorkload,
    FlowSpec,
    OnOffSource,
    PoissonSource,
    PortScanSource,
    RampSource,
    TrafficSource,
)
from .workload import (
    WORKLOAD_MIXES,
    BucketPresenceTap,
    ChurnPattern,
    CountingHost,
    CountingSink,
    ElephantMicePattern,
    FanInPattern,
    FanOutPattern,
    HostSink,
    OnOffPattern,
    PerFlowWorkloadSource,
    PortPresenceTap,
    PortScanPattern,
    PresenceSink,
    TrafficPattern,
    VectorizedFlowDriver,
    WorkloadSpec,
    build_workload,
    launch_reference_sources,
)

__all__ = [
    "Action",
    "ActionType",
    "BucketPresenceTap",
    "ByteCounterSampler",
    "ChurnPattern",
    "ConstantRateSource",
    "CountingHost",
    "CountingSink",
    "ElephantMicePattern",
    "FanInPattern",
    "FanOutPattern",
    "FlowPopulation",
    "HostSink",
    "LABEL_CHURN",
    "LABEL_ELEPHANT",
    "LABEL_FANIN",
    "LABEL_FANOUT",
    "LABEL_MOUSE",
    "LABEL_SCAN",
    "OnOffPattern",
    "PerFlowWorkloadSource",
    "PortPresenceTap",
    "PortScanPattern",
    "PresenceSink",
    "TrafficPattern",
    "VectorizedFlowDriver",
    "WORKLOAD_MIXES",
    "WorkloadSpec",
    "build_workload",
    "launch_reference_sources",
    "ControlChannel",
    "ControllerBase",
    "Counter",
    "DEFAULT_BANDWIDTH",
    "DEFAULT_CAPACITY",
    "DEFAULT_DELAY",
    "Event",
    "FanInSource",
    "FanOutSource",
    "FlowEntry",
    "FlowKey",
    "FlowMixWorkload",
    "FlowMod",
    "FlowModCommand",
    "FlowSpec",
    "FlowTable",
    "Host",
    "Link",
    "LinkDirection",
    "Match",
    "Node",
    "OnOffSource",
    "Packet",
    "PacketIn",
    "PacketQueue",
    "PeriodicTimer",
    "PoissonSource",
    "PortScanSource",
    "PortStats",
    "Protocol",
    "QueueBands",
    "RampSource",
    "Simulator",
    "Switch",
    "TimeSeries",
    "TokenBucket",
    "Topology",
    "TrafficSource",
    "linear_topology",
    "rhombus_topology",
    "single_switch_topology",
    "install_all_routes",
    "leaf_spine_topology",
    "shortest_path",
    "star_topology",
]
