"""Time-series collection for experiment figures.

Every figure in the paper is a series over time (bytes sent/received,
queue length, spectrogram frames).  :class:`TimeSeries` is the shared
recorder; :class:`Counter` wraps monotonically growing totals with a
sampling helper.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field


@dataclass
class TimeSeries:
    """An append-only series of ``(time, value)`` samples.

    Times must be non-decreasing (they come from one simulation clock).
    """

    name: str = ""
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"times must be non-decreasing: {time} after {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time: float) -> float:
        """Last recorded value at or before ``time`` (0.0 if none)."""
        index = bisect_right(self.times, time) - 1
        if index < 0:
            return 0.0
        return self.values[index]

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    def final(self) -> float:
        return self.values[-1] if self.values else 0.0

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= time < end``.

        Times are non-decreasing, so both window edges are found by
        bisection and the samples sliced out in O(log n + k); the old
        full linear scan made repeated windowing of long runs quadratic.
        """
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        result = TimeSeries(self.name)
        result.times = self.times[lo:hi]
        result.values = self.values[lo:hi]
        return result

    def rate_series(self) -> "TimeSeries":
        """Discrete derivative: per-interval increase between samples."""
        result = TimeSeries(f"{self.name}.rate")
        for index in range(1, len(self.times)):
            dt = self.times[index] - self.times[index - 1]
            if dt <= 0:
                continue
            delta = self.values[index] - self.values[index - 1]
            result.record(self.times[index], delta / dt)
        return result


@dataclass
class Counter:
    """A monotonically increasing total (bytes, packets, drops)."""

    name: str = ""
    total: float = 0.0

    def add(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative: {amount}")
        self.total += amount

    def increment(self) -> None:
        self.total += 1
