"""Traffic generators for every evaluation workload.

Each paper experiment defines a workload:

* Figure 3a — a sender transmitting to a (closed) port for ~34 s:
  :class:`ConstantRateSource`.
* Figure 4a–b — a flow mix where one flow exceeds a fraction of link
  capacity: :class:`FlowMixWorkload` (Zipf-ish rates, one heavy flow).
* Figure 4c–d — a port scan through one switch: :class:`PortScanSource`.
* Figure 5a — "traffic with a progressively increasing rate":
  :class:`RampSource`.
* Figure 5c — a burst that fills then drains a queue:
  :class:`OnOffSource`.

All randomness is seeded; identical runs regenerate identical figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .host import Host
from .packet import FlowKey, Packet, Protocol
from .sim import Simulator


class TrafficSource:
    """Base class: schedules packet departures on a host's simulator."""

    def __init__(
        self,
        host: Host,
        dst_ip: str,
        dst_port: int,
        src_port: int = 10_000,
        packet_size: int = 1_000,
        protocol: Protocol = Protocol.TCP,
        start: float = 0.0,
        stop: float | None = None,
        ecn_capable: bool = False,
    ) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self.flow = FlowKey(host.ip, dst_ip, src_port, dst_port, protocol)
        self.packet_size = packet_size
        self.start = start
        self.stop = stop
        self.ecn_capable = ecn_capable
        self.packets_emitted = 0
        self._running = False
        #: Launch-generation token: halt() leaves the scheduled _emit
        #: callback in the heap (lazy cancellation), so a relaunch
        #: before it fires must not let the stale callback resume its
        #: chain alongside the new one — two chains emit at double
        #: rate.  Each launch mints a new generation; a callback whose
        #: generation is stale returns without rescheduling.
        self._generation = 0

    def launch(self) -> None:
        """Arm the source; the first packet departs at ``start``."""
        if self._running:
            raise RuntimeError("source already launched")
        self._running = True
        self._generation += 1
        self.sim.schedule_at(max(self.start, self.sim.now), self._emit,
                             self._generation)

    def halt(self) -> None:
        """Stop emitting after the current packet."""
        self._running = False

    # ------------------------------------------------------------------

    def _emit(self, generation: int) -> None:
        if not self._running or generation != self._generation:
            return
        if self.stop is not None and self.sim.now >= self.stop:
            self._running = False
            return
        self._send_one()
        gap = self.next_gap()
        if gap is None:
            self._running = False
            return
        self.sim.schedule(gap, self._emit, generation)

    def _send_one(self) -> None:
        packet = Packet(
            self.flow,
            size_bytes=self.packet_size,
            created_at=self.sim.now,
            ecn_capable=self.ecn_capable,
        )
        self.host.send_packet(packet)
        self.packets_emitted += 1

    def next_gap(self) -> float | None:
        """Seconds until the next departure, or None to finish."""
        raise NotImplementedError


class ConstantRateSource(TrafficSource):
    """Fixed packets-per-second traffic (Figure 3a's sender)."""

    def __init__(self, host: Host, dst_ip: str, dst_port: int,
                 rate_pps: float, **kwargs) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        super().__init__(host, dst_ip, dst_port, **kwargs)
        self.rate_pps = rate_pps

    def next_gap(self) -> float | None:
        return 1.0 / self.rate_pps


class RampSource(TrafficSource):
    """Linearly increasing rate (Figure 5a's "progressively increasing
    rate" sender).

    The instantaneous rate at time t is
    ``initial_rate_pps + slope_pps_per_s * (t - start)``, capped at
    ``max_rate_pps`` if given.
    """

    def __init__(
        self,
        host: Host,
        dst_ip: str,
        dst_port: int,
        initial_rate_pps: float,
        slope_pps_per_s: float,
        max_rate_pps: float | None = None,
        **kwargs,
    ) -> None:
        if initial_rate_pps <= 0:
            raise ValueError("initial_rate_pps must be positive")
        if slope_pps_per_s < 0:
            raise ValueError("slope_pps_per_s must be non-negative")
        super().__init__(host, dst_ip, dst_port, **kwargs)
        self.initial_rate_pps = initial_rate_pps
        self.slope_pps_per_s = slope_pps_per_s
        self.max_rate_pps = max_rate_pps

    def current_rate(self) -> float:
        elapsed = max(0.0, self.sim.now - self.start)
        rate = self.initial_rate_pps + self.slope_pps_per_s * elapsed
        if self.max_rate_pps is not None:
            rate = min(rate, self.max_rate_pps)
        return rate

    def next_gap(self) -> float | None:
        return 1.0 / self.current_rate()


class PoissonSource(TrafficSource):
    """Memoryless arrivals at a mean rate (background cross-traffic)."""

    def __init__(self, host: Host, dst_ip: str, dst_port: int,
                 rate_pps: float, seed: int = 0, **kwargs) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        super().__init__(host, dst_ip, dst_port, **kwargs)
        self.rate_pps = rate_pps
        self._rng = np.random.default_rng(seed)

    def next_gap(self) -> float | None:
        return float(self._rng.exponential(1.0 / self.rate_pps))


class OnOffSource(TrafficSource):
    """Bursts at ``rate_pps`` for ``on_duration``, silent for
    ``off_duration``, repeating (Figure 5c's fill-then-drain burst)."""

    def __init__(
        self,
        host: Host,
        dst_ip: str,
        dst_port: int,
        rate_pps: float,
        on_duration: float,
        off_duration: float,
        **kwargs,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if on_duration <= 0 or off_duration < 0:
            raise ValueError("invalid on/off durations")
        super().__init__(host, dst_ip, dst_port, **kwargs)
        self.rate_pps = rate_pps
        self.on_duration = on_duration
        self.off_duration = off_duration

    def next_gap(self) -> float | None:
        phase = (self.sim.now - self.start) % (self.on_duration + self.off_duration)
        gap = 1.0 / self.rate_pps
        if phase + gap <= self.on_duration:
            return gap
        # Jump to the start of the next ON period.
        return self.on_duration + self.off_duration - phase


class PortScanSource(TrafficSource):
    """A (naive) sequential port scan (Figure 4c–d's attacker).

    Sends ``probes_per_port`` packets to each destination port in
    ``port_range``, advancing every ``interval`` seconds.  The sweep of
    rising destination ports is what paints the "clear logarithmic
    line" on the mel spectrogram.
    """

    def __init__(
        self,
        host: Host,
        dst_ip: str,
        port_range: range,
        interval: float = 0.05,
        probes_per_port: int = 1,
        **kwargs,
    ) -> None:
        if len(port_range) == 0:
            raise ValueError("port_range must not be empty")
        if interval <= 0:
            raise ValueError("interval must be positive")
        super().__init__(host, dst_ip, port_range[0], **kwargs)
        self.port_range = port_range
        self.interval = interval
        self.probes_per_port = probes_per_port
        self._scan_index = 0

    def _send_one(self) -> None:
        port_index = self._scan_index // self.probes_per_port
        port = self.port_range[port_index]
        flow = FlowKey(
            self.flow.src_ip, self.flow.dst_ip, self.flow.src_port, port,
            self.flow.protocol,
        )
        packet = Packet(flow, size_bytes=self.packet_size, created_at=self.sim.now)
        self.host.send_packet(packet)
        self.packets_emitted += 1
        self._scan_index += 1

    def next_gap(self) -> float | None:
        if self._scan_index >= len(self.port_range) * self.probes_per_port:
            return None
        return self.interval


class FanOutSource(TrafficSource):
    """One source contacting many destinations: the k-superspreader
    workload of §5's open problem.

    Emits one packet to each address in ``dst_ips`` in turn, advancing
    every ``interval`` seconds, looping ``rounds`` times.
    """

    def __init__(
        self,
        host: Host,
        dst_ips: list[str],
        dst_port: int = 80,
        interval: float = 0.05,
        rounds: int = 1,
        **kwargs,
    ) -> None:
        if not dst_ips:
            raise ValueError("dst_ips must not be empty")
        if interval <= 0:
            raise ValueError("interval must be positive")
        super().__init__(host, dst_ips[0], dst_port, **kwargs)
        self.dst_ips = list(dst_ips)
        self.interval = interval
        self.rounds = rounds
        self._index = 0

    def _send_one(self) -> None:
        dst_ip = self.dst_ips[self._index % len(self.dst_ips)]
        flow = FlowKey(self.flow.src_ip, dst_ip, self.flow.src_port,
                       self.flow.dst_port, self.flow.protocol)
        self.host.send_packet(
            Packet(flow, size_bytes=self.packet_size, created_at=self.sim.now)
        )
        self.packets_emitted += 1
        self._index += 1

    def next_gap(self) -> float | None:
        if self._index >= len(self.dst_ips) * self.rounds:
            return None
        return self.interval


class FanInSource(TrafficSource):
    """Many (spoofed) sources contacting one destination: the DDoS
    victim workload of §5's open problem.

    The emitting host forges a different source address per packet —
    physically one box, logically a botnet.
    """

    def __init__(
        self,
        host: Host,
        src_ips: list[str],
        dst_ip: str,
        dst_port: int = 80,
        interval: float = 0.05,
        rounds: int = 1,
        **kwargs,
    ) -> None:
        if not src_ips:
            raise ValueError("src_ips must not be empty")
        if interval <= 0:
            raise ValueError("interval must be positive")
        super().__init__(host, dst_ip, dst_port, **kwargs)
        self.src_ips = list(src_ips)
        self.interval = interval
        self.rounds = rounds
        self._index = 0

    def _send_one(self) -> None:
        src_ip = self.src_ips[self._index % len(self.src_ips)]
        flow = FlowKey(src_ip, self.flow.dst_ip, self.flow.src_port,
                       self.flow.dst_port, self.flow.protocol)
        self.host.send_packet(
            Packet(flow, size_bytes=self.packet_size, created_at=self.sim.now)
        )
        self.packets_emitted += 1
        self._index += 1

    def next_gap(self) -> float | None:
        if self._index >= len(self.src_ips) * self.rounds:
            return None
        return self.interval


@dataclass(frozen=True)
class FlowSpec:
    """One flow of a mixed workload: identity plus rate."""

    flow: FlowKey
    rate_pps: float
    packet_size: int = 1_000


class FlowMixWorkload:
    """The §5 heavy-hitter workload: many mice, one (or more) elephants.

    Generates ``num_flows`` flows from one host with Zipf-distributed
    rates, then boosts the designated heavy flows so they exceed
    ``heavy_fraction`` of the link capacity — the paper's definition of
    a heavy hitter ("a flow that consumes more than a fraction of the
    link capacity during a given time interval").
    """

    def __init__(
        self,
        host: Host,
        dst_ip: str,
        link_capacity_pps: float,
        num_flows: int = 12,
        num_heavy: int = 1,
        heavy_fraction: float = 0.3,
        base_rate_pps: float = 2.0,
        zipf_exponent: float = 1.2,
        packet_size: int = 1_000,
        seed: int = 7,
        start: float = 0.0,
        stop: float | None = None,
    ) -> None:
        if not 0 < heavy_fraction < 1:
            raise ValueError("heavy_fraction must be in (0, 1)")
        if not 0 <= num_heavy <= num_flows:
            raise ValueError("num_heavy must be within [0, num_flows]")
        self.host = host
        self.specs: list[FlowSpec] = []
        self.heavy_flows: list[FlowKey] = []
        rng = np.random.default_rng(seed)
        heavy_rate = heavy_fraction * link_capacity_pps
        for index in range(num_flows):
            flow = FlowKey(
                host.ip, dst_ip,
                src_port=20_000 + index,
                dst_port=5_000 + index,
                protocol=Protocol.UDP,
            )
            if index < num_heavy:
                rate = heavy_rate
                self.heavy_flows.append(flow)
            else:
                # Zipf-ish mouse rates, well below the heavy threshold.
                rate = base_rate_pps / ((index - num_heavy + 1) ** zipf_exponent)
                rate = max(rate, 0.2)
            self.specs.append(FlowSpec(flow, rate, packet_size))
        self._sources = [
            _FixedFlowSource(host, spec, seed=seed + 100 + index,
                             start=start, stop=stop)
            for index, spec in enumerate(self.specs)
        ]

    def launch(self) -> None:
        for source in self._sources:
            source.launch()

    def halt(self) -> None:
        for source in self._sources:
            source.halt()


class _FixedFlowSource(TrafficSource):
    """Poisson source bound to an exact pre-built FlowKey."""

    def __init__(self, host: Host, spec: FlowSpec, seed: int,
                 start: float = 0.0, stop: float | None = None) -> None:
        super().__init__(
            host, spec.flow.dst_ip, spec.flow.dst_port,
            src_port=spec.flow.src_port, packet_size=spec.packet_size,
            protocol=spec.flow.protocol, start=start, stop=stop,
        )
        self.flow = spec.flow
        self.rate_pps = spec.rate_pps
        self._rng = np.random.default_rng(seed)

    def next_gap(self) -> float | None:
        return float(self._rng.exponential(1.0 / self.rate_pps))
