"""Token-bucket metering: in-network rate limiting.

Section 6 positions the queue chirp as a signal that "can be used to
drive in-network flow or congestion control decisions, without waiting
for source reactions".  Hearing congestion is half the loop; *acting*
in-network is the other half.  This module provides the actuator: a
token-bucket meter a flow entry can carry, policing matched traffic to
a configured rate at the switch — the OpenFlow meter-table equivalent.
"""

from __future__ import annotations

from ..net.packet import Packet
from .sim import Simulator


class TokenBucket:
    """A classic token bucket policer.

    Parameters
    ----------
    sim:
        The clock tokens accrue against.
    rate_pps:
        Sustained packet rate.
    burst:
        Bucket depth, packets (allowed burst above the sustained rate).
    """

    def __init__(self, sim: Simulator, rate_pps: float, burst: float = 10.0) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.sim = sim
        self.rate_pps = rate_pps
        self.burst = burst
        self._tokens = burst
        self._last_update = sim.now
        self.conformant = 0
        self.policed = 0

    @property
    def tokens(self) -> float:
        """Current bucket level (refreshes lazily)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            self._tokens = min(self.burst,
                               self._tokens + elapsed * self.rate_pps)
            self._last_update = now

    def allow(self, packet: Packet) -> bool:
        """Charge one packet; False means it exceeds the rate (police)."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.conformant += 1
            return True
        self.policed += 1
        return False
