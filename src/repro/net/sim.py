"""Discrete-event simulation core shared by the network and the air.

The testbed substitution (DESIGN.md §2) hinges on one clock: switches
chirp at simulated times, queues fill at simulated times, and the MDN
controller's microphone windows are cut from the same timeline.  This
module provides that clock: a classic heap-based event scheduler with
cancellable events and periodic timers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence) so ties fire
    in scheduling order."""

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (lazy removal from the heap)."""
        self.cancelled = True


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Time is in seconds.  Determinism matters: every experiment in the
    benchmarks must regenerate the same figure series on every run, so
    no wall-clock or unordered-set iteration is involved anywhere.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[Event] = []
        self._sequence = itertools.count()
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for tests and debugging)."""
        return self._events_processed

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, requested={time})"
            )
        event = Event(time, next(self._sequence), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def every(
        self,
        interval: float,
        callback: Callable[..., None],
        *args: Any,
        start: float | None = None,
    ) -> "PeriodicTimer":
        """Run ``callback(*args)`` every ``interval`` seconds.

        The first firing is at ``start`` (absolute; defaults to
        ``now + interval``).  Returns a handle whose :meth:`stop`
        cancels future firings.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        timer = PeriodicTimer(self, interval, callback, args)
        first = self.now + interval if start is None else start
        timer._arm(first)
        return timer

    def run(self, until: float) -> None:
        """Execute events in order until the clock reaches ``until``.

        The clock is left exactly at ``until`` even if the heap drains
        early, so back-to-back ``run`` calls compose.
        """
        if until < self.now:
            raise ValueError(f"cannot run backwards (now={self.now}, until={until})")
        while self._heap and self._heap[0].time <= until:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.callback(*event.args)
        self.now = until

    def run_to_completion(self, max_events: int = 1_000_000) -> None:
        """Drain the event heap entirely (bounded by ``max_events``)."""
        remaining = max_events
        while self._heap:
            if remaining <= 0:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely a "
                    "timer loop that never stops"
                )
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            remaining -= 1

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)


class PeriodicTimer:
    """Handle for a repeating event created by :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._event: Event | None = None
        self._stopped = False
        self.fire_count = 0

    def _arm(self, time: float) -> None:
        self._event = self._sim.schedule_at(time, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._callback(*self._args)
        if not self._stopped:
            self._arm(self._sim.now + self.interval)

    def stop(self) -> None:
        """Cancel all future firings."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
