"""Discrete-event simulation core shared by the network and the air.

The testbed substitution (DESIGN.md §2) hinges on one clock: switches
chirp at simulated times, queues fill at simulated times, and the MDN
controller's microphone windows are cut from the same timeline.  This
module provides that clock: a classic heap-based event scheduler with
cancellable events and periodic timers.

Two observability notes (DESIGN.md §5):

* :class:`PeriodicTimer` re-arms on an **absolute grid** — firing
  ``n`` lands at ``origin + n * interval`` (one float multiply, one
  add) rather than accumulating ``now + interval`` per firing, so a
  300 ms chirp timer stays phase-locked to the grid over hour-long
  runs instead of drifting by the rounding error of thousands of
  chained additions.
* When ``repro.obs`` is enabled before construction, the simulator
  registers ``sim.events_processed``, a pull-gauge for heap depth, a
  peak-depth gauge, and per-callback-site ``sim.callback_ms.*``
  latency histograms; ``run`` is wrapped in a ``sim.run`` trace span
  and the tracer is bound to this clock.  All of it costs one ``is
  not None`` check per event when disabled.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable

from .. import obs


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence) so ties fire
    in scheduling order."""

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (lazy removal from the heap)."""
        self.cancelled = True


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Time is in seconds.  Determinism matters: every experiment in the
    benchmarks must regenerate the same figure series on every run, so
    no wall-clock or unordered-set iteration is involved anywhere.
    (Observability timestamps wall time *around* callbacks but never
    feeds it back into scheduling.)
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[Event] = []
        self._sequence = itertools.count()
        self._events = obs.counter("sim.events_processed")
        self._obs = obs.get_registry()
        if self._obs is not None:
            self._obs.gauge_fn("sim.heap_depth", lambda: len(self._heap))
            self._heap_peak = self._obs.register(obs.Gauge("sim.heap_peak"))
            self._callback_hist = self._obs.register(
                obs.Histogram("sim.callback_ms")
            )
            self._site_hists: dict[str, obs.Histogram] = {}
        tracer = obs.get_tracer()
        if tracer is not None:
            tracer.bind_clock(lambda: self.now)

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for tests and debugging)."""
        return self._events.value

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, requested={time})"
            )
        event = Event(time, next(self._sequence), callback, args)
        heapq.heappush(self._heap, event)
        if self._obs is not None and len(self._heap) > self._heap_peak.value:
            self._heap_peak.set(len(self._heap))
        return event

    def every(
        self,
        interval: float,
        callback: Callable[..., None],
        *args: Any,
        start: float | None = None,
    ) -> "PeriodicTimer":
        """Run ``callback(*args)`` every ``interval`` seconds.

        The first firing is at ``start`` (absolute; defaults to
        ``now + interval``) and firing ``n`` (0-based) lands exactly at
        ``start + n * interval`` — the timer never drifts off that
        grid.  Returns a handle whose :meth:`stop` cancels future
        firings.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        timer = PeriodicTimer(self, interval, callback, args)
        first = self.now + interval if start is None else start
        timer._arm(first)
        return timer

    def run(self, until: float) -> None:
        """Execute events in order until the clock reaches ``until``.

        The clock is left exactly at ``until`` even if the heap drains
        early, so back-to-back ``run`` calls compose.
        """
        if until < self.now:
            raise ValueError(f"cannot run backwards (now={self.now}, until={until})")
        observed = self._obs is not None
        with obs.span("sim.run", until=until):
            while self._heap and self._heap[0].time <= until:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self.now = event.time
                self._events.inc()
                if observed:
                    self._dispatch_observed(event)
                else:
                    event.callback(*event.args)
            self.now = until

    def run_to_completion(self, max_events: int = 1_000_000) -> None:
        """Drain the event heap entirely (bounded by ``max_events``)."""
        remaining = max_events
        observed = self._obs is not None
        while self._heap:
            if remaining <= 0:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely a "
                    "timer loop that never stops"
                )
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events.inc()
            if observed:
                self._dispatch_observed(event)
            else:
                event.callback(*event.args)
            remaining -= 1

    def _dispatch_observed(self, event: Event) -> None:
        """Execute one event with per-callback-site wall timing."""
        start = _time.perf_counter()
        event.callback(*event.args)
        elapsed_ms = (_time.perf_counter() - start) * 1e3
        self._callback_hist.observe(elapsed_ms)
        callback = event.callback
        site = getattr(callback, "__qualname__", None) or type(callback).__name__
        hist = self._site_hists.get(site)
        if hist is None:
            hist = self._obs.histogram(f"sim.callback_ms.{site}")
            self._site_hists[site] = hist
        hist.observe(elapsed_ms)

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)


class PeriodicTimer:
    """Handle for a repeating event created by :meth:`Simulator.every`.

    Re-arming is grid-based: the ``n``-th firing (1-based) is scheduled
    at ``origin + (n - 1) * interval``, where ``origin`` is the first
    firing time.  The naive ``now + interval`` re-arm accumulates one
    float rounding error per firing (~3.6e-10 s after 10,000 firings of
    a 0.3 s chirp timer, growing linearly), which is enough to walk a
    chirp off the listening-window boundaries it was aligned with over
    an hour-long run.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._event: Event | None = None
        self._stopped = False
        self._origin: float | None = None
        self.fire_count = 0

    def _arm(self, time: float) -> None:
        if self._origin is None:
            self._origin = time
        self._event = self._sim.schedule_at(time, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._callback(*self._args)
        if not self._stopped:
            assert self._origin is not None
            self._arm(self._origin + self.fire_count * self.interval)

    def stop(self) -> None:
        """Cancel all future firings."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
