"""Columnar flow tables: numpy per-flow state for huge populations.

The per-flow-object path (:mod:`repro.net.traffic`) costs one heap
event plus one Python callback per packet — fine for the paper's
12-flow mixes, hopeless for the 10⁵–10⁶ flow populations of ROADMAP
item 4.  :class:`FlowPopulation` keeps every per-flow attribute in a
numpy column (rates, phases, activity windows, on/off duty cycles,
labels, key-variation rules) so a whole window of departures is
generated in a handful of array operations.

**The departure model is deterministic and closed-form**, which is what
makes the vectorized driver provably equivalent to a per-flow scalar
reference (see ``tests/net/test_workload.py``):

* candidate ``k`` of flow ``i`` departs at ``t = phase_i + k /
  rate_i``;
* the candidate survives only while the flow is active (``start_i <= t
  < stop_i``) and inside its ON burst (``(t - start_i) % (on_i +
  off_i) < on_i``);
* diurnal load modulation thins candidates by comparing a per-(flow,
  candidate) hash ``u(i, k)`` against a piecewise-linear (triangle)
  load curve ``m(t)`` — every operation involved (add, multiply,
  divide, fmod, abs, compare) is IEEE-exact and elementwise-identical
  between numpy arrays and Python scalars, so the scalar and the
  vectorized path accept *bitwise-identical* candidate sets.  (A
  sinusoidal curve would not give that guarantee: SIMD ``np.sin`` may
  differ from the scalar routine in the last ulp.)

Ground-truth labels ride in the ``labels`` column: the workload layer
knows which flows are truly elephants or scanners, so detector output
can be scored as precision/recall instead of eyeballed.
"""

from __future__ import annotations

import numpy as np

from .packet import FlowKey, Protocol

#: Ground-truth labels (the ``labels`` column).
LABEL_MOUSE = 0
LABEL_ELEPHANT = 1
LABEL_SCAN = 2
LABEL_CHURN = 3
LABEL_FANOUT = 4
LABEL_FANIN = 5

LABEL_NAMES = {
    LABEL_MOUSE: "mouse",
    LABEL_ELEPHANT: "elephant",
    LABEL_SCAN: "scan",
    LABEL_CHURN: "churn",
    LABEL_FANOUT: "fanout",
    LABEL_FANIN: "fanin",
}

#: Per-packet key variation (the ``variation`` column).  A static flow
#: reuses one :class:`FlowKey` for every packet; campaign flows vary
#: one field with the candidate ordinal ``k``.
VARY_NONE = 0
VARY_DST_PORT = 1   #: port scan — dst port cycles ``base + k % span``
VARY_DST_IP = 2     #: fan-out — dst address cycles through ``span`` hosts
VARY_SRC_IP = 3     #: fan-in — spoofed src address cycles likewise

_MASK64 = (1 << 64) - 1
#: Exact power-of-two scale mapping a 53-bit hash to [0, 1).
_U53_SCALE = 1.0 / float(1 << 53)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wraps mod 2**64)."""
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def _mix64_scalar(x: int) -> int:
    """SplitMix64 finalizer on a Python int — bitwise-identical to
    :func:`_mix64` (both are arithmetic mod 2**64)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class FlowPopulation:
    """A flow table held as parallel numpy columns.

    Build one through :meth:`repro.net.workload.WorkloadSpec.build`
    rather than by hand; the constructor only validates and freezes the
    columns.  All float columns are ``np.float64``; ``stops`` uses
    ``inf`` for "never", and always-on flows carry ``on=inf, off=0``
    (``x % inf == x``, so the duty-cycle gate passes them untouched).
    """

    def __init__(
        self,
        *,
        src_ips: list[str],
        dst_ips: list[str],
        src_ports: np.ndarray,
        dst_ports: np.ndarray,
        protocols: list[Protocol],
        rates: np.ndarray,
        phases: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        on_durations: np.ndarray,
        off_durations: np.ndarray,
        labels: np.ndarray,
        variation: np.ndarray,
        vary_base: np.ndarray,
        vary_span: np.ndarray,
        vary_prefix: list[str | None],
        packet_sizes: np.ndarray,
        diurnal_amplitude: float = 0.0,
        diurnal_period: float = 8.0,
    ) -> None:
        n = len(src_ips)
        self.n = n
        self.src_ips = list(src_ips)
        self.dst_ips = list(dst_ips)
        self.src_ports = np.asarray(src_ports, dtype=np.int64)
        self.dst_ports = np.asarray(dst_ports, dtype=np.int64)
        self.protocols = list(protocols)
        self.rates = np.asarray(rates, dtype=np.float64)
        self.phases = np.asarray(phases, dtype=np.float64)
        self.starts = np.asarray(starts, dtype=np.float64)
        self.stops = np.asarray(stops, dtype=np.float64)
        self.on_durations = np.asarray(on_durations, dtype=np.float64)
        self.off_durations = np.asarray(off_durations, dtype=np.float64)
        self.labels = np.asarray(labels, dtype=np.int8)
        self.variation = np.asarray(variation, dtype=np.int8)
        self.vary_base = np.asarray(vary_base, dtype=np.int64)
        self.vary_span = np.asarray(vary_span, dtype=np.int64)
        self.vary_prefix = list(vary_prefix)
        self.packet_sizes = np.asarray(packet_sizes, dtype=np.int64)
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.diurnal_period = float(diurnal_period)

        for name in ("dst_ips", "protocols", "vary_prefix"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} has wrong length")
        for name in ("src_ports", "dst_ports", "rates", "phases", "starts",
                     "stops", "on_durations", "off_durations", "labels",
                     "variation", "vary_base", "vary_span", "packet_sizes"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} has wrong length")
        if n and not np.all(self.rates > 0):
            raise ValueError("all rates must be positive")
        if n and not np.all(self.phases >= 0):
            raise ValueError("all phases must be non-negative")
        if n and np.any((self.variation != VARY_NONE) & (self.vary_span < 1)):
            raise ValueError("varying flows need vary_span >= 1")

        #: True where the flow's key is constant across packets.
        self.static = self.variation == VARY_NONE
        #: Cached :meth:`FlowKey.stable_hash` per static flow (0 for
        #: varying flows, whose key — and hence hash — changes with
        #: ``k``).  One blake2b per flow, paid once at build.
        self.stable_hashes = np.zeros(n, dtype=np.uint64)
        for i in np.nonzero(self.static)[0]:
            self.stable_hashes[i] = np.uint64(
                self.flow_key(int(i), 0).stable_hash()
            )

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Key materialization
    # ------------------------------------------------------------------

    def flow_key(self, i: int, k: int = 0) -> FlowKey:
        """The 5-tuple of candidate ``k`` of flow ``i``."""
        variation = int(self.variation[i])
        src_ip = self.src_ips[i]
        dst_ip = self.dst_ips[i]
        src_port = int(self.src_ports[i])
        dst_port = int(self.dst_ports[i])
        if variation == VARY_DST_PORT:
            dst_port = int(self.vary_base[i]) + k % int(self.vary_span[i])
        elif variation == VARY_DST_IP:
            suffix = int(self.vary_base[i]) + k % int(self.vary_span[i])
            dst_ip = f"{self.vary_prefix[i]}{suffix}"
        elif variation == VARY_SRC_IP:
            suffix = int(self.vary_base[i]) + k % int(self.vary_span[i])
            src_ip = f"{self.vary_prefix[i]}{suffix}"
        return FlowKey(src_ip, dst_ip, src_port, dst_port, self.protocols[i])

    def dst_ports_for(self, flow_idx: np.ndarray, ks: np.ndarray) -> np.ndarray:
        """Vectorized destination ports for a batch of departures."""
        ports = self.dst_ports[flow_idx].copy()
        varying = self.variation[flow_idx] == VARY_DST_PORT
        if np.any(varying):
            rows = flow_idx[varying]
            ports[varying] = self.vary_base[rows] + ks[varying] % self.vary_span[rows]
        return ports

    def retarget(self, dst_ip: str) -> "FlowPopulation":
        """A copy of this population with every flow aimed at ``dst_ip``.

        The experiment CLIs run workloads at *acoustic* fidelity: real
        packets through a real testbed, where only installed routes
        forward (and hence ring tones).  Retargeting points the
        synthetic server addresses at an actual receiving host; static
        hashes — and so bucket ground truth — are recomputed by the
        constructor.  Fan-out campaigns still vary their own
        destinations and stay unroutable; keep them out of
        figure-scale mixes.
        """
        return FlowPopulation(
            src_ips=self.src_ips,
            dst_ips=[dst_ip] * self.n,
            src_ports=self.src_ports,
            dst_ports=self.dst_ports,
            protocols=self.protocols,
            rates=self.rates,
            phases=self.phases,
            starts=self.starts,
            stops=self.stops,
            on_durations=self.on_durations,
            off_durations=self.off_durations,
            labels=self.labels,
            variation=self.variation,
            vary_base=self.vary_base,
            vary_span=self.vary_span,
            vary_prefix=self.vary_prefix,
            packet_sizes=self.packet_sizes,
            diurnal_amplitude=self.diurnal_amplitude,
            diurnal_period=self.diurnal_period,
        )

    # ------------------------------------------------------------------
    # Departure model
    # ------------------------------------------------------------------

    def _modulation(self, t: np.ndarray) -> np.ndarray:
        """Triangle-wave diurnal load curve m(t) in [1 - amp, 1]."""
        frac = (t / self.diurnal_period) % 1.0
        return 1.0 - self.diurnal_amplitude * np.abs(2.0 * frac - 1.0)

    def _thinning_u(self, flow_idx: np.ndarray, ks: np.ndarray) -> np.ndarray:
        """Per-(flow, candidate) hash in [0, 1) — the thinning coin."""
        keys = (flow_idx.astype(np.uint64) << np.uint64(32)) + ks.astype(np.uint64)
        return (_mix64(keys) >> np.uint64(11)).astype(np.float64) * _U53_SCALE

    def accept(self, i: int, k: int, t: float) -> bool:
        """Scalar acceptance — the reference the vectorized mask must
        match bit-for-bit (same formulas, same IEEE ops)."""
        if not (self.starts[i] <= t < self.stops[i]):
            return False
        rel = t - self.starts[i]
        if not (rel % (self.on_durations[i] + self.off_durations[i])
                < self.on_durations[i]):
            return False
        if self.diurnal_amplitude > 0.0:
            u = float(_mix64_scalar((i << 32) + k) >> 11) * _U53_SCALE
            frac = (t / self.diurnal_period) % 1.0
            m = 1.0 - self.diurnal_amplitude * abs(2.0 * frac - 1.0)
            if not u < m:
                return False
        return True

    def next_departure(
        self, i: int, k_from: int, until: float
    ) -> tuple[int, float] | None:
        """First accepted candidate ``>= k_from`` of flow ``i`` with a
        departure time below ``until`` — the per-flow reference path."""
        rate = self.rates[i]
        phase = self.phases[i]
        limit = min(until, float(self.stops[i]))
        k = k_from
        while True:
            t = phase + k / rate
            if not t < limit:
                return None
            if self.accept(i, k, t):
                return k, float(t)
            k += 1

    def departures_between(
        self, t0: float, t1: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All departures with ``t0 <= t < t1``, vectorized.

        Returns ``(times, flow_indices, candidate_ordinals)`` sorted by
        time (ties broken by flow index, then ordinal).  Candidate
        ranges are widened by one on each side and exact-filtered on
        ``t``, so float rounding at window edges can never drop or
        duplicate a departure across adjacent windows.
        """
        lo = np.maximum(t0, self.starts)
        hi = np.minimum(t1, self.stops)
        k_lo = np.ceil((lo - self.phases) * self.rates) - 1.0
        np.maximum(k_lo, 0.0, out=k_lo)
        k_hi = np.ceil((hi - self.phases) * self.rates) + 1.0
        counts = np.where(hi > lo, k_hi - k_lo, 0.0)
        counts = np.maximum(counts, 0.0).astype(np.int64)
        total = int(counts.sum())
        empty = (np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64),
                 np.empty(0, dtype=np.int64))
        if total == 0:
            return empty

        flow_idx = np.repeat(np.arange(self.n, dtype=np.int64), counts)
        offsets = np.cumsum(counts) - counts
        ks = (np.arange(total, dtype=np.int64)
              - np.repeat(offsets, counts)
              + np.repeat(k_lo.astype(np.int64), counts))
        t = self.phases[flow_idx] + ks.astype(np.float64) / self.rates[flow_idx]

        mask = (t >= t0) & (t < t1)
        mask &= (t >= self.starts[flow_idx]) & (t < self.stops[flow_idx])
        rel = t - self.starts[flow_idx]
        period = self.on_durations[flow_idx] + self.off_durations[flow_idx]
        mask &= np.mod(rel, period) < self.on_durations[flow_idx]
        if self.diurnal_amplitude > 0.0:
            mask &= self._thinning_u(flow_idx, ks) < self._modulation(t)

        if not mask.any():
            return empty
        flow_idx, ks, t = flow_idx[mask], ks[mask], t[mask]
        order = np.lexsort((ks, flow_idx, t))
        return t[order], flow_idx[order], ks[order]

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    def indices_with_label(self, label: int) -> np.ndarray:
        return np.nonzero(self.labels == label)[0]

    def label_counts(self) -> dict[str, int]:
        """Flows per ground-truth label, by name."""
        return {
            name: int(np.count_nonzero(self.labels == label))
            for label, name in sorted(LABEL_NAMES.items())
            if np.any(self.labels == label)
        }
