"""Automatic route computation over a topology.

The hand-written ``install_route`` calls in the canonical shapes are
fine for four switches; anything larger wants computed routes.  This
module provides BFS shortest paths over a :class:`~repro.net.topology.Topology`
and installs destination-IP forwarding entries for every host — the
static-routing equivalent of what an L2-learning or shortest-path SDN
controller would push.
"""

from __future__ import annotations

from collections import deque

from .flowtable import Action, Match
from .topology import Topology


def adjacency(topo: Topology) -> dict[str, list[str]]:
    """Node-name adjacency lists, neighbours sorted for determinism."""
    neighbours: dict[str, set[str]] = {
        name: set() for name in list(topo.switches) + list(topo.hosts)
    }
    for link in topo.links:
        neighbours[link.node_a.name].add(link.node_b.name)
        neighbours[link.node_b.name].add(link.node_a.name)
    return {name: sorted(peers) for name, peers in neighbours.items()}


def shortest_path(topo: Topology, source: str, target: str) -> list[str]:
    """BFS shortest node path from ``source`` to ``target``.

    Raises ``ValueError`` when no path exists.  Ties break toward
    lexicographically smaller neighbours, so routing is deterministic.
    """
    if source == target:
        return [source]
    neighbours = adjacency(topo)
    if source not in neighbours or target not in neighbours:
        raise ValueError(f"unknown node in path query: {source} -> {target}")
    parents: dict[str, str] = {}
    frontier = deque([source])
    seen = {source}
    while frontier:
        here = frontier.popleft()
        for peer in neighbours[here]:
            if peer in seen:
                continue
            # Hosts forward nothing: only allow a host as the final hop.
            if peer in topo.hosts and peer != target:
                continue
            seen.add(peer)
            parents[peer] = here
            if peer == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            frontier.append(peer)
    raise ValueError(f"no path from {source} to {target}")


def install_all_routes(topo: Topology, priority: int = 0) -> int:
    """Install shortest-path dst-IP routes between every host pair.

    Returns the number of flow entries installed.  Entries are
    per-switch per-destination (not per-pair): for each destination
    host, every switch forwards toward it along that switch's own
    shortest path, which keeps tables small and loop-free.
    """
    installed = 0
    for dst_name, dst_host in sorted(topo.hosts.items()):
        for switch_name in sorted(topo.switches):
            try:
                path = shortest_path(topo, switch_name, dst_name)
            except ValueError:
                continue  # unreachable: leave no entry
            if len(path) < 2:
                continue
            out_port = topo.port_towards(switch_name, path[1])
            topo.switches[switch_name].flow_table.install(
                Match(dst_ip=dst_host.ip), Action.forward(out_port), priority
            )
            installed += 1
    return installed


def star_topology(sim, num_hosts: int = 4, **link_kwargs) -> Topology:
    """``num_hosts`` hosts on ``num_hosts`` edge switches around one
    core switch, fully routed.

    ::

        h1 - e1 \\          / e3 - h3
                  -- core --
        h2 - e2 /          \\ e4 - h4
    """
    if num_hosts < 2:
        raise ValueError("need at least two hosts")
    topo = Topology(sim)
    topo.add_switch("core")
    for index in range(1, num_hosts + 1):
        edge, host, ip = f"e{index}", f"h{index}", f"10.0.0.{index}"
        topo.add_switch(edge)
        topo.add_host(host, ip)
        topo.connect(host, edge, **link_kwargs)
        topo.connect(edge, "core", **link_kwargs)
    install_all_routes(topo)
    return topo


def leaf_spine_topology(
    sim, num_leaves: int = 3, num_spines: int = 2,
    hosts_per_leaf: int = 2, **link_kwargs,
) -> Topology:
    """A small leaf–spine fabric (the datacenter shape of §1), fully
    routed over shortest paths.

    Hosts ``h<leaf>_<index>`` get IPs ``10.<leaf>.0.<index>``.
    """
    if num_leaves < 1 or num_spines < 1 or hosts_per_leaf < 1:
        raise ValueError("leaf/spine/host counts must be >= 1")
    topo = Topology(sim)
    spines = [f"spine{index}" for index in range(1, num_spines + 1)]
    for spine in spines:
        topo.add_switch(spine)
    for leaf_index in range(1, num_leaves + 1):
        leaf = f"leaf{leaf_index}"
        topo.add_switch(leaf)
        for spine in spines:
            topo.connect(leaf, spine, **link_kwargs)
        for host_index in range(1, hosts_per_leaf + 1):
            host = f"h{leaf_index}_{host_index}"
            topo.add_host(host, f"10.{leaf_index}.0.{host_index}")
            topo.connect(host, leaf, **link_kwargs)
    install_all_routes(topo)
    return topo
