"""The SDN control channel: PacketIn up, FlowMod down.

Music-Defined Networking works "with and without a Software-Defined
Network controller" (abstract).  When an SDN controller is present, the
MDN controller reacts to sounds by pushing OpenFlow Flow-MOD messages
(Figures 1, 3, 5).  This module provides that southbound channel for
the simulated switches: an asynchronous message pipe with configurable
latency, carrying the three message types the paper's use cases need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from .flowtable import Action, Match
from .packet import Packet
from .sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .switch import Switch


class FlowModCommand(Enum):
    ADD = "add"
    DELETE = "delete"


@dataclass(frozen=True)
class FlowMod:
    """A flow-table modification pushed to a switch.

    ``meter_rate_pps`` attaches a token-bucket policer to the installed
    entry (the switch instantiates the bucket on its own clock) — how
    the §6 congestion loop rate-limits in-network.
    """

    match: Match
    action: Action | None = None
    priority: int = 0
    command: FlowModCommand = FlowModCommand.ADD
    meter_rate_pps: float | None = None
    meter_burst: float = 10.0
    #: Strict DELETE removes only entries whose priority also matches
    #: (OpenFlow DELETE_STRICT); non-strict ignores priority.
    strict: bool = False

    def __post_init__(self) -> None:
        if self.command is FlowModCommand.ADD and self.action is None:
            raise ValueError("FlowMod ADD requires an action")
        if self.meter_rate_pps is not None and self.meter_rate_pps <= 0:
            raise ValueError("meter_rate_pps must be positive")


@dataclass(frozen=True)
class PacketIn:
    """A table-miss (or explicit punt) reported by a switch."""

    switch_name: str
    packet: Packet
    in_port: int
    time: float


@dataclass(frozen=True)
class PortStats:
    """Per-port counters returned by a stats request."""

    port: int
    queue_length: int
    bytes_sent: float
    packets_sent: float


class ControllerBase:
    """Interface the control channel delivers PacketIns to."""

    def handle_packet_in(self, message: PacketIn) -> None:  # pragma: no cover
        raise NotImplementedError


class ControlChannel:
    """An asynchronous southbound channel between controller and switches.

    Parameters
    ----------
    sim:
        The shared simulator.
    latency:
        One-way message latency, seconds.  The paper's point about
        in-band management is that this channel can *fail with the data
        plane*; the out-of-band comparisons (XBASE benchmarks) exercise
        exactly that by cutting it.
    """

    def __init__(self, sim: Simulator, latency: float = 0.001) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.sim = sim
        self.latency = latency
        self.up = True
        self._switches: dict[str, "Switch"] = {}
        self._controller: ControllerBase | None = None
        self.messages_dropped = 0
        self.flow_mods_sent = 0
        self.packet_ins_sent = 0

    def register_switch(self, switch: "Switch") -> None:
        if switch.name in self._switches:
            raise ValueError(f"switch {switch.name!r} already registered")
        self._switches[switch.name] = switch
        switch.control_channel = self

    def register_controller(self, controller: ControllerBase) -> None:
        self._controller = controller

    def fail(self) -> None:
        """Sever the control channel (management-plane outage)."""
        self.up = False

    def restore(self) -> None:
        self.up = True

    # ------------------------------------------------------------------
    # Northbound: switch → controller
    # ------------------------------------------------------------------

    def send_packet_in(self, switch: "Switch", packet: Packet, in_port: int) -> None:
        """Deliver a PacketIn to the controller after the channel latency."""
        if not self.up or self._controller is None:
            self.messages_dropped += 1
            return
        message = PacketIn(switch.name, packet, in_port, self.sim.now)
        self.packet_ins_sent += 1
        self.sim.schedule(self.latency, self._controller.handle_packet_in, message)

    # ------------------------------------------------------------------
    # Southbound: controller → switch
    # ------------------------------------------------------------------

    def send_flow_mod(self, switch_name: str, flow_mod: FlowMod) -> None:
        """Push a FlowMod to a switch after the channel latency."""
        switch = self._switches.get(switch_name)
        if switch is None:
            raise ValueError(f"unknown switch {switch_name!r}")
        if not self.up:
            self.messages_dropped += 1
            return
        self.flow_mods_sent += 1
        self.sim.schedule(self.latency, switch.apply_flow_mod, flow_mod)

    def request_port_stats(self, switch_name: str, port: int) -> PortStats:
        """Synchronous stats read (test/diagnostic convenience)."""
        switch = self._switches.get(switch_name)
        if switch is None:
            raise ValueError(f"unknown switch {switch_name!r}")
        direction = switch.ports[port]
        return PortStats(
            port=port,
            queue_length=len(direction.queue),
            bytes_sent=direction.bytes_sent.total,
            packets_sent=direction.packets_sent.total,
        )
