"""Packets and flow identity.

Music-Defined Telemetry (§5) hashes "a flow tuple defined by source
port, destination port, source IP, destination IP and protocol type"
and maps the hash to a frequency.  That mapping must be *stable* across
processes and runs — a tone heard by the controller has to mean the
same flow tomorrow — so flow hashing here uses a keyed BLAKE2 digest
of the canonical tuple encoding rather than Python's randomized
``hash()``.
"""

from __future__ import annotations

import hashlib
import itertools
import struct
from dataclasses import dataclass, field
from enum import IntEnum


class Protocol(IntEnum):
    """IANA protocol numbers for the protocols the testbed exercises."""

    ICMP = 1
    TCP = 6
    UDP = 17


@dataclass(frozen=True)
class FlowKey:
    """The classic 5-tuple identifying a flow.

    IP addresses are plain strings (e.g. ``"10.0.0.1"``); ports are
    integers in [0, 65535].
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: Protocol = Protocol.TCP

    def __post_init__(self) -> None:
        for name, port in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= port <= 65_535:
                raise ValueError(f"{name} out of range: {port}")

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction of this flow."""
        return FlowKey(
            self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.protocol
        )

    def stable_hash(self) -> int:
        """A 64-bit hash that is identical across runs and processes.

        This is the hash the heavy-hitter application maps onto a
        frequency; determinism is what makes the acoustic encoding
        decodable by an independent listener.
        """
        encoded = (
            self.src_ip.encode() + b"|" + self.dst_ip.encode() + b"|"
            + struct.pack("!HHB", self.src_port, self.dst_port, int(self.protocol))
        )
        digest = hashlib.blake2b(encoded, digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def __str__(self) -> str:
        return (
            f"{self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port}"
            f"/{self.protocol.name}"
        )


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A data-plane packet.

    Attributes
    ----------
    flow:
        The 5-tuple this packet belongs to.
    size_bytes:
        On-wire size including headers.
    created_at:
        Simulation time the packet was created.
    ecn_capable / ecn_marked:
        ECN bits, used only by the in-band congestion baseline
        (:mod:`repro.baselines.ecn`).
    is_management:
        True for control/heartbeat traffic of the in-band management
        baseline (:mod:`repro.baselines.inband`).
    """

    flow: FlowKey
    size_bytes: int = 1_000
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    ecn_capable: bool = False
    ecn_marked: bool = False
    is_management: bool = False
    payload: bytes = b""
    hops: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8
