"""Drop-tail packet queues with occupancy instrumentation.

The traffic-engineering experiments (§6) revolve around queue
occupancy: switches chirp a tone whose frequency encodes which band
(<25, 25–75, >75 packets) the egress queue is in, measured "using the
traffic control Linux utility tc every 300 ms".  The queue here is the
tc-equivalent: a bounded FIFO whose instantaneous length can be sampled
at any simulation time, with drop and peak accounting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .. import obs
from .packet import Packet
from .stats import TimeSeries

#: Default queue capacity, packets.  Comfortably above the paper's
#: 75-packet congestion threshold so the "congested" band is reachable
#: before drops dominate.
DEFAULT_CAPACITY = 150


class PacketQueue:
    """A bounded drop-tail FIFO.

    Parameters
    ----------
    capacity:
        Maximum queued packets; arrivals beyond this are dropped.
    name:
        Label used in recorded series.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: deque[Packet] = deque()
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.peak_length = 0
        self.occupancy = TimeSeries(f"{name}.occupancy" if name else "occupancy")
        # Observability: one fleet-wide occupancy histogram and drop
        # counter shared by every queue (get-or-create) — the per-queue
        # breakdown stays in the TimeSeries / int counters above.
        self._obs = obs.get_registry()
        if self._obs is not None:
            self._m_occupancy = self._obs.histogram("queue.occupancy")
            self._m_drops = self._obs.counter("queue.drops")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def enqueue(self, packet: Packet) -> bool:
        """Append a packet; returns False (and counts a drop) when full."""
        if self.is_full:
            self.dropped += 1
            if self._obs is not None:
                self._m_drops.inc()
            return False
        self._items.append(packet)
        self.enqueued += 1
        self.peak_length = max(self.peak_length, len(self._items))
        return True

    def dequeue(self) -> Packet | None:
        """Pop the head packet, or None when empty."""
        if not self._items:
            return None
        self.dequeued += 1
        return self._items.popleft()

    def head(self) -> Packet | None:
        """The head packet without removing it."""
        return self._items[0] if self._items else None

    def sample(self, time: float) -> int:
        """Record and return the instantaneous occupancy (the tc poll)."""
        length = len(self._items)
        self.occupancy.record(time, length)
        if self._obs is not None:
            self._m_occupancy.observe(length)
        return length

    def bytes_queued(self) -> int:
        """Total bytes currently sitting in the queue."""
        return sum(packet.size_bytes for packet in self._items)


@dataclass(frozen=True)
class QueueBands:
    """The paper's three-level queue occupancy classification (§6).

    ``<low`` packets → ``"low"``, ``[low, high]`` → ``"medium"``,
    ``>high`` → ``"high"`` (congested).  Paper values: low=25, high=75.
    """

    low: int = 25
    high: int = 75

    def __post_init__(self) -> None:
        if not 0 < self.low < self.high:
            raise ValueError(f"need 0 < low < high, got {self.low}, {self.high}")

    def classify(self, queue_length: int) -> str:
        if queue_length < self.low:
            return "low"
        if queue_length <= self.high:
            return "medium"
        return "high"

    @property
    def levels(self) -> tuple[str, str, str]:
        return ("low", "medium", "high")
