"""Point-to-point links and the node attachment model.

A :class:`Link` joins two nodes (switch↔switch or switch↔host) with a
full-duplex pipe: each direction has its own bandwidth, propagation
delay and egress queue.  The egress queue lives on the link direction,
mirroring a Linux qdisc on the outgoing interface — which is exactly
what the paper samples with ``tc`` every 300 ms (§6).
"""

from __future__ import annotations

from .packet import Packet
from .queueing import DEFAULT_CAPACITY, PacketQueue
from .sim import Simulator
from .stats import Counter


class Node:
    """Base class for anything a link can attach to.

    Subclasses (:class:`~repro.net.switch.Switch`,
    :class:`~repro.net.host.Host`) implement :meth:`receive`.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        #: Egress pipe per local port number.
        self.ports: dict[int, "LinkDirection"] = {}

    def attach(self, port: int, direction: "LinkDirection") -> None:
        """Bind an egress pipe to a local port number (used by Link)."""
        if port in self.ports:
            raise ValueError(f"{self.name}: port {port} already attached")
        self.ports[port] = direction

    def transmit(self, packet: Packet, out_port: int) -> bool:
        """Hand a packet to the egress pipe on ``out_port``.

        Returns False if the egress queue dropped it.
        """
        direction = self.ports.get(out_port)
        if direction is None:
            raise ValueError(f"{self.name}: no link on port {out_port}")
        return direction.send(packet)

    def receive(self, packet: Packet, in_port: int) -> None:
        """Handle a packet arriving on ``in_port``; subclasses override."""
        raise NotImplementedError

    def queue_length(self, port: int) -> int:
        """Instantaneous egress queue occupancy on ``port`` (the tc poll)."""
        direction = self.ports.get(port)
        if direction is None:
            raise ValueError(f"{self.name}: no link on port {port}")
        return len(direction.queue)

    def egress_queue(self, port: int) -> PacketQueue:
        """The egress queue object on ``port``."""
        direction = self.ports.get(port)
        if direction is None:
            raise ValueError(f"{self.name}: no link on port {port}")
        return direction.queue


class LinkDirection:
    """One direction of a link: queue → serializer → propagation.

    A packet handed to :meth:`send` is transmitted immediately if the
    line is idle, else queued (drop-tail).  Serialization takes
    ``size_bits / bandwidth_bps`` seconds; delivery to the far node
    happens one propagation ``delay`` later.
    """

    def __init__(
        self,
        sim: Simulator,
        dst_node: Node,
        dst_port: int,
        bandwidth_bps: float,
        delay: float,
        queue_capacity: int = DEFAULT_CAPACITY,
        name: str = "",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.sim = sim
        self.dst_node = dst_node
        self.dst_port = dst_port
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.name = name
        self.queue = PacketQueue(queue_capacity, name=name)
        self.busy = False
        self.up = True
        #: Optional delivery fault model (repro.faults): consulted per
        #: delivered packet; may drop or corrupt it.  ``None`` keeps
        #: delivery on the original path.
        self.fault_model = None
        self.bytes_sent = Counter(f"{name}.bytes_sent")
        self.packets_sent = Counter(f"{name}.packets_sent")

    def send(self, packet: Packet) -> bool:
        """Queue (or immediately transmit) a packet.

        Returns False when the packet was dropped (queue full or link
        down).
        """
        if not self.up:
            return False
        if self.busy:
            return self.queue.enqueue(packet)
        self._start_transmission(packet)
        return True

    def fail(self) -> None:
        """Cut the link (data-plane failure scenario, §1 motivation).
        Queued packets are lost."""
        self.up = False
        while self.queue.dequeue() is not None:
            pass

    def restore(self) -> None:
        self.up = True

    def _start_transmission(self, packet: Packet) -> None:
        self.busy = True
        serialization = packet.size_bits / self.bandwidth_bps
        self.sim.schedule(serialization, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        if self.up:
            self.bytes_sent.add(packet.size_bytes)
            self.packets_sent.increment()
            self.sim.schedule(self.delay, self._deliver, packet)
        next_packet = self.queue.dequeue()
        if next_packet is not None and self.up:
            self._start_transmission(next_packet)
        else:
            self.busy = False

    def _deliver(self, packet: Packet) -> None:
        if not self.up:
            return
        if self.fault_model is not None:
            packet = self.fault_model.on_deliver(packet)
            if packet is None:
                return
        packet.hops += 1
        self.dst_node.receive(packet, self.dst_port)


class Link:
    """A full-duplex link between two node ports.

    Parameters
    ----------
    sim:
        The shared simulator.
    node_a, port_a, node_b, port_b:
        The two attachment points.
    bandwidth_bps:
        Line rate in bits/second for the a→b direction (and b→a unless
        ``bandwidth_ba_bps`` overrides it; asymmetric links let
        topologies place the bottleneck at a switch egress).
    delay:
        One-way propagation delay in seconds.
    queue_capacity:
        Egress queue size, packets, each direction.
    """

    def __init__(
        self,
        sim: Simulator,
        node_a: Node,
        port_a: int,
        node_b: Node,
        port_b: int,
        bandwidth_bps: float = 10_000_000.0,
        delay: float = 0.000_1,
        queue_capacity: int = DEFAULT_CAPACITY,
        bandwidth_ba_bps: float | None = None,
    ) -> None:
        self.a_to_b = LinkDirection(
            sim, node_b, port_b, bandwidth_bps, delay, queue_capacity,
            name=f"{node_a.name}:{port_a}->{node_b.name}:{port_b}",
        )
        self.b_to_a = LinkDirection(
            sim, node_a, port_a, bandwidth_ba_bps or bandwidth_bps, delay,
            queue_capacity,
            name=f"{node_b.name}:{port_b}->{node_a.name}:{port_a}",
        )
        node_a.attach(port_a, self.a_to_b)
        node_b.attach(port_b, self.b_to_a)
        self.node_a, self.port_a = node_a, port_a
        self.node_b, self.port_b = node_b, port_b

    def fail(self) -> None:
        """Cut both directions."""
        self.a_to_b.fail()
        self.b_to_a.fail()

    def restore(self) -> None:
        self.a_to_b.restore()
        self.b_to_a.restore()
