"""Topology builders for the paper's experiments.

The experiments use three shapes: a single switch on the path (port
knocking §4, telemetry §5, queue monitoring §6), the rhombus ("rhomboid
topology, with the two hosts attached to two opposite vertices", §6
load balancing), and a small line of switches for multi-hop tests.
:class:`Topology` wires switches, hosts and links over one simulator
and installs static destination-IP routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .flowtable import Action, Match
from .host import Host
from .link import Link
from .queueing import DEFAULT_CAPACITY
from .sim import Simulator
from .switch import Switch

#: Default link rate for experiments, bits/second.  2 Mb/s with 1 kB
#: packets gives 250 pkt/s of service — small enough that queues of
#: 25–75 packets build in seconds, matching the paper's timescales.
DEFAULT_BANDWIDTH = 2_000_000.0

#: Default one-way propagation delay, seconds.
DEFAULT_DELAY = 0.000_2


@dataclass
class Topology:
    """A wired set of switches, hosts and links over one simulator."""

    sim: Simulator
    switches: dict[str, Switch] = field(default_factory=dict)
    hosts: dict[str, Host] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)
    _next_port: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_switch(self, name: str, default_action: Action | None = None) -> Switch:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name!r}")
        switch = Switch(self.sim, name, default_action)
        self.switches[name] = switch
        self._next_port[name] = 1
        return switch

    def add_host(self, name: str, ip: str) -> Host:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name!r}")
        host = Host(self.sim, name, ip)
        self.hosts[name] = host
        return host

    def node(self, name: str) -> Switch | Host:
        if name in self.switches:
            return self.switches[name]
        if name in self.hosts:
            return self.hosts[name]
        raise KeyError(f"unknown node {name!r}")

    def connect(
        self,
        name_a: str,
        name_b: str,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        delay: float = DEFAULT_DELAY,
        queue_capacity: int = DEFAULT_CAPACITY,
        bandwidth_ba_bps: float | None = None,
    ) -> Link:
        """Wire two nodes together; port numbers are auto-assigned
        (hosts always use their single NIC port 0)."""
        node_a, node_b = self.node(name_a), self.node(name_b)
        port_a = self._allocate_port(name_a)
        port_b = self._allocate_port(name_b)
        link = Link(
            self.sim, node_a, port_a, node_b, port_b,
            bandwidth_bps, delay, queue_capacity, bandwidth_ba_bps,
        )
        self.links.append(link)
        return link

    def _allocate_port(self, name: str) -> int:
        if name in self.hosts:
            return Host.NIC_PORT
        port = self._next_port[name]
        self._next_port[name] = port + 1
        return port

    def port_towards(self, from_name: str, to_name: str) -> int:
        """The local port on ``from_name`` whose link leads to ``to_name``."""
        node_from = self.node(from_name)
        node_to = self.node(to_name)
        for link in self.links:
            if link.node_a is node_from and link.node_b is node_to:
                return link.port_a
            if link.node_b is node_from and link.node_a is node_to:
                return link.port_b
        raise ValueError(f"no link between {from_name!r} and {to_name!r}")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def install_route(
        self, path: list[str], dst_ip: str, priority: int = 0
    ) -> None:
        """Install dst-IP forwarding entries along ``path``.

        ``path`` names nodes from source to destination; entries are
        installed on every switch in the path, forwarding toward the
        next hop.
        """
        if len(path) < 2:
            raise ValueError("path needs at least two nodes")
        for here, nxt in zip(path, path[1:]):
            if here not in self.switches:
                continue
            out_port = self.port_towards(here, nxt)
            self.switches[here].flow_table.install(
                Match(dst_ip=dst_ip), Action.forward(out_port), priority
            )


# ----------------------------------------------------------------------
# Canonical shapes
# ----------------------------------------------------------------------


#: Host access links run this many times faster than backbone links by
#: default, so congestion forms at switch egress queues (where the
#: paper's tc measurements and chirps happen), not at the sender's NIC.
ACCESS_SPEEDUP = 5.0


def single_switch_topology(
    sim: Simulator,
    num_hosts: int = 2,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delay: float = DEFAULT_DELAY,
    queue_capacity: int = DEFAULT_CAPACITY,
    default_action: Action | None = None,
    access_bandwidth_bps: float | None = None,
) -> Topology:
    """``num_hosts`` hosts hanging off one switch ``s1``.

    Hosts are ``h1..hN`` with IPs ``10.0.0.1..N``; routes between all
    host pairs are installed unless ``default_action`` is given (the
    port-knocking experiment starts with a *closed* switch instead).
    Ingress (host→switch) links are faster than the egress links by
    ``ACCESS_SPEEDUP`` so the switch egress queue is the bottleneck.
    """
    if num_hosts < 1:
        raise ValueError("need at least one host")
    access = access_bandwidth_bps or bandwidth_bps * ACCESS_SPEEDUP
    topo = Topology(sim)
    topo.add_switch("s1", default_action)
    for index in range(1, num_hosts + 1):
        name, ip = f"h{index}", f"10.0.0.{index}"
        topo.add_host(name, ip)
        # Host→switch fast, switch→host at line rate: the switch egress
        # queue toward the receiver is the bottleneck.
        topo.connect(name, "s1", access, delay, queue_capacity,
                     bandwidth_ba_bps=bandwidth_bps)
    if default_action is None:
        for index in range(1, num_hosts + 1):
            topo.install_route(["s1", f"h{index}"], f"10.0.0.{index}")
    return topo


def rhombus_topology(
    sim: Simulator,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delay: float = DEFAULT_DELAY,
    queue_capacity: int = DEFAULT_CAPACITY,
) -> Topology:
    """The §6 load-balancing rhombus.

    ::

                 s_top
                /      \\
        h1 - s_in      s_out - h2
                \\      /
                 s_bottom

    Initially all h1→h2 traffic is routed over the *top* path (the
    single path the paper starts with); the MDN load balancer later
    installs a SPLIT entry at ``s_in``.  The reverse path is routed via
    the bottom so reverse traffic never competes with the congested
    forward path.
    """
    topo = Topology(sim)
    for name in ("s_in", "s_top", "s_bottom", "s_out"):
        topo.add_switch(name)
    topo.add_host("h1", "10.0.0.1")
    topo.add_host("h2", "10.0.0.2")
    # Access links are fast so the path bottleneck is the s_in egress
    # toward s_top — the queue the load balancer listens to.
    access = bandwidth_bps * ACCESS_SPEEDUP
    topo.connect("h1", "s_in", access, delay, queue_capacity)
    topo.connect("s_in", "s_top", bandwidth_bps, delay, queue_capacity)
    topo.connect("s_in", "s_bottom", bandwidth_bps, delay, queue_capacity)
    topo.connect("s_top", "s_out", bandwidth_bps, delay, queue_capacity)
    topo.connect("s_bottom", "s_out", bandwidth_bps, delay, queue_capacity)
    topo.connect("s_out", "h2", access, delay, queue_capacity)
    # Forward default: top path.  The bottom path's switches still know
    # how to reach both hosts so a later SPLIT at s_in works.
    topo.install_route(["s_in", "s_top", "s_out", "h2"], "10.0.0.2")
    topo.install_route(["s_bottom", "s_out", "h2"], "10.0.0.2")
    topo.install_route(["s_out", "s_bottom", "s_in", "h1"], "10.0.0.1")
    topo.install_route(["s_top", "s_in", "h1"], "10.0.0.1")
    return topo


def linear_topology(
    sim: Simulator,
    num_switches: int = 3,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delay: float = DEFAULT_DELAY,
    queue_capacity: int = DEFAULT_CAPACITY,
) -> Topology:
    """``h1 - s1 - s2 - ... - sN - h2`` with both routes installed."""
    if num_switches < 1:
        raise ValueError("need at least one switch")
    topo = Topology(sim)
    names = [f"s{index}" for index in range(1, num_switches + 1)]
    for name in names:
        topo.add_switch(name)
    topo.add_host("h1", "10.0.0.1")
    topo.add_host("h2", "10.0.0.2")
    topo.connect("h1", names[0], bandwidth_bps, delay, queue_capacity)
    for here, nxt in zip(names, names[1:]):
        topo.connect(here, nxt, bandwidth_bps, delay, queue_capacity)
    topo.connect(names[-1], "h2", bandwidth_bps, delay, queue_capacity)
    topo.install_route(names + ["h2"], "10.0.0.2")
    topo.install_route(list(reversed(names)) + ["h1"], "10.0.0.1")
    return topo
