"""Seedable traffic workloads over columnar flow tables (ROADMAP item 4).

The paper's figures are driven by a hand-built 12-flow mix
(:class:`repro.net.traffic.FlowMixWorkload`); this module replaces that
with a declarative, seeded workload layer in the spirit of the
fleet/containernet ``TrafficGenerator``/``TrafficPattern`` abstraction:

* **Patterns** describe sub-populations — heavy-tailed elephant/mice
  mixes, bursty on/off flows, short-lived benign churn, port-scan and
  fan-out/fan-in campaigns.
* A :class:`WorkloadSpec` combines patterns plus an optional diurnal
  load curve and ``build()``s them into one
  :class:`~repro.net.flowpop.FlowPopulation` (numpy columns, ground
  truth labels).  Same seed ⇒ identical population and departure
  schedule, bit for bit.
* A :class:`VectorizedFlowDriver` walks the population in batched
  windows: one heap event per ``batch_window`` for the *whole*
  population instead of one per packet per flow, so 10⁵–10⁶ flows run
  at the per-event cost of the old 12.

Three sink fidelities trade realism for scale (DESIGN.md §"Workloads"):

* :class:`HostSink` — every departure becomes a real packet through a
  real :class:`~repro.net.host.Host` and the acoustic pipeline; for
  figure-scale populations (≤ a few hundred flows).
* :class:`PresenceSink` — departures are quantized onto the emitter's
  rate-limit grid and delivered to detector apps as synthetic tone
  presence via :class:`~repro.core.telemetry.ToneEventBus`; the real
  detector-app logic runs, audio-free, at 10⁴–10⁵ flows.
* :class:`CountingSink` — pure departure counting; the perf-gate and
  million-flow path.

:class:`PerFlowWorkloadSource` is the retained per-flow-object
reference: one :class:`~repro.net.traffic.TrafficSource` per population
row, emitting the *identical* departure schedule — the equivalence and
speedup baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..faults.harness import seeded_rng
from .flowpop import (
    LABEL_CHURN,
    LABEL_ELEPHANT,
    LABEL_FANIN,
    LABEL_FANOUT,
    LABEL_MOUSE,
    LABEL_SCAN,
    VARY_DST_IP,
    VARY_DST_PORT,
    VARY_NONE,
    VARY_SRC_IP,
    FlowPopulation,
)
from .host import Host
from .packet import Packet, Protocol
from .sim import Simulator
from .traffic import TrafficSource

#: Default seed for ad-hoc workloads (the XEXT16 PR number).
DEFAULT_WORKLOAD_SEED = 16

#: The monitored band the fig4c/d port-scan detector watches; scan
#: campaigns sweep it and a couple of benign service ports sit inside
#: it (false-positive pressure is part of the workload's job).
DEFAULT_SCAN_PORTS = range(8000, 8020)

#: Benign service ports.  8004 and 8011 fall inside
#: :data:`DEFAULT_SCAN_PORTS` on purpose: realistic traffic touches
#: monitored ports too, so scan precision is earned, not free.
DEFAULT_SERVICE_PORTS = (80, 443, 8080, 8004, 8011)


def _columns(n: int) -> dict:
    """Default column block for ``n`` flows (patterns override)."""
    return {
        "src_ips": ["10.0.0.1"] * n,
        "dst_ips": ["10.200.0.1"] * n,
        "src_ports": np.full(n, 10_000, dtype=np.int64),
        "dst_ports": np.full(n, 80, dtype=np.int64),
        "protocols": [Protocol.UDP] * n,
        "rates": np.ones(n, dtype=np.float64),
        "phases": np.zeros(n, dtype=np.float64),
        "starts": np.zeros(n, dtype=np.float64),
        "stops": np.full(n, np.inf, dtype=np.float64),
        "on_durations": np.full(n, np.inf, dtype=np.float64),
        "off_durations": np.zeros(n, dtype=np.float64),
        "labels": np.full(n, LABEL_MOUSE, dtype=np.int8),
        "variation": np.full(n, VARY_NONE, dtype=np.int8),
        "vary_base": np.zeros(n, dtype=np.int64),
        "vary_span": np.ones(n, dtype=np.int64),
        "vary_prefix": [None] * n,
        "packet_sizes": np.full(n, 1_000, dtype=np.int64),
    }


def _random_endpoints(rng: np.random.Generator, columns: dict,
                      service_ports: tuple[int, ...],
                      num_servers: int = 16) -> None:
    """Fill random client/server endpoints into a column block."""
    n = len(columns["src_ips"])
    octets = rng.integers(0, 250, size=(n, 3))
    columns["src_ips"] = [
        f"10.{a}.{b}.{c}" for a, b, c in octets.tolist()
    ]
    servers = rng.integers(1, num_servers + 1, size=n)
    columns["dst_ips"] = [f"10.200.0.{s}" for s in servers.tolist()]
    columns["src_ports"] = rng.integers(1024, 65_536, size=n).astype(np.int64)
    columns["dst_ports"] = rng.choice(
        np.asarray(service_ports, dtype=np.int64), size=n
    )


class TrafficPattern:
    """Base class: a declarative sub-population of a workload."""

    def materialize(self, rng: np.random.Generator,
                    spec: "WorkloadSpec") -> dict:
        raise NotImplementedError


@dataclass(frozen=True)
class ElephantMicePattern(TrafficPattern):
    """Heavy-tailed elephant/mice mix: the §5 heavy-hitter workload.

    Mouse rates are log-uniform between the range bounds with a
    Zipf-like skew toward the slow end; elephants draw uniformly from
    their (much higher) range — by the paper's definition, a flow
    consuming a sizeable fraction of the 250 pps link.
    """

    num_mice: int = 1_000
    num_elephants: int = 0
    mouse_rate_range: tuple[float, float] = (0.02, 1.0)
    elephant_rate_range: tuple[float, float] = (50.0, 75.0)
    zipf_exponent: float = 1.2
    service_ports: tuple[int, ...] = DEFAULT_SERVICE_PORTS

    def materialize(self, rng: np.random.Generator,
                    spec: "WorkloadSpec") -> dict:
        n = self.num_mice + self.num_elephants
        columns = _columns(n)
        _random_endpoints(rng, columns, self.service_ports)
        lo, hi = self.mouse_rate_range
        mice = lo * (hi / lo) ** (rng.random(self.num_mice)
                                  ** self.zipf_exponent)
        elephants = rng.uniform(*self.elephant_rate_range,
                                size=self.num_elephants)
        rates = np.concatenate([elephants, mice])
        columns["rates"] = rates
        columns["phases"] = rng.random(n) / rates
        labels = columns["labels"]
        labels[: self.num_elephants] = LABEL_ELEPHANT
        return columns


@dataclass(frozen=True)
class OnOffPattern(TrafficPattern):
    """Bursty benign flows: ON at ``rate`` for a while, then silent."""

    num_flows: int = 200
    rate_range: tuple[float, float] = (2.0, 10.0)
    on_range: tuple[float, float] = (0.2, 1.0)
    off_range: tuple[float, float] = (0.5, 2.0)
    service_ports: tuple[int, ...] = DEFAULT_SERVICE_PORTS

    def materialize(self, rng: np.random.Generator,
                    spec: "WorkloadSpec") -> dict:
        columns = _columns(self.num_flows)
        _random_endpoints(rng, columns, self.service_ports)
        rates = rng.uniform(*self.rate_range, size=self.num_flows)
        columns["rates"] = rates
        columns["phases"] = rng.random(self.num_flows) / rates
        columns["on_durations"] = rng.uniform(*self.on_range,
                                              size=self.num_flows)
        columns["off_durations"] = rng.uniform(*self.off_range,
                                               size=self.num_flows)
        return columns


@dataclass(frozen=True)
class ChurnPattern(TrafficPattern):
    """Short-lived benign flows arriving and departing across the run."""

    num_flows: int = 400
    rate_range: tuple[float, float] = (0.5, 5.0)
    lifetime_range: tuple[float, float] = (0.3, 1.5)
    service_ports: tuple[int, ...] = DEFAULT_SERVICE_PORTS

    def materialize(self, rng: np.random.Generator,
                    spec: "WorkloadSpec") -> dict:
        columns = _columns(self.num_flows)
        _random_endpoints(rng, columns, self.service_ports)
        rates = rng.uniform(*self.rate_range, size=self.num_flows)
        starts = rng.uniform(0.0, spec.duration * 0.9, size=self.num_flows)
        lifetimes = rng.uniform(*self.lifetime_range, size=self.num_flows)
        columns["rates"] = rates
        columns["starts"] = starts
        columns["stops"] = starts + lifetimes
        columns["phases"] = starts + rng.random(self.num_flows) / rates
        columns["labels"] = np.full(self.num_flows, LABEL_CHURN,
                                    dtype=np.int8)
        return columns


@dataclass(frozen=True)
class PortScanPattern(TrafficPattern):
    """A sequential port-scan campaign over a monitored band.

    Each probe's destination port cycles ``first_port + k % num_ports``
    — candidate ordinal ``k`` is the probe counter, so one flow row
    paints the whole rising sweep without one object per port.
    """

    first_port: int = DEFAULT_SCAN_PORTS.start
    num_ports: int = len(DEFAULT_SCAN_PORTS)
    probe_rate: float = 100.0
    num_scanners: int = 1
    start: float = 0.0
    campaign_duration: float | None = None

    def materialize(self, rng: np.random.Generator,
                    spec: "WorkloadSpec") -> dict:
        n = self.num_scanners
        columns = _columns(n)
        _random_endpoints(rng, columns, (self.first_port,))
        stop = (spec.duration if self.campaign_duration is None
                else self.start + self.campaign_duration)
        columns["rates"] = np.full(n, self.probe_rate, dtype=np.float64)
        columns["starts"] = np.full(n, self.start, dtype=np.float64)
        columns["stops"] = np.full(n, stop, dtype=np.float64)
        columns["phases"] = self.start + rng.random(n) / self.probe_rate
        columns["labels"] = np.full(n, LABEL_SCAN, dtype=np.int8)
        columns["variation"] = np.full(n, VARY_DST_PORT, dtype=np.int8)
        columns["vary_base"] = np.full(n, self.first_port, dtype=np.int64)
        columns["vary_span"] = np.full(n, self.num_ports, dtype=np.int64)
        return columns


@dataclass(frozen=True)
class FanOutPattern(TrafficPattern):
    """Superspreader campaign: each source sprays ``fan_degree`` hosts."""

    num_sources: int = 1
    fan_degree: int = 50
    rate: float = 50.0
    start: float = 0.0

    def materialize(self, rng: np.random.Generator,
                    spec: "WorkloadSpec") -> dict:
        n = self.num_sources
        columns = _columns(n)
        _random_endpoints(rng, columns, (80,))
        columns["rates"] = np.full(n, self.rate, dtype=np.float64)
        columns["starts"] = np.full(n, self.start, dtype=np.float64)
        columns["phases"] = self.start + rng.random(n) / self.rate
        columns["labels"] = np.full(n, LABEL_FANOUT, dtype=np.int8)
        columns["variation"] = np.full(n, VARY_DST_IP, dtype=np.int8)
        columns["vary_base"] = np.ones(n, dtype=np.int64)
        columns["vary_span"] = np.full(n, self.fan_degree, dtype=np.int64)
        columns["vary_prefix"] = ["10.99.0."] * n
        return columns


@dataclass(frozen=True)
class FanInPattern(TrafficPattern):
    """DDoS-victim campaign: spoofed sources converge on one target."""

    num_victims: int = 1
    fan_degree: int = 50
    rate: float = 50.0
    start: float = 0.0

    def materialize(self, rng: np.random.Generator,
                    spec: "WorkloadSpec") -> dict:
        n = self.num_victims
        columns = _columns(n)
        _random_endpoints(rng, columns, (80,))
        columns["rates"] = np.full(n, self.rate, dtype=np.float64)
        columns["starts"] = np.full(n, self.start, dtype=np.float64)
        columns["phases"] = self.start + rng.random(n) / self.rate
        columns["labels"] = np.full(n, LABEL_FANIN, dtype=np.int8)
        columns["variation"] = np.full(n, VARY_SRC_IP, dtype=np.int8)
        columns["vary_base"] = np.ones(n, dtype=np.int64)
        columns["vary_span"] = np.full(n, self.fan_degree, dtype=np.int64)
        columns["vary_prefix"] = ["10.98.0."] * n
        return columns


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete seeded workload: patterns + diurnal curve + horizon.

    ``build()`` is pure: the same spec always produces the same
    :class:`FlowPopulation` (each pattern draws from
    ``seeded_rng(seed, "workload:<index>:<PatternClass>")``, so streams
    are independent and stable under pattern reordering-by-index).
    """

    seed: int = DEFAULT_WORKLOAD_SEED
    duration: float = 8.0
    patterns: tuple[TrafficPattern, ...] = ()
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 8.0

    def build(self) -> FlowPopulation:
        merged: dict[str, list] = {key: [] for key in _columns(0)}
        for index, pattern in enumerate(self.patterns):
            rng = seeded_rng(
                self.seed, f"workload:{index}:{type(pattern).__name__}"
            )
            block = pattern.materialize(rng, self)
            for key, column in block.items():
                merged[key].append(column)
        columns = {}
        for key, parts in merged.items():
            if parts and isinstance(parts[0], np.ndarray):
                columns[key] = np.concatenate(parts) if parts else np.empty(0)
            else:
                columns[key] = [item for part in parts for item in part]
        return FlowPopulation(
            **columns,
            diurnal_amplitude=self.diurnal_amplitude,
            diurnal_period=self.diurnal_period,
        )


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------


class CountingSink:
    """Schedule-only fidelity: counts departures, total and per flow."""

    def __init__(self, population: FlowPopulation) -> None:
        self.total = 0
        self.per_flow = np.zeros(len(population), dtype=np.int64)

    def emit_batch(self, times: np.ndarray, flow_idx: np.ndarray,
                   ks: np.ndarray, population: FlowPopulation) -> None:
        self.total += len(times)
        self.per_flow += np.bincount(flow_idx, minlength=len(self.per_flow))


class HostSink:
    """Full fidelity: each departure becomes a real packet sent from a
    real host at its exact departure time — the figure-pipeline path.
    Costs one sim event per packet, so keep populations figure-sized."""

    def __init__(self, host: Host, population: FlowPopulation) -> None:
        self.host = host
        self.population = population
        self.packets_sent = 0

    def emit_batch(self, times: np.ndarray, flow_idx: np.ndarray,
                   ks: np.ndarray, population: FlowPopulation) -> None:
        sim = self.host.sim
        for t, i, k in zip(times.tolist(), flow_idx.tolist(), ks.tolist()):
            sim.schedule_at(t, self._send, i, k)

    def _send(self, i: int, k: int) -> None:
        population = self.population
        packet = Packet(
            population.flow_key(i, k),
            size_bytes=int(population.packet_sizes[i]),
            created_at=self.host.sim.now,
        )
        self.host.send_packet(packet)
        self.packets_sent += 1


class BucketPresenceTap:
    """Heavy-hitter telemetry without audio: quantizes static-flow
    departures onto the emitter's per-bucket rate-limit grid.

    The real :class:`HeavyHitterEmitter` plays at most one tone per
    bucket per ``emission_period``; presence on a grid of that period
    is the same signal the detector counts (windows of presence), minus
    acoustic loss.  Varying-key campaign flows are excluded — their
    per-packet keys spread over thousands of buckets with negligible
    per-bucket presence.
    """

    def __init__(self, frequencies: list[float], period: float = 0.1) -> None:
        self.frequencies = np.asarray(frequencies, dtype=np.float64)
        self.period = period
        self._last_slot = np.full(len(frequencies), -1, dtype=np.int64)
        self.tones = 0

    def observe(self, times: np.ndarray, flow_idx: np.ndarray,
                ks: np.ndarray, population: FlowPopulation,
                bus) -> None:
        static = population.static[flow_idx]
        if not static.any():
            return
        num_buckets = np.uint64(len(self.frequencies))
        buckets = (population.stable_hashes[flow_idx[static]]
                   % num_buckets).astype(np.int64)
        slots = np.floor_divide(times[static], self.period).astype(np.int64)
        packed = np.unique(slots * np.int64(len(self.frequencies)) + buckets)
        slot = packed // len(self.frequencies)
        bucket = packed % len(self.frequencies)
        fresh = slot > self._last_slot[bucket]
        slot, bucket = slot[fresh], bucket[fresh]
        if not len(slot):
            return
        np.maximum.at(self._last_slot, bucket, slot)
        self.tones += len(slot)
        bus.push_batch(self.frequencies[bucket], slot * self.period)


class PortPresenceTap:
    """Port-scan telemetry without audio: per-port presence on the
    emitter's refractory grid, over a monitored port range."""

    def __init__(self, port_range: range, frequencies: list[float],
                 period: float = 0.1) -> None:
        if port_range.step != 1:
            raise ValueError("port_range must have step 1")
        if len(frequencies) < len(port_range):
            raise ValueError("need one frequency per monitored port")
        self.port_range = port_range
        self.frequencies = np.asarray(frequencies, dtype=np.float64)
        self.period = period
        self._last_slot = np.full(len(port_range), -1, dtype=np.int64)
        self.tones = 0

    def observe(self, times: np.ndarray, flow_idx: np.ndarray,
                ks: np.ndarray, population: FlowPopulation,
                bus) -> None:
        ports = population.dst_ports_for(flow_idx, ks)
        monitored = (ports >= self.port_range.start) & \
                    (ports < self.port_range.stop)
        if not monitored.any():
            return
        index = ports[monitored] - self.port_range.start
        slots = np.floor_divide(times[monitored], self.period).astype(np.int64)
        span = np.int64(len(self.port_range))
        packed = np.unique(slots * span + index)
        slot = packed // span
        port_idx = packed % span
        fresh = slot > self._last_slot[port_idx]
        slot, port_idx = slot[fresh], port_idx[fresh]
        if not len(slot):
            return
        np.maximum.at(self._last_slot, port_idx, slot)
        self.tones += len(slot)
        bus.push_batch(self.frequencies[port_idx], slot * self.period)


class PresenceSink:
    """Telemetry fidelity: batched departures → grid-quantized tone
    presence → a :class:`~repro.core.telemetry.ToneEventBus` feeding
    the *real* detector apps, no audio in the loop."""

    def __init__(self, bus, taps: list) -> None:
        self.bus = bus
        self.taps = list(taps)

    def emit_batch(self, times: np.ndarray, flow_idx: np.ndarray,
                   ks: np.ndarray, population: FlowPopulation) -> None:
        for tap in self.taps:
            tap.observe(times, flow_idx, ks, population, self.bus)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------


class VectorizedFlowDriver:
    """Batched departure scheduling over a :class:`FlowPopulation`.

    One sim event per ``batch_window`` computes every departure of the
    whole population inside that window and hands them to the sink —
    per-event cost is O(population) numpy work, not O(packets) Python
    callbacks.
    """

    def __init__(
        self,
        sim: Simulator,
        population: FlowPopulation,
        sink,
        stop: float,
        batch_window: float = 0.25,
        start: float = 0.0,
    ) -> None:
        if batch_window <= 0:
            raise ValueError("batch_window must be positive")
        if stop <= start:
            raise ValueError("stop must be after start")
        self.sim = sim
        self.population = population
        self.sink = sink
        self.stop = stop
        self.batch_window = batch_window
        self.start = start
        self.batches = 0
        self.packets_emitted = 0
        self._m_packets = obs.counter("workload.packets")
        self._m_batches = obs.counter("workload.batches")

    def launch(self) -> None:
        self.sim.schedule_at(self.start, self._on_batch, self.start)

    def _on_batch(self, window_start: float) -> None:
        window_end = min(window_start + self.batch_window, self.stop)
        times, flow_idx, ks = self.population.departures_between(
            window_start, window_end
        )
        if len(times):
            self.sink.emit_batch(times, flow_idx, ks, self.population)
            self.packets_emitted += len(times)
            self._m_packets.inc(len(times))
        self.batches += 1
        self._m_batches.inc()
        if window_end < self.stop:
            self.sim.schedule_at(window_end, self._on_batch, window_end)


class PerFlowWorkloadSource(TrafficSource):
    """The retained per-flow-object reference path.

    One :class:`TrafficSource` per population row, emitting exactly the
    population's departure schedule via absolute-time scheduling (no
    gap-sum drift) — the baseline the vectorized driver must match
    packet-for-packet and beat ≥10× on wall clock.
    """

    def __init__(self, host, population: FlowPopulation, index: int,
                 until: float) -> None:
        key = population.flow_key(index, 0)
        super().__init__(
            host, key.dst_ip, key.dst_port, src_port=key.src_port,
            packet_size=int(population.packet_sizes[index]),
            protocol=key.protocol,
        )
        self.population = population
        self.index = index
        self.until = until
        self._pending = population.next_departure(index, 0, until)

    def launch(self) -> None:
        if self._pending is None:
            return
        if self._running:
            raise RuntimeError("source already launched")
        self._running = True
        self._generation += 1
        self.sim.schedule_at(max(self._pending[1], self.sim.now),
                             self._emit, self._generation)

    def _emit(self, generation: int) -> None:
        if not self._running or generation != self._generation:
            return
        assert self._pending is not None
        k, _t = self._pending
        self._send_one()
        self._pending = self.population.next_departure(
            self.index, k + 1, self.until
        )
        if self._pending is None:
            self._running = False
            return
        self.sim.schedule_at(self._pending[1], self._emit, generation)

    def _send_one(self) -> None:
        assert self._pending is not None
        k, _t = self._pending
        packet = Packet(
            self.population.flow_key(self.index, k),
            size_bytes=self.packet_size,
            created_at=self.sim.now,
        )
        self.host.send_packet(packet)
        self.packets_emitted += 1

    def next_gap(self) -> float | None:  # pragma: no cover - unused
        raise NotImplementedError("PerFlowWorkloadSource schedules absolutely")


class CountingHost:
    """Duck-typed host that absorbs packets without a topology — a real
    :class:`Host` with no link raises on transmit, which would poison
    the per-flow reference benchmark with error handling."""

    def __init__(self, sim: Simulator, ip: str = "10.0.0.250") -> None:
        self.sim = sim
        self.ip = ip
        self.packets_sent = 0

    def send_packet(self, packet: Packet) -> None:
        self.packets_sent += 1


def launch_reference_sources(
    host, population: FlowPopulation, until: float
) -> list[PerFlowWorkloadSource]:
    """One launched :class:`PerFlowWorkloadSource` per population row."""
    sources = [
        PerFlowWorkloadSource(host, population, index, until)
        for index in range(len(population))
    ]
    for source in sources:
        source.launch()
    return sources


# ----------------------------------------------------------------------
# Named mixes
# ----------------------------------------------------------------------


def mice_only(num_flows: int = 2_000, seed: int = DEFAULT_WORKLOAD_SEED,
              duration: float = 8.0) -> WorkloadSpec:
    """Pure mice: no flow is truly heavy, so every heavy-hitter alert
    is a false positive — the precision floor."""
    return WorkloadSpec(seed=seed, duration=duration, patterns=(
        ElephantMicePattern(num_mice=num_flows, num_elephants=0),
    ))


def elephants_and_mice(num_flows: int = 2_000,
                       seed: int = DEFAULT_WORKLOAD_SEED,
                       duration: float = 8.0) -> WorkloadSpec:
    """The §5 heavy-hitter mix at population scale: a handful of true
    elephants buried in heavy-tailed mice."""
    num_elephants = max(1, num_flows // 500)
    return WorkloadSpec(seed=seed, duration=duration, patterns=(
        ElephantMicePattern(num_mice=num_flows - num_elephants,
                            num_elephants=num_elephants),
    ))


def scan_under_churn(num_flows: int = 2_000,
                     seed: int = DEFAULT_WORKLOAD_SEED,
                     duration: float = 8.0) -> WorkloadSpec:
    """A port-scan campaign hidden inside benign churn — the port-scan
    detector's recall test with realistic false-positive pressure."""
    num_churn = max(1, (num_flows * 2) // 5)
    num_mice = max(1, num_flows - num_churn - 1)
    return WorkloadSpec(seed=seed, duration=duration, patterns=(
        ElephantMicePattern(num_mice=num_mice, num_elephants=0),
        ChurnPattern(num_flows=num_churn),
        PortScanPattern(start=duration * 0.25,
                        campaign_duration=duration * 0.4),
    ))


def bursty_diurnal(num_flows: int = 2_000,
                   seed: int = DEFAULT_WORKLOAD_SEED,
                   duration: float = 8.0) -> WorkloadSpec:
    """Elephants and mice under on/off bursts and a diurnal load curve
    — detection robustness when 'heavy' flickers with time of day."""
    num_elephants = max(1, num_flows // 500)
    num_bursty = max(1, num_flows // 5)
    num_mice = max(1, num_flows - num_elephants - num_bursty)
    return WorkloadSpec(
        seed=seed, duration=duration,
        diurnal_amplitude=0.6, diurnal_period=max(duration / 2.0, 1e-9),
        patterns=(
            ElephantMicePattern(num_mice=num_mice,
                                num_elephants=num_elephants),
            OnOffPattern(num_flows=num_bursty),
        ),
    )


WORKLOAD_MIXES = {
    "mice": mice_only,
    "elephants-mice": elephants_and_mice,
    "scan-churn": scan_under_churn,
    "bursty-diurnal": bursty_diurnal,
}


def build_workload(name: str, *, num_flows: int = 2_000,
                   seed: int = DEFAULT_WORKLOAD_SEED,
                   duration: float = 8.0) -> WorkloadSpec:
    """Look up a named mix and size it; the ``--workload`` axis."""
    try:
        factory = WORKLOAD_MIXES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(WORKLOAD_MIXES)}"
        ) from None
    return factory(num_flows=num_flows, seed=seed, duration=duration)
