"""OpenFlow-style match-action flow tables.

The paper's controller reacts to sounds by sending "an OpenFlow
Flow-MOD message" (Figures 1 and 5): opening a closed port installs a
forwarding entry (§4), and load balancing installs a rule that splits
traffic across two ports (§6).  This module provides the switch-side
abstraction those messages program: prioritized wildcard matches bound
to forwarding actions, with per-entry counters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from .packet import FlowKey, Packet, Protocol


@dataclass(frozen=True)
class Match:
    """A wildcardable match over the 5-tuple plus ingress port.

    ``None`` fields match anything.  ``Match()`` is the catch-all.
    """

    in_port: int | None = None
    src_ip: str | None = None
    dst_ip: str | None = None
    src_port: int | None = None
    dst_port: int | None = None
    protocol: Protocol | None = None

    def matches(self, packet: Packet, in_port: int) -> bool:
        flow = packet.flow
        checks = (
            (self.in_port, in_port),
            (self.src_ip, flow.src_ip),
            (self.dst_ip, flow.dst_ip),
            (self.src_port, flow.src_port),
            (self.dst_port, flow.dst_port),
            (self.protocol, flow.protocol),
        )
        return all(want is None or want == got for want, got in checks)

    @classmethod
    def for_flow(cls, flow: FlowKey) -> "Match":
        """An exact match on one flow's 5-tuple."""
        return cls(
            src_ip=flow.src_ip,
            dst_ip=flow.dst_ip,
            src_port=flow.src_port,
            dst_port=flow.dst_port,
            protocol=flow.protocol,
        )

    def specificity(self) -> int:
        """Number of non-wildcard fields (used as a tiebreaker)."""
        fields = (
            self.in_port,
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            self.protocol,
        )
        return sum(1 for value in fields if value is not None)


class ActionType(Enum):
    """What to do with a matched packet."""

    FORWARD = "forward"  #: send out one port
    DROP = "drop"  #: discard
    FLOOD = "flood"  #: send out every port except the ingress
    SPLIT = "split"  #: hash/round-robin across several ports (§6)
    CONTROLLER = "controller"  #: punt to the controller (PacketIn)


@dataclass(frozen=True)
class Action:
    """A forwarding action; construct via the class methods."""

    type: ActionType
    out_ports: tuple[int, ...] = ()

    @classmethod
    def forward(cls, port: int) -> "Action":
        return cls(ActionType.FORWARD, (port,))

    @classmethod
    def drop(cls) -> "Action":
        return cls(ActionType.DROP)

    @classmethod
    def flood(cls) -> "Action":
        return cls(ActionType.FLOOD)

    @classmethod
    def split(cls, ports: list[int]) -> "Action":
        """Balance matched traffic across ``ports`` (per-packet
        round-robin, matching the paper's two-route split of Fig 5a)."""
        if len(ports) < 2:
            raise ValueError("split requires at least two ports")
        return cls(ActionType.SPLIT, tuple(ports))

    @classmethod
    def controller(cls) -> "Action":
        return cls(ActionType.CONTROLLER)


_entry_ids = itertools.count(1)


@dataclass
class FlowEntry:
    """One row of a flow table, with OpenFlow-style counters.

    ``meter`` (a :class:`~repro.net.meter.TokenBucket`) polices matched
    traffic: packets exceeding the configured rate are dropped at the
    switch, the in-network actuator of §6's congestion-control loop.
    """

    match: Match
    action: Action
    priority: int = 0
    meter: object | None = None
    entry_id: int = field(default_factory=lambda: next(_entry_ids))
    packet_count: int = 0
    byte_count: int = 0
    _round_robin: int = field(default=0, repr=False)

    def account(self, packet: Packet) -> None:
        self.packet_count += 1
        self.byte_count += packet.size_bytes

    def next_split_port(self) -> int:
        """Round-robin port selection for SPLIT actions."""
        if self.action.type is not ActionType.SPLIT:
            raise ValueError("next_split_port only applies to SPLIT entries")
        port = self.action.out_ports[self._round_robin % len(self.action.out_ports)]
        self._round_robin += 1
        return port


class FlowTable:
    """A prioritized flow table.

    Lookup returns the highest-priority matching entry; among equal
    priorities the more specific match wins, then the older entry.
    """

    def __init__(self) -> None:
        self._entries: list[FlowEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple[FlowEntry, ...]:
        return tuple(self._entries)

    def add(self, entry: FlowEntry) -> FlowEntry:
        """Install an entry, replacing any entry with an identical
        (match, priority) pair — OpenFlow ADD semantics."""
        self._entries = [
            existing
            for existing in self._entries
            if not (
                existing.match == entry.match
                and existing.priority == entry.priority
            )
        ]
        self._entries.append(entry)
        self._entries.sort(
            key=lambda e: (-e.priority, -e.match.specificity(), e.entry_id)
        )
        return entry

    def install(
        self,
        match: Match,
        action: Action,
        priority: int = 0,
        meter: object | None = None,
    ) -> FlowEntry:
        """Convenience wrapper around :meth:`add`."""
        return self.add(FlowEntry(match, action, priority, meter))

    def remove(self, match: Match, priority: int | None = None) -> int:
        """Delete entries with this match (and priority, if given).
        Returns how many were removed."""
        before = len(self._entries)
        self._entries = [
            entry
            for entry in self._entries
            if not (
                entry.match == match
                and (priority is None or entry.priority == priority)
            )
        ]
        return before - len(self._entries)

    def lookup(self, packet: Packet, in_port: int) -> FlowEntry | None:
        """The winning entry for a packet, or None on a table miss."""
        for entry in self._entries:
            if entry.match.matches(packet, in_port):
                return entry
        return None
