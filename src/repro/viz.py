"""Terminal visualization: the figures, in ASCII.

The paper's artifacts are plots — queue traces, byte counters, mel
spectrograms.  This module renders their text equivalents so the
examples and the CLI can *show* the shapes, not just assert them, in
any terminal with no plotting dependency.
"""

from __future__ import annotations

import numpy as np

from .net.stats import TimeSeries

#: Intensity ramp used by sparklines and heatmaps, quiet to loud.
RAMP = " .:-=+*#%@"


def sparkline(values, width: int = 60, peak: float | None = None) -> str:
    """One-line intensity plot of a numeric sequence.

    ``peak`` pins the scale (defaults to the data's own maximum); the
    sequence is decimated to at most ``width`` characters.
    """
    values = list(values)
    if not values:
        return ""
    top = peak if peak is not None else max(values)
    if top <= 0:
        return RAMP[0] * min(len(values), width)
    step = max(1, len(values) // width)
    chars = []
    for index in range(0, len(values), step):
        level = int(min(max(values[index] / top, 0.0), 1.0) * (len(RAMP) - 1))
        chars.append(RAMP[level])
    return "".join(chars)


def series_plot(
    series: TimeSeries,
    height: int = 8,
    width: int = 60,
    label: str | None = None,
) -> str:
    """A small multi-line plot of a time series.

    Rows run from the maximum value (top) to zero (bottom); the left
    gutter carries the scale.
    """
    if len(series) == 0:
        return "(empty series)"
    values = series.values
    top = max(max(values), 1e-12)
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    rows = []
    title = label if label is not None else series.name
    if title:
        rows.append(title)
    for row in range(height, 0, -1):
        threshold = top * (row - 0.5) / height
        line = "".join("#" if value >= threshold else " "
                       for value in sampled)
        gutter = f"{top * row / height:>8.1f} |"
        rows.append(gutter + line)
    axis = " " * 8 + " +" + "-" * len(sampled)
    rows.append(axis)
    rows.append(" " * 10 + f"t = {series.times[0]:.1f} s ... "
                f"{series.times[-1]:.1f} s")
    return "\n".join(rows)


def spectrogram_heatmap(
    times: np.ndarray,
    frequencies: np.ndarray,
    magnitudes: np.ndarray,
    height: int = 12,
    width: int = 64,
    db_floor: float = -60.0,
) -> str:
    """An ASCII heatmap of a (mel) spectrogram.

    Frequency runs bottom (low) to top (high), time left to right;
    intensity is dB relative to the strongest cell, clipped at
    ``db_floor``.
    """
    if len(times) == 0 or magnitudes.size == 0:
        return "(empty spectrogram)"
    # Resample onto the character grid.
    time_index = np.linspace(0, len(times) - 1, min(width, len(times)))
    freq_index = np.linspace(0, magnitudes.shape[1] - 1,
                             min(height, magnitudes.shape[1]))
    grid = magnitudes[time_index.astype(int)][:, freq_index.astype(int)]
    peak = max(float(grid.max()), 1e-15)
    levels_db = 20.0 * np.log10(np.maximum(grid, 1e-15) / peak)
    normalized = np.clip((levels_db - db_floor) / -db_floor, 0.0, 1.0)
    lines = []
    for column in range(normalized.shape[1] - 1, -1, -1):
        frequency = frequencies[int(freq_index[column])]
        cells = "".join(
            RAMP[int(value * (len(RAMP) - 1))]
            for value in normalized[:, column]
        )
        lines.append(f"{frequency:>7.0f} Hz |{cells}")
    lines.append(" " * 11 + "+" + "-" * normalized.shape[0])
    lines.append(" " * 12 + f"t = {times[0]:.1f} s ... {times[-1]:.1f} s")
    return "\n".join(lines)


def cdf_plot(values, width: int = 50, quantiles=(10, 25, 50, 75, 90, 99)) -> str:
    """A textual CDF: one bar per requested percentile."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return "(no samples)"
    top = float(np.percentile(data, max(quantiles)))
    lines = []
    for quantile in quantiles:
        point = float(np.percentile(data, quantile))
        bar = "#" * int(round((point / top) * width)) if top > 0 else ""
        lines.append(f"p{quantile:<3} {point:>10.4f} |{bar}")
    return "\n".join(lines)
