"""Servers: chassis of fans with failure injection.

Section 7 monitors "the sound of server fans" and detects "when one has
failed".  A :class:`Server` groups several :class:`~repro.fans.fan.FanModel`
rotors (real 1U boxes carry 4–8), renders their combined emission, and
supports injecting a failure of one fan — or the whole box losing power
(the UPS anecdote) — at a chosen time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..audio.channel import (
    PRUNE_PROPAGATION_ALLOWANCE,
    AcousticChannel,
    Position,
)
from ..audio.signal import DEFAULT_SAMPLE_RATE, AudioSignal
from .fan import FanModel


def default_fan_bank(
    num_fans: int = 4, base_rpm: float = 9_000.0, seed: int = 0
) -> list[FanModel]:
    """A realistic chassis fan set: same model, slightly different
    speeds (fans never spin in lockstep), distinct noise seeds."""
    if num_fans < 1:
        raise ValueError("num_fans must be >= 1")
    fans = []
    for index in range(num_fans):
        fans.append(
            FanModel(
                rpm=base_rpm * (1.0 + 0.015 * index),
                seed=seed * 1_000 + index,
            )
        )
    return fans


@dataclass
class Server:
    """A server chassis with its fan bank.

    Attributes
    ----------
    name:
        Identifier used in alerts.
    fans:
        The rotors in the chassis.
    position:
        Where the chassis sits in the room.
    """

    name: str
    fans: list[FanModel] = field(default_factory=default_fan_bank)
    position: Position = field(default_factory=Position)
    #: Per-fan power-loss time (index → seconds); None = healthy.
    _fan_stop_times: dict[int, float] = field(default_factory=dict)
    _attached: bool = field(default=False, repr=False)

    def fail_fan(self, fan_index: int, at_time: float) -> None:
        """Schedule one fan to lose power at ``at_time`` seconds.

        Must be called *before* :meth:`attach_to_channel` — the channel
        holds a pre-rendered emission, so later failures cannot affect
        an already-placed server.
        """
        if self._attached:
            raise RuntimeError(
                f"{self.name}: already attached to a channel; inject "
                "failures before attach_to_channel()"
            )
        if not 0 <= fan_index < len(self.fans):
            raise IndexError(f"no fan {fan_index} in {self.name}")
        if at_time < 0:
            raise ValueError("at_time must be non-negative")
        self._fan_stop_times[fan_index] = at_time

    def fail_all(self, at_time: float) -> None:
        """The whole box loses power (emergency shutdown scenario)."""
        for index in range(len(self.fans)):
            self.fail_fan(index, at_time)

    def is_failed(self, fan_index: int) -> bool:
        return fan_index in self._fan_stop_times

    def signature_frequencies(
        self, sample_rate: int = DEFAULT_SAMPLE_RATE
    ) -> list[float]:
        """All narrowband lines the chassis radiates when healthy."""
        freqs: list[float] = []
        for fan in self.fans:
            freqs.extend(fan.signature_frequencies(sample_rate))
        return sorted(freqs)

    def render(
        self,
        duration: float,
        sample_rate: int = DEFAULT_SAMPLE_RATE,
        lead_in: float = 0.0,
    ) -> AudioSignal:
        """The chassis' combined emission over ``[-lead_in, duration]``,
        honouring any injected failures (failure times stay anchored to
        t = 0; the lead-in prepends steady hum without disturbing the
        t >= 0 samples)."""
        parts = [
            fan.render(
                duration,
                sample_rate,
                stop_time=self._fan_stop_times.get(index),
                lead_in=lead_in,
            )
            for index, fan in enumerate(self.fans)
        ]
        return AudioSignal.from_components(parts, sample_rate)

    def attach_to_channel(
        self,
        channel: AcousticChannel,
        duration: float,
        lead_in: float | None = None,
    ) -> None:
        """Pre-render this server's emission and place it in the room.

        The rendered signal does not loop (a failed fan must *stay*
        silent).  Fans were already spinning before the capture window
        opens, so the emission pre-rolls by ``lead_in`` seconds
        (anchored at ``-lead_in``): by t = 0 the hum has crossed any
        room-scale listener distance and arrives steady, with no
        speed-of-sound onset transient.  The default lead-in is the
        channel's room-scale propagation allowance (zero when delay
        modelling is off).
        """
        if lead_in is None:
            lead_in = (
                PRUNE_PROPAGATION_ALLOWANCE
                if channel.enable_propagation_delay
                else 0.0
            )
        self._attached = True
        channel.add_noise(
            self.render(duration, channel.sample_rate, lead_in=lead_in),
            position=self.position,
            loop=False,
            start=-lead_in,
        )
