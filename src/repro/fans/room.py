"""Room acoustics: the datacenter and office scenes of Figure 6.

Section 7 records the same server in two environments: a production
datacenter (background "may exceed 85 dBA": dozens of other servers,
HVAC, broadband wash) and a quiet office.  These builders assemble an
:class:`~repro.audio.channel.AcousticChannel` populated with the
appropriate ambience, the server under test, and a microphone placed
nearby ("a closely placed microphone" answered the paper's open
question positively).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..audio.channel import AcousticChannel, Position
from ..audio.devices import Microphone
from ..audio.noise import datacenter_ambience, office_ambience
from ..audio.signal import DEFAULT_SAMPLE_RATE
from .server import Server, default_fan_bank


@dataclass
class RoomScene:
    """An assembled listening scene: channel + server + microphone."""

    channel: AcousticChannel
    server: Server
    microphone: Microphone
    duration: float
    #: Background servers (datacenter only) — left powered throughout.
    background_servers: list[Server]

    def capture(self, start: float, end: float):
        """Record the microphone over ``[start, end)``."""
        return self.microphone.record(self.channel, start, end)


def _background_rack(
    num_servers: int, duration: float, channel: AcousticChannel, seed: int
) -> list[Server]:
    """Neighbouring servers: same acoustic class, scattered positions,
    never failing.  They are the tonal clutter the detector must see
    through."""
    rng = np.random.default_rng(seed)
    servers = []
    for index in range(num_servers):
        position = Position(
            x=float(rng.uniform(1.5, 6.0)) * float(rng.choice((-1.0, 1.0))),
            y=float(rng.uniform(1.5, 6.0)) * float(rng.choice((-1.0, 1.0))),
            z=float(rng.uniform(0.0, 2.0)),
        )
        server = Server(
            name=f"bg{index}",
            fans=default_fan_bank(
                num_fans=4,
                base_rpm=float(rng.uniform(7_000, 11_000)),
                seed=seed + 17 * (index + 1),
            ),
            position=position,
        )
        server.attach_to_channel(channel, duration)
        servers.append(server)
    return servers


def datacenter_scene(
    duration: float = 12.0,
    mic_distance: float = 0.3,
    ambience_db: float = 72.0,
    num_background_servers: int = 8,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    seed: int = 42,
    server: Server | None = None,
) -> RoomScene:
    """The Figure 6a/6b environment: loud room, crowded rack.

    The server under test sits at the origin with the microphone
    ``mic_distance`` metres away (close placement is the paper's
    answer to detectability in 85 dBA rooms).

    The channel is built without speed-of-sound delay modelling: the
    detector compares FFT amplitude profiles of steady hum, for which
    the <=25 ms room-scale flight times carry no information, and the
    delay-free channel keeps captures aligned with emission time.
    """
    channel = AcousticChannel(sample_rate, enable_propagation_delay=False)
    ambience = datacenter_ambience(
        duration, ambience_db, sample_rate, np.random.default_rng(seed)
    )
    # Ambience is calibrated *at the microphone*: place it at the mic.
    mic_position = Position(x=mic_distance)
    channel.add_noise(ambience, position=mic_position, loop=True)
    target = server or Server("target", position=Position())
    target.attach_to_channel(channel, duration)
    background = _background_rack(
        num_background_servers, duration, channel, seed + 1
    )
    microphone = Microphone(position=mic_position, sample_rate=sample_rate,
                            seed=seed + 2)
    return RoomScene(channel, target, microphone, duration, background)


def office_scene(
    duration: float = 12.0,
    mic_distance: float = 0.5,
    ambience_db: float = 42.0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    seed: int = 43,
    server: Server | None = None,
) -> RoomScene:
    """The Figure 6c/6d environment: quiet office, single server.

    Delay modelling is off for the same reason as
    :func:`datacenter_scene`: amplitude-profile detection of steady hum
    gains nothing from millisecond flight times.
    """
    channel = AcousticChannel(sample_rate, enable_propagation_delay=False)
    mic_position = Position(x=mic_distance)
    ambience = office_ambience(
        duration, ambience_db, sample_rate, np.random.default_rng(seed)
    )
    channel.add_noise(ambience, position=mic_position, loop=True)
    target = server or Server("target", position=Position())
    target.attach_to_channel(channel, duration)
    microphone = Microphone(position=mic_position, sample_rate=sample_rate,
                            seed=seed + 2)
    return RoomScene(channel, target, microphone, duration, [])
