"""Rotor acoustics: the server cooling fan of Section 7.

A rotating fan radiates a *line spectrum* on top of broadband flow
noise: tones at the blade-pass frequency (``rpm / 60 × blades``) and
its harmonics, plus a weaker shaft-rate tone.  Those narrowband lines
are what Figure 6 shows standing above the datacenter wash, and their
disappearance is what the Figure 7 detector keys on.

The model supports failure injection with a physical coast-down: when a
fan loses power it does not fall silent instantly — RPM (and therefore
both tone frequency and level) decays over a spin-down period, which is
the transient the failure detector must ride through.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..audio.signal import DEFAULT_SAMPLE_RATE, AudioSignal, db_to_amplitude


@dataclass
class FanModel:
    """One cooling fan's acoustic signature.

    Attributes
    ----------
    rpm:
        Nominal rotation speed.  Typical 1U server fans run
        6 000–12 000 RPM.
    num_blades:
        Blade count; sets the blade-pass frequency.
    level_db:
        Level of the blade-pass fundamental at the fan, dB SPL.
    num_harmonics:
        Blade-pass harmonics radiated.
    harmonic_rolloff_db:
        Per-harmonic attenuation, dB.
    broadband_db:
        Level of the turbulent flow-noise bed, dB SPL.
    rpm_jitter:
        Fractional slow wander of RPM (belt/bearing variation).
    seed:
        Seed for jitter and broadband noise.
    """

    rpm: float = 9_000.0
    num_blades: int = 7
    level_db: float = 68.0
    num_harmonics: int = 5
    harmonic_rolloff_db: float = 5.0
    broadband_db: float = 52.0
    rpm_jitter: float = 0.002
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise ValueError(f"rpm must be positive, got {self.rpm}")
        if self.num_blades < 2:
            raise ValueError(f"num_blades must be >= 2, got {self.num_blades}")

    @property
    def blade_pass_hz(self) -> float:
        """Blade-pass frequency: the fan's acoustic fingerprint."""
        return self.rpm / 60.0 * self.num_blades

    @property
    def shaft_hz(self) -> float:
        """Shaft rotation frequency (one tone per revolution)."""
        return self.rpm / 60.0

    def signature_frequencies(self, sample_rate: int = DEFAULT_SAMPLE_RATE) -> list[float]:
        """The narrowband frequencies this fan radiates (below Nyquist)."""
        nyquist = sample_rate / 2
        freqs = [self.shaft_hz]
        for k in range(1, self.num_harmonics + 1):
            freq = self.blade_pass_hz * k
            if freq < nyquist:
                freqs.append(freq)
        return freqs

    def render(
        self,
        duration: float,
        sample_rate: int = DEFAULT_SAMPLE_RATE,
        stop_time: float | None = None,
        spin_down: float = 1.5,
        lead_in: float = 0.0,
    ) -> AudioSignal:
        """Synthesize the fan's sound at the fan position.

        Parameters
        ----------
        duration:
            Total rendered length, seconds.
        stop_time:
            If given, the fan loses power at this time and coasts down
            over ``spin_down`` seconds (frequency and level decay to
            zero).  ``stop_time <= 0`` renders a fan that never ran.
        lead_in:
            Extra steady hum *prepended* before t = 0 (the fan was
            already spinning when the render window opens).  The lead
            segment uses a derived noise seed so the samples for
            t >= 0 stay bit-identical to a render without lead-in.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if lead_in > 0:
            never_ran = stop_time is not None and stop_time <= 0
            pre = (
                AudioSignal(
                    np.zeros(int(round(lead_in * sample_rate))), sample_rate
                )
                if never_ran
                else replace(self, seed=self.seed + 104_729).render(
                    lead_in, sample_rate
                )
            )
            main = self.render(duration, sample_rate, stop_time, spin_down)
            return AudioSignal(
                np.concatenate([pre.samples, main.samples]), sample_rate
            )
        count = int(round(duration * sample_rate))
        if stop_time is not None and stop_time <= 0:
            return AudioSignal(np.zeros(count), sample_rate)
        rng = np.random.default_rng(self.seed)
        t = np.arange(count) / sample_rate

        # Speed profile: 1.0 while powered, exponential-ish coast-down
        # after stop_time.  Frequency and radiated level both track it.
        speed = np.ones(count)
        if stop_time is not None:
            coasting = t >= stop_time
            tau = max(spin_down, 1e-3) / 3.0
            speed[coasting] = np.exp(-(t[coasting] - stop_time) / tau)
            speed[speed < 0.02] = 0.0

        # Slow RPM wander (random walk, low-pass by cumulative mean).
        wander = 1.0 + self.rpm_jitter * np.cumsum(
            rng.standard_normal(count)
        ) / np.sqrt(np.arange(1, count + 1))

        instantaneous_hz = speed * wander
        samples = np.zeros(count)
        nyquist = sample_rate / 2

        def add_tone(base_hz: float, level_db: float) -> None:
            if base_hz >= nyquist:
                return
            phase = 2.0 * np.pi * np.cumsum(base_hz * instantaneous_hz) / sample_rate
            amplitude = db_to_amplitude(level_db) * np.sqrt(2.0)
            # Radiated aerodynamic power falls steeply with speed
            # (~5th power law for fan noise); square it on amplitude.
            samples_local = amplitude * (speed ** 2.5) * np.sin(phase)
            samples[:] += samples_local

        add_tone(self.shaft_hz, self.level_db - 12.0)
        for k in range(1, self.num_harmonics + 1):
            add_tone(
                self.blade_pass_hz * k,
                self.level_db - (k - 1) * self.harmonic_rolloff_db,
            )

        # Broadband flow noise, also gated by speed.
        flow = rng.standard_normal(count)
        flow_rms = np.sqrt(np.mean(np.square(flow)))
        flow *= db_to_amplitude(self.broadband_db) / max(flow_rms, 1e-12)
        samples += flow * (speed ** 2.5)

        return AudioSignal(samples, sample_rate)
