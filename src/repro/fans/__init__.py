"""Fan and room acoustics: the Section 7 substrate.

Rotor line-spectrum models, server chassis with failure injection, and
the datacenter / office listening scenes of Figure 6.
"""

from .fan import FanModel
from .room import RoomScene, datacenter_scene, office_scene
from .server import Server, default_fan_bank

__all__ = [
    "FanModel",
    "RoomScene",
    "Server",
    "datacenter_scene",
    "default_fan_bank",
    "office_scene",
]
