"""The one retry policy every retransmitting layer shares.

ChirpCast (arXiv:1508.07099) frames acoustic reliability as *policy* —
acknowledgement, redundancy, and giving up at the right time — rather
than per-call-site heroics.  Before this module the repo had three
hand-rolled copies of the same exponential-backoff-with-deadline loop
(the MP ARQ sender, the acoustic tone ARQ, and the spectrum-agility
prepare retry), each advancing its own ``timeout = min(timeout *
backoff, cap)`` state.  :class:`RetryPolicy` is the single description
of that schedule and :class:`RetrySchedule` the single stateful walker
over it, so a retransmission timeline is computed one way everywhere —
and is reproducible, including the optional seeded jitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a cap, a hard deadline, and optional
    seeded jitter.

    The first retry waits ``initial_timeout``; each subsequent wait is
    multiplied by ``backoff`` up to ``max_timeout``.  No retry is ever
    scheduled at or past ``start + deadline`` — whatever is being
    retried goes stale (management traffic must not queue forever).
    With ``jitter`` > 0 each wait is shrunk by up to that fraction,
    drawn from a seeded stream so identical seeds produce identical
    schedules (the decorrelation knob for fleets of senders sharing a
    policy, without giving up reproducibility).
    """

    initial_timeout: float = 0.05
    backoff: float = 2.0
    max_timeout: float = 0.5
    deadline: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.initial_timeout <= 0:
            raise ValueError("initial_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_timeout < self.initial_timeout:
            raise ValueError("max_timeout must be >= initial_timeout")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def schedule(self, start: float, seed: int | None = None) -> RetrySchedule:
        """A fresh stateful walker over this policy, anchored at
        ``start``.  ``seed`` feeds the jitter stream (ignored when
        ``jitter`` is 0); identical seeds yield identical schedules."""
        return RetrySchedule(self, start, seed=seed)

    def delay(self, attempt: int) -> float:
        """The un-jittered wait before retry number ``attempt`` (0 is
        the first retry) — the closed form the schedule walks."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return min(self.initial_timeout * self.backoff ** attempt,
                   self.max_timeout)


class RetrySchedule:
    """One delivery attempt's walk along a :class:`RetryPolicy`.

    ``next_retry(now)`` returns the absolute time of the next
    retransmission, or ``None`` once that retry (plus the caller's
    ``margin`` — e.g. a tone length and ACK listening window that must
    also fit) would not complete strictly before the deadline.
    """

    __slots__ = ("policy", "start", "deadline", "retries_planned",
                 "_timeout", "_rng")

    def __init__(self, policy: RetryPolicy, start: float,
                 seed: int | None = None) -> None:
        self.policy = policy
        self.start = start
        self.deadline = start + policy.deadline
        self.retries_planned = 0
        self._timeout = policy.initial_timeout
        self._rng = (random.Random(0 if seed is None else seed)
                     if policy.jitter > 0 else None)

    def next_retry(self, now: float, margin: float = 0.0) -> float | None:
        """Absolute time of the next retry after ``now``, or ``None``
        when the deadline leaves no room for another attempt (the
        caller should then arrange expiry at :attr:`deadline`)."""
        delay = self._timeout
        self._timeout = min(self._timeout * self.policy.backoff,
                            self.policy.max_timeout)
        if self._rng is not None:
            delay *= 1.0 - self.policy.jitter * self._rng.random()
        retry_at = now + delay
        if not retry_at + margin < self.deadline:
            return None
        self.retries_planned += 1
        return retry_at
