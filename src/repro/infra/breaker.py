"""Circuit breaker for per-Pi ARQ links.

A wedged Pi (crashed, unplugged, deafened) fails every frame at its
full delivery deadline — 2 s of retransmissions per frame, forever,
while the failover layer waits for enough misses to accumulate.  The
breaker is the standard three-state remedy: trip after N consecutive
failures, fast-fail everything while OPEN (callers get an immediate
verdict instead of a 2 s wake), and probe the link again after a
cooldown through the HALF_OPEN state.  Transition callbacks let the
failover layer treat breaker verdicts like
:class:`~repro.core.health.ChannelHealthMonitor` transitions — the
breaker is the *fast* path to the same decision.

All timing is caller-supplied simulation time; the breaker itself
never touches a clock, so it is reusable against any time source and
fully deterministic.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable

from .. import obs
from .retry import RetryPolicy, RetrySchedule


class BreakerState(enum.Enum):
    """The classic three-state circuit-breaker machine."""

    CLOSED = "closed"          # traffic flows; failures are counted
    OPEN = "open"              # fast-fail everything until cooldown
    HALF_OPEN = "half_open"    # limited probes decide recovery

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


#: Numeric encoding for the obs gauge (reports render floats).
_STATE_CODE = {BreakerState.CLOSED: 0.0,
               BreakerState.HALF_OPEN: 1.0,
               BreakerState.OPEN: 2.0}


@dataclass(frozen=True)
class BreakerTransition:
    """One state change, as delivered to ``on_transition`` listeners."""

    name: str
    time: float
    previous: BreakerState
    state: BreakerState
    consecutive_failures: int


class CircuitBreaker:
    """Trip-fast/fail-fast wrapper around an unreliable send path.

    The caller asks :meth:`allow` before each attempt and reports the
    outcome with :meth:`record_success` / :meth:`record_failure`:

    * CLOSED — attempts are allowed; ``failure_threshold`` consecutive
      failures trip the breaker OPEN.
    * OPEN — :meth:`allow` fast-fails (and counts it) until the current
      cooldown has elapsed since the trip, then the breaker moves to
      HALF_OPEN.
    * HALF_OPEN — up to ``half_open_probes`` attempts are let through;
      the first success re-CLOSEs, the first failure re-OPENs (and
      restarts the cooldown).

    Cooldowns walk a :class:`RetryPolicy` (``recovery_policy``): the
    first trip waits ``recovery_timeout``, each consecutive re-trip
    backs off exponentially up to 8× that, and a recovery resets the
    schedule — the re-probe cadence against a still-dead link is the
    same unified policy everything else retries under.

    A success in any state resets the consecutive-failure count.
    """

    def __init__(self, name: str = "link",
                 failure_threshold: int = 3,
                 recovery_timeout: float = 1.0,
                 half_open_probes: int = 1,
                 recovery_policy: RetryPolicy | None = None) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_timeout <= 0:
            raise ValueError("recovery_timeout must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.recovery_policy = recovery_policy or RetryPolicy(
            initial_timeout=recovery_timeout,
            backoff=2.0,
            max_timeout=8 * recovery_timeout,
            deadline=math.inf,
        )
        self._recovery: RetrySchedule | None = None
        self._reopen_at = math.inf
        self.half_open_probes = half_open_probes
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.fast_fails = 0
        self.opened_at: float | None = None
        self.transitions: list[BreakerTransition] = []
        self._listeners: list[Callable[[BreakerTransition], None]] = []
        self._probes_in_flight = 0
        self._m_state = obs.gauge(f"breaker.{name}.state")
        self._m_trips = obs.counter(f"breaker.{name}.trips")
        self._m_fast_fails = obs.counter(f"breaker.{name}.fast_fails")

    # ------------------------------------------------------------------
    # Decision points
    # ------------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """Whether an attempt may proceed at sim-time ``now``.

        While OPEN this is the cooldown check; a denied attempt is
        counted as a fast-fail (the saved 2 s deadline ride is the whole
        point of the breaker, so the count is the saving made visible).
        """
        if self.state is BreakerState.OPEN:
            if now >= self._reopen_at:
                self._move(BreakerState.HALF_OPEN, now)
            else:
                self.fast_fails += 1
                self._m_fast_fails.inc()
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_in_flight >= self.half_open_probes:
                self.fast_fails += 1
                self._m_fast_fails.inc()
                return False
            self._probes_in_flight += 1
        return True

    def record_success(self, now: float) -> None:
        """An attempt completed — clear failure history, re-close."""
        self.consecutive_failures = 0
        self._recovery = None
        if self.state is not BreakerState.CLOSED:
            self._move(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        """An attempt failed (expiry or early-suspect signal)."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._move(BreakerState.OPEN, now)
        elif (self.state is BreakerState.CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self._move(BreakerState.OPEN, now)

    # ------------------------------------------------------------------
    # Listeners and state plumbing
    # ------------------------------------------------------------------

    def on_transition(self,
                      listener: Callable[[BreakerTransition], None]) -> None:
        """Register a callback fired on every state change."""
        self._listeners.append(listener)

    def _move(self, state: BreakerState, now: float) -> None:
        previous = self.state
        self.state = state
        if state is BreakerState.OPEN:
            self.opened_at = now
            if self._recovery is None:
                self._recovery = self.recovery_policy.schedule(now)
            self._reopen_at = self._recovery.next_retry(now)
            self._m_trips.inc()
        if state is not BreakerState.HALF_OPEN:
            self._probes_in_flight = 0
        self._m_state.set(_STATE_CODE[state])
        transition = BreakerTransition(
            name=self.name, time=now, previous=previous, state=state,
            consecutive_failures=self.consecutive_failures,
        )
        self.transitions.append(transition)
        for listener in list(self._listeners):
            listener(transition)
