"""Token-bucket admission control.

The SDN teleorchestra measurements (arXiv:1808.09399) show control-loop
delay budgets only hold when admission control bounds what enters the
loop.  MDN has two ingest points that a detection storm can flood: the
controller's event-dispatch fan-out and the per-Pi ARQ send queue
(unbounded ``_pending`` growth = unbounded retransmission work).  A
token bucket in front of each turns overload into *counted shedding* —
capacity degrades by a visible number, not by queue collapse.

Lazy refill against caller-supplied sim time keeps the bucket exact and
deterministic: tokens accrue continuously at ``rate`` up to ``burst``,
and each :meth:`admit` call settles the elapsed interval before
deciding.
"""

from __future__ import annotations

from .. import obs


class TokenBucket:
    """A deterministic token bucket (``rate`` tokens/s, ``burst`` cap).

    ``admit(now)`` spends one token and returns True, or returns False
    and counts a shed.  The bucket starts full, so short bursts up to
    ``burst`` pass untouched; only sustained overload sheds.
    """

    def __init__(self, rate: float, burst: float,
                 name: str = "bucket") -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self.name = name
        self.tokens = float(burst)
        self.admitted = 0
        self.shed = 0
        self._last_refill = 0.0
        self._m_admitted = obs.counter(f"admission.{name}.admitted")
        self._m_shed = obs.counter(f"admission.{name}.shed")

    def admit(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens at sim-time ``now`` if available."""
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            self.admitted += 1
            self._m_admitted.inc()
            return True
        self.shed += 1
        self._m_shed.inc()
        return False

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._last_refill = max(self._last_refill, now)

    def peek(self, now: float) -> float:
        """Current token balance at ``now`` (refills, spends nothing)."""
        self._refill(now)
        return self.tokens
