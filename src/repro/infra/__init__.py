"""``repro.infra`` — production-hardening primitives for the MDN stack.

Four small, deterministic, sim-time-driven building blocks that the
core layers (ARQ, spectrum agility, failover, controller) delegate to
instead of hand-rolling their own copies:

* :class:`RetryPolicy` / :class:`RetrySchedule` — one exponential
  backoff-with-deadline schedule shared by every retransmitting layer;
* :class:`CircuitBreaker` — trip/fast-fail/half-open protection around
  each per-Pi ARQ link, feeding failover verdicts faster than frame
  deadlines can;
* :class:`TokenBucket` — admission control that turns ingest storms
  into counted shedding instead of unbounded queue growth;
* :class:`SpectraCache` — TTL/LRU memo so identical capture windows
  are transformed once and shared by every consumer.

All of it wires into :mod:`repro.obs` with the usual
zero-overhead-when-disabled pattern, and none of it touches a wall
clock — callers pass sim time in.
"""

from .admission import TokenBucket
from .breaker import BreakerState, BreakerTransition, CircuitBreaker
from .cache import SpectraCache, spectrum_fingerprint
from .retry import RetryPolicy, RetrySchedule

__all__ = [
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
    "RetryPolicy",
    "RetrySchedule",
    "SpectraCache",
    "TokenBucket",
    "spectrum_fingerprint",
]
