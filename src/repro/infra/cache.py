"""TTL/LRU cache for capture-window spectra.

The controller's FFT backend computes one spectrum per capture window;
the interference sentinel already taps those via ``spectrum_sink`` so
replanning costs no extra FFTs.  But two *listeners* (e.g. a primary
and a standby controller sharing one microphone position, or a detector
re-run over the same recorded window in an experiment) still each pay
the full ``analyze()``.  :class:`SpectraCache` memoizes spectra by a
content fingerprint of the window so identical captures are transformed
once; entries age out on a TTL (sim-time — stale windows are useless to
a real-time control loop) and the LRU bound keeps memory flat.

Modelled on the :class:`~repro.audio.devices.Microphone` self-noise
memo, which is what makes repeated captures of the same window
bit-identical — and therefore cacheable — in the first place.
"""

from __future__ import annotations

from collections import OrderedDict

from .. import obs

#: Max strided samples folded into a fingerprint.  64 float64s is a
#: 512-byte hash input — cheap against a >=2400-sample window FFT.
_FINGERPRINT_STRIDE_CAP = 64


def spectrum_fingerprint(window, time: float, analyzer) -> tuple:
    """A hashable content key for one (window, time, analyzer) triple.

    Combines the capture time (quantized to ns — distinct sim windows
    never collide), the exact sample geometry, the analyzer's transform
    parameters, and a strided slice of the raw samples plus their full
    sum, so two windows only share a key when they are the same audio
    analyzed the same way.
    """
    samples = window.samples
    n = len(samples)
    stride = max(1, n // _FINGERPRINT_STRIDE_CAP)
    return (
        int(round(time * 1e9)),
        n,
        window.sample_rate,
        analyzer.window,
        analyzer.zero_pad_factor,
        samples[::stride].tobytes(),
        float(samples.sum()) if n else 0.0,
    )


class SpectraCache:
    """Bounded, TTL-aged, LRU-evicted spectrum memo.

    ``get(key, now)`` returns the cached value or ``None`` (expired
    entries are dropped on the way); ``put(key, value, now)`` inserts,
    evicting the least-recently-used entry past ``capacity``.  All ages
    are sim-time.
    """

    def __init__(self, capacity: int = 64, ttl: float = 1.0,
                 name: str = "spectra") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.capacity = capacity
        self.ttl = ttl
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self._entries: OrderedDict[tuple, tuple[float, object]] = OrderedDict()
        self._m_hits = obs.counter(f"cache.{name}.hits")
        self._m_misses = obs.counter(f"cache.{name}.misses")
        self._m_evictions = obs.counter(f"cache.{name}.evictions")

    def get(self, key: tuple, now: float):
        entry = self._entries.get(key)
        if entry is not None:
            stored_at, value = entry
            if now - stored_at <= self.ttl:
                self._entries.move_to_end(key)
                self.hits += 1
                self._m_hits.inc()
                return value
            del self._entries[key]
            self.expirations += 1
        self.misses += 1
        self._m_misses.inc()
        return None

    def put(self, key: tuple, value, now: float) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (now, value)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._m_evictions.inc()

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0
