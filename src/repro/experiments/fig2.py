"""Figure 2 experiments: testbed characterization.

* **Fig 2a** — FFT of audio from five switches playing simultaneously:
  one identifiable spectral peak per switch.
* **Fig 2b** — CDF of FFT processing time for ~50 ms capture windows;
  the paper reports ~90% of samples processed in <= 0.35 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..audio import (
    AcousticChannel,
    FrequencyDetector,
    Microphone,
    Position,
    Speaker,
    SpectrumAnalyzer,
    ToneSpec,
    sine_tone,
    white_noise,
)
from ..core import FrequencyPlan
from .rigs import SPEAKER_RING


@dataclass
class Fig2AResult:
    """Per-switch attribution of the simultaneous-tone spectrum."""

    played: dict[str, float]            #: switch -> frequency played
    detected: dict[str, float]          #: switch -> measured frequency
    levels_db: dict[str, float]         #: switch -> received level
    spectrum_frequencies: np.ndarray
    spectrum_magnitudes: np.ndarray

    @property
    def all_identified(self) -> bool:
        return set(self.detected) == set(self.played)


def multiswitch_fft(
    num_switches: int = 5,
    tone_level_db: float = 72.0,
    noise_level_db: float | None = None,
    seed: int = 2,
) -> Fig2AResult:
    """Run the Figure 2a experiment.

    ``num_switches`` switches, each with its own frequency block from a
    20 Hz-guard plan, all play at once; a single microphone capture is
    analyzed and every peak attributed back to its switch.
    """
    channel = AcousticChannel()
    plan = FrequencyPlan(low_hz=600.0, guard_hz=20.0)
    played: dict[str, float] = {}
    for index in range(num_switches):
        name = f"switch{index}"
        allocation = plan.allocate(name, 4)
        frequency = allocation.frequency_for(0)
        played[name] = frequency
        speaker = Speaker(SPEAKER_RING[index % len(SPEAKER_RING)])
        speaker.play(channel, 0.0, ToneSpec(frequency, 0.5, tone_level_db))
    if noise_level_db is not None:
        channel.add_noise(
            white_noise(1.0, noise_level_db, rng=np.random.default_rng(seed)),
            Position(1.5, 1.5, 0.0),
        )
    microphone = Microphone(Position(), seed=seed)
    window = microphone.record(channel, 0.1, 0.45)
    detector = FrequencyDetector(plan.all_frequencies())
    events = detector.detect(window)

    detected: dict[str, float] = {}
    levels: dict[str, float] = {}
    for event in events:
        owner = plan.owner_of(event.frequency)
        if owner is not None:
            detected[owner] = event.measured_frequency
            levels[owner] = event.level_db
    spectrum = SpectrumAnalyzer(zero_pad_factor=2).analyze(window)
    return Fig2AResult(
        played, detected, levels, spectrum.frequencies, spectrum.magnitudes
    )


@dataclass
class Fig2BResult:
    """The FFT processing-time distribution."""

    timings_ms: np.ndarray          #: individual window timings
    window_duration_ms: float

    def percentile_ms(self, q: float) -> float:
        return float(np.percentile(self.timings_ms, q))

    def cdf_points(self, qs=(10, 25, 50, 75, 90, 95, 99)) -> list[tuple[int, float]]:
        """(percentile, milliseconds) pairs — the Figure 2b curve."""
        return [(q, self.percentile_ms(q)) for q in qs]


def fft_latency_cdf(
    num_samples: int = 1000,
    window_duration: float = 0.05,
    sample_rate: int = 16_000,
    seed: int = 3,
) -> Fig2BResult:
    """Run the Figure 2b measurement: time the full analysis pipeline
    (FFT + peak extraction input) on ``num_samples`` windows of
    ``window_duration`` seconds.

    This is a genuine wall-clock measurement of *this* machine, just as
    the paper's was of theirs; EXPERIMENTS.md records both.
    """
    rng = np.random.default_rng(seed)
    analyzer = SpectrumAnalyzer()
    tone = sine_tone(1000.0, window_duration, 65.0, sample_rate)
    noise = white_noise(window_duration, 40.0, sample_rate, rng)
    window = tone.mix(noise)
    # Warm-up: exclude numpy's first-call overhead, as any real
    # long-running listener would.
    for _ in range(10):
        analyzer.timed_analyze(window)
    timings = np.array(
        [analyzer.timed_analyze(window)[1] for _ in range(num_samples)]
    )
    return Fig2BResult(timings * 1000.0, window_duration * 1000.0)
