"""XEXT12 — resilience under injected faults.

The paper only tests the happy path plus one noisy-song scenario
(§5, Fig 4b).  This experiment measures how the reliability layer holds
the system together when the plant actually fails, in three parts:

1. **ARQ loss sweep** — MP frames over the switch→Pi link at swept
   Bernoulli loss rates, fire-and-forget vs the
   :class:`~repro.core.arq.MpArqSender` ARQ mode (repetition + ACK +
   exponential backoff + deadline).  The headline: at 20 % frame loss
   the no-ARQ path delivers < 80 % while ARQ stays ≥ 99 %.
2. **Failover episode** — a chirping switch's speaker drops out
   mid-run; the :class:`~repro.core.health.ChannelHealthMonitor`
   declares it DEAD and the
   :class:`~repro.core.apps.failover.FailoverManager` moves monitoring
   to the in-band baseline within two chirp intervals of the first
   missed beat, then returns to the acoustic channel after the speaker
   recovers.
3. **Fault-rate sweep** — random speaker dropouts at swept duty cycles
   vs end-to-end detection accuracy, with and without the failover
   layer's in-band coverage filling the gaps.

All three are deterministic for a given seed (every fault schedule and
every loss draw comes from ``(seed, label)`` streams).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..audio import AcousticChannel, Position
from ..audio.devices import Speaker
from ..core import (
    ArqConfig,
    ChannelHealth,
    ChannelHealthMonitor,
    MpArqSender,
    MusicAgent,
    MusicProtocolMessage,
    PiBridge,
)
from ..core.apps import HeartbeatChirper
from ..core.apps.failover import FailoverEvent, FailoverManager, InbandFallback
from ..faults import FaultHarness
from ..net.sim import Simulator
from ..net.switch import Switch
from .rigs import build_testbed

#: Seed every xext12 stage derives its fault schedules from.
XEXT12_SEED = 7


# ----------------------------------------------------------------------
# Part 1: ARQ vs fire-and-forget under MP frame loss
# ----------------------------------------------------------------------

@dataclass
class ArqPoint:
    """One loss-rate measurement."""

    loss_rate: float
    frames: int
    no_arq_delivery: float    #: frames played / frames sent, bare path
    arq_delivery: float       #: distinct frames played, ARQ path
    arq_acked: float          #: frames acknowledged back to the sender
    retransmits: int
    expired: int
    mean_ack_latency_ms: float
    frames_lost_no_arq: int   #: injector tally, bare run
    frames_lost_arq: int      #: injector tally, ARQ run


def _mp_rig(loss_rate: float, seed: int,
            label: str) -> tuple[Simulator, PiBridge, FaultHarness]:
    """A minimal switch + Pi-bridge rig with a lossy Pi link."""
    sim = Simulator()
    channel = AcousticChannel()
    switch = Switch(sim, "s1")
    agent = MusicAgent(sim, channel, Speaker(Position(1.0, 0.0, 0.0)),
                       name="s1")
    bridge = PiBridge(sim, switch, agent)
    harness = FaultHarness(sim, seed=seed)
    if loss_rate:
        harness.mp_link(switch.ports[bridge.pi_port], loss_rate=loss_rate,
                        label=label)
    return sim, bridge, harness


def arq_loss_sweep(
    loss_rates: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4),
    frames: int = 150,
    frame_interval: float = 0.25,
    seed: int = XEXT12_SEED,
    config: ArqConfig | None = None,
) -> list[ArqPoint]:
    """Sweep MP-frame loss, fire-and-forget vs ARQ, same loss stream."""
    config = config or ArqConfig()
    message = MusicProtocolMessage(1000.0, 0.05, 70.0)
    results = []
    for loss_rate in loss_rates:
        label = f"mp_loss/{loss_rate}"
        # Bare path: every frame is sent once; delivery is what the Pi
        # actually played.
        sim, bridge, harness = _mp_rig(loss_rate, seed, label)
        for index in range(frames):
            sim.schedule_at(index * frame_interval, bridge.send_mp, message)
        sim.run(frames * frame_interval + config.deadline + 1.0)
        no_arq_delivery = bridge.pi.mp_played.total / frames
        lost_bare = harness.summary().get("mp_frames_lost", 0)

        # ARQ path: identical schedule and loss stream (same label), but
        # framed + acknowledged + retransmitted.
        sim, bridge, harness = _mp_rig(loss_rate, seed, label)
        sender = MpArqSender(bridge, config)
        for index in range(frames):
            sim.schedule_at(index * frame_interval, sender.send, message)
        sim.run(frames * frame_interval + config.deadline + 1.0)
        stats = sender.stats()
        results.append(ArqPoint(
            loss_rate=loss_rate,
            frames=frames,
            no_arq_delivery=no_arq_delivery,
            arq_delivery=len(bridge.pi.mp_seen_seqs) / frames,
            arq_acked=stats.delivery_rate,
            retransmits=stats.retransmits,
            expired=stats.expired,
            mean_ack_latency_ms=stats.mean_latency * 1000.0,
            frames_lost_no_arq=lost_bare,
            frames_lost_arq=harness.summary().get("mp_frames_lost", 0),
        ))
    return results


# ----------------------------------------------------------------------
# Part 2: speaker death -> in-band failover -> acoustic recovery
# ----------------------------------------------------------------------

@dataclass
class FailoverResult:
    """One deterministic dropout episode, end to end."""

    period: float
    fault_start: float
    fault_end: float
    first_missed_beat: float
    dead_declared_at: float | None
    failover_at: float | None
    failback_at: float | None
    #: failover_at - first_missed_beat (the acceptance metric).
    failover_latency: float | None
    inband_delivery_rate: float   #: heartbeat delivery while failed over
    inband_delivered: int
    beats_emitted: int
    final_state: ChannelHealth
    events: list[FailoverEvent] = field(default_factory=list)
    fault_summary: dict[str, int] = field(default_factory=dict)


def failover_experiment(
    period: float = 0.3,
    fault_start: float = 3.2,
    outage: float = 3.0,
    duration: float = 12.0,
    seed: int = XEXT12_SEED,
) -> FailoverResult:
    """One switch chirps; its speaker dies and later recovers.

    The chirper beats on the grid ``period/2 + n*period``; the dropout
    window opens just after a heard beat, so the failover latency is
    measured from the first beat the outage actually silences.
    """
    testbed = build_testbed("single")
    sim = testbed.sim
    allocation = testbed.plan.allocate("health/s1", 2)
    frequency = allocation.frequency_for(0)
    agent = testbed.agents["s1"]
    chirper = HeartbeatChirper(sim, agent, frequency, period)

    monitor = ChannelHealthMonitor(
        testbed.controller, {"s1": frequency}, period=period,
    )
    fallback = InbandFallback(testbed.topo.hosts["h1"],
                              testbed.topo.hosts["h2"], period=period / 2)
    manager = FailoverManager(testbed.controller, monitor,
                              {"s1": fallback})

    harness = FaultHarness(sim, seed=seed)
    air = harness.acoustic(testbed.channel)
    fault_end = fault_start + outage
    air.drop_speaker(agent.speaker.position, fault_start, fault_end)

    testbed.controller.start()
    sim.run(duration)

    # The first beat the outage silences: the first grid beat inside
    # the dropout window.
    beat0 = period / 2
    n = 0
    while beat0 + n * period < fault_start:
        n += 1
    first_missed = beat0 + n * period

    dead_at = next((t.time for t in monitor.transitions
                    if t.state is ChannelHealth.DEAD), None)
    failover_at = next((e.time for e in manager.events
                        if e.action == "to_inband"), None)
    failback_at = next((e.time for e in manager.events
                        if e.action == "to_acoustic"), None)
    inband = fallback.stats()
    return FailoverResult(
        period=period,
        fault_start=fault_start,
        fault_end=fault_end,
        first_missed_beat=first_missed,
        dead_declared_at=dead_at,
        failover_at=failover_at,
        failback_at=failback_at,
        failover_latency=(failover_at - first_missed
                          if failover_at is not None else None),
        inband_delivery_rate=inband.delivery_rate,
        inband_delivered=inband.delivered,
        beats_emitted=chirper.beats_emitted,
        final_state=monitor.state_of("s1"),
        events=list(manager.events),
        fault_summary=harness.summary(),
    )


# ----------------------------------------------------------------------
# Part 3: fault rate vs end-to-end detection accuracy
# ----------------------------------------------------------------------

@dataclass
class ResiliencePoint:
    """One fault-rate measurement."""

    fault_rate: float
    dropout_windows: int
    beats_emitted: int
    beats_heard: int
    detection_accuracy: float      #: acoustic beats heard / emitted
    failovers: int                 #: to_inband activations
    inband_delivered: int          #: heartbeats delivered while failed over
    covered_fraction: float        #: beats covered acoustically OR in-band
    fault_summary: dict[str, int] = field(default_factory=dict)


def resilience_sweep(
    fault_rates: tuple[float, ...] = (0.0, 0.15, 0.3, 0.5),
    duration: float = 24.0,
    period: float = 0.3,
    mean_outage: float = 1.2,
    seed: int = XEXT12_SEED,
) -> list[ResiliencePoint]:
    """Random speaker dropouts at swept duty cycles vs what the
    management plane still sees (acoustically, and after in-band
    fill-in)."""
    results = []
    for rate in fault_rates:
        testbed = build_testbed("single")
        sim = testbed.sim
        frequency = testbed.plan.allocate("health/s1", 2).frequency_for(0)
        agent = testbed.agents["s1"]
        chirper = HeartbeatChirper(sim, agent, frequency, period)
        heard: list[float] = []
        testbed.controller.watch([frequency],
                                 on_onset=lambda e: heard.append(e.time))
        monitor = ChannelHealthMonitor(
            testbed.controller, {"s1": frequency}, period=period,
        )
        fallback = InbandFallback(testbed.topo.hosts["h1"],
                                  testbed.topo.hosts["h2"],
                                  period=period / 2)
        manager = FailoverManager(testbed.controller, monitor,
                                  {"s1": fallback})
        harness = FaultHarness(sim, seed=seed)
        air = harness.acoustic(testbed.channel)
        windows = air.random_dropouts(
            agent.speaker.position, 1.0, duration - 1.0, rate,
            mean_outage=mean_outage, label=f"dropouts/{rate}",
        )
        testbed.controller.start()
        sim.run(duration)

        emitted = chirper.beats_emitted
        inband = fallback.stats()
        accuracy = len(heard) / emitted if emitted else 0.0
        covered = min(1.0, (len(heard) + inband.delivered) / emitted
                      if emitted else 0.0)
        results.append(ResiliencePoint(
            fault_rate=rate,
            dropout_windows=len(windows),
            beats_emitted=emitted,
            beats_heard=len(heard),
            detection_accuracy=accuracy,
            failovers=sum(1 for e in manager.events
                          if e.action == "to_inband"),
            inband_delivered=inband.delivered,
            covered_fraction=covered,
            fault_summary=harness.summary(),
        ))
    return results


# ----------------------------------------------------------------------
# Top-level driver (CLI / obs entry point)
# ----------------------------------------------------------------------

@dataclass
class Xext12Result:
    """Everything the xext12 CLI run produces."""

    arq: list[ArqPoint]
    failover: FailoverResult
    resilience: list[ResiliencePoint]


def resilience_experiment(smoke: bool = False,
                          seed: int = XEXT12_SEED) -> Xext12Result:
    """The full XEXT12 stack; ``smoke`` shrinks every sweep for CI."""
    if smoke:
        arq = arq_loss_sweep(loss_rates=(0.0, 0.2), frames=60, seed=seed)
        failover = failover_experiment(seed=seed, duration=10.0)
        resilience = resilience_sweep(fault_rates=(0.0, 0.3),
                                      duration=12.0, seed=seed)
    else:
        arq = arq_loss_sweep(seed=seed)
        failover = failover_experiment(seed=seed)
        resilience = resilience_sweep(seed=seed)
    return Xext12Result(arq=arq, failover=failover, resilience=resilience)
