"""Figure-regeneration experiments: one callable per paper artifact.

Every evaluation figure in the paper maps to a function here (see the
per-experiment index in DESIGN.md); the benchmark suite and the example
scripts are thin drivers over these.
"""

from .fig2 import Fig2AResult, Fig2BResult, fft_latency_cdf, multiswitch_fft
from .fig3 import Fig3Result, port_knocking_experiment
from .fig4 import (
    Fig4ABResult,
    Fig4CDResult,
    heavy_hitter_experiment,
    port_scan_experiment,
)
from .fig5 import (
    Fig5ABResult,
    Fig5CDResult,
    load_balancing_experiment,
    queue_monitor_experiment,
)
from .fig67 import (
    Fig6Panel,
    Fig7Result,
    fan_failure_experiment,
    fan_spectrogram_panel,
)
from .rigs import Testbed, build_testbed
from .scaling import ScalePoint, monitoring_scale_sweep
from .xbase import (
    EcnVsMdnResult,
    InbandVsOobResult,
    SketchVsMdnResult,
    ecn_vs_mdn,
    inband_vs_oob,
    sketch_vs_mdn,
)
from .xext import (
    ModemResult,
    RelayResult,
    SuperspreaderResult,
    UltrasoundResult,
    modem_experiment,
    relay_experiment,
    superspreader_experiment,
    ultrasound_experiment,
)
from .xext12 import (
    ArqPoint,
    FailoverResult,
    ResiliencePoint,
    Xext12Result,
    arq_loss_sweep,
    failover_experiment,
    resilience_experiment,
    resilience_sweep,
)
from .xext13 import (
    PolicyResult,
    SweepPoint,
    Xext13Result,
    bandwidth_sweep,
    spectrum_agility_experiment,
    spectrum_agility_run,
)
from .xext14 import (
    SharedSpectraResult,
    StormResult,
    WedgedLinkResult,
    Xext14Result,
    infra_experiment,
    shared_spectra_experiment,
    storm_experiment,
    wedged_link_experiment,
)
from .xext15 import (
    FleetScalePoint,
    Xext15Result,
    fleet_experiment,
)
from .xext16 import (
    WorkloadMixPoint,
    WorkloadScalePoint,
    WorkloadSpeedupPoint,
    Xext16Result,
    measure_speedup,
    workload_experiment,
)
from .xext17 import (
    ChaosPoint,
    Xext17Result,
    chaos_experiment,
)
from .xcap import (
    BackendComparison,
    ConcurrencyPoint,
    GuardPoint,
    MultipathPoint,
    backend_ablation,
    concurrency_sweep,
    guard_spacing_sweep,
    multipath_sweep,
)

__all__ = [
    "ArqPoint",
    "BackendComparison",
    "ConcurrencyPoint",
    "EcnVsMdnResult",
    "Fig2AResult",
    "Fig2BResult",
    "Fig3Result",
    "Fig4ABResult",
    "Fig4CDResult",
    "Fig5ABResult",
    "Fig5CDResult",
    "FailoverResult",
    "Fig6Panel",
    "Fig7Result",
    "GuardPoint",
    "InbandVsOobResult",
    "ModemResult",
    "MultipathPoint",
    "RelayResult",
    "ResiliencePoint",
    "ScalePoint",
    "SketchVsMdnResult",
    "SuperspreaderResult",
    "Testbed",
    "UltrasoundResult",
    "Xext12Result",
    "arq_loss_sweep",
    "backend_ablation",
    "build_testbed",
    "concurrency_sweep",
    "ecn_vs_mdn",
    "failover_experiment",
    "fan_failure_experiment",
    "fan_spectrogram_panel",
    "fft_latency_cdf",
    "guard_spacing_sweep",
    "heavy_hitter_experiment",
    "inband_vs_oob",
    "load_balancing_experiment",
    "modem_experiment",
    "monitoring_scale_sweep",
    "multipath_sweep",
    "multiswitch_fft",
    "port_knocking_experiment",
    "port_scan_experiment",
    "queue_monitor_experiment",
    "relay_experiment",
    "resilience_experiment",
    "resilience_sweep",
    "sketch_vs_mdn",
    "spectrum_agility_experiment",
    "spectrum_agility_run",
    "superspreader_experiment",
    "ultrasound_experiment",
    "PolicyResult",
    "SweepPoint",
    "Xext13Result",
    "bandwidth_sweep",
    "SharedSpectraResult",
    "StormResult",
    "WedgedLinkResult",
    "Xext14Result",
    "infra_experiment",
    "shared_spectra_experiment",
    "storm_experiment",
    "wedged_link_experiment",
    "FleetScalePoint",
    "Xext15Result",
    "fleet_experiment",
    "WorkloadMixPoint",
    "WorkloadScalePoint",
    "WorkloadSpeedupPoint",
    "Xext16Result",
    "measure_speedup",
    "workload_experiment",
    "ChaosPoint",
    "Xext17Result",
    "chaos_experiment",
]
