"""Baseline-comparison experiments (XBASE1–3 in DESIGN.md).

The paper argues qualitatively against sketches (§5), ECN (§6) and
in-band management (§1).  These experiments make each comparison
quantitative on the same workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import (
    AcousticHeartbeat,
    ECNMarker,
    ECNReceiver,
    ECNSourceObserver,
    HeartbeatMonitor,
    HeartbeatSender,
    SketchHeavyHitterDetector,
)
from ..core.apps import (
    BandToneMap,
    FlowToneMapper,
    HeavyHitterDetectorApp,
    HeavyHitterEmitter,
    QueueChirper,
    QueueMonitorApp,
)
from ..net import (
    ConstantRateSource,
    FlowKey,
    FlowMixWorkload,
    HostSink,
    VectorizedFlowDriver,
    build_workload,
)
from ..net.flowpop import LABEL_ELEPHANT
from ..core.apps.evaluation import score_heavy_hitter
from .fig4 import LINK_CAPACITY_PPS
from .rigs import build_testbed


@dataclass
class SketchVsMdnResult:
    """XBASE1: do the sketch and the acoustic detector agree?"""

    heavy_flow: FlowKey | None
    mdn_detected: bool
    sketch_detected: bool
    mdn_false_positive_buckets: int
    sketch_false_positive_flows: int
    workload: str | None = None
    #: Ground-truth precision/recall for the MDN side — workload runs only.
    mdn_precision_recall: dict | None = None

    @property
    def agree_on_heavy(self) -> bool:
        return self.mdn_detected and self.sketch_detected


def sketch_vs_mdn(
    duration: float = 8.0,
    num_flows: int = 10,
    seed: int = 3,
    workload: str | None = None,
) -> SketchVsMdnResult:
    """Run the same flow mix through both detectors simultaneously.

    ``workload`` swaps the hand mix for a named seeded mix; both
    detectors then compete on a population with ground-truth labels and
    the MDN side is additionally scored as precision/recall.
    """
    testbed = build_testbed("single")
    allocation = testbed.plan.allocate("s1", 16)
    mapper = FlowToneMapper(allocation)
    HeavyHitterEmitter(testbed.topo.switches["s1"], testbed.agents["s1"],
                       mapper)
    mdn_app = HeavyHitterDetectorApp(testbed.controller, mapper)

    # Packet-count threshold equivalent to the tone rule: the heavy
    # flow pushes ~75 pps; mice < 3 pps.
    sketch = SketchHeavyHitterDetector(interval=1.0, threshold=25)
    testbed.topo.switches["s1"].on_forward(
        lambda packet, _in, _out: sketch.observe(packet, testbed.sim.now)
    )
    testbed.controller.start()

    if workload is not None:
        spec = build_workload(workload, num_flows=num_flows, seed=seed,
                              duration=duration)
        population = spec.build().retarget(testbed.topo.hosts["h2"].ip)
        driver = VectorizedFlowDriver(
            testbed.sim, population,
            HostSink(testbed.topo.hosts["h1"], population), stop=duration,
        )
        driver.launch()
        testbed.sim.run(duration)
        sketch.flush(duration)
        mdn_app.finalize(duration)

        elephant_rows = population.indices_with_label(LABEL_ELEPHANT)
        elephant_keys = {
            population.flow_key(int(row)) for row in elephant_rows
        }
        truth_frequencies = {
            mapper.frequency_of(key) for key in elephant_keys
        }
        mouse_keys = {
            population.flow_key(i) for i in range(len(population))
            if population.static[i]
        } - elephant_keys
        heavy = (population.flow_key(int(elephant_rows[0]))
                 if len(elephant_rows) else None)
        flagged = mdn_app.heavy_frequencies()
        return SketchVsMdnResult(
            heavy_flow=heavy,
            mdn_detected=bool(truth_frequencies)
            and truth_frequencies <= flagged,
            sketch_detected=bool(elephant_keys)
            and elephant_keys <= sketch.heavy_flows(),
            mdn_false_positive_buckets=len(flagged - truth_frequencies),
            sketch_false_positive_flows=len(
                sketch.heavy_flows() & mouse_keys
            ),
            workload=workload,
            mdn_precision_recall=score_heavy_hitter(
                mdn_app, population).as_dict(),
        )

    mix = FlowMixWorkload(
        testbed.topo.hosts["h1"], testbed.topo.hosts["h2"].ip,
        link_capacity_pps=LINK_CAPACITY_PPS, num_flows=num_flows, seed=seed,
    )
    mix.launch()
    testbed.sim.run(duration)
    sketch.flush(duration)
    mdn_app.finalize(duration)

    heavy = mix.heavy_flows[0]
    heavy_frequency = mapper.frequency_of(heavy)
    mouse_flows = [spec.flow for spec in mix.specs[1:]]
    mouse_frequencies = {
        mapper.frequency_of(flow) for flow in mouse_flows
    } - {heavy_frequency}
    return SketchVsMdnResult(
        heavy_flow=heavy,
        mdn_detected=heavy_frequency in mdn_app.heavy_frequencies(),
        sketch_detected=heavy in sketch.heavy_flows(),
        mdn_false_positive_buckets=len(
            mdn_app.heavy_frequencies() & mouse_frequencies
        ),
        sketch_false_positive_flows=len(
            sketch.heavy_flows() & set(mouse_flows)
        ),
    )


@dataclass
class EcnVsMdnResult:
    """XBASE2: congestion-notification latency, tone vs ECN echo."""

    congestion_onset: float       #: first time the queue crossed threshold
    mdn_heard_at: float | None    #: controller heard the high tone
    ecn_echo_at: float | None     #: source received the first CE echo
    mdn_latency: float | None
    ecn_latency: float | None


def ecn_vs_mdn(
    duration: float = 12.0,
    source_rate_pps: float = 450.0,
    mark_threshold: int = 76,
) -> EcnVsMdnResult:
    """Congest one switch; race the 300 ms chirp against the ECN echo.

    Both signals key on the same queue state (>75 packets) so their
    notification latencies are directly comparable.
    """
    testbed = build_testbed("single")
    topo = testbed.topo
    switch = topo.switches["s1"]
    port = topo.port_towards("s1", "h2")

    tones = BandToneMap(500.0, 600.0, 700.0)
    QueueChirper(testbed.sim, switch, port, testbed.agents["s1"], tones)
    monitor = QueueMonitorApp(testbed.controller, "s1", tones)
    testbed.controller.start()

    marker = ECNMarker(switch.ports[port], mark_threshold=mark_threshold)
    switch.on_forward(
        lambda packet, _in, out: marker.maybe_mark(packet, testbed.sim.now)
        if out == port else None
    )
    ECNReceiver(topo.hosts["h2"])
    observer = ECNSourceObserver(topo.hosts["h1"])

    # Track when the queue actually crossed the high threshold.
    onset_holder: list[float] = []

    def watch_queue() -> None:
        if not onset_holder and len(switch.ports[port].queue) > 75:
            onset_holder.append(testbed.sim.now)

    testbed.sim.every(0.01, watch_queue)

    source = ConstantRateSource(topo.hosts["h1"], topo.hosts["h2"].ip, 80,
                                rate_pps=source_rate_pps, ecn_capable=True)
    source.launch()
    testbed.sim.run(duration)

    onset = onset_holder[0] if onset_holder else float("nan")
    mdn_heard = next(
        (time for time, band in monitor.band_history if band == "high"), None
    )
    ecn_echo = observer.first_echo_time
    return EcnVsMdnResult(
        congestion_onset=onset,
        mdn_heard_at=mdn_heard,
        ecn_echo_at=ecn_echo,
        mdn_latency=None if mdn_heard is None else mdn_heard - onset,
        ecn_latency=None if ecn_echo is None else ecn_echo - onset,
    )


@dataclass
class InbandVsOobResult:
    """XBASE3: management delivery through a data-plane failure."""

    inband_delivery_rate: float
    inband_max_gap: float
    acoustic_delivery_rate: float

    @property
    def acoustic_survived(self) -> bool:
        return self.acoustic_delivery_rate > 0.9


def inband_vs_oob(
    duration: float = 20.0,
    failure_time: float = 8.0,
) -> InbandVsOobResult:
    """Heartbeats in-band and by tone; the data path dies mid-run."""
    testbed = build_testbed("single")
    topo = testbed.topo
    sender = HeartbeatSender(topo.hosts["h1"], topo.hosts["h2"].ip,
                             period=0.5)
    monitor = HeartbeatMonitor(topo.hosts["h2"], sender)

    heartbeat = AcousticHeartbeat(testbed.sim, testbed.agents["s1"],
                                  frequency=1500.0, period=0.5)
    testbed.controller.watch([1500.0], on_onset=heartbeat.heard)
    testbed.controller.start()

    def cut_network() -> None:
        for link in topo.links:
            link.fail()

    testbed.sim.schedule_at(failure_time, cut_network)
    testbed.sim.run(duration)
    stats = monitor.stats(testbed.sim)
    return InbandVsOobResult(
        inband_delivery_rate=stats.delivery_rate,
        inband_max_gap=stats.max_gap,
        acoustic_delivery_rate=heartbeat.delivery_rate(),
    )
