"""Figure 5 experiments: music-defined traffic engineering.

* **Fig 5a/5b** — load balancing on the rhombus: queue length evolution
  and the chirp spectrogram around the congestion tone.
* **Fig 5c/5d** — queue-size monitoring: 500/600/700 Hz tones tracking
  the <25 / 25–75 / >75 packet bands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..audio import mel_spectrogram
from ..core.apps import (
    BandToneMap,
    FIG5_BAND_FREQUENCIES,
    LoadBalancerApp,
    QueueChirper,
    QueueMonitorApp,
    SplitRule,
)
from ..net import (
    HostSink,
    Match,
    OnOffSource,
    RampSource,
    TimeSeries,
    VectorizedFlowDriver,
    build_workload,
)
from .rigs import build_testbed


@dataclass
class Fig5ABResult:
    """Load-balancing run outcome."""

    queue_series: TimeSeries
    split_time: float | None
    peak_queue_before_split: float
    final_queue: float
    bottom_path_packets: float
    tone_log: list[tuple[float, str, str]]
    spectrogram: tuple[np.ndarray, np.ndarray, np.ndarray]
    #: Named background workload mix, if any, and what it emitted.
    workload: str | None = None
    background_packets: int = 0

    @property
    def rebalanced(self) -> bool:
        return self.split_time is not None


def load_balancing_experiment(
    duration: float = 20.0,
    initial_rate_pps: float = 50.0,
    slope_pps_per_s: float = 60.0,
    max_rate_pps: float = 350.0,
    workload: str | None = None,
    workload_flows: int = 200,
) -> Fig5ABResult:
    """Run Figure 5a–b: ramping source, chirping s_in, split on the
    congestion tone.

    ``workload`` layers a named seeded mix (e.g. ``"mice"``) under the
    ramp as background churn sharing the congested path — the paper's
    clean single-source ramp, made honest.
    """
    testbed = build_testbed("rhombus")
    topo = testbed.topo
    p_top = topo.port_towards("s_in", "s_top")
    p_bottom = topo.port_towards("s_in", "s_bottom")

    allocation = testbed.plan.allocate("s_in", 3)
    tones = BandToneMap.from_frequencies(allocation.frequencies)
    chirper = QueueChirper(testbed.sim, topo.switches["s_in"], p_top,
                           testbed.agents["s_in"], tones)
    app = LoadBalancerApp(
        testbed.controller,
        {"s_in": tones},
        {"s_in": SplitRule("s_in", Match(dst_ip=topo.hosts["h2"].ip),
                           [p_top, p_bottom])},
    )
    testbed.controller.start()

    background = None
    if workload is not None:
        spec = build_workload(workload, num_flows=workload_flows,
                              seed=16, duration=duration)
        population = spec.build().retarget(topo.hosts["h2"].ip)
        background = VectorizedFlowDriver(
            testbed.sim, population,
            HostSink(topo.hosts["h1"], population), stop=duration,
        )
        background.launch()

    ramp = RampSource(topo.hosts["h1"], topo.hosts["h2"].ip, 80,
                      initial_rate_pps=initial_rate_pps,
                      slope_pps_per_s=slope_pps_per_s,
                      max_rate_pps=max_rate_pps)
    ramp.launch()
    testbed.sim.run(duration)

    split_time = app.rebalanced_at.get("s_in")
    before = chirper.queue_series.window(
        0.0, (split_time or duration) + 0.31
    )
    capture_end = min(duration, (split_time or duration) + 3.0)
    capture = testbed.controller.microphone.record(
        testbed.channel, max(0.0, capture_end - 8.0), capture_end
    )
    spectrogram = mel_spectrogram(capture, num_filters=48, frame_duration=0.1)
    return Fig5ABResult(
        queue_series=chirper.queue_series,
        split_time=split_time,
        peak_queue_before_split=before.max(),
        final_queue=chirper.queue_series.final(),
        bottom_path_packets=topo.switches["s_bottom"].packets_forwarded.total,
        tone_log=list(app.tone_log),
        spectrogram=spectrogram,
        workload=workload,
        background_packets=(background.packets_emitted
                            if background is not None else 0),
    )


@dataclass
class Fig5CDResult:
    """Queue-monitoring run outcome."""

    queue_series: TimeSeries
    band_history: list[tuple[float, str]]
    final_band: str | None
    peak_queue: float
    spectrogram: tuple[np.ndarray, np.ndarray, np.ndarray]

    def bands_heard(self) -> list[str]:
        return [band for _time, band in self.band_history]


def queue_monitor_experiment(
    duration: float = 10.0,
    burst_rate_pps: float = 500.0,
    burst_duration: float = 1.5,
    burst_start: float = 1.0,
) -> Fig5CDResult:
    """Run Figure 5c–d: a traffic burst fills the queue through all
    three bands (500→600→700 Hz) and drains back (…→500 Hz)."""
    testbed = build_testbed("single")
    topo = testbed.topo
    port = topo.port_towards("s1", "h2")
    tones = BandToneMap(
        FIG5_BAND_FREQUENCIES["low"],
        FIG5_BAND_FREQUENCIES["medium"],
        FIG5_BAND_FREQUENCIES["high"],
    )
    chirper = QueueChirper(testbed.sim, topo.switches["s1"], port,
                           testbed.agents["s1"], tones)
    app = QueueMonitorApp(testbed.controller, "s1", tones)
    testbed.controller.start()

    burst = OnOffSource(topo.hosts["h1"], topo.hosts["h2"].ip, 80,
                        rate_pps=burst_rate_pps, on_duration=burst_duration,
                        off_duration=duration * 2, start=burst_start)
    burst.launch()
    testbed.sim.run(duration)

    capture = testbed.controller.microphone.record(testbed.channel, 0.0,
                                                   duration)
    spectrogram = mel_spectrogram(capture, num_filters=48, frame_duration=0.1)
    return Fig5CDResult(
        queue_series=chirper.queue_series,
        band_history=list(app.band_history),
        final_band=app.current_band,
        peak_queue=chirper.queue_series.max(),
        spectrogram=spectrogram,
    )
