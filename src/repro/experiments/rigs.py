"""Reusable testbed assembly for the figure experiments.

Every experiment needs the same skeleton the paper's Figure 1 shows: a
topology of switches, a Raspberry-Pi-equivalent :class:`MusicAgent` per
sounding device, one shared air channel, and an MDN controller with a
microphone.  :func:`build_testbed` assembles it; experiment modules add
their specific emitters, applications and workloads on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..audio import AcousticChannel, Microphone, Position, Speaker
from ..core import FrequencyPlan, MDNController
from ..core.agent import MusicAgent
from ..net import (
    Action,
    ControlChannel,
    Simulator,
    Topology,
    rhombus_topology,
    single_switch_topology,
)

#: Speaker placements around the microphone at the origin — the paper's
#: close-range, single-hop regime.
SPEAKER_RING = (
    Position(0.6, 0.0, 0.0),
    Position(0.0, 0.8, 0.0),
    Position(-0.7, 0.3, 0.0),
    Position(0.4, -0.9, 0.0),
    Position(-0.3, -0.7, 0.0),
    Position(0.9, 0.5, 0.0),
    Position(-0.8, -0.2, 0.0),
)


@dataclass
class Testbed:
    """An assembled experiment rig."""

    sim: Simulator
    topo: Topology
    channel: AcousticChannel
    plan: FrequencyPlan
    control: ControlChannel
    controller: MDNController
    agents: dict[str, MusicAgent] = field(default_factory=dict)

    def extra_agent(self, name: str, position: Position) -> MusicAgent:
        """A second speaker for a device running two MDN apps at once
        (one driver is half-duplex)."""
        agent = MusicAgent(self.sim, self.channel, Speaker(position), name)
        self.agents[name] = agent
        return agent


def build_testbed(
    shape: str = "single",
    default_action: Action | None = None,
    listen_interval: float = 0.1,
    plan_guard: float = 20.0,
    plan_low_hz: float = 400.0,
    bandwidth_bps: float = 2_000_000.0,
    backend: str = "fft",
    mic_seed: int = 11,
) -> Testbed:
    """Assemble a testbed with one MusicAgent per switch.

    Parameters mirror the paper's knobs: topology shape (``"single"``
    or ``"rhombus"``), the plan's guard spacing (§3's 20 Hz), the
    listening window, and the detection backend.
    """
    sim = Simulator()
    if shape == "single":
        topo = single_switch_topology(
            sim, 2, bandwidth_bps=bandwidth_bps, default_action=default_action
        )
    elif shape == "rhombus":
        topo = rhombus_topology(sim, bandwidth_bps=bandwidth_bps)
    else:
        raise ValueError(f"unknown testbed shape {shape!r}")

    channel = AcousticChannel()
    plan = FrequencyPlan(low_hz=plan_low_hz, guard_hz=plan_guard)
    control = ControlChannel(sim)
    agents: dict[str, MusicAgent] = {}
    for index, (name, switch) in enumerate(sorted(topo.switches.items())):
        control.register_switch(switch)
        agents[name] = MusicAgent(
            sim, channel, Speaker(SPEAKER_RING[index % len(SPEAKER_RING)]), name
        )
    controller = MDNController(
        sim, channel, Microphone(Position(), seed=mic_seed),
        listen_interval=listen_interval, control_channel=control,
        backend=backend,
    )
    return Testbed(sim, topo, channel, plan, control, controller, agents)
