"""XEXT15 — fleet scaling curve: sharded multi-room simulation.

The paper's testbed is one rack in one room; ROADMAP item 1 asks what
the reproduction does when the deployment is a *datacenter* — here, a
1000-switch fleet (50 rooms x 20 switches) chirping ~10k emissions per
second of simulated time.  Rooms are acoustically isolated, so the
fleet is embarrassingly parallel: :func:`repro.fleet.run_fleet` cuts it
into contiguous shards and runs them either serially (the reference)
or on a process pool through the PR 6 infra guardrails.

The experiment sweeps shard count against wall-clock and reports, for
every point:

* **speedup** over the serial reference (honest: on a single-core
  runner the pool pays fork/pickle overhead and the curve is flat or
  worse, which is why ``cpu_count`` is part of the record);
* **real-time factor** — simulated seconds delivered per wall second
  (50 rooms x 1 s horizon = 50 simulated seconds per run);
* **identity** — the merged report must match the serial reference
  bit-for-bit at every shard count and backend.

Results land in ``.benchmarks/BENCH_fleet.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..fleet import FleetReport, FleetSpec, run_fleet

#: Seed for every xext15 fleet (PR sequence number, like XEXT14_SEED).
XEXT15_SEED = 15

#: Default artifact path (override with the BENCH_FLEET_JSON env var).
BENCH_PATH = Path(".benchmarks") / "BENCH_fleet.json"


@dataclass
class FleetScalePoint:
    """One point on the shard-count-vs-wall-clock curve."""

    num_shards: int
    backend: str
    workers: int
    wall_s: float
    #: serial_wall_s / wall_s — > 1 means the pool actually helped.
    speedup: float
    #: Simulated seconds per wall second at this point.
    real_time_factor: float
    #: Merged report identical to the serial reference, bit-for-bit.
    identical: bool
    failures: int


@dataclass
class Xext15Result:
    """The full fleet-scaling record (and the BENCH_fleet.json shape)."""

    num_rooms: int
    switches_per_room: int
    num_switches: int
    horizon: float
    #: Fleet-wide chirps per simulated second while all switches emit.
    nominal_emissions_per_second: float
    #: Honesty anchor: speedup can only follow the cores available.
    cpu_count: int
    emissions: int
    onsets: int
    delivered: int
    spurious_onsets: int
    delivery_ratio: float
    serial_wall_s: float
    #: Two independent serial runs (at different shard counts) agreed.
    determinism_ok: bool
    points: list[FleetScalePoint] = field(default_factory=list)

    @property
    def best_speedup(self) -> float:
        return max((p.speedup for p in self.points), default=1.0)

    def export(self, path: str | Path | None = None) -> Path:
        """Write the scaling record to ``BENCH_fleet.json``."""
        target = Path(path or os.environ.get("BENCH_FLEET_JSON", BENCH_PATH))
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = asdict(self)
        payload["best_speedup"] = self.best_speedup
        target.write_text(json.dumps(payload, indent=2) + "\n")
        return target


def fleet_experiment(
    smoke: bool = False,
    seed: int = XEXT15_SEED,
    shard_counts: tuple[int, ...] | None = None,
) -> Xext15Result:
    """Run the fleet at 1..N shards and measure the scaling curve.

    ``smoke`` shrinks the fleet (6 rooms x 8 switches, 0.5 s horizon,
    shards 1 and 2) so CI exercises the whole parallel path — fork,
    pickle, merge, identity check — in a couple of seconds.
    """
    if smoke:
        spec = FleetSpec(num_rooms=6, switches_per_room=8,
                         seed=seed, horizon=0.5)
        shard_counts = shard_counts or (1, 2)
    else:
        spec = FleetSpec(num_rooms=50, switches_per_room=20,
                         seed=seed, horizon=1.0)
        shard_counts = shard_counts or (1, 2, 4, 8)

    # Serial reference, twice at different shard counts: one wall-clock
    # baseline, one determinism + shard-invariance witness.
    serial = run_fleet(spec, num_shards=1, backend="serial")
    witness = run_fleet(spec, num_shards=min(2, spec.num_rooms),
                        backend="serial")
    reference = serial.identity_signature()
    determinism_ok = reference == witness.identity_signature()

    def _point(report: FleetReport) -> FleetScalePoint:
        return FleetScalePoint(
            num_shards=report.num_shards,
            backend=report.backend,
            workers=report.workers,
            wall_s=report.wall_s,
            speedup=(serial.wall_s / report.wall_s
                     if report.wall_s else 0.0),
            real_time_factor=report.real_time_factor,
            identical=report.identity_signature() == reference,
            failures=len(report.failures),
        )

    points = [_point(serial)]
    for num_shards in shard_counts:
        if num_shards > spec.num_rooms:
            continue
        points.append(_point(run_fleet(
            spec, num_shards=num_shards, backend="process",
        )))

    return Xext15Result(
        num_rooms=spec.num_rooms,
        switches_per_room=spec.switches_per_room,
        num_switches=spec.num_switches,
        horizon=spec.horizon,
        nominal_emissions_per_second=spec.nominal_emissions_per_second,
        cpu_count=os.cpu_count() or 1,
        emissions=serial.emissions,
        onsets=serial.onsets,
        delivered=serial.delivered,
        spurious_onsets=sum(room.spurious_onsets for room in serial.rooms),
        delivery_ratio=serial.delivery_ratio,
        serial_wall_s=serial.wall_s,
        determinism_ok=determinism_ok,
        points=points,
    )
