"""XEXT16 — workload mixes swept into detector precision/recall.

ROADMAP item 4: the paper's figures are driven by a 12-flow hand mix,
so they demonstrate detection but never *measure* it.  This experiment
drives the real heavy-hitter and port-scan detector apps with seeded
workload populations (:mod:`repro.net.workload`) whose ground truth is
known — which flows are truly elephants, which packets belong to a
scan campaign — and reports precision/recall per mix, plus
threshold-swept curves computed post hoc from the closed interval
histograms.

Detection runs at **telemetry fidelity**: batched departures are
quantized onto the emitter rate-limit grid and fed to the unmodified
detector apps through a :class:`~repro.core.telemetry.ToneEventBus`
(DESIGN.md §"Workloads" explains the three fidelity levels).  Two more
records round out the benchmark:

* **scale** — the vectorized driver pushing 10⁵(+) flows through a
  counting sink, wall-clocked;
* **speedup** — the same 10k-flow population through the vectorized
  driver vs one :class:`~repro.net.workload.PerFlowWorkloadSource`
  object per flow, with packet-count identity checked; the perf gate
  pins the ratio ≥ 10×.

Results land in ``.benchmarks/BENCH_workload.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..core.apps import (
    FlowToneMapper,
    HeavyHitterDetectorApp,
    PortScanDetectorApp,
    PortToneMapper,
    heavy_hitter_curve,
    port_scan_curve,
    score_heavy_hitter,
    score_port_scan,
)
from ..core.frequency_plan import Allocation
from ..core.telemetry import ToneEventBus
from ..net.sim import Simulator
from ..net.workload import (
    DEFAULT_SCAN_PORTS,
    BucketPresenceTap,
    CountingHost,
    CountingSink,
    PortPresenceTap,
    PresenceSink,
    VectorizedFlowDriver,
    build_workload,
    launch_reference_sources,
)

#: Seed for every xext16 workload (the PR sequence number).
XEXT16_SEED = 16

#: Default artifact path (override with the BENCH_WORKLOAD_JSON env var).
BENCH_PATH = Path(".benchmarks") / "BENCH_workload.json"

#: Presence grid = the emitter rate-limit period = the listen window.
PRESENCE_PERIOD = 0.1

#: Hash buckets for the heavy-hitter detector (the sketch width).
NUM_BUCKETS = 256

HH_THRESHOLDS = [1, 2, 3, 5, 7, 9]
SCAN_THRESHOLDS = [1, 2, 3, 5, 8, 12]


@dataclass
class WorkloadMixPoint:
    """One mix's detector scores against ground truth."""

    name: str
    num_flows: int
    packets: int
    label_counts: dict[str, int]
    heavy_hitter: dict
    port_scan: dict
    heavy_hitter_curve: list[dict]
    port_scan_curve: list[dict]
    wall_s: float


@dataclass
class WorkloadScalePoint:
    """Vectorized driver wall-clock at one population size."""

    num_flows: int
    packets: int
    build_s: float
    run_s: float
    packets_per_wall_second: float


@dataclass
class WorkloadSpeedupPoint:
    """Vectorized driver vs per-flow-object reference, same population."""

    num_flows: int
    packets_vectorized: int
    packets_reference: int
    #: Per-flow packet counts identical between the two paths.
    counts_match: bool
    vectorized_wall_s: float
    reference_wall_s: float
    speedup: float


@dataclass
class Xext16Result:
    """The full workload record (and the BENCH_workload.json shape)."""

    seed: int
    smoke: bool
    mix_duration: float
    num_buckets: int
    presence_period: float
    mixes: list[WorkloadMixPoint] = field(default_factory=list)
    scale: list[WorkloadScalePoint] = field(default_factory=list)
    speedup: WorkloadSpeedupPoint | None = None

    @property
    def max_flows_sustained(self) -> int:
        return max((point.num_flows for point in self.scale), default=0)

    def export(self, path: str | Path | None = None) -> Path:
        """Write the record to ``BENCH_workload.json``."""
        target = Path(path or os.environ.get("BENCH_WORKLOAD_JSON",
                                             BENCH_PATH))
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = asdict(self)
        payload["max_flows_sustained"] = self.max_flows_sustained
        target.write_text(json.dumps(payload, indent=2) + "\n")
        return target


def _run_mix(name: str, num_flows: int, duration: float,
             seed: int) -> WorkloadMixPoint:
    """Drive one named mix through both detector apps, audio-free."""
    wall_start = time.perf_counter()
    spec = build_workload(name, num_flows=num_flows, seed=seed,
                          duration=duration)
    population = spec.build()

    # Disjoint synthetic tone blocks: telemetry fidelity needs stable
    # identifiers, not a physically plausible band.
    bucket_alloc = Allocation("xext16-hh", tuple(
        1_000.0 + 20.0 * i for i in range(NUM_BUCKETS)
    ))
    port_alloc = Allocation("xext16-scan", tuple(
        1_000.0 + 20.0 * (NUM_BUCKETS + i)
        for i in range(len(DEFAULT_SCAN_PORTS))
    ))

    bus = ToneEventBus(window=PRESENCE_PERIOD)
    hh_app = HeavyHitterDetectorApp(bus, FlowToneMapper(bucket_alloc))
    scan_app = PortScanDetectorApp(
        bus, PortToneMapper(port_alloc, DEFAULT_SCAN_PORTS)
    )

    sim = Simulator()
    sink = PresenceSink(bus, [
        BucketPresenceTap(list(bucket_alloc.frequencies), PRESENCE_PERIOD),
        PortPresenceTap(DEFAULT_SCAN_PORTS, list(port_alloc.frequencies),
                        PRESENCE_PERIOD),
    ])
    driver = VectorizedFlowDriver(sim, population, sink, stop=duration)
    driver.launch()
    sim.run(duration)
    bus.dispatch()
    hh_app.finalize(duration)
    scan_app.finalize(duration)

    heavy = score_heavy_hitter(hh_app, population)
    scan = score_port_scan(scan_app, population, DEFAULT_SCAN_PORTS,
                           duration)
    hh_curve = heavy_hitter_curve(hh_app, population, HH_THRESHOLDS)
    sc_curve = port_scan_curve(scan_app, population, DEFAULT_SCAN_PORTS,
                               duration, SCAN_THRESHOLDS)
    return WorkloadMixPoint(
        name=name,
        num_flows=len(population),
        packets=driver.packets_emitted,
        label_counts=population.label_counts(),
        heavy_hitter=heavy.as_dict(),
        port_scan=scan.as_dict(),
        heavy_hitter_curve=[
            {"threshold": threshold, **pr.as_dict()}
            for threshold, pr in hh_curve
        ],
        port_scan_curve=[
            {"threshold": threshold, **pr.as_dict()}
            for threshold, pr in sc_curve
        ],
        wall_s=time.perf_counter() - wall_start,
    )


def _run_scale_point(num_flows: int, duration: float,
                     seed: int) -> WorkloadScalePoint:
    """Wall-clock the vectorized driver at one population size."""
    spec = build_workload("elephants-mice", num_flows=num_flows, seed=seed,
                          duration=duration)
    build_start = time.perf_counter()
    population = spec.build()
    build_s = time.perf_counter() - build_start

    sim = Simulator()
    sink = CountingSink(population)
    driver = VectorizedFlowDriver(sim, population, sink, stop=duration)
    driver.launch()
    run_start = time.perf_counter()
    sim.run(duration)
    run_s = time.perf_counter() - run_start
    return WorkloadScalePoint(
        num_flows=num_flows,
        packets=sink.total,
        build_s=build_s,
        run_s=run_s,
        packets_per_wall_second=(sink.total / run_s) if run_s else 0.0,
    )


def measure_speedup(num_flows: int = 10_000, duration: float = 2.0,
                    seed: int = XEXT16_SEED) -> WorkloadSpeedupPoint:
    """Vectorized driver vs per-flow-object reference on one shared
    population — the ≥10× perf-gate measurement."""
    spec = build_workload("elephants-mice", num_flows=num_flows, seed=seed,
                          duration=duration)
    population = spec.build()

    sim_vec = Simulator()
    sink = CountingSink(population)
    driver = VectorizedFlowDriver(sim_vec, population, sink, stop=duration)
    driver.launch()
    vec_start = time.perf_counter()
    sim_vec.run(duration)
    vec_s = time.perf_counter() - vec_start

    sim_ref = Simulator()
    host = CountingHost(sim_ref)
    ref_start = time.perf_counter()
    sources = launch_reference_sources(host, population, duration)
    sim_ref.run(duration)
    ref_s = time.perf_counter() - ref_start

    per_flow_reference = [source.packets_emitted for source in sources]
    counts_match = per_flow_reference == sink.per_flow.tolist()
    return WorkloadSpeedupPoint(
        num_flows=num_flows,
        packets_vectorized=sink.total,
        packets_reference=host.packets_sent,
        counts_match=counts_match,
        vectorized_wall_s=vec_s,
        reference_wall_s=ref_s,
        speedup=(ref_s / vec_s) if vec_s else 0.0,
    )


def workload_experiment(smoke: bool = False,
                        seed: int = XEXT16_SEED) -> Xext16Result:
    """Run the full workload benchmark.

    ``smoke`` shrinks mix populations and the horizon but keeps the
    acceptance-critical shape: three mixes with precision/recall, a
    100k-flow scale point, and the 10k-flow speedup measurement.
    """
    if smoke:
        mix_flows, duration = 600, 4.0
        mix_names = ["mice", "elephants-mice", "scan-churn"]
        scale_sizes = [10_000, 100_000]
    else:
        mix_flows, duration = 2_000, 8.0
        mix_names = ["mice", "elephants-mice", "scan-churn",
                     "bursty-diurnal"]
        scale_sizes = [10_000, 100_000, 1_000_000]

    result = Xext16Result(
        seed=seed, smoke=smoke, mix_duration=duration,
        num_buckets=NUM_BUCKETS, presence_period=PRESENCE_PERIOD,
    )
    for name in mix_names:
        result.mixes.append(_run_mix(name, mix_flows, duration, seed))
    for num_flows in scale_sizes:
        result.scale.append(_run_scale_point(num_flows, 2.0, seed))
    result.speedup = measure_speedup(seed=seed)
    return result
