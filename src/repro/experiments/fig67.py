"""Figure 6 and 7 experiments: server fan failure detection.

* **Fig 6** — mel spectrograms of a server in {datacenter, office} ×
  {fan on, fan off}: the blade-pass harmonics visible while on, gone
  while off, in both rooms.
* **Fig 7** — FFT amplitude-difference traces: on↔on comparisons sit
  near the baseline; on↔off jump; a threshold separates them and fires
  the out-of-band alert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..audio import SpectrumAnalyzer, mel_spectrogram
from ..core.apps import FanWatchdog
from ..fans import RoomScene, Server, datacenter_scene, office_scene
from ..net import TimeSeries

ROOMS = ("datacenter", "office")


def _scene(room: str, duration: float, server: Server | None) -> RoomScene:
    if room == "datacenter":
        return datacenter_scene(duration=duration, server=server)
    if room == "office":
        return office_scene(duration=duration, server=server)
    raise ValueError(f"unknown room {room!r} (use one of {ROOMS})")


@dataclass
class Fig6Panel:
    """One of the four Figure 6 spectrogram panels."""

    room: str
    fan_on: bool
    spectrogram: tuple[np.ndarray, np.ndarray, np.ndarray]
    blade_pass_hz: float
    blade_line_level_db: float
    noise_floor_db: float

    @property
    def line_prominence_db(self) -> float:
        """How far the fan's strongest line stands above the floor."""
        return self.blade_line_level_db - self.noise_floor_db


def fan_spectrogram_panel(room: str, fan_on: bool,
                          duration: float = 6.0) -> Fig6Panel:
    """Render one Figure 6 panel and measure the blade-pass line."""
    server = Server("target")
    if not fan_on:
        server.fail_all(0.0)
    scene = _scene(room, duration, server)
    capture = scene.capture(1.0, duration - 1.0)
    spectrogram = mel_spectrogram(capture, num_filters=64, frame_duration=0.1)
    spectrum = SpectrumAnalyzer().analyze(capture)
    blade_pass = server.fans[0].blade_pass_hz
    return Fig6Panel(
        room=room,
        fan_on=fan_on,
        spectrogram=spectrogram,
        blade_pass_hz=blade_pass,
        blade_line_level_db=spectrum.level_at(blade_pass),
        noise_floor_db=spectrum.noise_floor_db(),
    )


@dataclass
class Fig7Result:
    """One Figure 7 trace: difference scores around a failure."""

    room: str
    scores: TimeSeries
    threshold: float
    failure_time: float
    detection_time: float | None
    on_on_max_score: float
    on_off_min_score: float

    @property
    def detected(self) -> bool:
        return self.detection_time is not None

    @property
    def separation_ratio(self) -> float:
        """on↔off score over on↔on score: the Figure 7 gap."""
        if self.on_on_max_score <= 0:
            return float("inf")
        return self.on_off_min_score / self.on_on_max_score


def fan_failure_experiment(
    room: str = "datacenter",
    duration: float = 14.0,
    failure_time: float = 7.0,
    threshold_factor: float = 3.0,
) -> Fig7Result:
    """Run the Figure 7 detection experiment in one room."""
    server = Server("target")
    server.fail_all(failure_time)
    scene = _scene(room, duration, server)
    watchdog = FanWatchdog(scene.channel, scene.microphone,
                           threshold_factor=threshold_factor)
    watchdog.run(0.0, duration)
    healthy = watchdog.scores.window(0.0, failure_time - 0.5)
    failed = watchdog.scores.window(failure_time + 2.5, duration)
    return Fig7Result(
        room=room,
        scores=watchdog.scores,
        threshold=watchdog.threshold,
        failure_time=failure_time,
        detection_time=watchdog.detection_time(),
        on_on_max_score=healthy.max(),
        on_off_min_score=failed.min() if len(failed) else 0.0,
    )
