"""Figure 3 experiment: port knocking.

A sender hammers a closed port for ~34 s (Fig 3a's blue line); mid-run
it emits the three-knock sequence; the port opens and received bytes
start tracking sent bytes (red dashed line).  Fig 3b is the mel-scaled
spectrogram of the knock window showing the three ascending tones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..audio import mel_spectrogram
from ..core.apps import KnockConfig, KnockEmitter, PortKnockingApp
from ..net import Action, ByteCounterSampler, ConstantRateSource, TimeSeries
from .rigs import build_testbed

KNOCK_PORTS = (7001, 7002, 7003)
PROTECTED_PORT = 8080


@dataclass
class Fig3Result:
    """Series and events of one port-knocking run."""

    sent_bytes: TimeSeries
    received_bytes: TimeSeries
    opened_at: float | None
    knock_times: list[float]
    knock_ports_heard: list[int]
    #: Mel spectrogram of the knock window: (times, centers_hz, mags).
    spectrogram: tuple[np.ndarray, np.ndarray, np.ndarray]

    @property
    def opened(self) -> bool:
        return self.opened_at is not None


def port_knocking_experiment(
    duration: float = 34.0,
    knock_start: float = 12.0,
    knock_spacing: float = 1.5,
    sender_rate_pps: float = 40.0,
    sample_interval: float = 0.5,
    correct_order: bool = True,
) -> Fig3Result:
    """Run the Figure 3 experiment end to end.

    ``correct_order=False`` runs the control: the same knocks in a
    wrong order, which must leave the port closed for the whole run.
    """
    testbed = build_testbed("single", default_action=Action.drop())
    switch = testbed.topo.switches["s1"]
    h1, h2 = testbed.topo.hosts["h1"], testbed.topo.hosts["h2"]

    allocation = testbed.plan.allocate("s1", len(KNOCK_PORTS))
    config = KnockConfig(list(KNOCK_PORTS), PROTECTED_PORT, allocation)
    KnockEmitter(switch, testbed.agents["s1"], config)
    app = PortKnockingApp(testbed.controller, "s1", h2.ip, config)
    app.set_output_port(testbed.topo.port_towards("s1", "h2"))
    testbed.controller.start()

    sender_sampler = ByteCounterSampler(testbed.sim, h1, sample_interval)
    receiver_sampler = ByteCounterSampler(testbed.sim, h2, sample_interval)

    source = ConstantRateSource(h1, h2.ip, PROTECTED_PORT,
                                rate_pps=sender_rate_pps, start=0.0,
                                stop=duration)
    source.launch()

    knocks = list(KNOCK_PORTS) if correct_order else [
        KNOCK_PORTS[0], KNOCK_PORTS[2], KNOCK_PORTS[1]
    ]
    for index, port in enumerate(knocks):
        testbed.sim.schedule_at(
            knock_start + index * knock_spacing,
            lambda p=port: h1.send_to(h2.ip, p),
        )

    testbed.sim.run(duration)

    # Fig 3b: spectrogram of the knock window.
    knock_window = testbed.controller.microphone.record(
        testbed.channel,
        knock_start - 0.5,
        knock_start + knock_spacing * len(knocks) + 0.5,
    )
    spectrogram = mel_spectrogram(knock_window, num_filters=48,
                                  frame_duration=0.1)
    return Fig3Result(
        sent_bytes=sender_sampler.sent,
        received_bytes=receiver_sampler.received,
        opened_at=app.opened_at,
        knock_times=[time for time, _port in app.knock_log],
        knock_ports_heard=[port for _time, port in app.knock_log],
        spectrogram=spectrogram,
    )
