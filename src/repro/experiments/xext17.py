"""XEXT17 — chaos sweep: exact recovery under process-level faults.

XEXT15 proved the fleet scales out; this experiment proves it scales
out *on unreliable workers*.  The :class:`~repro.fleet.supervisor.
FleetSupervisor` drives the same sharded fleet while
:class:`~repro.faults.process.ProcessFaultPlan` injects the four
canonical process faults — crashes (soft exceptions and hard
``os._exit`` pool breaks), stragglers, poisoned reports and duplicate
deliveries — at swept rates, and every point answers three questions:

* **did it finish?** — completion wall-clock and per-point failure
  count (zero everywhere: ``max_attempts`` exceeds the plan's
  ``max_faulty_attempts``, so progress is guaranteed by construction);
* **what did recovery cost?** — wall-clock relative to the supervised
  fault-free baseline (checkpoint resume keeps the crash points cheap;
  hedging keeps the straggler points near the baseline instead of
  paying the full sleep per shard);
* **was it exact?** — the headline contract: the recovered
  ``FleetReport.identity_signature()`` must equal the *fault-free
  serial reference* bit-for-bit at every point, chaos notwithstanding.

Results land in ``.benchmarks/BENCH_chaos.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..faults.process import ProcessFaultPlan
from ..fleet import FleetSpec, SupervisorPolicy, run_fleet, run_fleet_supervised

#: Seed for every xext17 fleet (PR sequence number, like XEXT15_SEED).
XEXT17_SEED = 17

#: Default artifact path (override with the BENCH_CHAOS_JSON env var).
BENCH_PATH = Path(".benchmarks") / "BENCH_chaos.json"


@dataclass
class ChaosPoint:
    """One fault mix through the supervised fleet."""

    name: str
    crash_rate: float
    hard_crash: bool
    straggler_rate: float
    poison_rate: float
    duplicate_rate: float
    wall_s: float
    #: wall_s / fault-free supervised wall_s — the price of recovery.
    recovery_overhead: float
    #: Identity matches the fault-free serial reference bit-for-bit.
    identical: bool
    failures: int
    attempts_total: int
    crashes_detected: int
    stragglers_hedged: int
    hedges_wasted: int
    rooms_resumed: int
    poisoned_reports: int
    duplicates_dropped: int
    retries_scheduled: int
    pool_rebuilds: int


@dataclass
class Xext17Result:
    """The full chaos record (and the BENCH_chaos.json shape)."""

    num_rooms: int
    switches_per_room: int
    num_switches: int
    horizon: float
    num_shards: int
    workers: int
    cpu_count: int
    #: Plain (unsupervised) serial reference wall-clock.
    serial_wall_s: float
    #: Supervised, fault-free wall-clock — the overhead denominator.
    baseline_wall_s: float
    #: The fault-free supervised run matched the serial reference.
    baseline_identical: bool
    points: list[ChaosPoint] = field(default_factory=list)

    @property
    def all_exact(self) -> bool:
        """Every chaos point recovered to the exact reference result."""
        return self.baseline_identical and all(
            point.identical and point.failures == 0
            for point in self.points
        )

    @property
    def worst_overhead(self) -> float:
        return max((p.recovery_overhead for p in self.points), default=1.0)

    def export(self, path: str | Path | None = None) -> Path:
        """Write the chaos record to ``BENCH_chaos.json``."""
        target = Path(path or os.environ.get("BENCH_CHAOS_JSON", BENCH_PATH))
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = asdict(self)
        payload["all_exact"] = self.all_exact
        payload["worst_overhead"] = self.worst_overhead
        target.write_text(json.dumps(payload, indent=2) + "\n")
        return target


def chaos_experiment(smoke: bool = False,
                     seed: int = XEXT17_SEED) -> Xext17Result:
    """Sweep fault mixes through the supervised fleet and verify exact
    recovery at every point.

    ``smoke`` shrinks the fleet and the straggler sleeps so CI walks
    the whole chaos path — hard pool breaks, hedging, checkpoint
    resume, dedup — in a few seconds.
    """
    if smoke:
        spec = FleetSpec(num_rooms=4, switches_per_room=4,
                         seed=seed, horizon=0.5)
        num_shards, workers = 2, 2
        straggler_delay_s, hedge_after_s = 0.4, 0.15
    else:
        spec = FleetSpec(num_rooms=12, switches_per_room=8,
                         seed=seed, horizon=1.0)
        num_shards, workers = 4, 4
        straggler_delay_s, hedge_after_s = 1.0, 0.3

    serial = run_fleet(spec, num_shards=1, backend="serial")
    reference = serial.identity_signature()

    # Quarantine must stay out of reach in exactness runs: a
    # quarantined shard is a *counted loss*, and the contract here is
    # zero loss.  max_attempts > max_faulty_attempts guarantees a
    # clean attempt exists for every shard.
    policy = SupervisorPolicy(
        max_attempts=6,
        quarantine_threshold=10,
        hedge_after_s=hedge_after_s,
        shard_deadline_s=30.0,
    )

    baseline = run_fleet_supervised(
        spec, num_shards=num_shards, backend="process", workers=workers,
        policy=policy, seed=seed,
    )
    baseline_wall = baseline.wall_s or 1e-9
    baseline_identical = baseline.identity_signature() == reference

    mixes = [
        ("crash20", ProcessFaultPlan(crash_rate=0.20)),
        ("crash50_hard", ProcessFaultPlan(crash_rate=0.50,
                                          hard_crash=True)),
        ("stragglers", ProcessFaultPlan(
            straggler_rate=0.50, straggler_delay_s=straggler_delay_s)),
        ("poison_dup", ProcessFaultPlan(poison_rate=0.30,
                                        duplicate_rate=0.30)),
        ("everything", ProcessFaultPlan(
            crash_rate=0.30, hard_crash=True, straggler_rate=0.30,
            straggler_delay_s=straggler_delay_s, poison_rate=0.20,
            duplicate_rate=0.20)),
    ]

    points: list[ChaosPoint] = []
    for name, plan in mixes:
        report = run_fleet_supervised(
            spec, num_shards=num_shards, backend="process",
            workers=workers, faults=plan, policy=policy, seed=seed,
        )
        stats = report.supervisor
        points.append(ChaosPoint(
            name=name,
            crash_rate=plan.crash_rate,
            hard_crash=plan.hard_crash,
            straggler_rate=plan.straggler_rate,
            poison_rate=plan.poison_rate,
            duplicate_rate=plan.duplicate_rate,
            wall_s=report.wall_s,
            recovery_overhead=report.wall_s / baseline_wall,
            identical=report.identity_signature() == reference,
            failures=len(report.failures),
            attempts_total=stats.attempts_total,
            crashes_detected=stats.crashes_detected,
            stragglers_hedged=stats.stragglers_hedged,
            hedges_wasted=stats.hedges_wasted,
            rooms_resumed=stats.rooms_resumed,
            poisoned_reports=stats.poisoned_reports,
            duplicates_dropped=stats.duplicates_dropped,
            retries_scheduled=stats.retries_scheduled,
            pool_rebuilds=stats.pool_rebuilds,
        ))

    return Xext17Result(
        num_rooms=spec.num_rooms,
        switches_per_room=spec.switches_per_room,
        num_switches=spec.num_switches,
        horizon=spec.horizon,
        num_shards=num_shards,
        workers=workers,
        cpu_count=os.cpu_count() or 1,
        serial_wall_s=serial.wall_s,
        baseline_wall_s=baseline.wall_s,
        baseline_identical=baseline_identical,
        points=points,
    )
