"""Figure 4 experiments: Music-Defined Telemetry.

* **Fig 4a/4b** — heavy-hitter detection, without / with a pop song as
  background noise.
* **Fig 4c/4d** — port-scan detection, without / with the song; the
  scan paints a rising line on the mel spectrogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..audio import SongNoise, dominant_mel_track, mel_spectrogram
from ..core.apps import (
    FlowToneMapper,
    HeavyHitterAlert,
    HeavyHitterDetectorApp,
    HeavyHitterEmitter,
    PortScanDetectorApp,
    PortScanEmitter,
    PortToneMapper,
    ScanAlert,
)
from ..net import (
    FlowKey,
    FlowMixWorkload,
    HostSink,
    PortScanSource,
    TimeSeries,
    VectorizedFlowDriver,
    build_workload,
)
from ..net.flowpop import LABEL_ELEPHANT
from ..core.apps.evaluation import (
    heavy_hitter_truth_buckets,
    score_heavy_hitter,
    score_port_scan,
)
from .rigs import build_testbed

#: Link rate used for telemetry runs: 2 Mb/s at 1000 B -> 250 pkt/s.
LINK_CAPACITY_PPS = 250.0

SCAN_PORTS = range(8000, 8020)


@dataclass
class Fig4ABResult:
    """Heavy-hitter run outcome."""

    heavy_flow: FlowKey | None
    heavy_frequency: float
    alerts: list[HeavyHitterAlert]
    heavy_detected: bool
    false_positive_frequencies: set[float]
    per_interval_heavy_counts: TimeSeries
    with_song: bool
    #: Named workload mix the run was driven by (None = the paper's
    #: hand-tuned 12-flow mix).
    workload: str | None = None
    #: Ground-truth precision/recall — only when driven by a workload,
    #: which is the only case where truth labels exist.
    precision_recall: dict | None = None


def heavy_hitter_experiment(
    with_song: bool = False,
    duration: float = 8.0,
    num_flows: int = 10,
    num_buckets: int = 16,
    heavy_fraction: float = 0.3,
    count_threshold: int = 5,
    seed: int = 3,
    workload: str | None = None,
) -> Fig4ABResult:
    """Run Figure 4a (``with_song=False``) or 4b (``True``).

    ``workload`` swaps the paper's hand mix for a named seeded mix from
    :data:`repro.net.workload.WORKLOAD_MIXES`, driven through the same
    acoustic testbed by the vectorized driver, and adds ground-truth
    precision/recall to the result.  Population size stays figure-scale
    (``num_flows``) so the 250 pkt/s link is not the bottleneck.
    """
    testbed = build_testbed("single")
    allocation = testbed.plan.allocate("s1", num_buckets)
    mapper = FlowToneMapper(allocation)
    HeavyHitterEmitter(testbed.topo.switches["s1"], testbed.agents["s1"],
                       mapper)
    app = HeavyHitterDetectorApp(testbed.controller, mapper,
                                 count_threshold=count_threshold)
    if with_song:
        song = SongNoise(seed=2018, level_db=55.0).render(duration)
        testbed.channel.add_noise(song, loop=True)
    testbed.controller.start()

    if workload is not None:
        spec = build_workload(workload, num_flows=num_flows, seed=seed,
                              duration=duration)
        population = spec.build().retarget(testbed.topo.hosts["h2"].ip)
        sink = HostSink(testbed.topo.hosts["h1"], population)
        driver = VectorizedFlowDriver(testbed.sim, population, sink,
                                      stop=duration)
        driver.launch()
        testbed.sim.run(duration)
        app.finalize(duration)

        truth = heavy_hitter_truth_buckets(population, len(allocation))
        truth_frequencies = {
            allocation.frequency_for(bucket) for bucket in truth
        }
        elephants = population.indices_with_label(LABEL_ELEPHANT)
        heavy_flow = (population.flow_key(int(elephants[0]))
                      if len(elephants) else None)
        heavy_frequency = (mapper.frequency_of(heavy_flow)
                           if heavy_flow is not None else float("nan"))
        flagged = app.heavy_frequencies()
        return Fig4ABResult(
            heavy_flow=heavy_flow,
            heavy_frequency=heavy_frequency,
            alerts=list(app.alerts),
            heavy_detected=bool(truth_frequencies)
            and truth_frequencies <= flagged,
            false_positive_frequencies=flagged - truth_frequencies,
            per_interval_heavy_counts=(
                app.counter.count_history(heavy_frequency)
                if heavy_flow is not None
                else TimeSeries("fig4.heavy_counts")),
            with_song=with_song,
            workload=workload,
            precision_recall=score_heavy_hitter(app, population).as_dict(),
        )

    mix = FlowMixWorkload(
        testbed.topo.hosts["h1"], testbed.topo.hosts["h2"].ip,
        link_capacity_pps=LINK_CAPACITY_PPS, num_flows=num_flows,
        heavy_fraction=heavy_fraction, seed=seed,
    )
    mix.launch()
    testbed.sim.run(duration)
    app.finalize(duration)

    heavy_flow = mix.heavy_flows[0]
    heavy_frequency = mapper.frequency_of(heavy_flow)
    mouse_frequencies = {
        mapper.frequency_of(spec.flow) for spec in mix.specs[1:]
    } - {heavy_frequency}
    flagged = app.heavy_frequencies()
    return Fig4ABResult(
        heavy_flow=heavy_flow,
        heavy_frequency=heavy_frequency,
        alerts=list(app.alerts),
        heavy_detected=heavy_frequency in flagged,
        false_positive_frequencies=flagged & mouse_frequencies,
        per_interval_heavy_counts=app.counter.count_history(heavy_frequency),
        with_song=with_song,
    )


@dataclass
class Fig4CDResult:
    """Port-scan run outcome."""

    alerts: list[ScanAlert]
    scan_detected: bool
    ports_heard: list[int]
    #: Mel spectrogram over the scan window: (times, centers_hz, mags).
    spectrogram: tuple[np.ndarray, np.ndarray, np.ndarray]
    #: Per-frame dominant frequency — the "clear logarithmic line".
    dominant_track_hz: np.ndarray
    with_song: bool
    workload: str | None = None
    #: Ground-truth precision/recall — workload-driven runs only.
    precision_recall: dict | None = None


def port_scan_experiment(
    with_song: bool = False,
    scan_interval: float = 0.11,
    distinct_threshold: int = 5,
    workload: str | None = None,
    workload_flows: int = 64,
) -> Fig4CDResult:
    """Run Figure 4c (``with_song=False``) or 4d (``True``).

    ``workload`` replaces the lone sweeping scanner with a named seeded
    mix (use ``"scan-churn"`` for a campaign buried in benign churn,
    including service traffic on in-band ports) and scores the detector
    against campaign ground truth.
    """
    testbed = build_testbed("single", plan_guard=40.0)
    allocation = testbed.plan.allocate("s1", len(SCAN_PORTS))
    mapper = PortToneMapper(allocation, SCAN_PORTS)
    PortScanEmitter(testbed.topo.switches["s1"], testbed.agents["s1"], mapper)
    app = PortScanDetectorApp(testbed.controller, mapper,
                              distinct_threshold=distinct_threshold)
    duration = scan_interval * len(SCAN_PORTS) + 2.0
    if with_song:
        song = SongNoise(seed=2018, level_db=55.0).render(duration)
        testbed.channel.add_noise(song, loop=True)
    testbed.controller.start()

    population = None
    if workload is not None:
        spec = build_workload(workload, num_flows=workload_flows, seed=3,
                              duration=duration)
        population = spec.build().retarget(testbed.topo.hosts["h2"].ip)
        driver = VectorizedFlowDriver(
            testbed.sim, population,
            HostSink(testbed.topo.hosts["h1"], population), stop=duration,
        )
        driver.launch()
    else:
        scan = PortScanSource(testbed.topo.hosts["h1"],
                              testbed.topo.hosts["h2"].ip, SCAN_PORTS,
                              interval=scan_interval)
        scan.launch()
    testbed.sim.run(duration)
    app.finalize(duration)

    capture = testbed.controller.microphone.record(
        testbed.channel, 0.0, scan_interval * len(SCAN_PORTS) + 0.5
    )
    spectrogram = mel_spectrogram(capture, num_filters=48, frame_duration=0.1)
    track = dominant_mel_track(*spectrogram)
    return Fig4CDResult(
        alerts=list(app.alerts),
        scan_detected=app.scan_detected,
        ports_heard=app.ports_heard(),
        spectrogram=spectrogram,
        dominant_track_hz=track,
        with_song=with_song,
        workload=workload,
        precision_recall=(
            score_port_scan(app, population, SCAN_PORTS, duration).as_dict()
            if population is not None else None),
    )
