"""Extension experiments: the paper's open problems, made to run.

* **XEXT1** — multi-hop relay (§8: "we leave this as an open question").
* **XEXT2** — DDoS / k-superspreader detection via chords (§5: "we
  leave that as an open problem").
* **XEXT3** — ultrasound capacity (§8: "including frequencies outside
  the spectrum of human hearing would allow ... more ... scalable
  network management operations").
* **XEXT4** — acoustic data modem throughput (§2's literature context:
  ~20 bytes / 6 s per hop).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..audio import (
    AcousticChannel,
    FrequencyDetector,
    FskReceiver,
    FskTransmitter,
    Microphone,
    Position,
    Speaker,
    ToneSpec,
    default_modem_config,
)
from ..core import FrequencyPlan, build_relay_chain
from ..core.apps import (
    AddressToneMapper,
    ChordEmitter,
    SuperspreaderDetectorApp,
)
from ..net import FanInSource, FanOutSource, Simulator
from .rigs import build_testbed


@dataclass
class RelayResult:
    """XEXT1 outcome."""

    num_hops: int
    source_to_listener_m: float
    direct_heard: bool
    relayed_heard: bool
    end_to_end_latency: float | None
    per_relay_counts: list[float]


def relay_experiment(
    num_relays: int = 2,
    hop_distance_m: float = 30.0,
    source_level_db: float = 60.0,
    gain_db: float = 35.0,
) -> RelayResult:
    """Ladder a tone across ``num_relays`` hops and race it against the
    direct (single-hop) path at the same total distance."""
    sim = Simulator()
    channel = AcousticChannel()
    plan = FrequencyPlan(low_hz=800.0, guard_hz=40.0)
    positions = [Position(hop_distance_m * (index + 1), 0.0, 0.0)
                 for index in range(num_relays)]
    relays = build_relay_chain(sim, channel, plan, positions, block_size=2,
                               gain_db=gain_db)
    ingress = plan.allocation_of("relay-block0")
    final = plan.allocation_of(f"relay-block{num_relays}")
    total_distance = hop_distance_m * (num_relays + 1)

    emit_time = 1.0
    source = Speaker(Position(0.0, 0.0, 0.0))
    sim.schedule_at(emit_time, lambda: source.play(
        channel, sim.now, ToneSpec(ingress.frequency_for(0), 0.15,
                                   source_level_db)
    ))

    listener = Microphone(Position(total_distance, 0.0, 0.0), seed=55)
    direct_detector = FrequencyDetector(list(ingress.frequencies),
                                        min_level_db=30.0)
    final_detector = FrequencyDetector(list(final.frequencies),
                                       min_level_db=30.0)
    direct_hits: list[float] = []
    relayed_hits: list[float] = []

    def listen() -> None:
        window = listener.record(channel, sim.now - 0.1, sim.now)
        if direct_detector.detect(window):
            direct_hits.append(sim.now)
        if final_detector.detect(window):
            relayed_hits.append(sim.now)

    sim.every(0.1, listen)
    sim.run(emit_time + 0.5 * (num_relays + 2) + 2.0)

    return RelayResult(
        num_hops=num_relays + 1,
        source_to_listener_m=total_distance,
        direct_heard=bool(direct_hits),
        relayed_heard=bool(relayed_hits),
        end_to_end_latency=(relayed_hits[0] - emit_time) if relayed_hits
        else None,
        per_relay_counts=[relay.relayed.total for relay in relays],
    )


@dataclass
class SuperspreaderResult:
    """XEXT2 outcome."""

    mode: str                      #: "superspreader" or "ddos"
    attack_detected: bool
    attacker_flagged: bool
    benign_alerts: int
    detection_interval: float | None


def superspreader_experiment(
    mode: str = "superspreader",
    num_addresses: int = 15,
    k: int = 5,
    duration: float = 9.0,
) -> SuperspreaderResult:
    """Run the chord-telemetry attack detection in one of two modes."""
    if mode not in ("superspreader", "ddos"):
        raise ValueError(f"unknown mode {mode!r}")
    testbed = build_testbed("single")
    mapper = AddressToneMapper(
        testbed.plan.allocate("s1/src", 12),
        testbed.plan.allocate("s1/dst", 12),
    )
    second_agent = testbed.extra_agent("s1-chord", Position(0.0, -0.9, 0.0))
    ChordEmitter(testbed.topo.switches["s1"], testbed.agents["s1"],
                 second_agent, mapper)
    app = SuperspreaderDetectorApp(testbed.controller, mapper, k=k)
    testbed.controller.start()

    host = testbed.topo.hosts["h1"]
    if mode == "superspreader":
        attack = FanOutSource(
            host, [f"10.1.0.{index}" for index in range(num_addresses)],
            interval=0.12, rounds=4,
        )
    else:
        attack = FanInSource(
            host, [f"10.2.0.{index}" for index in range(num_addresses)],
            "10.0.0.2", interval=0.12, rounds=4,
        )
    attack.launch()
    testbed.sim.run(duration)

    if mode == "superspreader":
        detected = app.superspreader_detected
        flagged = app.is_source_flagged(host.ip)
        first = (app.spreader_alerts[0].interval_start
                 if app.spreader_alerts else None)
        benign = len(app.victim_alerts)  # fan-out shouldn't cry "victim"
        # (a fan-out's single source does appear as many dst contacts'
        # counterpart, so victim alerts would be false alarms)
    else:
        detected = app.ddos_detected
        flagged = app.is_victim_flagged("10.0.0.2")
        first = (app.victim_alerts[0].interval_start
                 if app.victim_alerts else None)
        benign = len(app.spreader_alerts)
    return SuperspreaderResult(mode, detected, flagged, benign, first)


@dataclass
class UltrasoundResult:
    """XEXT3 outcome."""

    audible_capacity: int
    extended_capacity: int
    ultrasound_tone_detected: bool


def ultrasound_experiment(guard_hz: float = 20.0) -> UltrasoundResult:
    """Extend the plan into ultrasound (to 40 kHz at a 96 kHz channel
    rate) and verify a 25 kHz tone detects like any other."""
    audible = FrequencyPlan(low_hz=20.0, high_hz=20_000.0, guard_hz=guard_hz)
    extended = FrequencyPlan(low_hz=20.0, high_hz=40_000.0, guard_hz=guard_hz)

    sample_rate = 96_000
    channel = AcousticChannel(sample_rate=sample_rate)
    speaker = Speaker(Position(0.5, 0.0, 0.0), max_frequency=45_000.0)
    speaker.play(channel, 0.0, ToneSpec(25_000.0, 0.3, 70.0))
    microphone = Microphone(Position(), sample_rate=sample_rate, seed=8)
    window = microphone.record(channel, 0.05, 0.25)
    detector = FrequencyDetector([25_000.0])
    events = detector.detect(window)
    return UltrasoundResult(
        audible_capacity=audible.capacity,
        extended_capacity=extended.capacity,
        ultrasound_tone_detected=len(events) == 1,
    )


@dataclass
class ModemResult:
    """XEXT4 outcome."""

    payload_bytes: int
    airtime_s: float
    effective_bits_per_second: float
    decoded_ok: bool
    decoded_ok_with_song: bool


def modem_experiment(payload: bytes = b"MDN alert: rack 7 fan failure") -> ModemResult:
    """Measure frame airtime and verify decode, clean and under song
    noise."""
    from ..audio import SongNoise

    plan = FrequencyPlan(low_hz=1000.0, guard_hz=40.0)
    config = default_modem_config(plan.allocate("modem", 5))

    def run(with_song: bool) -> tuple[bool, float]:
        channel = AcousticChannel()
        if with_song:
            channel.add_noise(SongNoise(seed=5, level_db=50.0).render(12.0),
                              Position(2.0, 2.0, 0.0))
        transmitter = FskTransmitter(config, Speaker(Position(0.6, 0.0, 0.0)))
        end = transmitter.send(channel, 0.5, payload)
        capture = Microphone(Position(), seed=9).record(channel, 0.0,
                                                        end + 0.3)
        try:
            decoded = FskReceiver(config).decode(capture, 0.0)
        except Exception:
            return False, end - 0.5
        return decoded == payload, end - 0.5

    clean_ok, airtime = run(False)
    noisy_ok, _ = run(True)
    return ModemResult(
        payload_bytes=len(payload),
        airtime_s=airtime,
        effective_bits_per_second=len(payload) * 8 / airtime,
        decoded_ok=clean_ok,
        decoded_ok_with_song=noisy_ok,
    )
