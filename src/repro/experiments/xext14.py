"""XEXT14 — overload and wedged links: the ``repro.infra`` hardening.

PR 4's reliability layer answered *lossy* links; this experiment
answers *hostile load and wedged endpoints*, the two failure shapes
ROADMAP item 3 calls out, in three episodes:

1. **Wedged link** — a Pi crashes mid-run.  Deadline-only ARQ learns
   nothing until three consecutive frames have each ridden out their
   full 2 s delivery deadline; the :class:`~repro.infra.CircuitBreaker`
   (fed by the sender's early-suspect signal) trips after the same
   three-failure evidence but from ~0.15 s-old signals, cutting
   time-to-failover by well over the 2× acceptance bar — and fast-fails
   every send while OPEN instead of queueing 2 s of retransmissions
   each.  Half-open probes (paced by the breaker's
   :class:`~repro.infra.RetryPolicy`) bring the link back after the Pi
   restarts.
2. **Ingest storm** — a send flood against a crashed Pi, and a
   six-tone detection storm against the controller.  Without admission
   control the ARQ ``_pending`` table grows with every send; with
   :class:`~repro.infra.TokenBucket` buckets both ingest points shed
   the excess as *counted* drops (``repro.obs``:``arq.mp_shed``,
   ``controller.events_shed``) while ``in_flight`` stays bounded by
   ``burst + rate × duration``.
3. **Shared spectra** — two co-located controllers sharing one
   microphone each pay a full FFT per window; with one
   :class:`~repro.infra.SpectraCache` between them the window spectrum
   is computed once and both see identical events, at a ~50 % hit rate.

All timing is simulation time; every episode is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..audio import AcousticChannel, Microphone, Position
from ..audio.devices import Speaker
from ..core import (
    MDNController,
    MpArqSender,
    MusicAgent,
    MusicProtocolMessage,
    PiBridge,
)
from ..core.apps.failover import FailoverManager, InbandFallback
from ..infra import BreakerState, CircuitBreaker, SpectraCache, TokenBucket
from ..net.sim import Simulator
from ..net.switch import Switch
from .rigs import build_testbed

#: Seed for every xext14 stage (microphone noise, agent naming).
XEXT14_SEED = 14

MESSAGE = MusicProtocolMessage(1000.0, 0.05, 70.0)


def _pi_rig(seed: int = XEXT14_SEED) -> tuple[Simulator, PiBridge]:
    """A minimal switch + Pi-bridge rig (no acoustic path needed)."""
    sim = Simulator()
    channel = AcousticChannel()
    switch = Switch(sim, "s1")
    agent = MusicAgent(sim, channel, Speaker(Position(1.0, 0.0, 0.0)),
                       name="s1")
    return sim, PiBridge(sim, switch, agent)


# ----------------------------------------------------------------------
# Episode 1: wedged Pi — deadline-only detection vs circuit breaker
# ----------------------------------------------------------------------

@dataclass
class WedgedLinkResult:
    """One crash/restart episode under both policies."""

    wedge_at: float
    recover_at: float
    frame_interval: float
    #: Earliest moment a deadline-only policy (3 consecutive frame
    #: expirations) can declare the link dead.
    baseline_detected_at: float | None
    baseline_latency: float | None
    #: When the breaker actually tripped and failover activated.
    breaker_failover_at: float | None
    breaker_latency: float | None
    #: baseline_latency / breaker_latency (the >= 2x acceptance bar).
    speedup: float | None
    #: Failback to acoustic after the Pi restarts (half-open probe ACK).
    failback_at: float | None
    breaker_trips: int
    fast_failed: int
    baseline_expired: int
    breaker_expired: int
    breaker_transitions: list = field(default_factory=list)


def wedged_link_experiment(
    wedge_at: float = 2.1,
    recover_at: float = 8.0,
    duration: float = 14.0,
    frame_interval: float = 0.25,
    failure_threshold: int = 3,
    seed: int = XEXT14_SEED,
) -> WedgedLinkResult:
    """One Pi wedges and later restarts, under a steady MP frame flow.

    Both runs send the identical schedule.  The baseline detector is
    the best a deadline-only policy can do: declare the link dead after
    ``failure_threshold`` *consecutive* frame expirations — each of
    which takes the full 2 s deadline to manifest.  The breaker run
    feeds the same threshold from the sender's early-suspect signal
    and drives a real in-band failover through
    :meth:`FailoverManager.bind_breaker`.
    """
    frames = int(duration / frame_interval)

    # -- baseline: deadline-only ---------------------------------------
    sim, bridge = _pi_rig(seed)
    sender = MpArqSender(bridge)
    consecutive = {"count": 0}
    detected: list[float] = []

    def _on_ack(_seq: int, _latency: float) -> None:
        consecutive["count"] = 0

    def _on_expire(_seq: int) -> None:
        consecutive["count"] += 1
        if consecutive["count"] == failure_threshold and not detected:
            detected.append(sim.now)

    for index in range(frames):
        sim.schedule_at(index * frame_interval, sender.send_wire,
                        MESSAGE.marshal(), _on_ack, _on_expire)
    sim.schedule_at(wedge_at, bridge.pi.crash)
    sim.schedule_at(recover_at, bridge.pi.restart)
    sim.run(duration + 3.0)
    baseline_stats = sender.stats()
    baseline_at = detected[0] if detected else None

    # -- treatment: circuit breaker + bound failover -------------------
    testbed = build_testbed("single")
    sim = testbed.sim
    bridge = PiBridge(sim, testbed.topo.switches["s1"],
                      testbed.agents["s1"])
    breaker = CircuitBreaker("s1", failure_threshold=failure_threshold,
                             recovery_timeout=1.0)
    sender = MpArqSender(bridge, breaker=breaker)
    fallback = InbandFallback(testbed.topo.hosts["h1"],
                              testbed.topo.hosts["h2"], period=0.1)
    manager = FailoverManager(testbed.controller, None, {"s1": fallback})
    manager.bind_breaker("s1", breaker)
    for index in range(frames):
        sim.schedule_at(index * frame_interval, sender.send_wire,
                        MESSAGE.marshal())
    sim.schedule_at(wedge_at, bridge.pi.crash)
    sim.schedule_at(recover_at, bridge.pi.restart)
    sim.run(duration + 3.0)
    breaker_stats = sender.stats()
    failover_at = next((e.time for e in manager.events
                        if e.action == "to_inband"), None)
    failback_at = next((e.time for e in manager.events
                        if e.action == "to_acoustic"), None)

    baseline_latency = (baseline_at - wedge_at
                        if baseline_at is not None else None)
    breaker_latency = (failover_at - wedge_at
                       if failover_at is not None else None)
    speedup = (baseline_latency / breaker_latency
               if baseline_latency and breaker_latency else None)
    return WedgedLinkResult(
        wedge_at=wedge_at,
        recover_at=recover_at,
        frame_interval=frame_interval,
        baseline_detected_at=baseline_at,
        baseline_latency=baseline_latency,
        breaker_failover_at=failover_at,
        breaker_latency=breaker_latency,
        speedup=speedup,
        failback_at=failback_at,
        breaker_trips=sum(1 for t in breaker.transitions
                          if t.state is BreakerState.OPEN),
        fast_failed=breaker_stats.fast_failed,
        baseline_expired=baseline_stats.expired,
        breaker_expired=breaker_stats.expired,
        breaker_transitions=list(breaker.transitions),
    )


# ----------------------------------------------------------------------
# Episode 2: ingest storms — unbounded growth vs counted shedding
# ----------------------------------------------------------------------

@dataclass
class StormResult:
    """Send flood on a wedged ARQ link + detection storm on the
    controller, with and without admission control."""

    storm_sends: int
    storm_duration: float
    bucket_rate: float
    bucket_burst: float
    #: Peak ``_pending`` size without admission control.
    bare_peak_in_flight: int
    #: Peak ``_pending`` size with the token bucket in front.
    limited_peak_in_flight: int
    arq_admitted: int
    arq_shed: int
    #: burst + rate x duration — the analytic bound the peak must obey.
    admitted_bound: float
    # Controller half:
    controller_detections: int
    controller_dispatched: int
    controller_shed: int
    #: detections == dispatched + shed (nothing silently lost).
    conservation_holds: bool


def storm_experiment(
    sends: int = 300,
    storm_duration: float = 1.5,
    bucket_rate: float = 20.0,
    bucket_burst: float = 25.0,
    tones: int = 6,
    listen_duration: float = 3.0,
    seed: int = XEXT14_SEED,
) -> StormResult:
    """Overload both ingest points and measure what bounds what."""
    interval = storm_duration / sends

    # -- ARQ half: flood a crashed Pi ----------------------------------
    sim, bridge = _pi_rig(seed)
    bridge.pi.crash()
    bare = MpArqSender(bridge)
    for index in range(sends):
        sim.schedule_at(index * interval, bare.send_wire, MESSAGE.marshal())
    sim.run(storm_duration + 3.0)

    sim, bridge = _pi_rig(seed)
    bridge.pi.crash()
    bucket = TokenBucket(bucket_rate, bucket_burst, name="arq.s1")
    limited = MpArqSender(bridge, admission=bucket)
    for index in range(sends):
        sim.schedule_at(index * interval, limited.send_wire,
                        MESSAGE.marshal())
    sim.run(storm_duration + 3.0)
    limited_stats = limited.stats()

    # -- controller half: six continuous tones, limited dispatch ------
    sim = Simulator()
    channel = AcousticChannel()
    limiter = TokenBucket(10.0, 5.0, name="controller")
    controller = MDNController(
        sim, channel, Microphone(Position(), seed=seed),
        ingest_limiter=limiter,
    )
    frequencies = [600.0 + 100.0 * i for i in range(tones)]
    dispatched: list[float] = []
    controller.watch(frequencies,
                     on_detection=lambda e: dispatched.append(e.time))
    for index, frequency in enumerate(frequencies):
        agent = MusicAgent(sim, channel,
                           Speaker(Position(0.5 + 0.1 * index, 0.0, 0.0)),
                           name=f"storm{index}")
        # One long tone per agent: every window of the run detects it.
        agent.play(frequency, listen_duration, 72.0)
    controller.start()
    sim.run(listen_duration)

    return StormResult(
        storm_sends=sends,
        storm_duration=storm_duration,
        bucket_rate=bucket_rate,
        bucket_burst=bucket_burst,
        bare_peak_in_flight=bare.peak_in_flight,
        limited_peak_in_flight=limited.peak_in_flight,
        arq_admitted=limited_stats.sent,
        arq_shed=limited_stats.shed,
        admitted_bound=bucket_burst + bucket_rate * storm_duration,
        controller_detections=controller.detections,
        controller_dispatched=len(dispatched),
        controller_shed=controller.events_shed,
        conservation_holds=(controller.detections
                            == len(dispatched) + controller.events_shed),
    )


# ----------------------------------------------------------------------
# Episode 3: co-located listeners sharing one spectra cache
# ----------------------------------------------------------------------

@dataclass
class SharedSpectraResult:
    """Two controllers, one microphone, one cache."""

    windows_each: int
    cache_hits: int
    cache_misses: int
    hit_rate: float
    #: Both controllers saw the identical event stream.
    events_identical: bool
    events_a: int
    events_b: int


def shared_spectra_experiment(
    duration: float = 3.0,
    listen_interval: float = 0.1,
    seed: int = XEXT14_SEED,
) -> SharedSpectraResult:
    """Two co-located controllers listen to the same air through one
    microphone and one :class:`~repro.infra.SpectraCache`: each window
    is transformed once, reused once, and both see the same tones."""
    sim = Simulator()
    channel = AcousticChannel()
    microphone = Microphone(Position(), seed=seed)
    cache = SpectraCache(capacity=16, ttl=2 * listen_interval)
    events_a: list[tuple[float, float]] = []
    events_b: list[tuple[float, float]] = []
    controllers = []
    for sink in (events_a, events_b):
        controller = MDNController(
            sim, channel, microphone,
            listen_interval=listen_interval, spectra_cache=cache,
        )
        controller.watch(
            [800.0, 1200.0],
            on_detection=lambda e, s=sink: s.append((e.time, e.frequency)),
        )
        controllers.append(controller)
    agent = MusicAgent(sim, channel, Speaker(Position(0.8, 0.0, 0.0)),
                       name="beacon")
    beat = 0.0
    while beat < duration - 0.3:
        sim.schedule_at(beat, agent.play, 800.0, 0.12, 70.0)
        sim.schedule_at(beat + 0.15, agent.play, 1200.0, 0.12, 70.0)
        beat += 0.4
    for controller in controllers:
        controller.start()
    sim.run(duration)
    windows = controllers[0].windows_processed
    return SharedSpectraResult(
        windows_each=windows,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        hit_rate=cache.hit_rate,
        events_identical=events_a == events_b,
        events_a=len(events_a),
        events_b=len(events_b),
    )


# ----------------------------------------------------------------------
# Top-level driver (CLI / obs entry point)
# ----------------------------------------------------------------------

@dataclass
class Xext14Result:
    """Everything the xext14 CLI run produces."""

    wedged: WedgedLinkResult
    storm: StormResult
    shared: SharedSpectraResult


def infra_experiment(smoke: bool = False,
                     seed: int = XEXT14_SEED) -> Xext14Result:
    """The full XEXT14 stack; ``smoke`` shrinks the audio episodes for
    CI (the wedged-link episode is pure packet simulation and runs at
    full size either way)."""
    wedged = wedged_link_experiment(seed=seed)
    if smoke:
        storm = storm_experiment(sends=150, listen_duration=1.6, seed=seed)
        shared = shared_spectra_experiment(duration=1.6, seed=seed)
    else:
        storm = storm_experiment(seed=seed)
        shared = shared_spectra_experiment(seed=seed)
    return Xext14Result(wedged=wedged, storm=storm, shared=shared)
