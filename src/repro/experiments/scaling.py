"""Controller scaling: how many devices can one listener monitor?

The paper's testbed had 7 switches; §5 and §8 speculate about
datacenter scale.  Two resources bound a single MDN controller:

* **spectrum** — the frequency plan's capacity (~1000 slots at 20 Hz);
* **compute** — per-window FFT + matching cost as the watch list grows.

This sweep measures both: N devices (N up to hundreds), each chirping
its own plan frequency within one listening window, against a single
detector watching all N.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..audio import (
    AcousticChannel,
    FrequencyDetector,
    Microphone,
    Position,
    ToneSpec,
)
from ..core import FrequencyPlan


@dataclass
class ScalePoint:
    """One device-count measurement."""

    num_devices: int
    num_active: int           #: devices that actually chirped this window
    recall: float             #: fraction of active devices heard
    false_positives: int      #: inactive plan slots reported
    detect_ms: float          #: detector wall time for the window
    plan_utilization: float   #: fraction of plan capacity consumed
    render_ms: float = 0.0    #: cold synthesis wall time for the window
    cached_render_ms: float = 0.0  #: re-poll wall time (window memo hit)
    memo_hits: int = 0        #: channel render-memo hits (registry-backed)


def monitoring_scale_sweep(
    device_counts: tuple[int, ...] = (7, 25, 50, 100, 200),
    active_fraction: float = 0.5,
    window_duration: float = 0.3,
    guard_hz: float = 20.0,
    level_db: float = 68.0,
    seed: int = 13,
) -> list[ScalePoint]:
    """Sweep monitored-device count; half the devices chirp per window.

    All devices share one plan (one frequency each); active devices
    start their tones at staggered offsets inside the window, like real
    unsynchronized chirpers.
    """
    if not 0 < active_fraction <= 1:
        raise ValueError("active_fraction must be in (0, 1]")
    # The sweep runs under the observability layer so per-point render/
    # detect costs land in the shared registry (and memo-hit counts come
    # from the channel's registry-backed counters rather than ad-hoc
    # bookkeeping).  If the caller already enabled obs, reuse theirs.
    was_enabled = obs.enabled()
    obs.enable()
    try:
        return _sweep(device_counts, active_fraction, window_duration,
                      guard_hz, level_db, seed)
    finally:
        if not was_enabled:
            obs.disable()


def _sweep(
    device_counts: tuple[int, ...],
    active_fraction: float,
    window_duration: float,
    guard_hz: float,
    level_db: float,
    seed: int,
) -> list[ScalePoint]:
    results = []
    for count in device_counts:
        plan = FrequencyPlan(low_hz=400.0,
                             high_hz=400.0 + guard_hz * (count + 2),
                             guard_hz=guard_hz)
        frequencies = [
            plan.allocate(f"device{index}", 1).frequency_for(0)
            for index in range(count)
        ]
        rng = np.random.default_rng(seed + count)
        num_active = max(1, int(count * active_fraction))
        active = set(rng.choice(count, size=num_active, replace=False))

        channel = AcousticChannel()
        for index in sorted(active):
            offset = float(rng.uniform(0.0, window_duration * 0.2))
            channel.play_tone(
                offset,
                ToneSpec(frequencies[index], window_duration, level_db),
                Position(0.5 + 0.01 * index, 0.0, 0.0),
            )
        microphone = Microphone(Position(), seed=seed)
        with obs.span("scaling.render", devices=count):
            start = time.perf_counter()
            window = microphone.record(
                channel, window_duration * 0.25, window_duration * 1.05
            )
            render_s = time.perf_counter() - start
        # A second listener polling the same (position, window) hits the
        # channel's render memo; measure that path too.
        with obs.span("scaling.cached_render", devices=count):
            start = time.perf_counter()
            microphone.record(
                channel, window_duration * 0.25, window_duration * 1.05
            )
            cached_render_s = time.perf_counter() - start
        detector = FrequencyDetector(frequencies)
        with obs.span("scaling.detect", devices=count):
            start = time.perf_counter()
            events = detector.detect(window)
            elapsed = time.perf_counter() - start

        heard = {event.frequency for event in events}
        active_frequencies = {frequencies[index] for index in active}
        recall = len(heard & active_frequencies) / len(active_frequencies)
        results.append(ScalePoint(
            num_devices=count,
            num_active=num_active,
            recall=recall,
            false_positives=len(heard - active_frequencies),
            detect_ms=elapsed * 1000.0,
            plan_utilization=count / plan.capacity,
            render_ms=render_s * 1000.0,
            cached_render_ms=cached_render_s * 1000.0,
            memo_hits=channel.render_cache_hits,
        ))
    return results
