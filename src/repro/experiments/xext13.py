"""XEXT13 — spectrum agility under narrowband interference.

The paper's plan is static; §5/Fig 4b already shows a song in the room
degrades detection, and PR 4's answer — in-band failover — abandons the
acoustic channel entirely.  A loud narrowband interferer is worse than
it looks: beyond drowning its own band, it desensitizes the receiver
across the detector's sidelobe-rejection radius (±120 Hz), so symbols
whose bands carry *no* interference energy stop detecting too.  This
experiment jams a fraction of one app's allocation with a persistent
narrowband interferer and compares three policies:

* **static** — the paper's plan, ridden down: every symbol inside the
  interfered band *or its shadow* is lost for the rest of the run;
* **failover** — PR 4's health + in-band fallback: the monitor sees
  the missed beats and correctly bails emitters to the data network —
  the right diagnosis with a surrendering remedy, since acoustic
  delivery stays down (and in the data-plane-failure scenario the
  channel exists for, there is no network to bail to);
* **agility** — the :mod:`repro.core.spectrum` loop: the sentinel
  classifies the hot bands, the replanner relocates every slot in the
  interference shadow, and the two-phase PLAN_PREPARE/PLAN_COMMIT
  migration rides the MP ARQ envelope to the emitter's Pi, with
  make-before-break listening on both plans during the handover.

Headline: with ≥30 % of the allocation covered, agility sustains
≥95 % symbol delivery while static drops below 80 %, migration commits
within two beat intervals of classification, and the epoch tags show
zero events lost or misattributed across the commit boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import (
    ChannelHealthMonitor,
    InterferenceSentinel,
    MpArqSender,
    PiBridge,
    PiPlanParticipant,
    SpectrumAgilityManager,
)
from ..core.agent import MusicAgent
from ..core.apps.failover import FailoverManager, InbandFallback
from ..core.controller import MDNController
from ..core.frequency_plan import Allocation
from ..faults import FaultHarness
from .rigs import build_testbed

#: Seed every xext13 interferer schedule derives from.
XEXT13_SEED = 13


# ----------------------------------------------------------------------
# The workload: a cyclic symbol beater + a symbol-resolving listener
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BeatRecord:
    """One emitted telemetry beat."""

    time: float
    symbol: int
    frequency: float
    epoch: int      #: the emitter's plan epoch when the beat left


@dataclass(frozen=True)
class OnsetRecord:
    """One heard telemetry symbol."""

    time: float
    symbol: int
    frequency: float     #: plan entry the onset was attributed to
    epoch: int           #: epoch tag carried by the detection


class SymbolBeater:
    """Cyclic telemetry emitter: beat ``n`` plays symbol ``n % K``.

    Walks its allocation round-robin, one tone per ``period``, so every
    symbol beats once per ``K * period`` — a stand-in for any
    tone-mapped app's steady-state traffic.  :meth:`rebind` adopts a
    migrated allocation (wired as a PLAN_COMMIT callback) and bumps the
    emitter-side epoch stamped onto subsequent beats.
    """

    def __init__(self, sim, agent: MusicAgent, allocation: Allocation,
                 period: float = 0.3, tone_duration: float = 0.08,
                 tone_level_db: float = 70.0, start: float | None = None):
        self.sim = sim
        self.agent = agent
        self.allocation = allocation
        self.period = period
        self.tone_duration = tone_duration
        self.tone_level_db = tone_level_db
        self.epoch = 0
        self.emissions: list[BeatRecord] = []
        self._n = 0
        first = period / 2 if start is None else start
        sim.schedule_at(first, self._start)

    def _start(self) -> None:
        self._beat()
        self._timer = self.sim.every(self.period, self._beat)

    def rebind(self, allocation: Allocation) -> None:
        self.allocation = allocation
        self.epoch += 1

    def _beat(self) -> None:
        symbol = self._n % len(self.allocation)
        frequency = self.allocation.frequency_for(symbol)
        self._n += 1
        if self.agent.play(frequency, self.tone_duration,
                           self.tone_level_db):
            self.emissions.append(BeatRecord(
                self.sim.now, symbol, frequency, self.epoch
            ))


class SymbolListener:
    """Controller-side half: one onset subscription per symbol.

    Each symbol's callback closes over its index, so when a migration
    moves the subscription to a new frequency (``migrate_watch``) the
    symbol binding travels with it — re-attribution across the commit
    boundary is exactly what the onset stream shows.
    """

    def __init__(self, controller: MDNController,
                 allocation: Allocation) -> None:
        self.onsets: list[OnsetRecord] = []
        for index, frequency in enumerate(allocation.frequencies):
            controller.watch(
                [frequency],
                on_onset=lambda event, symbol=index: self.onsets.append(
                    OnsetRecord(event.time, symbol, event.frequency,
                                event.epoch)
                ),
            )

    def by_symbol(self) -> dict[int, list[OnsetRecord]]:
        out: dict[int, list[OnsetRecord]] = {}
        for onset in self.onsets:
            out.setdefault(onset.symbol, []).append(onset)
        return out


def _delivery(emissions: list[BeatRecord], onsets: list[OnsetRecord],
              after: float, listen_interval: float = 0.1,
              slack: float = 0.35) -> tuple[float, int, int]:
    """Fraction of beats at/after ``after`` heard as the right symbol.

    A beat at ``t`` matches an onset of the same symbol whose window
    started in ``[t - listen_interval - ε, t + slack]``; symbols repeat
    every ``K · period`` ≫ slack, so matches are unambiguous.
    """
    by_symbol: dict[int, list[float]] = {}
    for onset in onsets:
        by_symbol.setdefault(onset.symbol, []).append(onset.time)
    matched = 0
    total = 0
    for beat in emissions:
        if beat.time < after:
            continue
        total += 1
        times = by_symbol.get(beat.symbol, ())
        lo = beat.time - listen_interval - 1e-6
        hi = beat.time + slack
        if any(lo <= time <= hi for time in times):
            matched += 1
    return (matched / total if total else 0.0), matched, total


# ----------------------------------------------------------------------
# One policy run
# ----------------------------------------------------------------------

@dataclass
class PolicyResult:
    """One policy under one interferer configuration."""

    policy: str
    symbols: int
    covered_slots: int
    covered_fraction: float
    interferer_start: float
    duration: float
    beats_emitted: int
    beats_matched: int           #: post-interferer beats heard correctly
    beats_judged: int            #: post-interferer beats emitted
    delivery: float              #: matched / judged
    clean_delivery: float        #: pre-interferer delivery (sanity)
    migrations_committed: int
    migrations_aborted: int
    migration_latency: float | None   #: classification -> commit, seconds
    classified_at: float | None
    committed_at: float | None
    plan_epoch: int
    health_transitions: int      #: failover policy: verdict changes seen
    failovers: int               #: failover policy: to_inband activations
    onsets: list[OnsetRecord] = field(default_factory=list)
    emissions: list[BeatRecord] = field(default_factory=list)


def spectrum_agility_run(
    policy: str,
    covered_slots: int = 2,
    symbols: int = 6,
    period: float = 0.3,
    duration: float = 30.0,
    interferer_start: float = 6.0,
    interferer_level_db: float = 85.0,
    seed: int = XEXT13_SEED,
) -> PolicyResult:
    """One end-to-end run of one policy under one interferer.

    The beater cycles ``symbols`` tones on the plan's lowest slots; the
    interferer covers slots ``1 .. covered_slots`` (a contiguous band
    inside the allocation) from ``interferer_start`` to the end of the
    run.  ``policy`` is ``"static"``, ``"failover"`` or ``"agility"``.
    """
    if policy not in ("static", "failover", "agility"):
        raise ValueError(f"unknown policy {policy!r}")
    if covered_slots >= symbols:
        raise ValueError("interferer must leave at least one clean symbol")
    testbed = build_testbed("single")
    sim = testbed.sim
    plan = testbed.plan
    controller = testbed.controller
    allocation = plan.allocate("telemetry/s1", symbols)
    agent = testbed.agents["s1"]
    beater = SymbolBeater(sim, agent, allocation, period=period)
    listener = SymbolListener(controller, allocation)

    monitor = None
    failover_manager = None
    agility = None
    if policy == "failover":
        emitters = {
            f"s1/{index}": allocation.frequency_for(index)
            for index in range(symbols)
        }
        monitor = ChannelHealthMonitor(
            controller, emitters, period=symbols * period,
        )
        fallbacks = {
            name: InbandFallback(testbed.topo.hosts["h1"],
                                 testbed.topo.hosts["h2"],
                                 period=period)
            for name in emitters
        }
        failover_manager = FailoverManager(controller, monitor, fallbacks)
    elif policy == "agility":
        # 8 windows of classification memory: the interferer is
        # continuous, so 0.8 s suffices while a 4%-duty symbol chirp
        # still cannot trip the 92% on-fraction.
        sentinel = InterferenceSentinel(plan, controller,
                                        persistence_windows=8)
        agility = SpectrumAgilityManager(
            controller, plan, sentinel,
            handover=2 * controller.listen_interval,
            prepare_timeout=0.5,
        )
        bridge = PiBridge(sim, testbed.topo.switches["s1"], agent)
        sender = MpArqSender(bridge)
        participant = PiPlanParticipant(
            sender, "telemetry/s1", allocation,
            on_commit=[beater.rebind],
        )
        agility.add_participant("telemetry/s1", participant)

    if covered_slots:
        harness = FaultHarness(sim, seed=seed)
        air = harness.acoustic(testbed.channel)
        # Strictly inside the covered slots' bands, clear of the
        # adjacent slots' edges.
        low = plan.slot_frequency(1) - plan.guard_hz / 2 + 5.0
        high = plan.slot_frequency(covered_slots) + plan.guard_hz / 2 - 5.0
        air.narrowband_interferer(
            low, high, interferer_start, duration,
            level_db=interferer_level_db,
            label=f"xext13/{policy}/{covered_slots}",
        )

    controller.start()
    sim.run(duration)

    delivery, matched, judged = _delivery(
        beater.emissions, listener.onsets, after=interferer_start,
        listen_interval=controller.listen_interval,
    )
    clean_delivery, _m, _t = _delivery(
        [b for b in beater.emissions if b.time < interferer_start - 0.5],
        listener.onsets, after=0.0,
        listen_interval=controller.listen_interval,
    )
    committed = [r for r in (agility.records if agility else [])
                 if r.status == "committed"]
    first = committed[0] if committed else None
    return PolicyResult(
        policy=policy,
        symbols=symbols,
        covered_slots=covered_slots,
        covered_fraction=covered_slots / symbols,
        interferer_start=interferer_start,
        duration=duration,
        beats_emitted=len(beater.emissions),
        beats_matched=matched,
        beats_judged=judged,
        delivery=delivery,
        clean_delivery=clean_delivery,
        migrations_committed=(agility.migrations_committed if agility else 0),
        migrations_aborted=(agility.migrations_aborted if agility else 0),
        migration_latency=(first.latency if first else None),
        classified_at=(first.classified_at if first else None),
        committed_at=(first.resolved_at if first else None),
        plan_epoch=plan.epoch,
        health_transitions=(len(monitor.transitions) if monitor else 0),
        failovers=(sum(1 for e in failover_manager.events
                       if e.action == "to_inband")
                   if failover_manager else 0),
        onsets=listener.onsets,
        emissions=beater.emissions,
    )


# ----------------------------------------------------------------------
# Bandwidth sweep + top-level driver
# ----------------------------------------------------------------------

@dataclass
class SweepPoint:
    """Static vs agility delivery at one interference bandwidth."""

    covered_slots: int
    covered_fraction: float
    static_delivery: float
    agility_delivery: float
    migrations: int


def bandwidth_sweep(
    covered: tuple[int, ...] = (0, 1, 2, 3),
    symbols: int = 6,
    duration: float = 18.0,
    interferer_start: float = 4.5,
    seed: int = XEXT13_SEED,
) -> list[SweepPoint]:
    """Interference bandwidth vs delivery, static vs agility."""
    points = []
    for slots in covered:
        static = spectrum_agility_run(
            "static", covered_slots=slots, symbols=symbols,
            duration=duration, interferer_start=interferer_start, seed=seed,
        )
        agility = spectrum_agility_run(
            "agility", covered_slots=slots, symbols=symbols,
            duration=duration, interferer_start=interferer_start, seed=seed,
        )
        points.append(SweepPoint(
            covered_slots=slots,
            covered_fraction=slots / symbols,
            static_delivery=static.delivery,
            agility_delivery=agility.delivery,
            migrations=agility.migrations_committed,
        ))
    return points


@dataclass
class Xext13Result:
    """Everything the xext13 CLI run produces."""

    static: PolicyResult
    failover: PolicyResult
    agility: PolicyResult
    sweep: list[SweepPoint]


def spectrum_agility_experiment(smoke: bool = False,
                                seed: int = XEXT13_SEED) -> Xext13Result:
    """The full XEXT13 stack; ``smoke`` shrinks the runs for CI."""
    if smoke:
        kwargs = dict(duration=16.0, interferer_start=3.5, seed=seed)
        sweep = bandwidth_sweep(covered=(0, 2), duration=12.0,
                                interferer_start=2.5, seed=seed)
    else:
        kwargs = dict(duration=30.0, interferer_start=6.0, seed=seed)
        sweep = bandwidth_sweep(seed=seed)
    return Xext13Result(
        static=spectrum_agility_run("static", **kwargs),
        failover=spectrum_agility_run("failover", **kwargs),
        agility=spectrum_agility_run("agility", **kwargs),
        sweep=sweep,
    )
