"""Capacity and detector ablations (XCAP in DESIGN.md).

Two questions the paper raises:

* §5: "we could distinguish up to 1000 distinct frequencies played
  simultaneously" — how does detection accuracy scale with the number
  of concurrent tones, and where does the 20 Hz guard break down?
* DESIGN.md §5: FFT vs Goertzel backend — accuracy and CPU cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..audio import (
    AcousticChannel,
    FrequencyDetector,
    Microphone,
    Position,
    ToneSpec,
)
from ..core import FrequencyPlan


@dataclass
class ConcurrencyPoint:
    """Detection accuracy for one number of simultaneous tones."""

    num_tones: int
    recall: float          #: fraction of played tones detected
    precision: float       #: fraction of detections that were played


def concurrency_sweep(
    tone_counts: tuple[int, ...] = (1, 5, 10, 25, 50, 100),
    guard_hz: float = 20.0,
    window_duration: float = 0.3,
    level_db: float = 70.0,
    seed: int = 5,
) -> list[ConcurrencyPoint]:
    """Play N simultaneous grid tones and measure recall/precision.

    All tones are emitted at the plan grid and listened for with the
    full plan watch list, so false positives are crosstalk onto
    unplayed slots.
    """
    results = []
    for num_tones in tone_counts:
        plan = FrequencyPlan(low_hz=400.0,
                             high_hz=400.0 + guard_hz * (max(tone_counts) * 2),
                             guard_hz=guard_hz)
        allocation = plan.allocate("all", max(tone_counts) * 2)
        rng = np.random.default_rng(seed + num_tones)
        slots = rng.choice(len(allocation), size=num_tones, replace=False)
        played = {allocation.frequency_for(int(slot)) for slot in slots}

        channel = AcousticChannel()
        for frequency in played:
            channel.play_tone(
                0.0, ToneSpec(frequency, window_duration + 0.1, level_db),
                Position(0.7, 0.0, 0.0),
            )
        window = Microphone(Position(), seed=seed).record(
            channel, 0.05, 0.05 + window_duration
        )
        detector = FrequencyDetector(list(allocation.frequencies))
        detected = {event.frequency for event in detector.detect(window)}

        true_positives = len(detected & played)
        recall = true_positives / len(played)
        precision = true_positives / len(detected) if detected else 1.0
        results.append(ConcurrencyPoint(num_tones, recall, precision))
    return results


@dataclass
class GuardPoint:
    """Separability of two tones at one guard spacing."""

    guard_hz: float
    both_detected: bool


def guard_spacing_sweep(
    spacings: tuple[float, ...] = (5.0, 10.0, 15.0, 20.0, 30.0, 50.0),
    window_duration: float = 0.2,
    level_db: float = 65.0,
) -> list[GuardPoint]:
    """Find the separability floor: two equal tones ``guard`` Hz apart.

    The paper's empirical answer was ~20 Hz; the detector's window
    length sets ours.
    """
    results = []
    for guard in spacings:
        base = 1000.0
        channel = AcousticChannel()
        for frequency in (base, base + guard):
            channel.play_tone(
                0.0, ToneSpec(frequency, window_duration + 0.1, level_db),
                Position(0.7, 0.0, 0.0),
            )
        window = Microphone(Position(), seed=6).record(
            channel, 0.05, 0.05 + window_duration
        )
        detector = FrequencyDetector([base, base + guard],
                                     tolerance_hz=max(guard / 2.0, 2.0))
        detected = {event.frequency for event in detector.detect(window)}
        results.append(GuardPoint(guard, detected == {base, base + guard}))
    return results


@dataclass
class MultipathPoint:
    """Detection accuracy under one echo severity."""

    echo_loss_db: float
    recall: float
    false_positives: int


def multipath_sweep(
    echo_losses_db: tuple[float, ...] = (20.0, 12.0, 6.0, 3.0),
    num_tones: int = 8,
    window_duration: float = 0.25,
    seed: int = 9,
) -> list[MultipathPoint]:
    """Detection accuracy as room reflections strengthen.

    Two early-reflection taps (13 ms and 31 ms extra path) at the given
    loss relative to the direct path; 8 simultaneous grid tones; recall
    and phantom detections measured.  Real rooms sit around 6–15 dB for
    strong early reflections.
    """
    results = []
    for loss in echo_losses_db:
        channel = AcousticChannel(
            echo_taps=((0.013, loss), (0.031, loss + 5.0))
        )
        plan = FrequencyPlan(low_hz=600.0, guard_hz=40.0)
        allocation = plan.allocate("all", num_tones * 2)
        rng = np.random.default_rng(seed)
        slots = rng.choice(len(allocation), size=num_tones, replace=False)
        played = {allocation.frequency_for(int(slot)) for slot in slots}
        for frequency in played:
            channel.play_tone(
                0.0, ToneSpec(frequency, window_duration + 0.1, 68.0),
                Position(0.7, 0.0, 0.0),
            )
        window = Microphone(Position(), seed=seed).record(
            channel, 0.05, 0.05 + window_duration
        )
        detector = FrequencyDetector(list(allocation.frequencies))
        detected = {event.frequency for event in detector.detect(window)}
        recall = len(detected & played) / len(played)
        results.append(MultipathPoint(loss, recall,
                                      len(detected - played)))
    return results


@dataclass
class BackendComparison:
    """FFT vs Goertzel on the same watch list and windows."""

    watch_size: int
    fft_recall: float
    goertzel_recall: float
    fft_ms_per_window: float
    goertzel_ms_per_window: float


def backend_ablation(
    watch_sizes: tuple[int, ...] = (4, 16, 64),
    trials: int = 20,
    window_duration: float = 0.15,
    seed: int = 7,
) -> list[BackendComparison]:
    """Compare the two detector backends (DESIGN.md §5 ablation).

    The Goertzel bank costs O(K·N) for K watched frequencies, the FFT
    O(N log N) regardless of K — the crossover shows in the timings.
    """
    results = []
    for watch_size in watch_sizes:
        plan = FrequencyPlan(low_hz=500.0, guard_hz=40.0)
        allocation = plan.allocate("all", watch_size)
        rng = np.random.default_rng(seed + watch_size)

        recalls = {"fft": 0, "goertzel": 0}
        timings = {"fft": 0.0, "goertzel": 0.0}
        detectors = {
            backend: FrequencyDetector(list(allocation.frequencies),
                                       backend=backend)
            for backend in ("fft", "goertzel")
        }
        for trial in range(trials):
            frequency = allocation.frequency_for(
                int(rng.integers(0, watch_size))
            )
            channel = AcousticChannel()
            channel.play_tone(
                0.0, ToneSpec(frequency, window_duration + 0.05, 68.0),
                Position(0.7, 0.0, 0.0),
            )
            window = Microphone(Position(), seed=seed + trial).record(
                channel, 0.02, 0.02 + window_duration
            )
            for backend, detector in detectors.items():
                start = time.perf_counter()
                events = detector.detect(window)
                timings[backend] += time.perf_counter() - start
                if any(event.frequency == frequency for event in events):
                    recalls[backend] += 1
        results.append(BackendComparison(
            watch_size=watch_size,
            fft_recall=recalls["fft"] / trials,
            goertzel_recall=recalls["goertzel"] / trials,
            fft_ms_per_window=timings["fft"] / trials * 1000.0,
            goertzel_ms_per_window=timings["goertzel"] / trials * 1000.0,
        ))
    return results
