"""``repro.fleet`` — sharded multi-room fleet simulation.

The paper's vision is a datacenter where every rack sings; one room,
one channel and one listener cannot hold a datacenter.  This package
scales the testbed out: a fleet of N acoustically isolated rooms (each
with its own Simulator, AcousticChannel and MDNController) is cut into
contiguous shards and executed either serially (the bit-identical
reference) or on a process pool, with per-room metrics rolled up into
one fleet-wide :class:`~repro.obs.MetricsRegistry` via the new merge
support.  Dispatch rides the PR 6 infra primitives: token-bucket
admission pacing and a circuit breaker that turns a poisoned pool into
counted shard failures instead of a crashed run.

Entry points::

    from repro.fleet import FleetSpec, run_fleet

    spec = FleetSpec(num_rooms=50, switches_per_room=20)   # 1000 switches
    serial = run_fleet(spec, backend="serial")
    fanned = run_fleet(spec, num_shards=8, backend="process")
    assert serial.identity_signature() == fanned.identity_signature()
    print(fanned.metrics.report())

The xext15 experiment (``python -m repro run xext15``) sweeps shard
count against wall-clock over exactly this API.

PR 10 adds the self-healing layer on top: a
:class:`~repro.fleet.supervisor.FleetSupervisor` that survives
crashing, hanging, poisoning and duplicating workers (see
:mod:`repro.faults.process`) with hedged re-execution, room-granular
checkpoint resume (:class:`~repro.fleet.checkpoint.CheckpointStore`),
bounded retries and per-shard quarantine — while keeping
``identity_signature()`` bit-identical to the fault-free serial
reference.  The xext17 chaos sweep (``python -m repro run xext17``)
measures exactly that contract.
"""

from __future__ import annotations

from .checkpoint import CheckpointError, CheckpointStore
from .dispatch import FleetDispatcher, ShardFailure
from .room import RoomReport, run_room
from .runner import (
    FLEET_GAUGE_POLICY,
    FleetReport,
    ShardReport,
    build_fleet_report,
    merge_fleet_metrics,
    run_fleet,
    run_shard,
)
from .supervisor import (
    FleetSupervisor,
    SupervisorPolicy,
    SupervisorStats,
    run_fleet_supervised,
    validate_shard_report,
)
from .worker import ShardJob, run_shard_job
from .specs import (
    DEFAULT_FLEET_SEED,
    DEFAULT_LISTEN_INTERVAL,
    FaultPlan,
    FleetConfigError,
    FleetSpec,
    RoomSpec,
    ShardSpec,
    ensure_picklable,
)

__all__ = [
    "DEFAULT_FLEET_SEED",
    "DEFAULT_LISTEN_INTERVAL",
    "FLEET_GAUGE_POLICY",
    "CheckpointError",
    "CheckpointStore",
    "FaultPlan",
    "FleetConfigError",
    "FleetDispatcher",
    "FleetReport",
    "FleetSpec",
    "FleetSupervisor",
    "RoomReport",
    "RoomSpec",
    "ShardFailure",
    "ShardJob",
    "ShardReport",
    "ShardSpec",
    "SupervisorPolicy",
    "SupervisorStats",
    "build_fleet_report",
    "ensure_picklable",
    "merge_fleet_metrics",
    "run_fleet",
    "run_fleet_supervised",
    "run_room",
    "run_shard",
    "run_shard_job",
    "validate_shard_report",
]
