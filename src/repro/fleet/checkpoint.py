"""Room-granular checkpoint spill: crash recovery that never reruns
finished work.

A shard that dies after simulating 9 of its 10 rooms has *computed*
90% of its answer; without a spill the retry recomputes all of it.
:class:`CheckpointStore` writes each completed :class:`RoomReport` to
disk as it lands, so a re-execution (retry or hedge) loads the
finished rooms and simulates only the remainder.  Because rooms are
deterministic, a loaded report is bit-identical to what the rerun
would have computed — resume changes wall-clock, never results, which
is the supervisor's exactness contract.

The file format is paranoid about the one failure mode a spill has:
a worker dying *mid-write*.  Every checkpoint is

* written to a temp file and ``os.replace``-d into place (atomic on
  POSIX — a reader never sees a half-renamed file), and
* framed as ``MAGIC | length | crc32 | payload``, so even a torn or
  truncated file that somehow lands at the final path is detected and
  **discarded**, never half-loaded.  A corrupt checkpoint costs a
  recompute; a trusted one would corrupt the fleet report.

Payloads are plain pickles of :class:`RoomReport` (the same object
that already crosses the process boundary in shard results), so the
registry contents and merge order survive the round trip exactly.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path

from .. import obs
from .room import RoomReport

#: Format tag; bump on any framing change so stale spills are rejected.
MAGIC = b"RPCKPT1\n"

#: ``length | crc32`` header that follows MAGIC (big-endian).
_HEADER = struct.Struct(">QI")


class CheckpointError(ValueError):
    """A checkpoint file failed validation (torn, truncated, stale)."""


def _frame(payload: bytes) -> bytes:
    return MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _unframe(blob: bytes, context: str) -> bytes:
    if not blob.startswith(MAGIC):
        raise CheckpointError(f"{context}: bad magic (not a checkpoint "
                              f"or written by an older format)")
    header = blob[len(MAGIC):len(MAGIC) + _HEADER.size]
    if len(header) < _HEADER.size:
        raise CheckpointError(f"{context}: truncated header")
    length, crc = _HEADER.unpack(header)
    payload = blob[len(MAGIC) + _HEADER.size:]
    if len(payload) != length:
        raise CheckpointError(
            f"{context}: payload is {len(payload)} bytes, header "
            f"promised {length} (torn write)"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointError(f"{context}: crc mismatch (corrupt payload)")
    return payload


class CheckpointStore:
    """Per-shard spill directory of completed room reports.

    One store serves one supervised fleet run; shards never share a
    room id, but files are namespaced by shard anyway so a hedge and
    the straggler it shadows write the *same* paths — last atomic
    replace wins, and both sides wrote identical bytes-for-identical
    rooms, so the race is harmless by construction.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._m_saved = obs.counter("fleet.checkpoint.rooms_saved")
        self._m_loaded = obs.counter("fleet.checkpoint.rooms_loaded")
        self._m_discarded = obs.counter("fleet.checkpoint.files_discarded")

    # ------------------------------------------------------------------

    def _shard_dir(self, shard_id: int) -> Path:
        return self.root / f"shard{shard_id:05d}"

    def _room_path(self, shard_id: int, room_id: int) -> Path:
        return self._shard_dir(shard_id) / f"room{room_id:06d}.ckpt"

    # ------------------------------------------------------------------

    def save_room(self, shard_id: int, room: RoomReport) -> Path:
        """Atomically spill one finished room report."""
        payload = pickle.dumps(room, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._room_path(shard_id, room.room_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_bytes(_frame(payload))
        os.replace(tmp, path)
        self._m_saved.inc()
        return path

    def load_rooms(self, shard_id: int) -> dict[int, RoomReport]:
        """Every valid checkpointed room of one shard, keyed by room id.

        Invalid files (torn writes, bad crc, unpicklable or wrong-type
        payloads) are deleted and skipped — a discarded checkpoint is
        a recompute, a trusted bad one is a wrong answer.
        """
        rooms: dict[int, RoomReport] = {}
        shard_dir = self._shard_dir(shard_id)
        if not shard_dir.is_dir():
            return rooms
        for path in sorted(shard_dir.glob("room*.ckpt")):
            try:
                payload = _unframe(path.read_bytes(), path.name)
                room = pickle.loads(payload)
                if not isinstance(room, RoomReport):
                    raise CheckpointError(
                        f"{path.name}: payload is "
                        f"{type(room).__name__}, not RoomReport"
                    )
            except (CheckpointError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError):
                self._m_discarded.inc()
                path.unlink(missing_ok=True)
                continue
            rooms[room.room_id] = room
            self._m_loaded.inc()
        return rooms

    def discard_shard(self, shard_id: int) -> None:
        """Drop every spill of one shard (e.g. after its report merged)."""
        shard_dir = self._shard_dir(shard_id)
        if not shard_dir.is_dir():
            return
        for path in shard_dir.glob("room*.ckpt"):
            path.unlink(missing_ok=True)

    def clear(self) -> None:
        """Drop every spill in the store."""
        for shard_dir in self.root.glob("shard*"):
            for path in shard_dir.glob("*"):
                path.unlink(missing_ok=True)
            shard_dir.rmdir()


def checkpoint_roundtrip_exact(room: RoomReport) -> bool:
    """Whether a room report survives the spill byte-exactly — the
    invariant the exactness contract leans on (used by tests and the
    supervisor's paranoia asserts)."""
    clone = pickle.loads(
        _unframe(_frame(pickle.dumps(room, pickle.HIGHEST_PROTOCOL)), "probe")
    )
    return clone.identity_signature() == room.identity_signature()


__all__ = [
    "MAGIC",
    "CheckpointError",
    "CheckpointStore",
    "checkpoint_roundtrip_exact",
]
