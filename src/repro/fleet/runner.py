"""The fleet driver: shard execution backends and merged observability.

Two backends, same pattern as the channel's ``render_at`` /
``render_at_reference`` pair:

* ``backend="serial"`` — the in-process reference: every shard runs in
  this interpreter, in shard order.  Slow, obviously correct.
* ``backend="process"`` — a ``ProcessPoolExecutor`` fan-out through
  :class:`~repro.fleet.dispatch.FleetDispatcher` (token-bucket paced,
  circuit-breaker guarded).  Rooms are acoustically isolated, so
  shards share no state and the pool is embarrassingly parallel.

Both produce the same :class:`FleetReport`: per-room results merged in
global room order, with the new ``MetricsRegistry.merge`` rolling every
shard's simulation-deterministic metrics into one fleet-wide registry.
``FleetReport.identity_signature()`` is the equality contract the
tests pin: serial and process backends — at any shard count — must
match it exactly.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass, field

from ..obs import MetricsRegistry
from .dispatch import FleetDispatcher, ShardFailure
from .room import RoomReport, run_room
from .specs import FleetSpec, ShardSpec

#: Gauges roll up with the peak policy fleet-wide (the one gauge the
#: rooms emit is a peak; last-write across isolated rooms would be
#: meaningless).
FLEET_GAUGE_POLICY = "max"


@dataclass
class ShardReport:
    """One shard's rooms, rolled up for the trip home.

    Compact by construction: per-room counts plus one merged registry —
    never signals, channels or simulators — so a 1000-room fleet's
    results fit in a few hundred kilobytes of pickled reports.
    """

    shard_id: int
    rooms: list[RoomReport]
    metrics: MetricsRegistry
    wall_s: float = 0.0
    #: Rooms loaded from checkpoint spill instead of simulated (only
    #: ever non-zero under the supervisor; execution detail, excluded
    #: from identity).
    rooms_resumed: int = 0
    #: Which execution attempt produced this report (0 = first try).
    attempt: int = 0

    @property
    def emissions(self) -> int:
        return sum(room.emissions for room in self.rooms)

    @property
    def onsets(self) -> int:
        return sum(room.onsets for room in self.rooms)

    @property
    def delivered(self) -> int:
        return sum(room.delivered for room in self.rooms)

    @property
    def delivery_ratio(self) -> float:
        emissions = self.emissions
        return self.delivered / emissions if emissions else 0.0


def run_shard(spec: ShardSpec) -> ShardReport:
    """Execute one shard's rooms sequentially (the worker entry point).

    Must stay a module-level function: the process backend pickles it
    by reference into every worker.
    """
    wall_start = _time.perf_counter()
    rooms = [run_room(room_spec) for room_spec in spec.rooms]
    metrics = MetricsRegistry()
    for room in rooms:
        metrics.merge(room.metrics, gauge_policy=FLEET_GAUGE_POLICY)
    return ShardReport(
        shard_id=spec.shard_id,
        rooms=rooms,
        metrics=metrics,
        wall_s=_time.perf_counter() - wall_start,
    )


@dataclass
class FleetReport:
    """The merged view of one fleet execution."""

    spec: FleetSpec
    backend: str
    num_shards: int
    workers: int
    shards: list[ShardReport]
    failures: list[ShardFailure]
    #: Fleet-wide rollup of every room's registry, in room order.
    metrics: MetricsRegistry
    wall_s: float = 0.0
    cpu_count: int = field(default_factory=lambda: os.cpu_count() or 1)
    #: Recovery accounting when the run was supervised (see
    #: :class:`repro.fleet.supervisor.SupervisorStats`); ``None`` for
    #: plain ``run_fleet`` executions.  Execution detail — excluded
    #: from the identity signature like every wall-clock field.
    supervisor: object | None = None

    @property
    def rooms(self) -> list[RoomReport]:
        """Every room report, in global room order."""
        ordered = [room for shard in self.shards for room in shard.rooms]
        ordered.sort(key=lambda room: room.room_id)
        return ordered

    @property
    def emissions(self) -> int:
        return sum(shard.emissions for shard in self.shards)

    @property
    def onsets(self) -> int:
        return sum(shard.onsets for shard in self.shards)

    @property
    def delivered(self) -> int:
        return sum(shard.delivered for shard in self.shards)

    @property
    def delivery_ratio(self) -> float:
        emissions = self.emissions
        return self.delivered / emissions if emissions else 0.0

    @property
    def simulated_seconds(self) -> float:
        """Total simulated time across rooms (rooms run concurrently
        in the fiction; the simulator work is per-room horizon)."""
        return self.spec.horizon * sum(
            len(shard.rooms) for shard in self.shards
        )

    @property
    def real_time_factor(self) -> float:
        """Simulated seconds delivered per wall-clock second."""
        return self.simulated_seconds / self.wall_s if self.wall_s else 0.0

    def identity_signature(self) -> dict:
        """Everything deterministic: per-room signatures (in room
        order) plus the merged metrics snapshot.  Wall-clock fields and
        shard grouping are excluded — they are execution detail, not
        result."""
        return {
            "rooms": [room.identity_signature() for room in self.rooms],
            "metrics": self.metrics.snapshot(),
        }


def merge_fleet_metrics(reports: list[ShardReport]) -> MetricsRegistry:
    """Roll shard results up into one fleet-wide registry.

    Merges from the room *leaves* in global room order, not from the
    per-shard rollups: float summation is non-associative, so a
    hierarchical rollup would make the merged histogram mean depend
    on the shard count in the last ulp — breaking the bit-identity
    contract between shard counts (and between the plain and
    supervised drivers, which share this helper for the same reason).
    """
    metrics = MetricsRegistry()
    ordered = sorted(
        (room for shard in reports for room in shard.rooms),
        key=lambda room: room.room_id,
    )
    for room in ordered:
        metrics.merge(room.metrics, gauge_policy=FLEET_GAUGE_POLICY)
    return metrics


def build_fleet_report(
    spec: FleetSpec,
    backend: str,
    num_shards: int,
    workers: int,
    shards: list[ShardReport],
    failures: list[ShardFailure],
    wall_s: float,
    supervisor: object | None = None,
) -> FleetReport:
    """Assemble the merged report both drivers return (shards and
    failures are re-sorted by shard id so caller completion order can
    never leak into the result)."""
    shards = sorted(shards, key=lambda report: report.shard_id)
    failures = sorted(failures, key=lambda failure: failure.shard_id)
    return FleetReport(
        spec=spec,
        backend=backend,
        num_shards=num_shards,
        workers=workers,
        shards=shards,
        failures=failures,
        metrics=merge_fleet_metrics(shards),
        wall_s=wall_s,
        supervisor=supervisor,
    )


def run_fleet(
    spec: FleetSpec,
    num_shards: int = 1,
    backend: str = "serial",
    workers: int | None = None,
    dispatcher: FleetDispatcher | None = None,
    shard_timeout: float | None = None,
) -> FleetReport:
    """Partition the fleet into shards and execute them.

    Parameters
    ----------
    spec:
        The fleet topology.
    num_shards:
        How many contiguous room-groups to cut the fleet into.
    backend:
        ``"serial"`` (reference) or ``"process"`` (pool).
    workers:
        Pool width for the process backend; defaults to ``num_shards``.
    dispatcher:
        Guardrail configuration; a default (no admission pacing,
        3-failure breaker, one retry) is built when omitted.
    shard_timeout:
        Optional per-shard wall-clock deadline for the process
        backend: a worker hung past it is killed (pool rebuild) and
        the shard retried/failed under the usual attempt accounting,
        so one wedged worker can never block the run forever.  Default
        ``None`` keeps the historical wait-forever behavior.
    """
    if backend not in ("serial", "process"):
        raise ValueError(f"unknown fleet backend {backend!r}")
    wall_start = _time.perf_counter()
    shard_specs = spec.shard_specs(num_shards)
    dispatcher = dispatcher or FleetDispatcher()
    if backend == "serial":
        reports, failures = dispatcher.run_serial(shard_specs, run_shard)
    else:
        reports, failures = dispatcher.run(
            shard_specs, run_shard, workers=workers or num_shards,
            shard_timeout=shard_timeout,
        )
    return build_fleet_report(
        spec=spec,
        backend=backend,
        num_shards=num_shards,
        workers=(workers or num_shards) if backend == "process" else 1,
        shards=reports,
        failures=failures,
        wall_s=_time.perf_counter() - wall_start,
    )
