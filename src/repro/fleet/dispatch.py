"""Fleet dispatch: admission-controlled, breaker-guarded shard fan-out.

The process pool is the fleet's one shared, exhaustible resource, and
it fails in the same two shapes the PR 6 infra layer was built for:

* **storms** — a driver that dumps 1000 shard submissions into the pool
  at once gives the OS a thundering herd of workers; a
  :class:`~repro.infra.TokenBucket` paces admissions so submissions
  enter at a bounded rate (bursts up to ``burst`` pass untouched);
* **poison** — a shard whose spec crashes every worker it touches
  would otherwise burn ``attempts x remaining_shards`` doomed
  executions; a :class:`~repro.infra.CircuitBreaker` over the pool
  trips after consecutive failures and fast-fails the rest of the run
  into counted :class:`ShardFailure` records instead.

Failures never take down the fleet run: the driver merges whatever
succeeded and reports the rest, the same counted-degradation contract
as ``detections == dispatched + shed``.

Clocks and sleeps are injectable so tests drive pacing deterministically
without real waiting; results are unaffected either way — pacing moves
*when* a shard runs, never what it computes.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable

from .. import obs
from ..infra import BreakerState, CircuitBreaker, TokenBucket
from .specs import ShardSpec, ensure_picklable


@dataclass
class ShardFailure:
    """One shard that never produced a report."""

    shard_id: int
    error: str
    attempts: int
    #: True when the breaker fast-failed the shard without running it.
    fast_failed: bool = False


class FleetDispatcher:
    """Runs shard specs through a worker pool under infra guardrails.

    Parameters
    ----------
    admission:
        Optional token bucket pacing shard submission (rate in
        shards/second against the dispatch clock).  ``None`` admits
        everything immediately.
    breaker:
        Optional circuit breaker over the pool.  ``None`` builds one
        with ``failure_threshold=3``; pass an explicit breaker to tune,
        or share one across fleet runs.
    max_attempts:
        Executions allowed per shard before it is recorded as failed
        (transient worker deaths get a retry; poison does not loop).
    clock, sleep:
        Injectable time source / wait primitive for the pacing loop.
    """

    def __init__(
        self,
        admission: TokenBucket | None = None,
        breaker: CircuitBreaker | None = None,
        max_attempts: int = 2,
        clock: Callable[[], float] = _time.monotonic,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.admission = admission
        self.breaker = breaker or CircuitBreaker(
            "fleet.pool", failure_threshold=3, recovery_timeout=1.0
        )
        self.max_attempts = max_attempts
        self._clock = clock
        self._sleep = sleep
        self._m_dispatched = obs.counter("fleet.shards_dispatched")
        self._m_retried = obs.counter("fleet.shards_retried")
        self._m_failed = obs.counter("fleet.shards_failed")

    # ------------------------------------------------------------------

    def _admit(self) -> None:
        """Block (via the injectable sleep) until the bucket admits."""
        if self.admission is None:
            return
        while not self.admission.admit(self._clock()):
            shortfall = 1.0 - self.admission.peek(self._clock())
            self._sleep(max(shortfall / self.admission.rate, 1e-4))

    def run(
        self,
        shards: tuple[ShardSpec, ...],
        runner: Callable,
        workers: int,
    ) -> tuple[list, list[ShardFailure]]:
        """Execute ``runner(shard)`` for every shard on a process pool.

        Returns ``(reports, failures)`` with reports sorted by
        ``shard_id`` — completion order is scheduling noise and must
        never leak into merge order.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        for shard in shards:
            ensure_picklable(shard, f"ShardSpec(shard_id={shard.shard_id})")
        reports: list = []
        failures: list[ShardFailure] = []
        attempts: dict[int, int] = {shard.shard_id: 0 for shard in shards}
        by_id = {shard.shard_id: shard for shard in shards}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending: dict = {}
            queue = list(shards)
            while queue or pending:
                while queue:
                    shard = queue.pop(0)
                    if not self.breaker.allow(self._clock()):
                        failures.append(ShardFailure(
                            shard_id=shard.shard_id,
                            error=f"breaker {self.breaker.state} "
                                  f"(pool judged unhealthy)",
                            attempts=attempts[shard.shard_id],
                            fast_failed=True,
                        ))
                        self._m_failed.inc()
                        continue
                    self._admit()
                    attempts[shard.shard_id] += 1
                    self._m_dispatched.inc()
                    pending[pool.submit(runner, shard)] = shard
                if not pending:
                    break
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    shard = pending.pop(future)
                    error = future.exception()
                    if error is None:
                        self.breaker.record_success(self._clock())
                        reports.append(future.result())
                        continue
                    self.breaker.record_failure(self._clock())
                    if attempts[shard.shard_id] < self.max_attempts:
                        self._m_retried.inc()
                        queue.append(by_id[shard.shard_id])
                    else:
                        failures.append(ShardFailure(
                            shard_id=shard.shard_id,
                            error=repr(error),
                            attempts=attempts[shard.shard_id],
                        ))
                        self._m_failed.inc()
        reports.sort(key=lambda report: report.shard_id)
        failures.sort(key=lambda failure: failure.shard_id)
        return reports, failures

    def run_serial(
        self,
        shards: tuple[ShardSpec, ...],
        runner: Callable,
    ) -> tuple[list, list[ShardFailure]]:
        """The in-process reference path, under the same guardrails.

        No pool, no pickling requirement — but the breaker and retry
        accounting behave identically, so the serial backend exercises
        the exact failure semantics the parallel one has.
        """
        reports: list = []
        failures: list[ShardFailure] = []
        for shard in shards:
            attempts = 0
            while True:
                if not self.breaker.allow(self._clock()):
                    failures.append(ShardFailure(
                        shard_id=shard.shard_id,
                        error=f"breaker {self.breaker.state} "
                              f"(pool judged unhealthy)",
                        attempts=attempts,
                        fast_failed=True,
                    ))
                    self._m_failed.inc()
                    break
                self._admit()
                attempts += 1
                self._m_dispatched.inc()
                try:
                    report = runner(shard)
                except Exception as error:
                    self.breaker.record_failure(self._clock())
                    if attempts < self.max_attempts:
                        self._m_retried.inc()
                        continue
                    failures.append(ShardFailure(
                        shard_id=shard.shard_id,
                        error=repr(error),
                        attempts=attempts,
                    ))
                    self._m_failed.inc()
                    break
                else:
                    self.breaker.record_success(self._clock())
                    reports.append(report)
                    break
        return reports, failures


__all__ = [
    "BreakerState",
    "FleetDispatcher",
    "ShardFailure",
]
