"""Fleet dispatch: admission-controlled, breaker-guarded shard fan-out.

The process pool is the fleet's one shared, exhaustible resource, and
it fails in the same two shapes the PR 6 infra layer was built for:

* **storms** — a driver that dumps 1000 shard submissions into the pool
  at once gives the OS a thundering herd of workers; a
  :class:`~repro.infra.TokenBucket` paces admissions so submissions
  enter at a bounded rate (bursts up to ``burst`` pass untouched);
* **poison** — a shard whose spec crashes every worker it touches
  would otherwise burn ``attempts x remaining_shards`` doomed
  executions; a :class:`~repro.infra.CircuitBreaker` over the pool
  trips after consecutive failures and fast-fails the rest of the run
  into counted :class:`ShardFailure` records instead.

Failures never take down the fleet run: the driver merges whatever
succeeded and reports the rest, the same counted-degradation contract
as ``detections == dispatched + shed``.

Clocks and sleeps are injectable so tests drive pacing deterministically
without real waiting; results are unaffected either way — pacing moves
*when* a shard runs, never what it computes.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable

from .. import obs
from ..infra import BreakerState, CircuitBreaker, TokenBucket
from .specs import ShardSpec, ensure_picklable


@dataclass
class ShardFailure:
    """One shard that never produced a report."""

    shard_id: int
    error: str
    attempts: int
    #: True when the breaker fast-failed the shard without running it.
    fast_failed: bool = False
    #: True when the supervisor gave up on a repeat offender (its
    #: per-shard breaker tripped) rather than exhausting attempts.
    quarantined: bool = False


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down even if its workers are wedged.

    ``shutdown(wait=True)`` on a pool with a hung worker blocks
    forever, so the workers are terminated first; joining the corpses
    afterwards is prompt.  Reaches into ``_processes`` — a CPython
    implementation detail, but the only eviction mechanism
    ``ProcessPoolExecutor`` has, and guarded so a future stdlib rename
    degrades to a plain (possibly blocking) shutdown rather than a
    crash.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            if process.is_alive():
                process.terminate()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    pool.shutdown(wait=True, cancel_futures=True)


class FleetDispatcher:
    """Runs shard specs through a worker pool under infra guardrails.

    Parameters
    ----------
    admission:
        Optional token bucket pacing shard submission (rate in
        shards/second against the dispatch clock).  ``None`` admits
        everything immediately.
    breaker:
        Optional circuit breaker over the pool.  ``None`` builds one
        with ``failure_threshold=3``; pass an explicit breaker to tune,
        or share one across fleet runs.
    max_attempts:
        Executions allowed per shard before it is recorded as failed
        (transient worker deaths get a retry; poison does not loop).
    clock, sleep:
        Injectable time source / wait primitive for the pacing loop.
    """

    def __init__(
        self,
        admission: TokenBucket | None = None,
        breaker: CircuitBreaker | None = None,
        max_attempts: int = 2,
        clock: Callable[[], float] = _time.monotonic,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.admission = admission
        self.breaker = breaker or CircuitBreaker(
            "fleet.pool", failure_threshold=3, recovery_timeout=1.0
        )
        self.max_attempts = max_attempts
        self._clock = clock
        self._sleep = sleep
        self._m_dispatched = obs.counter("fleet.shards_dispatched")
        self._m_retried = obs.counter("fleet.shards_retried")
        self._m_failed = obs.counter("fleet.shards_failed")
        self._m_timed_out = obs.counter("dispatch.shard_timeouts")
        self._m_rebuilds = obs.counter("dispatch.pool_rebuilds")
        self._m_casualties = obs.counter("dispatch.broken_pool_casualties")

    # ------------------------------------------------------------------

    def _admit(self) -> None:
        """Block (via the injectable sleep) until the bucket admits."""
        if self.admission is None:
            return
        while not self.admission.admit(self._clock()):
            shortfall = 1.0 - self.admission.peek(self._clock())
            self._sleep(max(shortfall / self.admission.rate, 1e-4))

    def run(
        self,
        shards: tuple[ShardSpec, ...],
        runner: Callable,
        workers: int,
        shard_timeout: float | None = None,
    ) -> tuple[list, list[ShardFailure]]:
        """Execute ``runner(shard)`` for every shard on a process pool.

        Returns ``(reports, failures)`` with reports sorted by
        ``shard_id`` — completion order is scheduling noise and must
        never leak into merge order.

        Two process-level failure shapes are survived, not propagated:

        * **a killed worker** (``os._exit``, OOM-kill, segfault) breaks
          the whole ``ProcessPoolExecutor``; the dispatcher converts
          the break into per-shard failed *attempts* (retried under the
          usual budget), records one breaker failure per break event —
          not one per casualty, or a single break would trip a
          3-threshold breaker on its own — and rebuilds the pool once
          per break (``dispatch.pool_rebuilds``);
        * **a hung worker** would otherwise block ``wait`` forever;
          with ``shard_timeout`` set, a shard past its deadline is
          counted (``dispatch.shard_timeouts``), its worker killed
          (pool rebuild — a wedged process cannot be evicted any other
          way) and the shard retried/failed.  Innocent shards in
          flight during the kill are re-queued with their attempt
          refunded: they were casualties, not offenders.

        In-flight submissions are capped at ``workers`` so a break can
        only ever take down work that was actually running.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive, got {shard_timeout}"
            )
        for shard in shards:
            ensure_picklable(shard, f"ShardSpec(shard_id={shard.shard_id})")
        reports: list = []
        failures: list[ShardFailure] = []
        attempts: dict[int, int] = {shard.shard_id: 0 for shard in shards}
        by_id = {shard.shard_id: shard for shard in shards}
        queue = list(shards)
        pending: dict = {}  # future -> (shard, deadline | None)

        def _fail(shard: ShardSpec, error: str, fast: bool = False) -> None:
            failures.append(ShardFailure(
                shard_id=shard.shard_id, error=error,
                attempts=attempts[shard.shard_id], fast_failed=fast,
            ))
            self._m_failed.inc()

        def _retry_or_fail(shard: ShardSpec, error: str) -> None:
            if attempts[shard.shard_id] < self.max_attempts:
                self._m_retried.inc()
                queue.append(by_id[shard.shard_id])
            else:
                _fail(shard, error)

        def _drain_casualties_and_rebuild() -> None:
            """Every still-pending future died with the pool; refund
            the innocents' attempts and put them back in line, then
            stand up a fresh pool."""
            nonlocal pool
            for future, (shard, _deadline) in list(pending.items()):
                self._m_casualties.inc()
                attempts[shard.shard_id] -= 1
                queue.append(by_id[shard.shard_id])
            pending.clear()
            _terminate_pool(pool)
            pool = ProcessPoolExecutor(max_workers=workers)
            self._m_rebuilds.inc()

        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while queue or pending:
                # Keep at most `workers` in flight: pool breaks can
                # then only hit work that was actually running.
                while queue and len(pending) < workers:
                    shard = queue.pop(0)
                    if not self.breaker.allow(self._clock()):
                        _fail(shard,
                              f"breaker {self.breaker.state} "
                              f"(pool judged unhealthy)", fast=True)
                        continue
                    self._admit()
                    attempts[shard.shard_id] += 1
                    self._m_dispatched.inc()
                    deadline = (self._clock() + shard_timeout
                                if shard_timeout is not None else None)
                    try:
                        pending[pool.submit(runner, shard)] = (shard,
                                                               deadline)
                    except BrokenExecutor:
                        # The pool died before this submit; refund and
                        # recover like any other break.
                        attempts[shard.shard_id] -= 1
                        queue.append(by_id[shard.shard_id])
                        self.breaker.record_failure(self._clock())
                        _drain_casualties_and_rebuild()
                        break
                if not pending:
                    if queue:
                        continue
                    break
                wait_timeout = None
                if shard_timeout is not None:
                    soonest = min(deadline
                                  for (_s, deadline) in pending.values())
                    wait_timeout = max(soonest - self._clock(), 0.0)
                done, _ = wait(pending, timeout=wait_timeout,
                               return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    shard, _deadline = pending.pop(future)
                    error = future.exception()
                    if error is None:
                        self.breaker.record_success(self._clock())
                        reports.append(future.result())
                    elif isinstance(error, BrokenExecutor):
                        broken = True
                        _retry_or_fail(shard, repr(error))
                    else:
                        self.breaker.record_failure(self._clock())
                        _retry_or_fail(shard, repr(error))
                if broken:
                    # One breaker failure per break *event*: the break
                    # is one fault, however many futures it doomed.
                    self.breaker.record_failure(self._clock())
                    _drain_casualties_and_rebuild()
                    continue
                if shard_timeout is not None and pending:
                    now = self._clock()
                    expired = [
                        (future, shard)
                        for future, (shard, deadline) in pending.items()
                        if deadline is not None and now >= deadline
                        and not future.done()
                    ]
                    if expired:
                        for future, shard in expired:
                            pending.pop(future)
                            self._m_timed_out.inc()
                            self.breaker.record_failure(now)
                            _retry_or_fail(
                                shard,
                                f"shard exceeded {shard_timeout:.3f} s "
                                f"timeout (worker killed)",
                            )
                        _drain_casualties_and_rebuild()
        finally:
            _terminate_pool(pool)
        # Retries and rebuilds scramble completion order worse than the
        # plain pool does; re-sort so scheduling noise never leaks out.
        # (Stub runners in tests may return bare values without a
        # shard_id — leave those in completion order.)
        reports.sort(key=lambda report: getattr(report, "shard_id", 0))
        failures.sort(key=lambda failure: failure.shard_id)
        return reports, failures

    def run_serial(
        self,
        shards: tuple[ShardSpec, ...],
        runner: Callable,
    ) -> tuple[list, list[ShardFailure]]:
        """The in-process reference path, under the same guardrails.

        No pool, no pickling requirement — but the breaker and retry
        accounting behave identically, so the serial backend exercises
        the exact failure semantics the parallel one has.
        """
        reports: list = []
        failures: list[ShardFailure] = []
        for shard in shards:
            attempts = 0
            while True:
                if not self.breaker.allow(self._clock()):
                    failures.append(ShardFailure(
                        shard_id=shard.shard_id,
                        error=f"breaker {self.breaker.state} "
                              f"(pool judged unhealthy)",
                        attempts=attempts,
                        fast_failed=True,
                    ))
                    self._m_failed.inc()
                    break
                self._admit()
                attempts += 1
                self._m_dispatched.inc()
                try:
                    report = runner(shard)
                except Exception as error:
                    self.breaker.record_failure(self._clock())
                    if attempts < self.max_attempts:
                        self._m_retried.inc()
                        continue
                    failures.append(ShardFailure(
                        shard_id=shard.shard_id,
                        error=repr(error),
                        attempts=attempts,
                    ))
                    self._m_failed.inc()
                    break
                else:
                    self.breaker.record_success(self._clock())
                    reports.append(report)
                    break
        return reports, failures


__all__ = [
    "BreakerState",
    "FleetDispatcher",
    "ShardFailure",
]
