"""The supervised worker entry point: faultable, checkpoint-resuming
shard execution.

:func:`run_shard_job` is what the :class:`~repro.fleet.supervisor.
FleetSupervisor` ships to pool workers instead of the bare
:func:`~repro.fleet.runner.run_shard`.  It is the same computation
wrapped in two things:

* the **process fault model** — before and during the shard it honors
  the deterministic :func:`~repro.faults.process.shard_fault_decision`
  for its ``(shard, attempt)``: sleep if straggling, die mid-shard if
  crashing, hand back poison if poisoned;
* the **checkpoint spill** — each finished room is saved to the
  :class:`~repro.fleet.checkpoint.CheckpointStore` immediately, and a
  re-execution loads whatever its predecessors finished and simulates
  only the rest.

With no fault plan and no checkpoint directory the wrapper reduces to
exactly ``run_shard``'s behavior (same rooms, same merged registry,
same report), which is what keeps the supervised fault-free fleet
bit-identical to the plain one.

Everything here must stay module-level and picklable — jobs cross the
process boundary by value, the function by reference.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from ..faults.process import (
    PoisonedShardReport,
    ProcessFaultPlan,
    crash_now,
    shard_fault_decision,
)
from ..obs import MetricsRegistry
from .checkpoint import CheckpointStore
from .room import run_room
from .runner import FLEET_GAUGE_POLICY, ShardReport
from .specs import ShardSpec


@dataclass(frozen=True)
class ShardJob:
    """One attempt at one shard, fully described by values."""

    shard: ShardSpec
    attempt: int = 0
    seed: int = 0
    faults: ProcessFaultPlan | None = None
    #: Where finished rooms are spilled / resumed from (``None``
    #: disables checkpointing).
    checkpoint_dir: str | None = None
    #: True only when this job runs in a disposable worker process —
    #: a hard (``os._exit``) crash fault in the driver's own
    #: interpreter would kill the whole run, so the serial backend
    #: downgrades it to the exception-shaped crash.
    hard_crash_ok: bool = False
    #: Label only: this execution is a hedge shadowing a straggler.
    hedge: bool = False


def run_shard_job(job: ShardJob) -> ShardReport | PoisonedShardReport:
    """Execute one (possibly fault-fated, possibly resumed) attempt.

    Room order and the merged-registry construction are identical to
    :func:`~repro.fleet.runner.run_shard`; resumed rooms contribute
    their checkpointed reports in place of fresh simulation, which is
    the same values by determinism.
    """
    wall_start = _time.perf_counter()
    decision = shard_fault_decision(
        job.faults, job.seed, job.shard.shard_id, job.attempt
    )
    if decision.straggle and decision.straggler_delay_s > 0:
        _time.sleep(decision.straggler_delay_s)
    store = (CheckpointStore(job.checkpoint_dir)
             if job.checkpoint_dir else None)
    resumed = (store.load_rooms(job.shard.shard_id) if store is not None
               else {})
    crash_after = decision.crash_after_rooms(len(job.shard.rooms))
    rooms = []
    rooms_resumed = 0
    for index, room_spec in enumerate(job.shard.rooms):
        if crash_after is not None and index >= crash_after:
            crash_now(decision.hard and job.hard_crash_ok)
        checkpointed = resumed.get(room_spec.room_id)
        if checkpointed is not None:
            rooms.append(checkpointed)
            rooms_resumed += 1
            continue
        room = run_room(room_spec)
        if store is not None:
            store.save_room(job.shard.shard_id, room)
        rooms.append(room)
    if decision.poison:
        return PoisonedShardReport(shard_id=job.shard.shard_id)
    metrics = MetricsRegistry()
    for room in rooms:
        metrics.merge(room.metrics, gauge_policy=FLEET_GAUGE_POLICY)
    return ShardReport(
        shard_id=job.shard.shard_id,
        rooms=rooms,
        metrics=metrics,
        wall_s=_time.perf_counter() - wall_start,
        rooms_resumed=rooms_resumed,
        attempt=job.attempt,
    )


__all__ = ["ShardJob", "run_shard_job"]
