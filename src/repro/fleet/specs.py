"""Fleet topology specs: the picklable contract between driver and shards.

A fleet is N acoustically isolated rooms (racks), each with its own
air, switches and listener.  Rooms never couple — sound does not cross
machine-room walls — so the only state that crosses the process
boundary is these specs going out and :class:`~repro.fleet.room`
reports coming back.  Everything here must therefore survive
``pickle`` (see :func:`ensure_picklable`), and everything is frozen so
a spec submitted to a worker is the spec that ran.

Frequency plans are **reused across rooms**: isolation means every
room gets the same band, which is how a 1000-switch fleet fits in the
~100–8000 Hz speaker envelope that caps a single room near 100
switches.

Numerology defaults (why these numbers):

* ``listen_interval`` 1/30 s → ~30 Hz FFT bins at the 16 kHz capture
  rate; ``guard_hz`` 120 keeps every plan slot within a few Hz of a
  bin centre (inside the detector's 10 Hz match tolerance) *and* four
  bins from its neighbours — at two-bin spacing the Hann mainlobes of
  simultaneous tones overlap and weaker tones stop being local spectral
  peaks at all (measured: 1/3 of a 20-switch room goes deaf at 60 Hz
  guard, zero at 120).  120 Hz caps a room near 60 switches in the
  speaker's 8 kHz envelope; fleets scale by adding rooms, not slots.
* ``emission_rate_hz`` 10 per switch with 0.03 s tones leaves a 0.07 s
  silent gap ≥ two listening windows, so consecutive chirps can never
  blur into one onset — each chirp is one countable delivery.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass, fields
from typing import Callable

#: Default fleet seed (PR sequence number, like XEXT14_SEED = 14).
DEFAULT_FLEET_SEED = 15

#: Listening window that puts 60 Hz-guard plan slots on FFT bin centres.
DEFAULT_LISTEN_INTERVAL = 1.0 / 30.0


class FleetConfigError(ValueError):
    """A fleet spec cannot cross the process boundary (or is invalid)."""


def ensure_picklable(obj: object, context: str) -> None:
    """Raise a clear :class:`FleetConfigError` if ``obj`` won't pickle.

    The parallel backend ships specs to worker processes; an
    unpicklable field (a lambda scene hook, a live Simulator smuggled
    into a spec) would otherwise surface as a deep multiprocessing
    traceback long after submission.  Probing here turns that into an
    immediate, named error.
    """
    try:
        pickle.dump(obj, io.BytesIO(), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise FleetConfigError(
            f"{context} is not picklable and cannot be dispatched to a "
            f"worker process: {exc!r}. Scene hooks must be module-level "
            f"functions, not closures/lambdas, and specs must not hold "
            f"live objects (simulators, channels, sockets)."
        ) from exc


@dataclass(frozen=True)
class FaultPlan:
    """Seeded chaos knobs applied inside each room's own FaultHarness.

    Draws come from a fault-labelled RNG stream
    (``seeded_rng(seed, "room:<id>:faults")``), so enabling faults
    never perturbs the room's placement/stagger stream — the same
    no-cross-contamination rule the PR 4 injectors follow.
    """

    #: Probability that any given switch suffers one speaker outage.
    speaker_outage_rate: float = 0.0
    #: Outage length, seconds.
    outage_duration: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.speaker_outage_rate <= 1.0:
            raise FleetConfigError(
                f"speaker_outage_rate must be in [0, 1], "
                f"got {self.speaker_outage_rate}"
            )
        if self.outage_duration <= 0:
            raise FleetConfigError(
                f"outage_duration must be positive, "
                f"got {self.outage_duration}"
            )

    @property
    def active(self) -> bool:
        return self.speaker_outage_rate > 0.0


#: Optional per-room scene hook: ``scene(sim, channel, rng)`` runs after
#: the room's agents are built (extra noise beds, rogue emitters...).
#: Must be a module-level function — the picklability audit rejects
#: closures before they can wedge a worker.
SceneHook = Callable[[object, object, object], None]


@dataclass(frozen=True)
class RoomSpec:
    """One acoustically isolated room: its own Simulator, air,
    switches and MDN controller, fully described by values."""

    room_id: int
    num_switches: int
    fleet_seed: int = DEFAULT_FLEET_SEED
    horizon: float = 1.0
    #: Chirps per second per switch.
    emission_rate_hz: float = 10.0
    listen_interval: float = DEFAULT_LISTEN_INTERVAL
    tone_duration: float = 0.03
    level_db: float = 70.0
    low_hz: float = 420.0
    guard_hz: float = 120.0
    backend: str = "fft"
    faults: FaultPlan | None = None
    scene: SceneHook | None = None

    #: Top of the cheap-speaker band (see ``audio.devices.Speaker``).
    SPEAKER_MAX_HZ = 8_000.0

    def __post_init__(self) -> None:
        if self.room_id < 0:
            raise FleetConfigError(f"room_id must be >= 0, got {self.room_id}")
        if self.num_switches < 1:
            raise FleetConfigError(
                f"num_switches must be >= 1, got {self.num_switches}"
            )
        if self.horizon <= 0:
            raise FleetConfigError(f"horizon must be positive, got {self.horizon}")
        if self.emission_rate_hz <= 0:
            raise FleetConfigError(
                f"emission_rate_hz must be positive, got {self.emission_rate_hz}"
            )
        gap = 1.0 / self.emission_rate_hz - self.tone_duration
        if gap < 2.0 * self.listen_interval:
            raise FleetConfigError(
                f"chirp gap {gap:.3f} s < two listening windows "
                f"({2 * self.listen_interval:.3f} s); onsets would blur "
                f"across consecutive chirps — lower emission_rate_hz or "
                f"listen_interval"
            )
        top = self.low_hz + self.guard_hz * (self.num_switches + 2)
        if top > self.SPEAKER_MAX_HZ:
            raise FleetConfigError(
                f"{self.num_switches} switches at {self.guard_hz:.0f} Hz "
                f"guard need the plan band to reach {top:.0f} Hz, past "
                f"the {self.SPEAKER_MAX_HZ:.0f} Hz speaker envelope — "
                f"split across more rooms (rooms reuse the band for free)"
            )

    @property
    def chirp_period(self) -> float:
        return 1.0 / self.emission_rate_hz


@dataclass(frozen=True)
class ShardSpec:
    """One unit of parallel execution: a contiguous run of rooms.

    A worker process receives exactly one ShardSpec and simulates its
    rooms sequentially; with one room per shard this is the
    finest-grained decomposition, with all rooms in one shard it is the
    serial reference.
    """

    shard_id: int
    rooms: tuple[RoomSpec, ...]

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise FleetConfigError(f"shard_id must be >= 0, got {self.shard_id}")
        if not self.rooms:
            raise FleetConfigError("a shard must contain at least one room")

    @property
    def num_switches(self) -> int:
        return sum(room.num_switches for room in self.rooms)


@dataclass(frozen=True)
class FleetSpec:
    """The whole deployment: rooms x switches plus shared knobs."""

    num_rooms: int = 50
    switches_per_room: int = 20
    seed: int = DEFAULT_FLEET_SEED
    horizon: float = 1.0
    emission_rate_hz: float = 10.0
    listen_interval: float = DEFAULT_LISTEN_INTERVAL
    tone_duration: float = 0.03
    level_db: float = 70.0
    low_hz: float = 420.0
    guard_hz: float = 120.0
    backend: str = "fft"
    faults: FaultPlan | None = None
    scene: SceneHook | None = None

    def __post_init__(self) -> None:
        if self.num_rooms < 1:
            raise FleetConfigError(
                f"num_rooms must be >= 1, got {self.num_rooms}"
            )
        if self.switches_per_room < 1:
            raise FleetConfigError(
                f"switches_per_room must be >= 1, got {self.switches_per_room}"
            )

    @property
    def num_switches(self) -> int:
        return self.num_rooms * self.switches_per_room

    @property
    def nominal_emissions_per_second(self) -> float:
        """Fleet-wide chirp rate while every switch is emitting."""
        return self.num_switches * self.emission_rate_hz

    def room_specs(self) -> tuple[RoomSpec, ...]:
        """One RoomSpec per room, in room order."""
        shared = {
            f.name: getattr(self, f.name)
            for f in fields(RoomSpec)
            if f.name not in ("room_id", "num_switches", "fleet_seed")
        }
        return tuple(
            RoomSpec(room_id=room_id, num_switches=self.switches_per_room,
                     fleet_seed=self.seed, **shared)
            for room_id in range(self.num_rooms)
        )

    def shard_specs(self, num_shards: int) -> tuple[ShardSpec, ...]:
        """Partition the rooms into ``num_shards`` contiguous shards.

        Contiguity keeps global room order stable under any shard
        count, which is what makes the merged fleet report bit-identical
        across serial, 2-shard and 8-shard executions (histogram rings
        are order-sensitive; counters never were).  Sizes differ by at
        most one room.
        """
        if not 1 <= num_shards <= self.num_rooms:
            raise FleetConfigError(
                f"num_shards must be in [1, {self.num_rooms}], "
                f"got {num_shards}"
            )
        rooms = self.room_specs()
        base, extra = divmod(self.num_rooms, num_shards)
        shards = []
        cursor = 0
        for shard_id in range(num_shards):
            size = base + (1 if shard_id < extra else 0)
            shards.append(ShardSpec(
                shard_id=shard_id,
                rooms=rooms[cursor:cursor + size],
            ))
            cursor += size
        return tuple(shards)
