"""One room of the fleet: build it, run it, report it.

:func:`run_room` is the unit of simulated work: a Simulator, an
AcousticChannel, ``num_switches`` chirping MusicAgents and one
MDNController, run to the spec's horizon.  Every random draw comes from
``seeded_rng(fleet_seed, "room:<id>")`` (placement, stagger) or
``"room:<id>:faults"`` (outages), so a room's result depends only on
its spec — never on which worker ran it, or when.

The report carries a :class:`~repro.obs.MetricsRegistry` built *after*
the run from simulation-deterministic quantities only (counts, sim-time
lags) — wall-clock cost lives in the separate ``wall_s`` field, so the
serial reference and the process-pool backend produce byte-identical
merged metrics.
"""

from __future__ import annotations

import math
import time as _time
from bisect import bisect_right
from dataclasses import dataclass, field

from ..audio import AcousticChannel, Microphone, Position, Speaker
from ..core import FrequencyPlan, MDNController
from ..core.agent import MusicAgent
from ..faults import FaultHarness, seeded_rng
from ..net.sim import Simulator
from ..obs import MetricsRegistry
from .specs import RoomSpec


@dataclass
class RoomReport:
    """What one room hands back across the process boundary."""

    room_id: int
    num_switches: int
    emissions: int
    onsets: int
    detections: int
    windows: int
    speaker_outages: int
    #: Chirps matched by at least one onset (the delivery numerator —
    #: an onset can only redeem the one chirp it is attributed to, so
    #: leakage false positives can never push delivery past 1.0).
    delivered: int
    #: Onsets attributable to no recent chirp (sidelobe leakage).
    spurious_onsets: int
    #: Distinct-chirp delivery: ``delivered / emissions``.
    delivery_ratio: float
    #: Simulation-deterministic metrics (counters + sim-time
    #: histograms); merged fleet-wide by the driver.
    metrics: MetricsRegistry
    #: Wall-clock cost of simulating this room.  Excluded from the
    #: identity signature — it is the one non-deterministic field.
    wall_s: float = 0.0

    def identity_signature(self) -> dict:
        """Everything deterministic, for serial-vs-parallel equality."""
        return {
            "room_id": self.room_id,
            "num_switches": self.num_switches,
            "emissions": self.emissions,
            "onsets": self.onsets,
            "detections": self.detections,
            "windows": self.windows,
            "speaker_outages": self.speaker_outages,
            "delivered": self.delivered,
            "spurious_onsets": self.spurious_onsets,
            "delivery_ratio": self.delivery_ratio,
            "metrics": self.metrics.snapshot(),
        }


@dataclass
class _RoomRig:
    """The built-but-not-yet-run room (internal)."""

    sim: Simulator
    channel: AcousticChannel
    controller: MDNController
    agents: list[MusicAgent] = field(default_factory=list)
    chirp_times: dict[float, list[float]] = field(default_factory=dict)
    emissions: int = 0
    speaker_outages: int = 0


def _build_room(spec: RoomSpec) -> _RoomRig:
    rng = seeded_rng(spec.fleet_seed, f"room:{spec.room_id}")
    sim = Simulator()
    channel = AcousticChannel()
    microphone = Microphone(Position(),
                            seed=int(rng.integers(0, 2**31 - 1)))
    controller = MDNController(
        sim, channel, microphone,
        listen_interval=spec.listen_interval, backend=spec.backend,
    )
    # Every room reuses the same plan band: rooms are acoustically
    # isolated, so spatial reuse is free — the fleet's whole point.
    plan = FrequencyPlan(
        low_hz=spec.low_hz,
        high_hz=spec.low_hz + spec.guard_hz * (spec.num_switches + 2),
        guard_hz=spec.guard_hz,
    )
    rig = _RoomRig(sim, channel, controller)
    period = spec.chirp_period
    # Last chirp must fully sound and leave a post-tone window or two
    # before the horizon, so in-flight tones can't dangle uncounted.
    last_start = spec.horizon - spec.tone_duration - 2 * spec.listen_interval
    positions: list[Position] = []
    for index in range(spec.num_switches):
        frequency = plan.allocate(
            f"r{spec.room_id}s{index}", 1
        ).frequency_for(0)
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        radius = float(rng.uniform(0.6, 1.2))
        position = Position(radius * math.cos(angle),
                            radius * math.sin(angle), 0.0)
        positions.append(position)
        agent = MusicAgent(sim, channel, Speaker(position),
                           name=f"r{spec.room_id}s{index}")
        rig.agents.append(agent)
        offset = float(rng.uniform(0.0, period))
        starts = []
        start = offset
        while start <= last_start:
            sim.schedule_at(start, agent.play, frequency,
                            spec.tone_duration, spec.level_db)
            starts.append(start)
            start += period
        rig.chirp_times[frequency] = starts
        rig.emissions += len(starts)
    if spec.faults is not None and spec.faults.active:
        fault_rng = seeded_rng(spec.fleet_seed,
                               f"room:{spec.room_id}:faults")
        harness = FaultHarness(sim, seed=spec.fleet_seed)
        air = harness.acoustic(channel)
        for index in range(spec.num_switches):
            if fault_rng.uniform() < spec.faults.speaker_outage_rate:
                start = float(fault_rng.uniform(
                    0.0, max(spec.horizon - spec.faults.outage_duration,
                             1e-6)
                ))
                air.drop_speaker(positions[index], start,
                                 start + spec.faults.outage_duration)
                rig.speaker_outages += 1
    if spec.scene is not None:
        spec.scene(sim, channel, rng)
    return rig


def run_room(spec: RoomSpec) -> RoomReport:
    """Simulate one room to its horizon and roll up the report."""
    wall_start = _time.perf_counter()
    rig = _build_room(spec)
    onsets: list[tuple[float, float]] = []  # (frequency, onset time)
    rig.controller.watch(
        sorted(rig.chirp_times),
        on_onset=lambda event: onsets.append((event.frequency, event.time)),
    )
    rig.controller.start()
    rig.sim.run(spec.horizon)

    metrics = MetricsRegistry()
    metrics.counter("fleet.rooms").inc()
    metrics.counter("fleet.switches").inc(spec.num_switches)
    metrics.counter("fleet.emissions").inc(rig.emissions)
    metrics.counter("fleet.onsets").inc(len(onsets))
    metrics.counter("fleet.detections").inc(rig.controller.detections)
    metrics.counter("fleet.windows").inc(rig.controller.windows_processed)
    metrics.counter("fleet.speaker_outages").inc(rig.speaker_outages)
    metrics.counter("fleet.simulated_seconds").inc(spec.horizon)
    metrics.gauge("fleet.peak_tones_in_window").set(
        _peak_tones_per_window(onsets, spec)
    )

    # Attribute each onset to the one chirp it redeems.  An onset's
    # event time is its *window start*, which can precede the chirp
    # (a chirp starting mid-window is heard in that same window), so
    # matching is against the window's end.  Anything more than a tone
    # plus two windows stale matches no chirp and is leakage.
    lag_hist = metrics.histogram("fleet.onset_lag_ms")
    max_lag = spec.tone_duration + 2.0 * spec.listen_interval
    delivered = 0
    spurious = 0
    hit: dict[float, set[int]] = {}
    for frequency, heard_at in onsets:
        starts = rig.chirp_times.get(frequency, [])
        window_end = heard_at + spec.listen_interval
        position = bisect_right(starts, window_end) - 1
        lag = window_end - starts[position] if position >= 0 else math.inf
        if lag > max_lag:
            spurious += 1
            continue
        lag_hist.observe(lag * 1e3)
        redeemed = hit.setdefault(frequency, set())
        if position not in redeemed:
            redeemed.add(position)
            delivered += 1
    metrics.counter("fleet.delivered").inc(delivered)
    metrics.counter("fleet.spurious_onsets").inc(spurious)

    delivery = delivered / rig.emissions if rig.emissions else 0.0
    return RoomReport(
        room_id=spec.room_id,
        num_switches=spec.num_switches,
        emissions=rig.emissions,
        onsets=len(onsets),
        detections=rig.controller.detections,
        windows=rig.controller.windows_processed,
        speaker_outages=rig.speaker_outages,
        delivered=delivered,
        spurious_onsets=spurious,
        delivery_ratio=delivery,
        metrics=metrics,
        wall_s=_time.perf_counter() - wall_start,
    )


def _peak_tones_per_window(onsets, spec: RoomSpec) -> float:
    """Most distinct frequencies heard in any one listening window —
    a sim-deterministic congestion gauge merged fleet-wide with the
    ``max`` policy."""
    per_window: dict[int, set[float]] = {}
    for frequency, heard_at in onsets:
        window = int(heard_at / spec.listen_interval)
        per_window.setdefault(window, set()).add(frequency)
    return float(max((len(v) for v in per_window.values()), default=0))
