"""``FleetSupervisor`` — self-healing shard execution with exact recovery.

The plain :class:`~repro.fleet.dispatch.FleetDispatcher` assumes a
mostly well-behaved pool: it retries dead workers and fast-fails
poisoned shards, but a *hung* worker stalls the run and every failure
costs a full shard recompute.  The supervisor is the production
answer, built from the same PR 6 primitives the acoustic links already
ride:

* **heartbeat/deadline straggler detection** — every in-flight attempt
  carries its submission time; one past ``hedge_after_s`` gets a
  **hedged re-execution** (a second attempt racing the slow one,
  first-result-wins, deduped by shard id — the loser is counted
  ``hedges_wasted``, never merged), and one past ``shard_deadline_s``
  is abandoned: the pool is killed and rebuilt (checkpoints make the
  collateral cheap) and the shard retried;
* **room-granular checkpointing** — workers spill every finished
  :class:`~repro.fleet.room.RoomReport` through the
  :class:`~repro.fleet.checkpoint.CheckpointStore`, so a retry of a
  shard that died 9 rooms into 10 simulates one room, not ten
  (``rooms_resumed`` counts the savings);
* **bounded retries** — failed attempts re-enter the queue along a
  :class:`~repro.infra.RetryPolicy` schedule (the same unified policy
  ARQ retransmits under), capped by ``max_attempts``;
* **quarantine** — each shard owns a :class:`~repro.infra.
  CircuitBreaker`; a repeat offender whose breaker trips is recorded
  as a quarantined :class:`~repro.fleet.dispatch.ShardFailure` instead
  of burning the remaining attempt budget;
* **integrity validation** — a result is merged only if it is a
  well-formed :class:`ShardReport` for the right shard with exactly
  the right rooms; a poisoned result is a counted failure, never a
  corrupted fleet report.

The headline guarantee is **exact recovery**: rooms are deterministic
and the supervisor only ever re-executes, resumes, or discards them —
so under *any* injected schedule of crashes, hangs, poisons and
duplicates it recovers from, ``FleetReport.identity_signature()``
equals the fault-free serial reference bit-for-bit.  Recovery changes
wall-clock, never results.  XEXT17 sweeps exactly this contract.

All recovery accounting is wired through ``fleet.supervisor.*`` obs
instruments (zero-overhead-when-disabled as usual) and returned on
``FleetReport.supervisor`` as a :class:`SupervisorStats`.
"""

from __future__ import annotations

import shutil
import tempfile
import time as _time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from .. import obs
from ..faults.process import (
    ProcessFaultPlan,
    SimulatedWorkerCrash,
    shard_fault_decision,
)
from ..infra import CircuitBreaker, RetryPolicy
from .dispatch import ShardFailure, _terminate_pool
from .room import RoomReport
from .runner import FleetReport, ShardReport, build_fleet_report
from .specs import FleetSpec, ShardSpec, ensure_picklable
from .worker import ShardJob, run_shard_job


@dataclass(frozen=True)
class SupervisorPolicy:
    """The recovery knobs, all bounded, all explicit."""

    #: Total executions allowed per shard, hedges included.  Must
    #: exceed the fault plan's ``max_faulty_attempts`` for the
    #: guaranteed-progress bound to hold.
    max_attempts: int = 5
    #: Age (seconds) past which a sole in-flight attempt gets a hedged
    #: re-execution.  ``None`` disables hedging.
    hedge_after_s: float | None = None
    #: Hedges allowed per shard (each consumes an attempt).
    max_hedges_per_shard: int = 1
    #: Hard per-attempt deadline: an attempt older than this is
    #: abandoned and its worker killed.  ``None`` disables.
    shard_deadline_s: float | None = None
    #: Backoff schedule for retry *delays* (not counts — counts are
    #: ``max_attempts``).  Deadline generous by default: giving up is
    #: the attempt budget's job.
    retry_policy: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        initial_timeout=0.02, backoff=2.0, max_timeout=0.25, deadline=600.0,
    ))
    #: Consecutive failures that quarantine a shard (its breaker's
    #: failure threshold).
    quarantine_threshold: int = 4
    #: Spill finished rooms so retries resume instead of recomputing.
    checkpoint: bool = True
    #: Event-loop wake interval when nothing sooner is scheduled.
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError(
                f"hedge_after_s must be positive, got {self.hedge_after_s}"
            )
        if self.max_hedges_per_shard < 0:
            raise ValueError(
                f"max_hedges_per_shard must be >= 0, "
                f"got {self.max_hedges_per_shard}"
            )
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ValueError(
                f"shard_deadline_s must be positive, "
                f"got {self.shard_deadline_s}"
            )
        if self.quarantine_threshold < 1:
            raise ValueError(
                f"quarantine_threshold must be >= 1, "
                f"got {self.quarantine_threshold}"
            )
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive, "
                f"got {self.poll_interval_s}"
            )


@dataclass
class SupervisorStats:
    """Recovery accounting for one supervised run (execution detail —
    never part of the identity signature)."""

    backend: str = "process"
    workers: int = 1
    attempts_total: int = 0
    crashes_detected: int = 0
    stragglers_hedged: int = 0
    hedges_wasted: int = 0
    rooms_resumed: int = 0
    poisoned_reports: int = 0
    duplicates_injected: int = 0
    duplicates_dropped: int = 0
    late_results_dropped: int = 0
    retries_scheduled: int = 0
    deadline_kills: int = 0
    pool_rebuilds: int = 0
    shards_quarantined: int = 0
    shards_failed: int = 0


def validate_shard_report(report: object, shard: ShardSpec) -> str | None:
    """Why ``report`` must not be merged for ``shard`` — or ``None``
    if it is sound.  This is the poison gate: everything the driver
    is about to trust is checked against the spec it dispatched."""
    if not isinstance(report, ShardReport):
        return (f"expected ShardReport, got "
                f"{type(report).__name__} (poisoned result)")
    if report.shard_id != shard.shard_id:
        return (f"shard id mismatch: report says {report.shard_id}, "
                f"spec says {shard.shard_id}")
    want = [room.room_id for room in shard.rooms]
    got = [getattr(room, "room_id", None) for room in report.rooms]
    if got != want:
        return f"room set mismatch: report has {got}, spec wants {want}"
    if any(not isinstance(room, RoomReport) for room in report.rooms):
        return "report contains non-RoomReport rooms (poisoned result)"
    return None


class _Flight:
    """One in-flight execution attempt."""

    __slots__ = ("shard_id", "attempt", "hedge", "duplicate",
                 "submitted_at", "hedged")

    def __init__(self, shard_id: int, attempt: int, submitted_at: float,
                 hedge: bool = False, duplicate: bool = False) -> None:
        self.shard_id = shard_id
        self.attempt = attempt
        self.hedge = hedge
        self.duplicate = duplicate
        self.submitted_at = submitted_at
        #: This flight already triggered a hedge (never hedge twice).
        self.hedged = False


class _ShardState:
    """Supervisor-side bookkeeping for one shard."""

    __slots__ = ("spec", "attempts", "hedges", "report", "failure",
                 "schedule", "breaker", "inflight", "ready_at",
                 "exhausted_error")

    def __init__(self, spec: ShardSpec, breaker: CircuitBreaker) -> None:
        self.spec = spec
        self.attempts = 0          # executions started (hedges included)
        self.hedges = 0
        self.report: ShardReport | None = None
        self.failure: ShardFailure | None = None
        self.schedule = None       # RetrySchedule, lazily created
        self.breaker = breaker
        self.inflight = 0
        self.ready_at: float | None = 0.0   # next submission time
        self.exhausted_error: str | None = None

    @property
    def resolved(self) -> bool:
        return self.report is not None or self.failure is not None


class FleetSupervisor:
    """Self-healing driver over both fleet backends.

    ``backend="process"`` is the real thing: a worker pool with
    hedging, deadlines, pool rebuilds and checkpoint resume.
    ``backend="serial"`` runs the same fault model, validation,
    retry/quarantine and checkpoint machinery in-process — no hedging
    or deadlines (there is nobody to race), hard crashes downgraded to
    soft (the driver's interpreter is not disposable) — which is what
    makes property tests over fault schedules cheap.
    """

    def __init__(self, policy: SupervisorPolicy | None = None,
                 checkpoint_dir: str | None = None) -> None:
        self.policy = policy or SupervisorPolicy()
        self.checkpoint_dir = checkpoint_dir
        self._m_crashes = obs.counter("fleet.supervisor.crashes_detected")
        self._m_hedged = obs.counter("fleet.supervisor.stragglers_hedged")
        self._m_hedges_wasted = obs.counter("fleet.supervisor.hedges_wasted")
        self._m_resumed = obs.counter("fleet.supervisor.rooms_resumed")
        self._m_poisoned = obs.counter("fleet.supervisor.poisoned_reports")
        self._m_dup_dropped = obs.counter(
            "fleet.supervisor.duplicates_dropped")
        self._m_retries = obs.counter("fleet.supervisor.retries")
        self._m_deadline_kills = obs.counter(
            "fleet.supervisor.deadline_kills")
        self._m_rebuilds = obs.counter("fleet.supervisor.pool_rebuilds")
        self._m_quarantined = obs.counter(
            "fleet.supervisor.shards_quarantined")

    # ------------------------------------------------------------------

    def run(
        self,
        spec: FleetSpec,
        num_shards: int = 1,
        backend: str = "process",
        workers: int | None = None,
        faults: ProcessFaultPlan | None = None,
        seed: int | None = None,
    ) -> FleetReport:
        """Execute the fleet under supervision and return the merged
        report (``report.supervisor`` carries the recovery stats)."""
        if backend not in ("serial", "process"):
            raise ValueError(f"unknown fleet backend {backend!r}")
        wall_start = _time.perf_counter()
        seed = spec.seed if seed is None else seed
        shard_specs = spec.shard_specs(num_shards)
        workers = workers or num_shards
        stats = SupervisorStats(backend=backend, workers=workers)
        ckpt_dir, ckpt_is_temp = self._checkpoint_dir()
        try:
            if backend == "serial":
                reports, failures = self._run_serial(
                    shard_specs, faults, seed, ckpt_dir, stats)
            else:
                reports, failures = self._run_process(
                    shard_specs, workers, faults, seed, ckpt_dir, stats)
        finally:
            if ckpt_is_temp and ckpt_dir is not None:
                shutil.rmtree(ckpt_dir, ignore_errors=True)
        stats.shards_failed = len(failures)
        return build_fleet_report(
            spec=spec,
            backend=backend,
            num_shards=num_shards,
            workers=workers if backend == "process" else 1,
            shards=reports,
            failures=failures,
            wall_s=_time.perf_counter() - wall_start,
            supervisor=stats,
        )

    def _checkpoint_dir(self) -> tuple[str | None, bool]:
        if not self.policy.checkpoint:
            return None, False
        if self.checkpoint_dir is not None:
            return str(self.checkpoint_dir), False
        return tempfile.mkdtemp(prefix="repro-fleet-ckpt-"), True

    def _breaker(self, shard_id: int) -> CircuitBreaker:
        # Recovery timeout far beyond any run length: quarantine is
        # final for the run, there is no half-open re-probe of a shard.
        return CircuitBreaker(
            f"fleet.shard{shard_id}",
            failure_threshold=self.policy.quarantine_threshold,
            recovery_timeout=86_400.0,
        )

    # ------------------------------------------------------------------
    # serial backend
    # ------------------------------------------------------------------

    def _run_serial(self, shard_specs, faults, seed, ckpt_dir, stats):
        policy = self.policy
        reports: list[ShardReport] = []
        failures: list[ShardFailure] = []
        for shard in shard_specs:
            state = _ShardState(shard, self._breaker(shard.shard_id))
            while not state.resolved:
                now = _time.monotonic()
                if not state.breaker.allow(now):
                    stats.shards_quarantined += 1
                    self._m_quarantined.inc()
                    state.failure = ShardFailure(
                        shard_id=shard.shard_id,
                        error=f"quarantined after "
                              f"{state.breaker.consecutive_failures} "
                              f"consecutive failures",
                        attempts=state.attempts,
                        quarantined=True,
                    )
                    break
                if state.attempts >= policy.max_attempts:
                    state.failure = ShardFailure(
                        shard_id=shard.shard_id,
                        error=state.exhausted_error
                              or "attempt budget exhausted",
                        attempts=state.attempts,
                    )
                    break
                job = ShardJob(
                    shard=shard, attempt=state.attempts, seed=seed,
                    faults=faults, checkpoint_dir=ckpt_dir,
                    hard_crash_ok=False,
                )
                attempt = state.attempts
                state.attempts += 1
                stats.attempts_total += 1
                try:
                    result = run_shard_job(job)
                except SimulatedWorkerCrash as exc:
                    stats.crashes_detected += 1
                    self._m_crashes.inc()
                    self._note_retry(state, repr(exc), stats)
                    continue
                error = validate_shard_report(result, shard)
                if error is not None:
                    stats.poisoned_reports += 1
                    self._m_poisoned.inc()
                    self._note_retry(state, error, stats)
                    continue
                state.breaker.record_success(_time.monotonic())
                state.report = result
                stats.rooms_resumed += result.rooms_resumed
                self._m_resumed.inc(result.rooms_resumed)
                decision = shard_fault_decision(
                    faults, seed, shard.shard_id, attempt)
                if decision.duplicate:
                    # An at-least-once queue redelivers: run the very
                    # same attempt again (cheap — it resumes every
                    # room from checkpoint) and let dedup drop it.
                    stats.duplicates_injected += 1
                    stats.attempts_total += 1
                    try:
                        echo = run_shard_job(job)
                    except SimulatedWorkerCrash:
                        echo = None
                    if echo is not None:
                        stats.duplicates_dropped += 1
                        self._m_dup_dropped.inc()
            if state.report is not None:
                reports.append(state.report)
            elif state.failure is not None:
                failures.append(state.failure)
        return reports, failures

    def _note_retry(self, state: _ShardState, error: str,
                    stats: SupervisorStats) -> None:
        """Serial-path failure bookkeeping: breaker + retry intent.

        Serial execution has no event loop to wait on, so the retry
        *delay* is skipped — only the schedule's accounting is
        exercised; counts and outcomes match the process path."""
        state.breaker.record_failure(_time.monotonic())
        state.exhausted_error = error
        stats.retries_scheduled += 1
        self._m_retries.inc()

    # ------------------------------------------------------------------
    # process backend
    # ------------------------------------------------------------------

    def _run_process(self, shard_specs, workers, faults, seed, ckpt_dir,
                     stats):
        policy = self.policy
        for shard in shard_specs:
            ensure_picklable(shard,
                             f"ShardSpec(shard_id={shard.shard_id})")
        states = {
            shard.shard_id: _ShardState(shard, self._breaker(shard.shard_id))
            for shard in shard_specs
        }
        inflight: dict = {}  # future -> _Flight
        pool = ProcessPoolExecutor(max_workers=workers)

        def _now() -> float:
            return _time.monotonic()

        def _submit(state: _ShardState, hedge: bool = False,
                    duplicate: bool = False,
                    attempt: int | None = None) -> None:
            nonlocal pool
            if attempt is None:
                attempt = state.attempts
                state.attempts += 1
            job = ShardJob(
                shard=state.spec, attempt=attempt, seed=seed,
                faults=faults, checkpoint_dir=ckpt_dir,
                hard_crash_ok=True, hedge=hedge,
            )
            stats.attempts_total += 1
            flight = _Flight(state.spec.shard_id, attempt, _now(),
                             hedge=hedge, duplicate=duplicate)
            try:
                future = pool.submit(run_shard_job, job)
            except BrokenExecutor:
                # Break discovered at submit time: rebuild and retry
                # this one submission on the fresh pool.
                _terminate_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
                stats.pool_rebuilds += 1
                self._m_rebuilds.inc()
                future = pool.submit(run_shard_job, job)
            inflight[future] = flight
            state.inflight += 1

        def _finalize_failure(state: _ShardState, error: str,
                              quarantined: bool = False) -> None:
            state.failure = ShardFailure(
                shard_id=state.spec.shard_id, error=error,
                attempts=state.attempts, quarantined=quarantined,
            )
            if quarantined:
                stats.shards_quarantined += 1
                self._m_quarantined.inc()

        def _handle_failure(state: _ShardState, error: str,
                            kind: str) -> None:
            """One attempt died; decide retry / quarantine / give up."""
            now = _now()
            state.breaker.record_failure(now)
            if state.resolved:
                return
            with obs.span("fleet.supervisor.recover",
                          shard=state.spec.shard_id, kind=kind):
                if not state.breaker.allow(now):
                    _finalize_failure(
                        state,
                        f"quarantined after "
                        f"{state.breaker.consecutive_failures} consecutive "
                        f"failures (last: {error})",
                        quarantined=True,
                    )
                    return
                if state.attempts >= policy.max_attempts:
                    state.exhausted_error = error
                    if state.inflight == 0 and state.ready_at is None:
                        _finalize_failure(
                            state, f"attempt budget exhausted ({error})")
                    return
                if state.ready_at is not None or state.inflight > 0:
                    # A retry is already queued, or a sibling attempt
                    # (hedge) is still racing — no extra submission.
                    return
                if state.schedule is None:
                    state.schedule = policy.retry_policy.schedule(now)
                retry_at = state.schedule.next_retry(now)
                if retry_at is None:
                    _finalize_failure(
                        state, f"retry deadline exhausted ({error})")
                    return
                state.ready_at = retry_at
                stats.retries_scheduled += 1
                self._m_retries.inc()

        def _accept(state: _ShardState, flight: _Flight,
                    result: ShardReport) -> None:
            state.report = result
            state.breaker.record_success(_now())
            stats.rooms_resumed += result.rooms_resumed
            self._m_resumed.inc(result.rooms_resumed)
            decision = shard_fault_decision(
                faults, seed, state.spec.shard_id, flight.attempt)
            if decision.duplicate and not flight.duplicate:
                # Redeliver the same attempt once; dedup must drop it.
                stats.duplicates_injected += 1
                _submit(state, duplicate=True, attempt=flight.attempt)

        def _drop_stale(flight: _Flight) -> None:
            if flight.hedge:
                stats.hedges_wasted += 1
                self._m_hedges_wasted.inc()
            elif flight.duplicate:
                stats.duplicates_dropped += 1
                self._m_dup_dropped.inc()
            else:
                stats.late_results_dropped += 1

        def _kill_and_requeue_innocents(expired_ids: set[int]) -> None:
            """The pool is about to die (hung worker / break): refund
            every innocent in-flight attempt and line it up again."""
            nonlocal pool
            for future, flight in list(inflight.items()):
                state = states[flight.shard_id]
                state.inflight -= 1
                if flight.shard_id in expired_ids or state.resolved:
                    continue
                if flight.duplicate:
                    stats.duplicates_dropped += 1
                    self._m_dup_dropped.inc()
                    continue
                state.attempts -= 1  # refund: casualty, not offender
                stats.attempts_total -= 1
                if state.ready_at is None:
                    state.ready_at = _now()
            inflight.clear()
            _terminate_pool(pool)
            pool = ProcessPoolExecutor(max_workers=workers)
            stats.pool_rebuilds += 1
            self._m_rebuilds.inc()

        try:
            while not all(state.resolved for state in states.values()):
                now = _now()
                # -- submissions whose time has come -------------------
                for state in states.values():
                    if state.resolved or state.ready_at is None:
                        continue
                    if state.ready_at <= now:
                        state.ready_at = None
                        _submit(state)
                # -- stall guard (should be unreachable) ---------------
                if not inflight and not any(
                        state.ready_at is not None for state in
                        states.values() if not state.resolved):
                    for state in states.values():
                        if not state.resolved:
                            _finalize_failure(
                                state,
                                state.exhausted_error
                                or "supervisor stalled with no live "
                                   "attempt",
                            )
                    break
                # -- how long may we sleep? ----------------------------
                wake_at = now + policy.poll_interval_s
                for state in states.values():
                    if not state.resolved and state.ready_at is not None:
                        wake_at = min(wake_at, state.ready_at)
                if policy.hedge_after_s is not None:
                    for flight in inflight.values():
                        if not flight.hedged:
                            wake_at = min(
                                wake_at,
                                flight.submitted_at + policy.hedge_after_s,
                            )
                if policy.shard_deadline_s is not None:
                    for flight in inflight.values():
                        wake_at = min(
                            wake_at,
                            flight.submitted_at + policy.shard_deadline_s,
                        )
                timeout = max(wake_at - now, 0.0)
                if inflight:
                    done, _ = wait(inflight, timeout=timeout,
                                   return_when=FIRST_COMPLETED)
                else:
                    _time.sleep(timeout)
                    done = ()
                # -- completions ---------------------------------------
                broken = False
                for future in done:
                    flight = inflight.pop(future)
                    state = states[flight.shard_id]
                    state.inflight -= 1
                    error = future.exception()
                    if error is not None and isinstance(error,
                                                        BrokenExecutor):
                        broken = True
                        if not state.resolved and not flight.duplicate:
                            stats.crashes_detected += 1
                            self._m_crashes.inc()
                            _handle_failure(state, repr(error), "crash")
                        elif flight.duplicate:
                            stats.duplicates_dropped += 1
                            self._m_dup_dropped.inc()
                        continue
                    if error is not None:
                        if state.resolved or flight.duplicate:
                            _drop_stale(flight)
                            continue
                        stats.crashes_detected += 1
                        self._m_crashes.inc()
                        _handle_failure(state, repr(error), "crash")
                        continue
                    result = future.result()
                    if state.resolved:
                        _drop_stale(flight)
                        continue
                    invalid = validate_shard_report(result, state.spec)
                    if invalid is not None:
                        if flight.duplicate:
                            _drop_stale(flight)
                            continue
                        stats.poisoned_reports += 1
                        self._m_poisoned.inc()
                        _handle_failure(state, invalid, "poison")
                        continue
                    if flight.duplicate:
                        # The injected redelivery of an already-merged
                        # result: dedup drops it, counted.
                        stats.duplicates_dropped += 1
                        self._m_dup_dropped.inc()
                        continue
                    _accept(state, flight, result)
                if broken:
                    _kill_and_requeue_innocents(set())
                    continue
                # -- straggler detection / hedging ---------------------
                if policy.hedge_after_s is not None:
                    now = _now()
                    for future, flight in list(inflight.items()):
                        state = states[flight.shard_id]
                        if (state.resolved or flight.hedged
                                or flight.duplicate
                                or state.inflight != 1
                                or state.hedges
                                >= policy.max_hedges_per_shard
                                or state.attempts >= policy.max_attempts):
                            continue
                        if now - flight.submitted_at >= policy.hedge_after_s:
                            flight.hedged = True
                            state.hedges += 1
                            stats.stragglers_hedged += 1
                            self._m_hedged.inc()
                            _submit(state, hedge=True)
                # -- hard deadlines ------------------------------------
                if policy.shard_deadline_s is not None and inflight:
                    now = _now()
                    expired = [
                        (future, flight)
                        for future, flight in inflight.items()
                        if now - flight.submitted_at
                        >= policy.shard_deadline_s and not future.done()
                    ]
                    if expired:
                        expired_ids = set()
                        for future, flight in expired:
                            inflight.pop(future)
                            state = states[flight.shard_id]
                            state.inflight -= 1
                            expired_ids.add(flight.shard_id)
                            stats.deadline_kills += 1
                            self._m_deadline_kills.inc()
                            if not state.resolved and not flight.duplicate:
                                _handle_failure(
                                    state,
                                    f"attempt exceeded "
                                    f"{policy.shard_deadline_s:.3f} s "
                                    f"deadline (worker killed)",
                                    "deadline",
                                )
                        _kill_and_requeue_innocents(expired_ids)
        finally:
            # Hedge losers / duplicates may still be in flight; they
            # will never be used — count and kill them.
            for flight in inflight.values():
                _drop_stale(flight)
            _terminate_pool(pool)
        reports = [state.report for state in states.values()
                   if state.report is not None]
        failures = [state.failure for state in states.values()
                    if state.failure is not None]
        return reports, failures


def run_fleet_supervised(
    spec: FleetSpec,
    num_shards: int = 1,
    backend: str = "process",
    workers: int | None = None,
    faults: ProcessFaultPlan | None = None,
    policy: SupervisorPolicy | None = None,
    checkpoint_dir: str | None = None,
    seed: int | None = None,
) -> FleetReport:
    """One-call supervised fleet execution (see :class:`FleetSupervisor`)."""
    supervisor = FleetSupervisor(policy=policy,
                                 checkpoint_dir=checkpoint_dir)
    return supervisor.run(spec, num_shards=num_shards, backend=backend,
                          workers=workers, faults=faults, seed=seed)


__all__ = [
    "FleetSupervisor",
    "SupervisorPolicy",
    "SupervisorStats",
    "run_fleet_supervised",
    "validate_shard_report",
]
