"""Count-min sketch heavy-hitter baseline.

Section 5 positions Music-Defined Telemetry against conventional
"sampling or sketching techniques" for heavy-hitter detection.  This is
the canonical such comparator: a count-min sketch over packet
observations with a threshold rule, used by the XBASE1 benchmark to
check that MDN tone counting and a real sketch agree on who the heavy
flow is.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..net.packet import FlowKey, Packet


class CountMinSketch:
    """A count-min sketch with conservative point queries.

    Parameters
    ----------
    width:
        Counters per row (error scales as ~1/width).
    depth:
        Independent hash rows (failure probability ~exp(-depth)).
    """

    def __init__(self, width: int = 64, depth: int = 4) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self._table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    def _indices(self, flow: FlowKey) -> list[int]:
        digest = hashlib.blake2b(
            str(flow).encode(), digest_size=4 * self.depth
        ).digest()
        return [
            int.from_bytes(digest[4 * row : 4 * row + 4], "big") % self.width
            for row in range(self.depth)
        ]

    def update(self, flow: FlowKey, amount: int = 1) -> None:
        """Record ``amount`` observations of a flow."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        for row, index in enumerate(self._indices(flow)):
            self._table[row, index] += amount
        self.total += amount

    def estimate(self, flow: FlowKey) -> int:
        """Point estimate of a flow's count (never underestimates)."""
        return int(
            min(
                self._table[row, index]
                for row, index in enumerate(self._indices(flow))
            )
        )


class SketchHeavyHitterDetector:
    """Interval-based heavy-hitter detection over a count-min sketch.

    Feed it every packet crossing the monitored link; at the end of
    each interval, flows whose estimated packet count exceeds
    ``threshold`` are reported.  (Candidate tracking keeps the exact
    key set so reports name flows, as HH algorithms do in practice.)
    """

    def __init__(
        self,
        interval: float = 1.0,
        threshold: int = 25,
        width: int = 64,
        depth: int = 4,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.threshold = threshold
        self._width = width
        self._depth = depth
        self._sketch = CountMinSketch(width, depth)
        self._candidates: set[FlowKey] = set()
        self._interval_start: float | None = None
        #: (interval_start, flow) pairs flagged heavy.
        self.reports: list[tuple[float, FlowKey]] = []

    def observe(self, packet: Packet, time: float) -> None:
        """Record one packet observation at simulation ``time``."""
        if self._interval_start is None:
            self._interval_start = (time // self.interval) * self.interval
        while time >= self._interval_start + self.interval:
            self._close_interval()
        self._sketch.update(packet.flow)
        self._candidates.add(packet.flow)

    def flush(self, now: float) -> None:
        """Close intervals fully elapsed by ``now``."""
        if self._interval_start is None:
            return
        while now >= self._interval_start + self.interval:
            self._close_interval()

    def _close_interval(self) -> None:
        assert self._interval_start is not None
        for flow in sorted(self._candidates, key=str):
            if self._sketch.estimate(flow) > self.threshold:
                self.reports.append((self._interval_start, flow))
        self._sketch = CountMinSketch(self._width, self._depth)
        self._candidates = set()
        self._interval_start += self.interval

    def heavy_flows(self) -> set[FlowKey]:
        return {flow for _start, flow in self.reports}
