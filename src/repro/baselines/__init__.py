"""Comparator implementations the paper positions itself against."""

from .ecn import ECNMarker, ECNReceiver, ECNSourceObserver, EchoRecord
from .inband import (
    MANAGEMENT_PORT,
    AcousticHeartbeat,
    HeartbeatMonitor,
    HeartbeatSender,
    HeartbeatStats,
)
from .red import REDMarker
from .sketch import CountMinSketch, SketchHeavyHitterDetector

__all__ = [
    "AcousticHeartbeat",
    "CountMinSketch",
    "ECNMarker",
    "ECNReceiver",
    "ECNSourceObserver",
    "EchoRecord",
    "HeartbeatMonitor",
    "HeartbeatSender",
    "HeartbeatStats",
    "MANAGEMENT_PORT",
    "REDMarker",
    "SketchHeavyHitterDetector",
]
