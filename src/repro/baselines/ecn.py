"""ECN-style in-band congestion notification baseline.

Section 6 argues the MDN queue chirp can drive congestion decisions
"without waiting for source reactions ... and without using the less
efficient Explicit Congestion Notification (ECN) mechanism of TCP".
The XBASE2 benchmark quantifies that: this module implements the ECN
path — mark packets at the congested queue, carry the mark to the
receiver, echo it back to the source — so the notification latencies of
the two channels can be compared.

The comparison point: an ECN signal is only as fast as the remaining
downstream path plus the reverse path (one "round trip" from the
congestion point), and it *shares fate* with the congested queue.  The
acoustic signal leaves the switch at the next chirp and arrives at the
speed of sound, independent of the data plane.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.host import Host
from ..net.link import LinkDirection
from ..net.packet import Packet
from ..net.stats import TimeSeries


class ECNMarker:
    """Marks ECN-capable packets when an egress queue is congested.

    Wire :meth:`maybe_mark` in front of the queue you want to protect
    (the experiment harness wraps the switch's forward path).  Uses the
    DCTCP-style instantaneous threshold rule.
    """

    def __init__(self, direction: LinkDirection, mark_threshold: int = 25) -> None:
        if mark_threshold < 1:
            raise ValueError("mark_threshold must be >= 1")
        self.direction = direction
        self.mark_threshold = mark_threshold
        self.marked_count = 0
        #: (time, queue_length) at each mark, for latency accounting.
        self.mark_log: list[tuple[float, int]] = []

    def maybe_mark(self, packet: Packet, time: float) -> None:
        """Apply the marking rule to one packet entering the queue."""
        queue_length = len(self.direction.queue)
        if packet.ecn_capable and queue_length >= self.mark_threshold:
            if not packet.ecn_marked:
                packet.ecn_marked = True
                self.marked_count += 1
                self.mark_log.append((time, queue_length))


@dataclass
class EchoRecord:
    """One congestion-experienced echo delivered back to the source."""

    marked_at_receiver: float
    echoed_to_source: float


class ECNReceiver:
    """Receiver side: echoes CE marks back to the source.

    The echo is modelled as a small reverse-direction packet (real TCP
    carries it in ACK flags).  Attach to the destination host.
    """

    def __init__(self, host: Host, echo_size_bytes: int = 64) -> None:
        self.host = host
        self.echo_size_bytes = echo_size_bytes
        self.ce_received = 0
        self.echoes: list[EchoRecord] = []
        host.on_delivery(self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        if not packet.ecn_marked:
            return
        self.ce_received += 1
        now = self.host.sim.now
        echo = Packet(
            packet.flow.reversed(),
            size_bytes=self.echo_size_bytes,
            created_at=now,
            is_management=True,
        )
        # Tag so the source-side observer can recognize it.
        echo.payload = b"ECN-ECHO"
        self.host.send_packet(echo)
        self.echoes.append(EchoRecord(now, float("nan")))


class ECNSourceObserver:
    """Source side: records when the first congestion echo arrives.

    ``first_echo_time`` is the moment the *source* learns about
    congestion via ECN — the number compared against the MDN
    controller's tone-hearing time in XBASE2.
    """

    def __init__(self, host: Host) -> None:
        self.host = host
        self.first_echo_time: float | None = None
        self.echo_count = 0
        self.echo_times = TimeSeries(f"{host.name}.ecn_echoes")
        host.on_delivery(self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        if packet.payload != b"ECN-ECHO":
            return
        now = self.host.sim.now
        self.echo_count += 1
        self.echo_times.record(now, 1.0)
        if self.first_echo_time is None:
            self.first_echo_time = now
