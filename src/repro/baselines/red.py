"""Random Early Detection: the classic AQM comparator.

The §6 discussion contrasts the acoustic queue chirp with in-band
congestion signalling.  :mod:`repro.baselines.ecn` implements the
DCTCP-style *instantaneous* threshold mark; this module adds classic
RED (Floyd & Jacobson), which marks probabilistically on an *EWMA* of
the queue length — slower to react but less bursty in its marking.
Having both lets the XBASE2-style comparisons show the acoustic chirp
against the full spectrum of in-band mechanisms.
"""

from __future__ import annotations

import numpy as np

from ..net.link import LinkDirection
from ..net.packet import Packet


class REDMarker:
    """RED marking over a link direction's egress queue.

    Parameters
    ----------
    direction:
        The egress pipe whose queue is watched.
    min_threshold, max_threshold:
        Average-queue thresholds (packets): below min, never mark;
        between, mark with probability ramping to ``max_probability``;
        above max, always mark.
    weight:
        EWMA weight for the average-queue estimate (classic 0.002 is
        for per-packet updates at line rate; at our simulated rates a
        larger weight tracks comparably).
    seed:
        RNG seed for the probabilistic mark decisions.
    """

    def __init__(
        self,
        direction: LinkDirection,
        min_threshold: float = 15.0,
        max_threshold: float = 45.0,
        max_probability: float = 0.1,
        weight: float = 0.02,
        seed: int = 0,
    ) -> None:
        if not 0 < min_threshold < max_threshold:
            raise ValueError("need 0 < min_threshold < max_threshold")
        if not 0 < max_probability <= 1:
            raise ValueError("max_probability must be in (0, 1]")
        if not 0 < weight <= 1:
            raise ValueError("weight must be in (0, 1]")
        self.direction = direction
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_probability = max_probability
        self.weight = weight
        self.average_queue = 0.0
        self.marked_count = 0
        self._count_since_mark = 0
        self._rng = np.random.default_rng(seed)

    def maybe_mark(self, packet: Packet, time: float) -> bool:
        """Update the average and apply RED's marking rule to one
        ECN-capable packet entering the queue.  Returns True if the
        packet was marked."""
        instantaneous = len(self.direction.queue)
        self.average_queue = (
            (1.0 - self.weight) * self.average_queue
            + self.weight * instantaneous
        )
        if not packet.ecn_capable or packet.ecn_marked:
            return False
        if self.average_queue < self.min_threshold:
            self._count_since_mark = 0
            return False
        if self.average_queue >= self.max_threshold:
            self._mark(packet)
            return True
        # Linear ramp, with the classic count correction that spaces
        # marks more uniformly.
        base_probability = self.max_probability * (
            (self.average_queue - self.min_threshold)
            / (self.max_threshold - self.min_threshold)
        )
        self._count_since_mark += 1
        denominator = max(1e-9,
                          1.0 - self._count_since_mark * base_probability)
        probability = min(1.0, base_probability / denominator)
        if self._rng.random() < probability:
            self._mark(packet)
            return True
        return False

    def _mark(self, packet: Packet) -> None:
        packet.ecn_marked = True
        self.marked_count += 1
        self._count_since_mark = 0
