"""In-band management baseline: heartbeats that share the data plane.

The paper's motivation (§1): "data plane or hardware failures could cut
off network management traffic as well, aborting important management
tasks".  This module makes that failure mode measurable.  A
:class:`HeartbeatSender` emits periodic management packets across the
(shared) network; a :class:`HeartbeatMonitor` at the management station
tracks delivery.  When the data plane congests or a link fails, in-band
heartbeats queue behind data traffic or vanish — while the acoustic
channel of the XBASE3 benchmark keeps delivering.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.host import Host
from ..net.packet import FlowKey, Packet, Protocol
from ..net.sim import PeriodicTimer, Simulator
from ..net.stats import TimeSeries

#: Destination port conventionally used by the management heartbeats.
MANAGEMENT_PORT = 6653


class HeartbeatSender:
    """Emits one management packet every ``period`` seconds."""

    def __init__(
        self,
        host: Host,
        dst_ip: str,
        period: float = 0.5,
        size_bytes: int = 128,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.host = host
        self.period = period
        self.size_bytes = size_bytes
        self.flow = FlowKey(host.ip, dst_ip, 6652, MANAGEMENT_PORT, Protocol.UDP)
        self.sequence = 0
        self.sent_log: list[tuple[int, float]] = []
        self._timer: "PeriodicTimer | None" = None
        self.start()

    def start(self) -> None:
        """(Re)start the beat timer; idempotent while running.  Lets a
        failover layer pause in-band heartbeats when the acoustic
        channel is healthy and resume them when it degrades."""
        if self._timer is None:
            self._timer = self.host.sim.every(
                self.period, self._beat, start=self.host.sim.now
            )

    def _beat(self) -> None:
        self.sequence += 1
        packet = Packet(
            self.flow,
            size_bytes=self.size_bytes,
            created_at=self.host.sim.now,
            is_management=True,
        )
        packet.payload = self.sequence.to_bytes(8, "big")
        self.sent_log.append((self.sequence, self.host.sim.now))
        self.host.send_packet(packet)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None


@dataclass
class HeartbeatStats:
    """Delivery summary over a run."""

    sent: int
    delivered: int
    lost: int
    delivery_rate: float
    max_gap: float
    mean_latency: float


class HeartbeatMonitor:
    """Management station: tracks heartbeat arrivals and gaps."""

    def __init__(self, host: Host, sender: HeartbeatSender) -> None:
        self.host = host
        self.sender = sender
        self.received: list[tuple[int, float, float]] = []  # (seq, sent, recv)
        self.latencies = TimeSeries(f"{host.name}.hb_latency")
        host.on_delivery(self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        if not packet.is_management or packet.flow.dst_port != MANAGEMENT_PORT:
            return
        sequence = int.from_bytes(packet.payload, "big")
        now = self.host.sim.now
        self.received.append((sequence, packet.created_at, now))
        self.latencies.record(now, now - packet.created_at)

    def stats(self, sim: Simulator) -> HeartbeatStats:
        """Summarize delivery as of the current simulation time."""
        sent = len(self.sender.sent_log)
        delivered = len(self.received)
        lost = sent - delivered
        arrival_times = [recv for _seq, _sent, recv in self.received]
        gaps = [
            second - first
            for first, second in zip(arrival_times, arrival_times[1:])
        ]
        if arrival_times:
            gaps.append(sim.now - arrival_times[-1])
        latencies = [recv - sent_t for _seq, sent_t, recv in self.received]
        return HeartbeatStats(
            sent=sent,
            delivered=delivered,
            lost=lost,
            delivery_rate=delivered / sent if sent else 0.0,
            max_gap=max(gaps) if gaps else float("inf"),
            mean_latency=sum(latencies) / len(latencies) if latencies else float("nan"),
        )


class AcousticHeartbeat:
    """The out-of-band counterpart: a periodic tone instead of a packet.

    Pairs a :class:`~repro.core.agent.MusicAgent` chirp with an
    arrival log on the listening side (wire the controller's onset
    callback to :meth:`heard`).  Used by XBASE3 to show delivery
    continuing through data-plane congestion and failure.
    """

    def __init__(self, sim: Simulator, agent, frequency: float,
                 period: float = 0.5, tone_duration: float = 0.08) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.agent = agent
        self.frequency = frequency
        self.period = period
        self.tone_duration = tone_duration
        self.emitted = 0
        self.heard_log: list[float] = []
        self._timer = sim.every(period, self._beat, start=sim.now)

    def _beat(self) -> None:
        self.emitted += 1
        self.agent.play(self.frequency, self.tone_duration)

    def heard(self, event) -> None:
        """Onset callback for the MDN controller."""
        self.heard_log.append(event.time)

    def delivery_rate(self) -> float:
        if self.emitted == 0:
            return 0.0
        return min(1.0, len(self.heard_log) / self.emitted)

    def stop(self) -> None:
        self._timer.stop()
