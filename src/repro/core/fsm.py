"""Finite state machines for sound-driven network state processing.

Section 4: sounds "can be used ... to implement any finite state
machine for network state processing", with states stored in the MDN
controller rather than in the switch (contrast with OpenState).  This
module provides the generic machine; the port-knocking application
builds its knock sequence on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

#: Transition callbacks: (from_state, symbol, to_state).
TransitionHook = Callable[[str, Hashable, str], None]


class FSMError(ValueError):
    """Raised on malformed machine definitions."""


@dataclass
class StateMachine:
    """A deterministic finite state machine over hashable symbols.

    Parameters
    ----------
    initial:
        Starting state name.
    transitions:
        ``{(state, symbol): next_state}``.
    accepting:
        States in which :attr:`accepted` is True.
    default_state:
        Where unmatched symbols lead (``None`` = stay put; the
        port-knocking machine instead resets to the initial state on a
        wrong knock).
    latch_accepting:
        When True, reaching an accepting state is final: further
        symbols are ignored (a knocked-open port stays open; only
        :meth:`reset` re-arms the machine).
    """

    initial: str
    transitions: dict[tuple[str, Hashable], str]
    accepting: frozenset[str] = frozenset()
    default_state: str | None = None
    latch_accepting: bool = False
    state: str = field(init=False)
    _hooks: list[TransitionHook] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        states = {self.initial} | self.accepting | set(self.transitions.values())
        states |= {state for state, _ in self.transitions}
        if self.default_state is not None and self.default_state not in states:
            raise FSMError(f"default_state {self.default_state!r} unknown")
        for (state, _symbol), target in self.transitions.items():
            if state not in states or target not in states:  # pragma: no cover
                raise FSMError("transition references unknown state")
        self.state = self.initial

    @property
    def accepted(self) -> bool:
        return self.state in self.accepting

    def on_transition(self, hook: TransitionHook) -> None:
        self._hooks.append(hook)

    def feed(self, symbol: Hashable) -> str:
        """Consume one symbol; returns the new state.

        Symbols with no outgoing edge move to ``default_state`` (or
        stay, when it is None).
        """
        if self.latch_accepting and self.accepted:
            return self.state
        source = self.state
        target = self.transitions.get((source, symbol))
        if target is None:
            target = self.default_state if self.default_state is not None else source
        self.state = target
        if target != source or (source, symbol) in self.transitions:
            for hook in self._hooks:
                hook(source, symbol, target)
        return self.state

    def reset(self) -> None:
        self.state = self.initial


def sequence_machine(symbols: list[Hashable], reset_on_error: bool = True) -> StateMachine:
    """A machine accepting exactly one symbol sequence.

    This is the port-knocking pattern: states ``s0..sN``, advancing on
    the correct next symbol.  A wrong symbol resets to ``s0``
    (``reset_on_error``) or leaves the state unchanged.  Feeding the
    *first* symbol from a partially-advanced state restarts progress at
    ``s1`` rather than s0, matching classic port-knocking daemons.
    """
    if not symbols:
        raise FSMError("sequence must not be empty")
    transitions: dict[tuple[str, Hashable], str] = {}
    for index, symbol in enumerate(symbols):
        transitions[(f"s{index}", symbol)] = f"s{index + 1}"
    # Restart shortcut: the first symbol always begins a fresh attempt.
    first = symbols[0]
    for index in range(1, len(symbols)):
        transitions.setdefault((f"s{index}", first), "s1")
    return StateMachine(
        initial="s0",
        transitions=transitions,
        accepting=frozenset({f"s{len(symbols)}"}),
        default_state="s0" if reset_on_error else None,
        latch_accepting=True,
    )
