"""The MDN controller: the process that listens.

The paper's controller (Figure 1) is "an application listening for
sounds [that] interprets the sound sequence (music) and launches the
appropriate action, e.g., send an OpenFlow Flow-MOD message or open a
previously closed port".  This class is that application:

* it owns a microphone and polls it on a fixed listening interval
  (shorter tones → shorter windows → faster reactions, §3);
* each captured window goes through a
  :class:`~repro.audio.detector.FrequencyDetector`;
* window-level detections are converted to **tone onsets** (a tone
  spanning several windows fires once), and both raw detections and
  onsets are dispatched to subscribed applications;
* it optionally holds the SDN control channel, so applications can
  push Flow-MODs in response to sounds.
"""

from __future__ import annotations

import time as _time
from typing import Callable

from .. import obs
from ..audio.channel import AcousticChannel
from ..audio.detector import DetectionEvent, FrequencyDetector
from ..audio.devices import Microphone
from ..infra import SpectraCache, TokenBucket
from ..net.controlplane import ControlChannel, ControllerBase, FlowMod, PacketIn
from ..net.sim import PeriodicTimer, Simulator

#: Subscriber signature for per-window detections: (event).
DetectionCallback = Callable[[DetectionEvent], None]


class MDNController(ControllerBase):
    """Sound-driven network controller.

    Parameters
    ----------
    sim, channel:
        Shared clock and air.
    microphone:
        The listening device.
    listen_interval:
        Window length (and polling period), seconds.  100 ms resolves
        the 20 Hz plan grid (10 Hz FFT bins).
    backend:
        Detection backend, ``"fft"`` or ``"goertzel"``.
    control_channel:
        Optional SDN southbound channel for Flow-MODs.
    prune_every:
        Every this-many processed windows, drop channel tones that
        ended more than ``prune_margin`` seconds ago so long-running
        deployments don't accumulate render cost.  The channel extends
        the keep-cutoff by its echo tail (longest echo tap plus a
        room-scale propagation allowance), so a margin of 0 can never
        drop a tone whose reflections are still audible.  0 disables
        pruning (e.g. when another listener needs deep look-back).
    ingest_limiter:
        Optional :class:`repro.infra.TokenBucket` on event dispatch: a
        detection storm (many simultaneous tones, every window) sheds
        excess events with a counted drop (``events_shed``) instead of
        flooding every subscriber.  Onset suppression still sees every
        physical detection — admission gates *dispatch*, not physics —
        so ``detections == dispatched + shed`` always holds.
    spectra_cache:
        Optional :class:`repro.infra.SpectraCache` shared with the
        detector (FFT backend): identical capture windows — e.g. two
        co-located controllers sharing one microphone — are transformed
        once.  Survives detector rebuilds.

    Co-located listeners (several controllers, or a controller next to
    a :class:`~repro.core.array.MicrophoneArray` station) share the
    channel's per-window render memo: the air is mixed once per
    ``(position, window)``.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: AcousticChannel,
        microphone: Microphone,
        listen_interval: float = 0.1,
        backend: str = "fft",
        threshold_db: float = 10.0,
        min_level_db: float = 30.0,
        control_channel: ControlChannel | None = None,
        prune_every: int = 600,
        prune_margin: float = 30.0,
        ingest_limiter: TokenBucket | None = None,
        spectra_cache: SpectraCache | None = None,
    ) -> None:
        if listen_interval <= 0:
            raise ValueError("listen_interval must be positive")
        if spectra_cache is not None and backend != "fft":
            raise ValueError(
                "spectra_cache requires the fft backend (the Goertzel "
                "bank computes no full spectrum)"
            )
        self.sim = sim
        self.channel = channel
        self.microphone = microphone
        self.listen_interval = listen_interval
        self.backend = backend
        self.threshold_db = threshold_db
        self.min_level_db = min_level_db
        self.control_channel = control_channel
        self.prune_every = prune_every
        self.prune_margin = prune_margin
        self.ingest_limiter = ingest_limiter
        self.spectra_cache = spectra_cache
        if control_channel is not None:
            control_channel.register_controller(self)

        self._detection_subscribers: dict[float, list[DetectionCallback]] = {}
        self._onset_subscribers: dict[float, list[DetectionCallback]] = {}
        self._any_window_subscribers: list[Callable[[list[DetectionEvent], float], None]] = []
        self._spectrum_sinks: list[Callable] = []
        self._detector: FrequencyDetector | None = None
        self._timer: PeriodicTimer | None = None
        self._previous_window: set[float] = set()
        #: Current frequency-plan epoch, stamped onto every dispatched
        #: detection.  Bumped by the spectrum-agility layer on each
        #: PLAN_COMMIT (:meth:`migrate_watch`); 0 until a migration
        #: ever happens, in which case events keep their default tag
        #: and the hot path pays nothing.
        self.epoch = 0
        #: Make-before-break state: ``old_frequency -> (new_frequency,
        #: emission_epoch)``.  While an alias is live the detector
        #: still listens on the old tone and events heard there are
        #: re-attributed to the relocated plan entry, tagged with the
        #: epoch the tone was emitted under.
        self._aliases: dict[float, tuple[float, int]] = {}
        #: Frequencies listened to ahead of a commit (PLAN_PREPARE
        #: pre-listening) that have no subscribers yet.
        self._extra_watch: set[float] = set()
        #: Failover history, appended by the graceful-degradation layer
        #: (:class:`repro.core.apps.failover.FailoverManager`): each
        #: entry records this controller handing a device to the
        #: in-band baseline or taking it back.
        self.failover_events: list = []
        # API-compatible counters, registry-backed (repro.obs): visible
        # in metric reports when observability is enabled, free-floating
        # ints-with-a-name otherwise.
        self._m_windows = obs.counter("controller.windows_processed")
        self._m_detections = obs.counter("controller.detections")
        self._m_onsets = obs.counter("controller.onsets")
        self._m_tones_pruned = obs.counter("controller.tones_pruned")
        self._m_events_shed = obs.counter("controller.events_shed")
        self._obs = obs.get_registry()
        if self._obs is not None:
            self._m_window_ms = self._obs.register(
                obs.Histogram("controller.window_ms")
            )
            self._m_events_per_window = self._obs.register(
                obs.Histogram("controller.detections_per_window")
            )

    @property
    def windows_processed(self) -> int:
        """Capture windows processed since construction."""
        return self._m_windows.value

    @property
    def detections(self) -> int:
        """Window-level detections dispatched since construction."""
        return self._m_detections.value

    @property
    def onsets(self) -> int:
        """Tone onsets dispatched since construction."""
        return self._m_onsets.value

    @property
    def tones_pruned(self) -> int:
        """Channel tones dropped by this controller's periodic prune."""
        return self._m_tones_pruned.value

    @property
    def events_shed(self) -> int:
        """Detections dropped before dispatch by the ingest limiter."""
        return self._m_events_shed.value

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------

    def watch(
        self,
        frequencies: list[float],
        on_detection: DetectionCallback | None = None,
        on_onset: DetectionCallback | None = None,
    ) -> None:
        """Subscribe to a set of frequencies.

        ``on_detection`` fires for every capture window containing the
        tone; ``on_onset`` fires only when the tone *starts* (absent in
        the previous window).  Must be called before :meth:`start`
        (the watch list sizes the detector).
        """
        if self._timer is not None:
            raise RuntimeError("watch() must be called before start()")
        if on_detection is None and on_onset is None:
            raise ValueError("need at least one callback")
        for frequency in frequencies:
            key = float(frequency)
            if on_detection is not None:
                self._detection_subscribers.setdefault(key, []).append(on_detection)
            if on_onset is not None:
                self._onset_subscribers.setdefault(key, []).append(on_onset)
        self._detector = None  # force rebuild

    def on_window(
        self, callback: Callable[[list[DetectionEvent], float], None]
    ) -> None:
        """Subscribe to every processed window: ``callback(events, time)``.
        Used by telemetry apps that reason about whole windows."""
        self._any_window_subscribers.append(callback)

    def add_spectrum_sink(self, callback: Callable) -> None:
        """Subscribe ``callback(spectrum, time)`` to every window
        spectrum the detector computes (FFT backend only) — the
        interference sentinel's tap.  No extra FFT is performed; the
        sink sees the same spectrum detection already uses."""
        if self.backend != "fft":
            raise ValueError(
                "spectrum sinks require the fft backend (the Goertzel "
                "bank computes no full spectrum)"
            )
        self._spectrum_sinks.append(callback)
        self._rebuild_live()

    @property
    def watched_frequencies(self) -> list[float]:
        watched = set(self._detection_subscribers) | set(self._onset_subscribers)
        return sorted(watched)

    @property
    def live_frequencies(self) -> list[float]:
        """Everything the detector actually listens for: subscribed
        frequencies plus handover aliases and make-before-break
        extras (:meth:`extend_watch`)."""
        live = set(self.watched_frequencies)
        live.update(self._aliases)
        live.update(self._extra_watch)
        return sorted(live)

    # ------------------------------------------------------------------
    # Runtime retuning (spectrum agility)
    # ------------------------------------------------------------------

    def extend_watch(self, frequencies: list[float]) -> None:
        """Start listening on additional frequencies *now*, without any
        subscribers — the make-before-break half-step: the controller
        hears the post-migration tones before any emitter switches, so
        a tone emitted the instant after PLAN_COMMIT cannot fall into a
        deaf window.  Safe to call while the listen loop is running."""
        for frequency in frequencies:
            key = float(frequency)
            if key not in self._detection_subscribers and \
                    key not in self._onset_subscribers:
                self._extra_watch.add(key)
        self._rebuild_live()

    def retract_watch(self, frequencies: list[float]) -> None:
        """Stop pre-listening on frequencies added by
        :meth:`extend_watch` that never gained subscribers — the
        rollback of an aborted migration.  Frequencies with subscribers
        are untouched."""
        changed = False
        for frequency in frequencies:
            key = float(frequency)
            if key in self._extra_watch:
                self._extra_watch.discard(key)
                changed = True
        if changed:
            self._rebuild_live()

    def migrate_watch(
        self,
        moves: dict[float, float],
        epoch: int,
        handover: float,
    ) -> None:
        """Commit a frequency migration on the listening side.

        For each ``old -> new`` entry the subscribers keyed on ``old``
        move to ``new``, and ``old`` stays on the detector's watch list
        for ``handover`` seconds as an *alias*: a tone still sounding
        (or in flight) on the old frequency is re-attributed to ``new``
        and tagged with the pre-commit epoch, so zero telemetry events
        are lost or misattributed across the commit boundary.  Onset
        suppression follows the move — a tone spanning the commit does
        not fire a duplicate onset on the new key.
        """
        if handover < 0:
            raise ValueError("handover must be >= 0")
        old_epoch = self.epoch
        for old, new in moves.items():
            old = float(old)
            new = float(new)
            if old == new:
                continue
            for subscribers in (self._detection_subscribers,
                                self._onset_subscribers):
                callbacks = subscribers.pop(old, None)
                if callbacks:
                    subscribers.setdefault(new, []).extend(callbacks)
            self._extra_watch.discard(new)
            self._aliases[old] = (new, old_epoch)
            if old in self._previous_window:
                self._previous_window.discard(old)
                self._previous_window.add(new)
        self.epoch = epoch
        self._rebuild_live()
        if self._aliases:
            self.sim.schedule_at(
                self.sim.now + handover, self._end_handover,
                tuple(float(old) for old in moves),
            )

    def _end_handover(self, old_frequencies: tuple[float, ...]) -> None:
        """Break half of make-before-break: stop listening on the
        vacated frequencies once the handover window has elapsed."""
        changed = False
        for old in old_frequencies:
            if self._aliases.pop(old, None) is not None:
                changed = True
            self._previous_window.discard(old)
        if changed:
            self._rebuild_live()

    def _rebuild_live(self) -> None:
        """Refresh the detector to the current watch set; lazy when the
        listen loop is not running."""
        if self._timer is not None:
            self._build_detector()
        else:
            self._detector = None

    # ------------------------------------------------------------------
    # Listening loop
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the periodic listen loop at the current sim time."""
        if self._timer is not None:
            raise RuntimeError("controller already started")
        if not self.watched_frequencies:
            raise RuntimeError("nothing to watch; call watch() first")
        self._build_detector()
        self._timer = self.sim.every(self.listen_interval, self._listen_once)

    def stop(self) -> None:
        """Stop listening.  Clears the onset-suppression state: a tone
        that starts while the controller is stopped must fire an onset
        on the first window after a restart, not be mistaken for a
        continuation of a pre-stop tone."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        self._previous_window = set()

    def _build_detector(self) -> None:
        watch = set(self.live_frequencies)
        sink = None
        if self._spectrum_sinks:
            sinks = tuple(self._spectrum_sinks)
            if len(sinks) == 1:
                sink = sinks[0]
            else:
                def sink(spectrum, time, _sinks=sinks):
                    for each in _sinks:
                        each(spectrum, time)
        self._detector = FrequencyDetector(
            sorted(watch),
            threshold_db=self.threshold_db,
            min_level_db=self.min_level_db,
            backend=self.backend,
            spectrum_sink=sink,
            spectra_cache=self.spectra_cache,
        )

    def _translate_events(
        self, events: list[DetectionEvent]
    ) -> list[DetectionEvent]:
        """Apply migration aliases and epoch tags to a window's events.

        Only runs once a migration has ever touched this controller
        (aliases live, or epoch > 0); the static-plan hot path never
        reaches here.  When both the old and the new frequency of one
        move are heard in the same window (the emitter switched
        mid-window), the stronger detection wins — one event per plan
        entry, as :meth:`FrequencyDetector.detect` guarantees.
        """
        merged: dict[float, DetectionEvent] = {}
        for event in events:
            alias = self._aliases.get(event.frequency)
            if alias is not None:
                new_frequency, emission_epoch = alias
                event = DetectionEvent(
                    new_frequency, event.measured_frequency,
                    event.level_db, event.time, emission_epoch,
                )
            elif event.epoch != self.epoch:
                event = DetectionEvent(
                    event.frequency, event.measured_frequency,
                    event.level_db, event.time, self.epoch,
                )
            existing = merged.get(event.frequency)
            if existing is None or event.level_db > existing.level_db:
                merged[event.frequency] = event
        return sorted(merged.values(), key=lambda e: e.frequency)

    def _listen_once(self) -> None:
        """Capture the window that just elapsed and dispatch events."""
        observed = self._obs is not None
        wall_start = _time.perf_counter() if observed else 0.0
        end = self.sim.now
        start = end - self.listen_interval
        with obs.span("controller.window", start=start):
            window = self.microphone.record(self.channel, start, end)
            assert self._detector is not None
            events = self._detector.detect(window, start)
            if self._aliases or self.epoch:
                events = self._translate_events(events)
            self._m_windows.inc()
            self._m_detections.inc(len(events))

            # Onset suppression tracks every *physical* detection; the
            # ingest limiter gates what is dispatched, not what exists,
            # so detections == dispatched + shed and a shed tone can't
            # re-fire a spurious onset next window.
            present = {event.frequency for event in events}
            if self.ingest_limiter is not None:
                dispatch = [event for event in events
                            if self.ingest_limiter.admit(end)]
                if len(dispatch) < len(events):
                    self._m_events_shed.inc(len(events) - len(dispatch))
            else:
                dispatch = events
            for event in dispatch:
                for callback in self._detection_subscribers.get(event.frequency, ()):
                    callback(event)
                if event.frequency not in self._previous_window:
                    self._m_onsets.inc()
                    for callback in self._onset_subscribers.get(event.frequency, ()):
                        callback(event)
            for callback in self._any_window_subscribers:
                callback(dispatch, start)
            self._previous_window = present
            if self.prune_every and self.windows_processed % self.prune_every == 0:
                self._m_tones_pruned.inc(
                    self.channel.prune(start, self.prune_margin)
                )
        if observed:
            self._m_window_ms.observe((_time.perf_counter() - wall_start) * 1e3)
            self._m_events_per_window.observe(len(events))

    # ------------------------------------------------------------------
    # SDN southbound
    # ------------------------------------------------------------------

    def send_flow_mod(self, switch_name: str, flow_mod: FlowMod) -> None:
        """Push a FlowMod (requires a control channel)."""
        if self.control_channel is None:
            raise RuntimeError("no control channel attached")
        self.control_channel.send_flow_mod(switch_name, flow_mod)

    def handle_packet_in(self, message: PacketIn) -> None:
        """Default PacketIn handler: ignore (MDN reacts to sound, not
        packets).  Applications needing PacketIns can override or wrap."""
