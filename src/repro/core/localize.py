"""Acoustic source localization: *which rack is beeping?*

Section 7 (footnote): "while conducting our experiments, we heard a
misconfigured server beeping for weeks" — somebody had to walk the
aisles to find it.  Section 8 proposes coordinating "an array of
microphones listening to different groups of switches".  Put together,
the array can do more than extend coverage: with known station
positions and the speed of sound, the *time difference of arrival*
(TDOA) of one emission across stations pins the emitter's location.

Pipeline:

1. every station records the same window;
2. pairwise GCC-PHAT (generalized cross-correlation with phase
   transform) estimates the inter-station delay of the dominant
   coherent source, robust to the source's spectrum;
3. a two-stage grid search finds the position whose hyperbolic TDOA
   residuals are smallest.

At 16 kHz one sample of delay is ~2 cm of path difference, so even the
coarse audio clock localizes to a rack, not just an aisle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..audio.channel import SPEED_OF_SOUND, AcousticChannel, Position
from ..audio.devices import Microphone
from ..audio.signal import AudioSignal


def gcc_phat_delay(
    reference: AudioSignal,
    other: AudioSignal,
    max_delay: float | None = None,
    spectral_floor: float = 0.01,
) -> float:
    """Delay of ``other`` relative to ``reference``, in seconds.

    Positive result: the sound reached ``other`` later.  Uses the
    PHAT weighting (whitened cross-spectrum), which sharpens the
    correlation peak for wideband and tonal sources alike.

    Bins whose cross-spectrum magnitude falls below ``spectral_floor``
    times the strongest bin are dropped instead of whitened.  Without
    the relative gate, band-limited captures break: the near-zero
    out-of-band bins carry identical filter leakage at both stations,
    and whitening inflates that into a fake coherent peak at lag 0.
    """
    if reference.sample_rate != other.sample_rate:
        raise ValueError("sample rates differ")
    count = min(len(reference), len(other))
    if count < 16:
        raise ValueError("windows too short to correlate")
    a = reference.samples[:count]
    b = other.samples[:count]
    n_fft = 2 * count
    spectrum = np.fft.rfft(a, n_fft) * np.conj(np.fft.rfft(b, n_fft))
    magnitude = np.abs(spectrum)
    gate = spectral_floor * float(magnitude.max())
    spectrum = np.where(
        magnitude > max(gate, 1e-15),
        spectrum / np.maximum(magnitude, 1e-15),
        0,
    )
    correlation = np.fft.irfft(spectrum, n_fft)
    # Rearrange so lag 0 sits in the middle.
    correlation = np.concatenate(
        (correlation[-count + 1:], correlation[:count])
    )
    lags = np.arange(-count + 1, count)
    if max_delay is not None:
        limit = int(round(max_delay * reference.sample_rate))
        mask = np.abs(lags) <= limit
        correlation = correlation[mask]
        lags = lags[mask]
    best = int(np.argmax(correlation))
    # ``other`` lagging by k samples shows the peak at lag -k.
    return -float(lags[best]) / reference.sample_rate


def tone_onset_time(signal: AudioSignal, smoothing: float = 0.001) -> float:
    """Sub-sample onset time of the dominant tone burst in a capture.

    A pure tone's waveform correlation is periodic (ambiguous beyond
    half a period) and a long tone's envelope correlation has a
    near-flat apex -- so TDOA for tonal sources is best read off the
    envelope's *rising edge*.  Returns the time, relative to the
    capture start, where the smoothed envelope first crosses half its
    maximum, linearly interpolated between samples.

    The burst's rise must lie inside the capture (start listening at or
    before the emission).
    """
    if len(signal) < 16:
        raise ValueError("window too short for onset detection")
    rate = signal.sample_rate
    kernel_len = max(1, int(round(smoothing * rate)))
    kernel = np.ones(kernel_len) / kernel_len
    envelope = np.convolve(np.abs(signal.samples), kernel, mode="same")
    peak = float(np.max(envelope))
    if peak <= 0.0:
        raise ValueError("silent capture: no onset to time")
    threshold = 0.5 * peak
    above = np.where(envelope >= threshold)[0]
    index = int(above[0])
    if index == 0:
        return 0.0
    lower, upper = envelope[index - 1], envelope[index]
    fraction = (threshold - lower) / max(upper - lower, 1e-15)
    return (index - 1 + float(fraction)) / rate


def envelope_delay(
    reference: AudioSignal,
    other: AudioSignal,
    max_delay: float | None = None,
    smoothing: float = 0.001,
) -> float:
    """Delay of ``other``'s tone onset relative to ``reference``'s, in
    seconds (positive: the sound reached ``other`` later)."""
    if reference.sample_rate != other.sample_rate:
        raise ValueError("sample rates differ")
    delay = tone_onset_time(other, smoothing) - tone_onset_time(
        reference, smoothing
    )
    if max_delay is not None and abs(delay) > max_delay:
        raise ValueError(
            f"onset delay {delay * 1000:.1f} ms exceeds the physical "
            f"bound {max_delay * 1000:.1f} ms -- captures likely missed "
            "the burst's rising edge"
        )
    return delay


def onset_quality(signal: AudioSignal, smoothing: float = 0.001) -> float:
    """How burst-like a capture is: envelope peak over its quiet floor.

    A station that clearly hears a beep shows a silent floor followed
    by a strong burst (ratios in the hundreds); a station drowned by a
    nearby continuous source shows a nearly flat envelope (ratio near
    1).  The localizer gates stations on this before trusting their
    onset times.
    """
    if len(signal) < 16:
        return 0.0
    rate = signal.sample_rate
    kernel_len = max(1, int(round(smoothing * rate)))
    kernel = np.ones(kernel_len) / kernel_len
    envelope = np.convolve(np.abs(signal.samples), kernel, mode="same")
    floor = float(np.percentile(envelope, 5))
    return float(np.max(envelope)) / max(floor, 1e-15)


@dataclass
class LocalizationResult:
    """An estimated emitter position with its residual."""

    position: Position
    residual_m: float            #: RMS hyperbolic mismatch, metres
    tdoas: dict[str, float]      #: per-station delay vs the reference
    excluded: tuple[str, ...] = ()  #: stations rejected as outliers


class TdoaLocalizer:
    """Locates a dominant sound source from array captures.

    Parameters
    ----------
    stations:
        ``{name: Microphone}`` with at least three microphones at
        non-collinear positions (2-D localization in the z=0 plane).
    region:
        ``(x_min, x_max, y_min, y_max)`` search bounds; defaults to the
        stations' bounding box padded by 20 m.
    min_onset_quality:
        Minimum :func:`onset_quality` for a station's timing to be
        trusted (clean beeps score in the hundreds; a station drowned
        by a local interferer scores near 1).
    """

    def __init__(
        self,
        stations: dict[str, Microphone],
        region: tuple[float, float, float, float] | None = None,
        min_onset_quality: float = 10.0,
    ) -> None:
        if len(stations) < 3:
            raise ValueError("TDOA localization needs >= 3 stations")
        self.stations = dict(stations)
        self.min_onset_quality = min_onset_quality
        if region is None:
            xs = [mic.position.x for mic in stations.values()]
            ys = [mic.position.y for mic in stations.values()]
            pad = 20.0
            region = (min(xs) - pad, max(xs) + pad,
                      min(ys) - pad, max(ys) + pad)
        self.region = region

    def locate(
        self,
        channel: AcousticChannel,
        start: float,
        end: float,
        band: tuple[float, float] | None = None,
    ) -> LocalizationResult:
        """Record ``[start, end)`` at every station and localize the
        dominant source.

        ``band`` isolates the hunted emission before correlation —
        essential when another *coherent* source (a point noise bed,
        another server) shares the room: its different TDOA otherwise
        biases the correlation peak.  Pass the beep's frequency ±
        a few hundred Hz.

        Timing strategy: with a band, delays come from gated GCC-PHAT
        on the filtered captures — in-band the hunted emission
        dominates, and correlating the whole burst averages out the
        interferer's envelope noise that would jitter a single
        rising-edge measurement.  Without a band, the envelope onset
        edge is used instead: whitening an unfiltered capture hands
        every microphone-noise bin equal weight, burying a narrowband
        source.
        """
        from ..audio.fft import bandpass_filter

        names = sorted(self.stations)
        captures = {
            name: self.stations[name].record(channel, start, end)
            for name in names
        }
        if band is not None:
            captures = {
                name: bandpass_filter(capture, band[0], band[1])
                for name, capture in captures.items()
            }
        # Gate out stations that cannot actually hear a distinct burst
        # (e.g. a microphone parked next to a roaring server): their
        # onset time would be an artifact of the local interferer.
        qualities = {
            name: onset_quality(captures[name]) for name in names
        }
        usable = [name for name in names
                  if qualities[name] >= self.min_onset_quality]
        if len(usable) < 3:
            # Keep the three best-hearing stations regardless.
            usable = sorted(names, key=lambda n: qualities[n],
                            reverse=True)[:3]
            usable.sort()
        if band is not None:
            bound = self._max_station_span() / SPEED_OF_SOUND
            reference_capture = captures[usable[0]]
            onsets = {
                name: gcc_phat_delay(
                    reference_capture, captures[name], max_delay=bound
                )
                for name in usable
            }
        else:
            onsets = {
                name: tone_onset_time(captures[name]) for name in usable
            }
        result = self._robust_solve(usable, onsets)
        gated = tuple(sorted(set(names) - set(usable)))
        return LocalizationResult(
            result.position, result.residual_m, result.tdoas,
            tuple(sorted(set(result.excluded) | set(gated))),
        )

    def _robust_solve(
        self,
        names: list[str],
        onsets: dict[str, float],
        residual_tolerance_m: float = 1.0,
    ) -> LocalizationResult:
        """Solve, then — if the fit is poor — retry leaving out each
        station in turn (a station parked next to a loud interferer
        times the wrong onset; real arrays must reject it)."""
        def solve(active: list[str]) -> LocalizationResult:
            reference = active[0]
            tdoas = {
                name: onsets[name] - onsets[reference]
                for name in active[1:]
            }
            position, residual = self._grid_search(reference, tdoas)
            excluded = tuple(sorted(set(names) - set(active)))
            return LocalizationResult(position, residual, tdoas, excluded)

        best = solve(names)
        if best.residual_m <= residual_tolerance_m or len(names) <= 3:
            return best
        for leave_out in names:
            active = [name for name in names if name != leave_out]
            candidate = solve(active)
            if candidate.residual_m < best.residual_m:
                best = candidate
        return best

    # ------------------------------------------------------------------

    def _max_station_span(self) -> float:
        positions = [mic.position for mic in self.stations.values()]
        return max(
            a.distance_to(b) for a in positions for b in positions
        )

    def _residual(self, x: float, y: float, reference: str,
                  tdoas: dict[str, float]) -> float:
        point = Position(x, y, 0.0)
        ref_dist = point.distance_to(self.stations[reference].position)
        errors = []
        for name, tdoa in tdoas.items():
            dist = point.distance_to(self.stations[name].position)
            predicted = (dist - ref_dist) / SPEED_OF_SOUND
            errors.append((predicted - tdoa) * SPEED_OF_SOUND)
        return float(np.sqrt(np.mean(np.square(errors))))

    def _grid_search(self, reference: str,
                     tdoas: dict[str, float]) -> tuple[Position, float]:
        x_min, x_max, y_min, y_max = self.region
        best = (x_min, y_min)
        best_residual = float("inf")
        step = max((x_max - x_min), (y_max - y_min)) / 40.0
        for _refinement in range(4):
            xs = np.arange(best[0] - 20 * step if _refinement else x_min,
                           (best[0] + 20 * step if _refinement else x_max)
                           + step / 2, step)
            ys = np.arange(best[1] - 20 * step if _refinement else y_min,
                           (best[1] + 20 * step if _refinement else y_max)
                           + step / 2, step)
            for x in xs:
                for y in ys:
                    residual = self._residual(float(x), float(y),
                                              reference, tdoas)
                    if residual < best_residual:
                        best_residual = residual
                        best = (float(x), float(y))
            step /= 5.0
        return Position(best[0], best[1], 0.0), best_residual
