"""Microphone arrays: the paper's §8 scaling direction.

"An interesting research direction is to coordinate an array of
microphones listening to different groups of switches."

:class:`MicrophoneArray` does that coordination: several stations, each
a microphone placed near one group of switches, polled on a common
clock.  Per window, each station's capture is run through a shared
detector; events are merged across stations (a tone heard by several
microphones is reported once, from the station that heard it loudest)
and dispatched exactly like :class:`~repro.core.controller.MDNController`
events.  Switches too far from any single central microphone become
audible again through their local station.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable

from .. import obs
from ..audio.channel import AcousticChannel
from ..audio.detector import DetectionEvent, FrequencyDetector
from ..audio.devices import Microphone
from ..net.sim import PeriodicTimer, Simulator


@dataclass(frozen=True)
class ArrayDetection:
    """A merged detection: the event plus which station won it."""

    event: DetectionEvent
    station: str
    stations_heard: tuple[str, ...]


ArrayCallback = Callable[[ArrayDetection], None]


class MicrophoneArray:
    """A coordinated set of listening stations.

    Parameters
    ----------
    sim, channel:
        Shared clock and air.
    stations:
        ``{station_name: Microphone}`` — place each microphone near the
        switch group it covers.  Stations sharing one position (e.g.
        redundant capsules) also share the channel's per-window render
        memo: the air is mixed once per ``(position, window)`` and each
        capsule only adds its own self-noise.
    listen_interval:
        Common capture window length.
    prune_every:
        Every this-many processed windows, drop channel tones that
        ended more than ``prune_margin`` seconds ago (the channel keeps
        its echo tail alive past that cutoff).  0 disables pruning.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: AcousticChannel,
        stations: dict[str, Microphone],
        listen_interval: float = 0.1,
        threshold_db: float = 10.0,
        min_level_db: float = 30.0,
        prune_every: int = 600,
        prune_margin: float = 30.0,
    ) -> None:
        if not stations:
            raise ValueError("need at least one station")
        self.sim = sim
        self.channel = channel
        self.stations = dict(stations)
        self.listen_interval = listen_interval
        self.threshold_db = threshold_db
        self.min_level_db = min_level_db
        self.prune_every = prune_every
        self.prune_margin = prune_margin
        self._subscribers: dict[float, list[ArrayCallback]] = {}
        self._onset_subscribers: dict[float, list[ArrayCallback]] = {}
        self._detector: FrequencyDetector | None = None
        self._timer: PeriodicTimer | None = None
        self._previous: set[float] = set()
        #: frequency -> station that last reported it (coverage map).
        self.coverage: dict[float, str] = {}
        # Registry-backed, API-compatible counters (repro.obs).
        self._m_windows = obs.counter("array.windows_processed")
        self._m_tones_pruned = obs.counter("array.tones_pruned")
        self._m_merged = obs.counter("array.merged_detections")
        self._obs = obs.get_registry()
        if self._obs is not None:
            self._m_window_ms = self._obs.register(
                obs.Histogram("array.window_ms")
            )

    @property
    def windows_processed(self) -> int:
        """Common-clock windows processed across all stations."""
        return self._m_windows.value

    @property
    def tones_pruned(self) -> int:
        """Channel tones dropped by the array's periodic prune."""
        return self._m_tones_pruned.value

    def watch(
        self,
        frequencies: list[float],
        on_detection: ArrayCallback | None = None,
        on_onset: ArrayCallback | None = None,
    ) -> None:
        """Subscribe to frequencies across the whole array."""
        if self._timer is not None:
            raise RuntimeError("watch() must be called before start()")
        if on_detection is None and on_onset is None:
            raise ValueError("need at least one callback")
        for frequency in frequencies:
            key = float(frequency)
            if on_detection is not None:
                self._subscribers.setdefault(key, []).append(on_detection)
            if on_onset is not None:
                self._onset_subscribers.setdefault(key, []).append(on_onset)

    @property
    def watched_frequencies(self) -> list[float]:
        return sorted(set(self._subscribers) | set(self._onset_subscribers))

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("array already started")
        if not self.watched_frequencies:
            raise RuntimeError("nothing to watch; call watch() first")
        self._detector = FrequencyDetector(
            self.watched_frequencies,
            threshold_db=self.threshold_db,
            min_level_db=self.min_level_db,
        )
        self._timer = self.sim.every(self.listen_interval, self._listen_once)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def _listen_once(self) -> None:
        assert self._detector is not None
        observed = self._obs is not None
        wall_start = _time.perf_counter() if observed else 0.0
        end = self.sim.now
        start = end - self.listen_interval
        # frequency -> (best event, best station, all stations that heard)
        merged: dict[float, tuple[DetectionEvent, str, list[str]]] = {}
        with obs.span("array.window", start=start,
                      stations=len(self.stations)):
            for name in sorted(self.stations):
                capture = self.stations[name].record(self.channel, start, end)
                for event in self._detector.detect(capture, start):
                    current = merged.get(event.frequency)
                    if current is None:
                        merged[event.frequency] = (event, name, [name])
                    else:
                        best_event, best_station, heard = current
                        heard.append(name)
                        if event.level_db > best_event.level_db:
                            merged[event.frequency] = (event, name, heard)
        self._m_windows.inc()
        self._m_merged.inc(len(merged))
        if observed:
            self._m_window_ms.observe((_time.perf_counter() - wall_start) * 1e3)
        if self.prune_every and self.windows_processed % self.prune_every == 0:
            self._m_tones_pruned.inc(self.channel.prune(start, self.prune_margin))

        present = set(merged)
        for frequency in sorted(merged):
            event, station, heard = merged[frequency]
            self.coverage[frequency] = station
            detection = ArrayDetection(event, station, tuple(heard))
            for callback in self._subscribers.get(frequency, ()):
                callback(detection)
            if frequency not in self._previous:
                for callback in self._onset_subscribers.get(frequency, ()):
                    callback(detection)
        self._previous = present
